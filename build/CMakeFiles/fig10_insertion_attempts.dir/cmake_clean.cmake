file(REMOVE_RECURSE
  "CMakeFiles/fig10_insertion_attempts.dir/bench/fig10_insertion_attempts.cc.o"
  "CMakeFiles/fig10_insertion_attempts.dir/bench/fig10_insertion_attempts.cc.o.d"
  "fig10_insertion_attempts"
  "fig10_insertion_attempts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_insertion_attempts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
