# Empty dependencies file for fig10_insertion_attempts.
# This may be replaced when dependencies are built.
