file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash_functions.dir/bench/ablation_hash_functions.cc.o"
  "CMakeFiles/ablation_hash_functions.dir/bench/ablation_hash_functions.cc.o.d"
  "ablation_hash_functions"
  "ablation_hash_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
