# Empty dependencies file for ablation_hash_functions.
# This may be replaced when dependencies are built.
