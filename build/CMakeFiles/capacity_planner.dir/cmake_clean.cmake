file(REMOVE_RECURSE
  "CMakeFiles/capacity_planner.dir/examples/capacity_planner.cc.o"
  "CMakeFiles/capacity_planner.dir/examples/capacity_planner.cc.o.d"
  "capacity_planner"
  "capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
