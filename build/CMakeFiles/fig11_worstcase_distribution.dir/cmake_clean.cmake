file(REMOVE_RECURSE
  "CMakeFiles/fig11_worstcase_distribution.dir/bench/fig11_worstcase_distribution.cc.o"
  "CMakeFiles/fig11_worstcase_distribution.dir/bench/fig11_worstcase_distribution.cc.o.d"
  "fig11_worstcase_distribution"
  "fig11_worstcase_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_worstcase_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
