# Empty dependencies file for fig11_worstcase_distribution.
# This may be replaced when dependencies are built.
