# Empty dependencies file for fig07_hash_characteristics.
# This may be replaced when dependencies are built.
