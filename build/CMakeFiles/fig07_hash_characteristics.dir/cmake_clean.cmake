file(REMOVE_RECURSE
  "CMakeFiles/fig07_hash_characteristics.dir/bench/fig07_hash_characteristics.cc.o"
  "CMakeFiles/fig07_hash_characteristics.dir/bench/fig07_hash_characteristics.cc.o.d"
  "fig07_hash_characteristics"
  "fig07_hash_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hash_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
