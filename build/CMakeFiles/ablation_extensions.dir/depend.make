# Empty dependencies file for ablation_extensions.
# This may be replaced when dependencies are built.
