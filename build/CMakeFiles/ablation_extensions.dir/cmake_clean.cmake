file(REMOVE_RECURSE
  "CMakeFiles/ablation_extensions.dir/bench/ablation_extensions.cc.o"
  "CMakeFiles/ablation_extensions.dir/bench/ablation_extensions.cc.o.d"
  "ablation_extensions"
  "ablation_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
