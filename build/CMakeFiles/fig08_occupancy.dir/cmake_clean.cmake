file(REMOVE_RECURSE
  "CMakeFiles/fig08_occupancy.dir/bench/fig08_occupancy.cc.o"
  "CMakeFiles/fig08_occupancy.dir/bench/fig08_occupancy.cc.o.d"
  "fig08_occupancy"
  "fig08_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
