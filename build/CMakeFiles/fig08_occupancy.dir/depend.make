# Empty dependencies file for fig08_occupancy.
# This may be replaced when dependencies are built.
