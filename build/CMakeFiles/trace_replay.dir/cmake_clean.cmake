file(REMOVE_RECURSE
  "CMakeFiles/trace_replay.dir/examples/trace_replay.cc.o"
  "CMakeFiles/trace_replay.dir/examples/trace_replay.cc.o.d"
  "trace_replay"
  "trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
