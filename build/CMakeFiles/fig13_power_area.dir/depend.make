# Empty dependencies file for fig13_power_area.
# This may be replaced when dependencies are built.
