file(REMOVE_RECURSE
  "CMakeFiles/fig13_power_area.dir/bench/fig13_power_area.cc.o"
  "CMakeFiles/fig13_power_area.dir/bench/fig13_power_area.cc.o.d"
  "fig13_power_area"
  "fig13_power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
