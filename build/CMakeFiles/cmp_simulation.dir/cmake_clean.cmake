file(REMOVE_RECURSE
  "CMakeFiles/cmp_simulation.dir/examples/cmp_simulation.cc.o"
  "CMakeFiles/cmp_simulation.dir/examples/cmp_simulation.cc.o.d"
  "cmp_simulation"
  "cmp_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
