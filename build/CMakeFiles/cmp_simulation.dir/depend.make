# Empty dependencies file for cmp_simulation.
# This may be replaced when dependencies are built.
