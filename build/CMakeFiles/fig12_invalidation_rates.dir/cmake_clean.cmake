file(REMOVE_RECURSE
  "CMakeFiles/fig12_invalidation_rates.dir/bench/fig12_invalidation_rates.cc.o"
  "CMakeFiles/fig12_invalidation_rates.dir/bench/fig12_invalidation_rates.cc.o.d"
  "fig12_invalidation_rates"
  "fig12_invalidation_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_invalidation_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
