# Empty dependencies file for fig12_invalidation_rates.
# This may be replaced when dependencies are built.
