file(REMOVE_RECURSE
  "CMakeFiles/table_eventmix.dir/bench/table_eventmix.cc.o"
  "CMakeFiles/table_eventmix.dir/bench/table_eventmix.cc.o.d"
  "table_eventmix"
  "table_eventmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_eventmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
