# Empty dependencies file for table_eventmix.
# This may be replaced when dependencies are built.
