file(REMOVE_RECURSE
  "CMakeFiles/directory_comparison.dir/examples/directory_comparison.cc.o"
  "CMakeFiles/directory_comparison.dir/examples/directory_comparison.cc.o.d"
  "directory_comparison"
  "directory_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
