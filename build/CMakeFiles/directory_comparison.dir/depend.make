# Empty dependencies file for directory_comparison.
# This may be replaced when dependencies are built.
