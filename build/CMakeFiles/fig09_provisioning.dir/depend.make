# Empty dependencies file for fig09_provisioning.
# This may be replaced when dependencies are built.
