file(REMOVE_RECURSE
  "CMakeFiles/fig09_provisioning.dir/bench/fig09_provisioning.cc.o"
  "CMakeFiles/fig09_provisioning.dir/bench/fig09_provisioning.cc.o.d"
  "fig09_provisioning"
  "fig09_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
