# Empty dependencies file for fig04_scalability.
# This may be replaced when dependencies are built.
