file(REMOVE_RECURSE
  "CMakeFiles/fig04_scalability.dir/bench/fig04_scalability.cc.o"
  "CMakeFiles/fig04_scalability.dir/bench/fig04_scalability.cc.o.d"
  "fig04_scalability"
  "fig04_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
