file(REMOVE_RECURSE
  "CMakeFiles/micro_directory_ops.dir/bench/micro_directory_ops.cc.o"
  "CMakeFiles/micro_directory_ops.dir/bench/micro_directory_ops.cc.o.d"
  "CMakeFiles/micro_directory_ops.dir/src/common/alloc_counter.cc.o"
  "CMakeFiles/micro_directory_ops.dir/src/common/alloc_counter.cc.o.d"
  "micro_directory_ops"
  "micro_directory_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_directory_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
