# Empty dependencies file for micro_directory_ops.
# This may be replaced when dependencies are built.
