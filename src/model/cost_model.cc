#include "model/cost_model.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/cmp_system.hh"

namespace cdir {

// --- FixedLatencyCostModel ---------------------------------------------------

FixedLatencyCostModel::FixedLatencyCostModel(CostModelParams params)
    : p(params)
{
}

const std::string &
FixedLatencyCostModel::name() const
{
    static const std::string n = "fixed";
    return n;
}

std::uint64_t
FixedLatencyCostModel::accessLatency(const DirRequest &,
                                     const DirAccessOutcome &outcome,
                                     const DirAccessContext &,
                                     std::size_t) const
{
    std::uint64_t latency = p.directoryCycles;
    if (outcome.attempts > 1)
        latency += (outcome.attempts - 1) * p.relocationCycles;
    latency += outcome.hit ? p.forwardCycles : p.offChipCycles;
    if (outcome.hadSharerInvalidations)
        latency += p.invalidationCycles;
    latency += outcome.evictionCount * p.invalidationCycles;
    return latency;
}

// --- MeshCostModel -----------------------------------------------------------

namespace {

/** Smallest w with w * w >= tiles (integer, overflow-safe for any
 *  realistic core count). */
std::size_t
meshSide(std::size_t tiles)
{
    std::size_t w = 1;
    while (w * w < tiles)
        ++w;
    return w;
}

} // namespace

MeshCostModel::MeshCostModel(const CmpConfig &config, CostModelParams params)
    : p(params), tiles(config.numCores), width(meshSide(config.numCores)),
      cachesPerCore(config.cachesPerCore())
{
    if (tiles == 0)
        throw std::invalid_argument(
            "MeshCostModel: configuration has zero cores");
}

const std::string &
MeshCostModel::name() const
{
    static const std::string n = "mesh";
    return n;
}

std::uint64_t
MeshCostModel::hops(std::size_t a, std::size_t b) const
{
    const std::size_t ax = a % width, ay = a / width;
    const std::size_t bx = b % width, by = b / width;
    const std::size_t dx = ax > bx ? ax - bx : bx - ax;
    const std::size_t dy = ay > by ? ay - by : by - ay;
    return dx + dy;
}

std::uint64_t
MeshCostModel::farthestTarget(const DynamicBitset &targets,
                              std::size_t home, CacheId requester,
                              bool &any) const
{
    std::uint64_t farthest = 0;
    any = false;
    targets.forEachSetBit([&](std::size_t c) {
        if (c == requester)
            return;
        any = true;
        farthest = std::max(
            farthest, hops(home, tileOfCache(static_cast<CacheId>(c))));
    });
    return farthest;
}

std::uint64_t
MeshCostModel::accessLatency(const DirRequest &request,
                             const DirAccessOutcome &outcome,
                             const DirAccessContext &ctx,
                             std::size_t slice) const
{
    const std::size_t home = tileOfSlice(slice);
    const std::size_t requester = tileOfCache(request.cache);

    // Request to the home slice, probe, and response back — the mesh
    // distance is paid in both directions.
    std::uint64_t latency =
        p.directoryCycles + 2 * p.hopCycles * hops(requester, home);
    if (outcome.attempts > 1)
        latency += (outcome.attempts - 1) * p.relocationCycles;
    latency += outcome.hit ? p.forwardCycles : p.offChipCycles;

    // Write hit: the home multicasts invalidations; the critical path
    // is the round trip to the *farthest* invalidated sharer.
    if (outcome.hadSharerInvalidations) {
        bool any = false;
        const std::uint64_t farthest = farthestTarget(
            ctx.sharerInvalidations(outcome), home, request.cache, any);
        if (any)
            latency += p.invalidationCycles + 2 * p.hopCycles * farthest;
    }

    // Forced evictions: each displaced entry's sharers must be
    // invalidated before the frame is reusable by the insertion. The
    // requester is a legitimate target here (the evicted tag is a
    // *different* block it may hold), matching the apply phase, which
    // only skips the requester for sharer invalidations.
    constexpr CacheId no_requester = ~CacheId{0};
    for (std::size_t e = 0; e < outcome.evictionCount; ++e) {
        const EvictedEntry &evicted = ctx.forcedEviction(outcome, e);
        bool any = false;
        const std::uint64_t farthest =
            farthestTarget(evicted.targets, home, no_requester, any);
        if (any)
            latency += p.invalidationCycles + 2 * p.hopCycles * farthest;
    }
    return latency;
}

// --- factory -----------------------------------------------------------------

const std::vector<std::string> &
costModelNames()
{
    static const std::vector<std::string> names = {"fixed", "mesh"};
    return names;
}

bool
isCostModelName(const std::string &name)
{
    const auto &names = costModelNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<CostModel>
makeCostModel(const std::string &name, const CmpConfig &config,
              const CostModelParams &params)
{
    if (name == "fixed")
        return std::make_unique<FixedLatencyCostModel>(params);
    if (name == "mesh")
        return std::make_unique<MeshCostModel>(config, params);
    std::string all;
    for (const std::string &n : costModelNames())
        all += (all.empty() ? "" : ", ") + n;
    throw std::invalid_argument("unknown cost model '" + name +
                                "' (try " + all + ")");
}

} // namespace cdir
