/**
 * @file
 * Pluggable timing/interconnect cost model for directory accesses.
 *
 * The simulator is untimed: CmpSystem counts directory events but
 * assigns them no latency, so the paper's latency-side story — probe
 * depth, cuckoo relocation chains, sharer fan-out across the
 * interconnect, off-chip misses — is invisible. A `CostModel` closes
 * that gap without touching the measure path: it maps each completed
 * `DirAccessOutcome` (plus its request and pooled invalidation/eviction
 * targets) to a latency in cycles, and CmpSystem accumulates the
 * samples into the `LatencyHistogram` inside CmpStats during the serial
 * outcome-apply phase. Because accounting rides the apply phase — which
 * runs on the calling thread in canonical first-touch order at any
 * shard count — latency histograms inherit the repository's
 * bit-identical `--jobs` x `--shards` contract for free, and the
 * `if (model)` guard keeps the unmodelled path exactly as fast as
 * before.
 *
 * Two implementations ship:
 *
 *  - `FixedLatencyCostModel` — a distance-blind baseline: flat costs
 *    for the directory probe, hit forwarding, off-chip fills,
 *    invalidation round trips, and per-relocation cuckoo writes.
 *  - `MeshCostModel` — a 2D-mesh NoC parameterised by `CmpConfig`: one
 *    tile per core (width = ceil(sqrt(cores))), directory slices
 *    interleaved across tiles, Manhattan hop counts on the
 *    request/response paths, and invalidation latency set by the
 *    *farthest* sharer (the critical path of the multicast), so
 *    fan-out and placement shape the tail.
 *
 * Latency semantics per outcome, shared by both models:
 *
 *  - every access pays the directory probe;
 *  - a cuckoo insertion chain pays (attempts - 1) relocations;
 *  - a directory hit is serviced on chip (forward / upgrade ack);
 *    a miss (insertion) goes off chip;
 *  - a write hit pays the sharer-invalidation round trip (mesh: to the
 *    farthest invalidated sharer);
 *  - each forced eviction pays an invalidation round trip to its
 *    targets before the displaced entry's frame is reusable.
 */

#ifndef CDIR_MODEL_COST_MODEL_HH
#define CDIR_MODEL_COST_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "directory/access_context.hh"

namespace cdir {

struct CmpConfig;

/** Cycle costs shared by the cost models (defaults are plausible
 *  relative magnitudes, not calibrated silicon numbers). */
struct CostModelParams
{
    std::uint64_t directoryCycles = 4;    //!< probe/update at the home slice
    std::uint64_t relocationCycles = 6;   //!< one cuckoo relocation write
    std::uint64_t forwardCycles = 12;     //!< hit service (forward/ack)
    std::uint64_t invalidationCycles = 10; //!< invalidation round trip
    std::uint64_t offChipCycles = 200;    //!< memory fill on a miss
    std::uint64_t hopCycles = 3;          //!< per mesh hop (mesh model)
};

/** Maps one directory access outcome to a latency in cycles. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Model name as accepted by makeCostModel(). */
    virtual const std::string &name() const = 0;

    /**
     * Latency in cycles of the access that produced @p outcome at
     * directory slice @p slice. @p ctx is the context the outcome was
     * recorded into (invalidation/eviction target bitsets). Must be
     * pure (no state): it is called from the serial apply phase for
     * every outcome, in canonical order.
     */
    virtual std::uint64_t accessLatency(const DirRequest &request,
                                        const DirAccessOutcome &outcome,
                                        const DirAccessContext &ctx,
                                        std::size_t slice) const = 0;
};

/** Distance-blind baseline: flat per-event costs. */
class FixedLatencyCostModel : public CostModel
{
  public:
    explicit FixedLatencyCostModel(CostModelParams params = {});

    const std::string &name() const override;
    std::uint64_t accessLatency(const DirRequest &request,
                                const DirAccessOutcome &outcome,
                                const DirAccessContext &ctx,
                                std::size_t slice) const override;

  private:
    CostModelParams p;
};

/** 2D-mesh NoC model parameterised by the CMP configuration (see file
 *  comment). */
class MeshCostModel : public CostModel
{
  public:
    /** @throws std::invalid_argument if @p config has zero cores. */
    explicit MeshCostModel(const CmpConfig &config,
                           CostModelParams params = {});

    const std::string &name() const override;
    std::uint64_t accessLatency(const DirRequest &request,
                                const DirAccessOutcome &outcome,
                                const DirAccessContext &ctx,
                                std::size_t slice) const override;

    /** Mesh side length (tiles per row). */
    std::size_t meshWidth() const { return width; }

    /** Manhattan hop count between tiles @p a and @p b. */
    std::uint64_t hops(std::size_t a, std::size_t b) const;

    /** Tile holding directory slice @p slice (address interleaving
     *  wraps slices onto the cores' tiles). */
    std::size_t tileOfSlice(std::size_t slice) const
    {
        return slice % tiles;
    }

    /** Tile of the core owning cache @p cache. */
    std::size_t tileOfCache(CacheId cache) const
    {
        return static_cast<std::size_t>(cache) / cachesPerCore;
    }

  private:
    /** Farthest-target hop count from @p home (requester excluded). */
    std::uint64_t farthestTarget(const DynamicBitset &targets,
                                 std::size_t home,
                                 CacheId requester, bool &any) const;

    CostModelParams p;
    std::size_t tiles = 0;         //!< one per core
    std::size_t width = 0;         //!< mesh side length
    unsigned cachesPerCore = 1;
};

/** Names makeCostModel() accepts, in stable order. */
const std::vector<std::string> &costModelNames();

/** True iff @p name is a known cost model. */
bool isCostModelName(const std::string &name);

/**
 * Construct the cost model @p name ("fixed" or "mesh") for systems
 * configured as @p config.
 * @throws std::invalid_argument for an unknown name.
 */
std::unique_ptr<CostModel> makeCostModel(const std::string &name,
                                         const CmpConfig &config,
                                         const CostModelParams &params = {});

} // namespace cdir

#endif // CDIR_MODEL_COST_MODEL_HH
