#include "model/directory_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bit_util.hh"

namespace cdir {

namespace {

double
log2d(double v)
{
    return std::log2(std::max(v, 2.0));
}

/** Tag bits left after slice interleaving and set indexing. */
double
tagBitsFor(const DirSystemParams &p, double sets_per_slice)
{
    const double consumed =
        log2d(double(p.numCores)) + log2d(sets_per_slice);
    return std::max(double(p.blockAddrBits()) - consumed, 8.0);
}

/** Weighted energy given per-operation (read, write) bit costs. */
struct OpBits
{
    double readBits = 0.0;
    double writeBits = 0.0;
};

double
mixEnergy(const DirSystemParams &p, double rows, const EventMix &mix,
          const OpBits &insert, const OpBits &add, const OpBits &remove,
          const OpBits &remove_tag, const OpBits &invalidate)
{
    auto e = [&](const OpBits &op) {
        return sramAccessEnergy(static_cast<std::size_t>(
                                    std::max(rows, 1.0)),
                                op.readBits, op.writeBits, p.tech);
    };
    return mix.insert * e(insert) + mix.addSharer * e(add) +
           mix.removeSharer * e(remove) + mix.removeTag * e(remove_tag) +
           mix.invalidateAll * e(invalidate);
}

DirCost
finalize(const DirSystemParams &p, double energy_per_op,
         double area_bits_per_core)
{
    DirCost cost;
    cost.energyPerOp = energy_per_op;
    cost.energyRelative = energy_per_op / l2TagLookupEnergy(p.tech);
    cost.areaBitsPerCore = area_bits_per_core;
    cost.areaRelative = area_bits_per_core / l2DataAreaBits();
    return cost;
}

/** Sparse/Cuckoo entry sharer-field width per format. */
double
vectorBits(OrgModel org, double num_caches)
{
    switch (org) {
      case OrgModel::SparseFull:
      case OrgModel::CuckooFull:
      case OrgModel::InCache:
        return num_caches;
      case OrgModel::SparseCoarse:
      case OrgModel::CuckooCoarse:
        return 2.0 * std::ceil(log2d(num_caches));
      case OrgModel::SparseHier:
      case OrgModel::CuckooHier: {
        // Root vector: one bit per cluster of isqrtCeil(C) caches.
        // Exact integer math matching sharerStorageBits() and the
        // HierarchicalVectorRep geometry — note ceil(C / isqrtCeil(C))
        // can be one less than ceil(sqrt(C)) (e.g. C = 128 packs into
        // 11 clusters of 12), and std::sqrt on a double can land on
        // the wrong side of an exact square for large C.
        const auto c = std::uint64_t(num_caches);
        const std::uint64_t cluster = std::max<std::uint64_t>(
            isqrtCeil(c), 1);
        return double((c + cluster - 1) / cluster);
      }
      default:
        return 0.0;
    }
}

bool
isHier(OrgModel org)
{
    return org == OrgModel::SparseHier || org == OrgModel::CuckooHier;
}

/**
 * Shared cost shape of every tagged-entry directory (Sparse and Cuckoo
 * families): `entries` slots of (tag + state + vector) bits organized in
 * `ways` ways. Cuckoo pays extra displacement read/writes per insert;
 * hierarchical formats pay a second serialized lookup plus replicated
 * tags at secondary locations.
 */
DirCost
taggedEntryCost(OrgModel org, const DirSystemParams &p,
                const EventMix &mix, double provisioning, unsigned ways,
                double avg_attempts)
{
    const double C = double(p.numCaches());
    const double entries_per_slice =
        provisioning * p.framesPerSlice();
    const double sets = std::max(entries_per_slice / ways, 1.0);
    const double tag_bits = tagBitsFor(p, sets);
    const double state_bits = 2.0;
    const double vec_bits = vectorBits(org, C);
    const double entry_bits = tag_bits + state_bits + vec_bits;

    // Hierarchical: secondary table with one leaf per primary entry
    // provisioned; each leaf replicates the tag (§3.3). A leaf is one
    // bit per cache in its cluster — isqrtCeil(C) bits.
    const double leaf_bits =
        isHier(org) ? double(isqrtCeil(std::uint64_t(C))) : 0.0;
    const double secondary_entry_bits =
        isHier(org) ? tag_bits + leaf_bits : 0.0;

    // Lookup: match `ways` tags, read the hit entry's vector (and one
    // secondary entry for hierarchical formats).
    const double lookup_read = ways * tag_bits + vec_bits +
                               (isHier(org) ? ways * tag_bits + leaf_bits
                                            : 0.0);

    // An insert writes one entry per placement (avg_attempts of them);
    // each displacement additionally reads the victim entry it moves.
    OpBits insert{lookup_read +
                      std::max(avg_attempts - 1.0, 0.0) * entry_bits,
                  avg_attempts * entry_bits + secondary_entry_bits};

    OpBits add{lookup_read, vec_bits + leaf_bits};
    OpBits remove{lookup_read, vec_bits + leaf_bits};
    OpBits remove_tag{lookup_read, 1.0};
    OpBits invalidate{lookup_read, vec_bits + leaf_bits};

    const double energy = mixEnergy(p, sets, mix, insert, add, remove,
                                    remove_tag, invalidate);
    const double area =
        entries_per_slice * (entry_bits + secondary_entry_bits);
    return finalize(p, energy, area);
}

} // namespace

DirCost
directoryCost(OrgModel org, const DirSystemParams &p, const EventMix &mix)
{
    const double C = double(p.numCaches());

    switch (org) {
      case OrgModel::DuplicateTag: {
        // Mirrored tags: sets x (C * cacheAssoc) tag frames per slice;
        // every lookup senses the full set width (§3.1).
        const double sets = std::max(
            double(p.framesPerCache) / p.cacheAssoc / double(p.numCores),
            1.0);
        const double tag_bits = tagBitsFor(p, sets);
        const double width = C * p.cacheAssoc;
        const double lookup_read = width * tag_bits;
        OpBits insert{lookup_read, tag_bits + 1.0};
        OpBits add{lookup_read, tag_bits + 1.0};
        OpBits remove{lookup_read, 1.0};
        OpBits remove_tag{lookup_read, 1.0};
        OpBits invalidate{lookup_read, C}; // clear every holder's frame
        const double energy = mixEnergy(p, sets, mix, insert, add,
                                        remove, remove_tag, invalidate);
        const double area = sets * width * (tag_bits + 1.0);
        return finalize(p, energy, area);
      }

      case OrgModel::Tagless: {
        // Bloom-filter grid [43]: per slice, grids x sets x B buckets,
        // each bucket holding a C-bit sharer word. A lookup reads the
        // addressed bucket's C-bit word per grid; an update
        // read-modify-writes it — "the bit-widths of either each read
        // or each update operation ... increase with the number of
        // cores" (§3.3), which is what keeps the Tagless energy slope
        // parallel to Duplicate-Tag at a lower constant.
        const double sets = std::max(
            double(p.framesPerCache) / p.cacheAssoc / double(p.numCores),
            1.0);
        const double B = p.taglessBucketBits != 0
                             ? double(p.taglessBucketBits)
                             : 8.0 * p.cacheAssoc;
        const double G = double(p.taglessGrids);
        const double lookup_read = G * C;
        OpBits insert{2.0 * lookup_read, G * C};
        OpBits add{2.0 * lookup_read, G * C};
        OpBits remove{2.0 * lookup_read, G * C};
        OpBits remove_tag{2.0 * lookup_read, G * C};
        OpBits invalidate{2.0 * lookup_read, G * C};
        const double energy = mixEnergy(p, sets * B, mix, insert, add,
                                        remove, remove_tag, invalidate);
        const double area = G * sets * C * B;
        return finalize(p, energy, area);
      }

      case OrgModel::InCache: {
        // Vectors on every shared-L2 tag: tag matching rides on the L2
        // access for free (§5.6), but sharer bits are provisioned for
        // all L2 frames.
        const double frames = double(p.l2FramesPerCore);
        OpBits insert{C, C};
        OpBits add{C, C};
        OpBits remove{C, C};
        OpBits remove_tag{C, C};
        OpBits invalidate{C, C};
        const double energy =
            mixEnergy(p, frames / 16.0, mix, insert, add, remove,
                      remove_tag, invalidate);
        const double area = frames * C;
        return finalize(p, energy, area);
      }

      case OrgModel::SparseFull:
      case OrgModel::SparseCoarse:
      case OrgModel::SparseHier:
        return taggedEntryCost(org, p, mix, p.sparseProvisioning,
                               p.sparseWays, 1.0);

      case OrgModel::CuckooFull:
      case OrgModel::CuckooCoarse:
      case OrgModel::CuckooHier:
        return taggedEntryCost(org, p, mix, p.cuckooProvisioning,
                               p.cuckooWays, p.cuckooAvgAttempts);
    }
    assert(false && "unreachable");
    return {};
}

double
modelSharerFieldBits(OrgModel org, std::size_t num_caches)
{
    return vectorBits(org, double(num_caches));
}

std::string
orgModelName(OrgModel org)
{
    switch (org) {
      case OrgModel::DuplicateTag:
        return "Duplicate-Tag";
      case OrgModel::Tagless:
        return "Tagless";
      case OrgModel::SparseFull:
        return "Sparse Full-Vector";
      case OrgModel::InCache:
        return "In-Cache";
      case OrgModel::SparseCoarse:
        return "Sparse Coarse";
      case OrgModel::SparseHier:
        return "Sparse Hierarchical";
      case OrgModel::CuckooFull:
        return "Cuckoo Full-Vector";
      case OrgModel::CuckooCoarse:
        return "Cuckoo Coarse";
      case OrgModel::CuckooHier:
        return "Cuckoo Hierarchical";
    }
    return "?";
}

} // namespace cdir
