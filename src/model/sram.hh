/**
 * @file
 * CACTI-lite SRAM cost model.
 *
 * The paper reports directory energy relative to a 16-way 1MB L2 tag
 * lookup and area relative to a 1MB L2 data array (Fig. 4/13), computed
 * with CACTI. CACTI itself is not redistributable here, so we use a
 * bit-level proxy (see DESIGN.md "Substitutions"):
 *
 *  - dynamic energy of an access = bits read + writeFactor * bits
 *    written + a decoder term proportional to log2(rows);
 *  - area = bits stored (cell area dominates at these array sizes).
 *
 * Because every organization is normalized by the *same* proxy applied
 * to the L2 reference structures, technology constants cancel and the
 * relative ordering and growth exponents — what Fig. 4/13 actually
 * communicate — are preserved.
 */

#ifndef CDIR_MODEL_SRAM_HH
#define CDIR_MODEL_SRAM_HH

#include <cstddef>

namespace cdir {

/** Technology knobs of the bit-level proxy. */
struct SramTech
{
    /** Energy of writing one bit relative to reading one bit. */
    double writeFactor = 1.2;
    /** Decoder/wordline energy per log2(rows), in bit-read units. */
    double decodePerRowBit = 4.0;
};

/**
 * Dynamic energy of one array access, in bit-read units.
 *
 * @param rows       rows in the array (decoder depth).
 * @param bits_read  bits sensed.
 * @param bits_written bits driven.
 * @param tech       technology knobs.
 */
double sramAccessEnergy(std::size_t rows, double bits_read,
                        double bits_written, const SramTech &tech = {});

/** Area of an array in bit units. */
double sramAreaBits(double total_bits);

/**
 * Reference energy: one lookup of a 1MB, 16-way, 64B-block L2 tag array
 * (48-bit physical addresses) — the "100%" of the Fig. 4/13 energy axes.
 */
double l2TagLookupEnergy(const SramTech &tech = {});

/** Reference area: 1MB L2 data array in bits — the "100%" area axis. */
double l2DataAreaBits();

} // namespace cdir

#endif // CDIR_MODEL_SRAM_HH
