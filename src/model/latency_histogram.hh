/**
 * @file
 * Integer-bucketed log-scale latency histogram with exact merge.
 *
 * The timing cost models (model/cost_model.hh) map every directory
 * access outcome to a latency in cycles; this histogram accumulates
 * those samples so the harnesses can report tail percentiles
 * (p50/p99/p99.9) per organization. Its design follows the repository's
 * counter discipline (CmpStats / IntervalStats):
 *
 *  - **integer bucket counts only** — merge() is a bucket-wise sum and
 *    subtract() a bucket-wise difference, so folding per-shard or
 *    per-window partials in any fixed order reproduces the
 *    single-accumulator histogram bit for bit, and percentiles read
 *    from a merged histogram are identical at any `--jobs` x
 *    `--shards` setting;
 *  - **fixed geometry** — bucket boundaries are a pure function of the
 *    value (values below 64 are exact; above, each power-of-two octave
 *    splits into 32 sub-buckets, ~3% resolution; values >= 2^24 clamp
 *    into the top bucket), so histograms are merge-compatible by
 *    construction and never rescale;
 *  - **allocation-free steady state** — storage is a fixed-size array
 *    allocated lazily on the first add() (or eagerly via
 *    preallocate()); a default-constructed histogram owns nothing, so
 *    carrying one inside CmpStats/IntervalRecord costs nothing when no
 *    cost model is selected.
 *
 * Percentiles use the nearest-rank definition over bucket lower bounds
 * (integer rank arithmetic, no interpolation), so they are exact,
 * deterministic, and invariant under any merge order.
 */

#ifndef CDIR_MODEL_LATENCY_HISTOGRAM_HH
#define CDIR_MODEL_LATENCY_HISTOGRAM_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cdir {

/** Log-scale latency histogram (see file comment). */
class LatencyHistogram
{
  public:
    /** Values below this are their own bucket (exact). */
    static constexpr std::uint64_t kLinearMax = 64;
    /** Sub-bucket bits per octave above the linear range. */
    static constexpr unsigned kSubBits = 5;
    /** Largest represented exponent; values >= 2^(kMaxExponent + 1)
     *  clamp into the top bucket. */
    static constexpr unsigned kMaxExponent = 23;
    /** Total buckets: the linear range plus 32 per octave for
     *  exponents 6..kMaxExponent. */
    static constexpr std::size_t kBuckets =
        kLinearMax + (kMaxExponent - 5) * (std::size_t{1} << kSubBits);

    /** Bucket index of @p value (pure function of the value). */
    static std::size_t
    bucketOf(std::uint64_t value)
    {
        if (value < kLinearMax)
            return static_cast<std::size_t>(value);
        const unsigned exp =
            static_cast<unsigned>(std::bit_width(value)) - 1;
        if (exp > kMaxExponent)
            return kBuckets - 1;
        const std::uint64_t sub = (value >> (exp - kSubBits)) &
                                  ((std::uint64_t{1} << kSubBits) - 1);
        return kLinearMax +
               (exp - 6) * (std::size_t{1} << kSubBits) +
               static_cast<std::size_t>(sub);
    }

    /** Smallest value that maps to bucket @p index (the value
     *  percentile() reports for samples landing there). */
    static std::uint64_t
    bucketLowerBound(std::size_t index)
    {
        assert(index < kBuckets);
        if (index < kLinearMax)
            return index;
        const std::size_t b = index - kLinearMax;
        const unsigned exp =
            6 + static_cast<unsigned>(b >> kSubBits);
        const std::uint64_t sub = b & ((std::size_t{1} << kSubBits) - 1);
        return (std::uint64_t{1} << exp) | (sub << (exp - kSubBits));
    }

    /** Record one latency sample. Allocation-free once storage exists
     *  (first add() or preallocate()). */
    void
    add(std::uint64_t value)
    {
        if (counts.empty())
            preallocate();
        ++counts[bucketOf(value)];
        ++n;
        sum += value;
    }

    /** Eagerly size the bucket array (so steady-state add() calls
     *  never touch the allocator). Idempotent. */
    void
    preallocate()
    {
        if (counts.empty())
            counts.resize(kBuckets, 0);
    }

    /** Total samples. */
    std::uint64_t count() const { return n; }

    /** True iff no samples were recorded. */
    bool empty() const { return n == 0; }

    /** Sum of all raw (unclamped) sample values. */
    std::uint64_t totalCycles() const { return sum; }

    /** Mean of raw sample values (0 if empty). */
    double
    mean() const
    {
        return n == 0 ? 0.0 : double(sum) / double(n);
    }

    /** Count in bucket @p index. */
    std::uint64_t
    bucketAt(std::size_t index) const
    {
        return index < counts.size() ? counts[index] : 0;
    }

    /**
     * Nearest-rank percentile in permille (p50 = 500, p99 = 990,
     * p99.9 = 999; 1000 = the maximum bucket). Returns the lower bound
     * of the bucket holding the rank-th smallest sample — integer
     * arithmetic throughout, so the value is exact and merge-order
     * invariant. 0 if the histogram is empty.
     */
    std::uint64_t
    percentile(unsigned permille) const
    {
        assert(permille >= 1 && permille <= 1000);
        if (n == 0)
            return 0;
        // ceil(permille/1000 * n), clamped to [1, n].
        std::uint64_t rank = (permille * n + 999) / 1000;
        if (rank == 0)
            rank = 1;
        if (rank > n)
            rank = n;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
            cumulative += counts[b];
            if (cumulative >= rank)
                return bucketLowerBound(b);
        }
        return bucketLowerBound(kBuckets - 1);
    }

    /** Lower bound of the highest non-empty bucket (0 if empty) — the
     *  deterministic "max" a subtractable histogram can report. */
    std::uint64_t
    maxLatency() const
    {
        for (std::size_t b = counts.size(); b-- > 0;)
            if (counts[b] != 0)
                return bucketLowerBound(b);
        return 0;
    }

    /** Fold @p other into this histogram (exact bucket-wise sums). */
    void
    merge(const LatencyHistogram &other)
    {
        if (other.n == 0)
            return;
        preallocate();
        for (std::size_t b = 0; b < other.counts.size(); ++b)
            counts[b] += other.counts[b];
        n += other.n;
        sum += other.sum;
    }

    /**
     * Subtract an earlier snapshot of this accumulator, leaving the
     * delta (how interval windows are cut from cumulative counters).
     * @p earlier must be a prefix: every bucket count monotonically
     * grew from it.
     * @throws std::invalid_argument if @p earlier is not a prefix.
     */
    void
    subtract(const LatencyHistogram &earlier)
    {
        if (earlier.n == 0)
            return;
        if (earlier.n > n || earlier.sum > sum)
            throw std::invalid_argument(
                "LatencyHistogram::subtract: operand is not an "
                "earlier snapshot");
        for (std::size_t b = 0; b < earlier.counts.size(); ++b) {
            if (earlier.counts[b] > counts[b])
                throw std::invalid_argument(
                    "LatencyHistogram::subtract: operand is not an "
                    "earlier snapshot");
            counts[b] -= earlier.counts[b];
        }
        n -= earlier.n;
        sum -= earlier.sum;
    }

    /**
     * Rebuild from serialized state — sparse (bucket index, count)
     * pairs plus the raw totalCycles() sum, the inverse of how the
     * campaign shard JSON stores a histogram. Replaces the current
     * contents. Because bucket geometry is fixed, the rebuilt histogram
     * is bucket-wise identical to the original accumulator.
     * @throws std::invalid_argument on an out-of-range bucket index.
     */
    void
    restore(std::uint64_t raw_sum,
            const std::vector<std::pair<std::size_t, std::uint64_t>>
                &bucket_counts)
    {
        counts.clear();
        n = 0;
        sum = 0;
        if (bucket_counts.empty() && raw_sum == 0)
            return;
        preallocate();
        for (const auto &[index, count] : bucket_counts) {
            if (index >= kBuckets)
                throw std::invalid_argument(
                    "LatencyHistogram::restore: bucket out of range");
            counts[index] += count;
            n += count;
        }
        sum = raw_sum;
    }

    /** Bucket-wise equality (an unallocated histogram equals an
     *  allocated all-zero one). */
    bool
    operator==(const LatencyHistogram &other) const
    {
        if (n != other.n || sum != other.sum)
            return false;
        for (std::size_t b = 0; b < kBuckets; ++b)
            if (bucketAt(b) != other.bucketAt(b))
                return false;
        return true;
    }

  private:
    std::vector<std::uint64_t> counts; //!< empty until first add()
    std::uint64_t n = 0;
    std::uint64_t sum = 0;
};

} // namespace cdir

#endif // CDIR_MODEL_LATENCY_HISTOGRAM_HH
