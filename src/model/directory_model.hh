/**
 * @file
 * Analytical per-core energy/area model of every directory organization
 * in Figs. 4 and 13.
 *
 * For each organization the model derives, from the system geometry,
 * the bits read and written by each directory operation type and the
 * storage bits per slice; operation energies are weighted by the event
 * mix the paper measured across its workload suite (footnote 1) and
 * normalized to the Fig. 4/13 reference structures (see sram.hh).
 *
 * The figures plot *per-core* values: one directory slice per core, so
 * aggregate chip cost is the per-core value times the core count — a
 * per-core value that grows linearly with core count (Duplicate-Tag,
 * Tagless energy; full-vector area) means quadratic aggregate growth.
 */

#ifndef CDIR_MODEL_DIRECTORY_MODEL_HH
#define CDIR_MODEL_DIRECTORY_MODEL_HH

#include <string>

#include "model/sram.hh"

namespace cdir {

/** Organizations plotted in Figs. 4 and 13. */
enum class OrgModel
{
    DuplicateTag,  //!< §3.1: mirrored tags, C x assoc wide lookups
    Tagless,       //!< [43]: Bloom-filter grid, C-wide column reads
    SparseFull,    //!< §3.2: set-assoc, full bit vector, over-provisioned
    InCache,       //!< §3.2: vectors on every shared-L2 tag
    SparseCoarse,  //!< §3.3: limited pointers + coarse fallback [17,24]
    SparseHier,    //!< §3.3: two-level vectors [44,45]
    CuckooFull,    //!< §4 organization, full vector entries
    CuckooCoarse,  //!< §4 organization, coarse entries (Fig. 13)
    CuckooHier,    //!< §4 organization, hierarchical entries (Fig. 13)
};

/** Geometry the model needs (defaults: Table 1 Shared-L2 at 16 cores). */
struct DirSystemParams
{
    std::size_t numCores = 16;
    unsigned cachesPerCore = 2;      //!< I+D L1s (Shared), 1 (Private)
    std::size_t framesPerCache = 1024; //!< 64KB L1 = 1024 blocks
    unsigned cacheAssoc = 2;

    double sparseProvisioning = 8.0; //!< Sparse* capacity factor
    unsigned sparseWays = 8;
    double cuckooProvisioning = 1.0; //!< 1x Shared / 1.5x Private (§5.2)
    unsigned cuckooWays = 4;
    /** Measured average insertion attempts (extra displacement writes). */
    double cuckooAvgAttempts = 1.3;

    /** Bits per Bloom-filter row; 0 = auto (8 x cacheAssoc, sized to
     *  the mirrored set as in [43]). */
    std::size_t taglessBucketBits = 0;
    unsigned taglessGrids = 2;
    std::size_t l2FramesPerCore = 16384; //!< 1MB shared L2 per tile

    unsigned physAddrBits = 48;
    unsigned blockOffsetBits = 6;

    SramTech tech{};

    /** Total private caches. */
    std::size_t numCaches() const { return numCores * cachesPerCore; }
    /** Tracked frames per slice (one slice per core). */
    double
    framesPerSlice() const
    {
        return double(numCaches()) * double(framesPerCache) /
               double(numCores);
    }
    /** Block-address bits. */
    unsigned blockAddrBits() const
    {
        return physAddrBits - blockOffsetBits;
    }
};

/** Directory operation mix measured by the paper (footnote 1). */
struct EventMix
{
    double insert = 0.235;
    double addSharer = 0.269;
    double removeSharer = 0.249;
    double removeTag = 0.235;
    double invalidateAll = 0.012;
};

/** Per-core cost of one organization. */
struct DirCost
{
    double energyPerOp = 0.0;     //!< bit-read units per directory op
    double energyRelative = 0.0;  //!< / l2TagLookupEnergy (Fig. axis)
    double areaBitsPerCore = 0.0; //!< storage bits per slice
    double areaRelative = 0.0;    //!< / l2DataAreaBits (Fig. axis)
};

/** Evaluate the model (see file comment). */
DirCost directoryCost(OrgModel org, const DirSystemParams &params,
                      const EventMix &mix = {});

/**
 * Sharer-field width (bits per entry) the model charges @p org at
 * @p num_caches tracked caches — the analytical counterpart of the
 * simulator's sharerStorageBits() (sharers/sharer_rep.hh), exported so
 * the Fig. 4 harness can cross-check the two formulas at every grid
 * point. 0 for organizations without a per-entry vector field.
 */
double modelSharerFieldBits(OrgModel org, std::size_t num_caches);

/** Display name used in the figure legends. */
std::string orgModelName(OrgModel org);

} // namespace cdir

#endif // CDIR_MODEL_DIRECTORY_MODEL_HH
