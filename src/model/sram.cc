#include "model/sram.hh"

#include <cmath>

namespace cdir {

double
sramAccessEnergy(std::size_t rows, double bits_read, double bits_written,
                 const SramTech &tech)
{
    const double decode =
        rows > 1 ? tech.decodePerRowBit *
                       std::log2(static_cast<double>(rows))
                 : 0.0;
    return bits_read + tech.writeFactor * bits_written + decode;
}

double
sramAreaBits(double total_bits)
{
    return total_bits;
}

double
l2TagLookupEnergy(const SramTech &tech)
{
    // 1MB / 64B blocks / 16 ways = 1024 sets. Tag = 48 - 6 (block
    // offset) - 10 (index) = 32 bits; +2 state bits per way. A lookup
    // senses all 16 ways.
    const std::size_t rows = 1024;
    const double bits_per_way = 32 + 2;
    return sramAccessEnergy(rows, 16 * bits_per_way, 0.0, tech);
}

double
l2DataAreaBits()
{
    return 8.0 * 1024.0 * 1024.0 * 8.0 / 8.0; // 1MB in bits
}

} // namespace cdir
