#include "sim/interval_export.hh"

#include <stdexcept>

namespace cdir {

std::vector<PhaseAggregate>
aggregateByPhase(const Scenario &scenario, std::uint64_t first_access,
                 const IntervalStats &intervals)
{
    std::vector<PhaseAggregate> out;
    if (intervals.intervalAccesses == 0)
        return out;
    for (std::size_t w = 0; w < intervals.windows.size(); ++w) {
        const std::uint64_t start =
            first_access + w * intervals.intervalAccesses;
        const std::string &label = scenario.phaseAt(start).label;
        // Consecutive same-phase windows fold into one occurrence; a
        // new label (or the loop re-entering a phase) opens the next.
        if (out.empty() || out.back().label != label) {
            PhaseAggregate agg;
            agg.label = label;
            agg.firstAccess = start;
            out.push_back(std::move(agg));
        }
        out.back().total.merge(intervals.windows[w]);
        ++out.back().windows;
    }
    return out;
}

namespace {

/** Same minimal escaping as the Reporter's JSON emitter. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
emitWindow(std::FILE *out, std::uint64_t start, const IntervalRecord &rec)
{
    std::fprintf(out,
                 "{\"access\": %llu, \"accesses\": %llu, "
                 "\"cacheMisses\": %llu, \"insertions\": %llu, "
                 "\"forcedEvictions\": %llu, "
                 "\"sharingInvalidations\": %llu, "
                 "\"forcedInvalidations\": %llu, "
                 "\"occupiedEntries\": %llu, \"capacityEntries\": %llu, "
                 "\"occupancy\": %.17g, \"invalidationRate\": %.17g, "
                 "\"avgInsertionAttempts\": %.17g",
                 static_cast<unsigned long long>(start),
                 static_cast<unsigned long long>(rec.accesses),
                 static_cast<unsigned long long>(rec.cacheMisses),
                 static_cast<unsigned long long>(rec.insertions),
                 static_cast<unsigned long long>(rec.forcedEvictions),
                 static_cast<unsigned long long>(rec.sharingInvalidations),
                 static_cast<unsigned long long>(rec.forcedInvalidations),
                 static_cast<unsigned long long>(rec.occupiedEntries),
                 static_cast<unsigned long long>(rec.capacityEntries),
                 rec.occupancy(), rec.invalidationRate(),
                 rec.avgInsertionAttempts());
    if (!rec.latency.empty())
        std::fprintf(
            out,
            ", \"latencySamples\": %llu, \"latencyMean\": %.17g, "
            "\"latencyP50\": %llu, \"latencyP99\": %llu, "
            "\"latencyP999\": %llu",
            static_cast<unsigned long long>(rec.latency.count()),
            rec.latency.mean(),
            static_cast<unsigned long long>(rec.latency.percentile(500)),
            static_cast<unsigned long long>(rec.latency.percentile(990)),
            static_cast<unsigned long long>(rec.latency.percentile(999)));
    std::fprintf(out, "}");
}

} // namespace

void
writeIntervalSeriesJson(std::FILE *out,
                        std::span<const IntervalSeriesGroup> groups)
{
    std::fprintf(out, "[");
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const IntervalSeriesGroup &group = groups[g];
        std::uint64_t interval = 0;
        for (const LabelledIntervalSeries &s : group.series)
            if (s.stats != nullptr && s.stats->intervalAccesses != 0)
                interval = s.stats->intervalAccesses;
        std::fprintf(out,
                     "%s\n{\"name\": \"%s\", \"firstAccess\": %llu, "
                     "\"intervalAccesses\": %llu, \"series\": [",
                     g == 0 ? "" : ",", jsonEscape(group.name).c_str(),
                     static_cast<unsigned long long>(group.firstAccess),
                     static_cast<unsigned long long>(interval));
        for (std::size_t s = 0; s < group.series.size(); ++s) {
            const LabelledIntervalSeries &series = group.series[s];
            std::fprintf(out, "%s\n {\"label\": \"%s\", \"windows\": [",
                         s == 0 ? "" : ",",
                         jsonEscape(series.label).c_str());
            const IntervalStats empty;
            const IntervalStats &stats =
                series.stats != nullptr ? *series.stats : empty;
            for (std::size_t w = 0; w < stats.windows.size(); ++w) {
                std::fprintf(out, "%s\n  ", w == 0 ? "" : ",");
                emitWindow(out,
                           group.firstAccess +
                               w * stats.intervalAccesses,
                           stats.windows[w]);
            }
            std::fprintf(out, "]}");
        }
        std::fprintf(out, "]}");
    }
    std::fprintf(out, "\n]\n");
}

void
writeIntervalSeriesJsonFile(const std::string &path,
                            std::span<const IntervalSeriesGroup> groups)
{
    if (path == "-") {
        writeIntervalSeriesJson(stdout, groups);
        return;
    }
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        throw std::runtime_error("cannot open " + path + " for writing");
    writeIntervalSeriesJson(out, groups);
    std::fclose(out);
}

} // namespace cdir
