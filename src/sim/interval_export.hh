/**
 * @file
 * Interval-series post-processing: per-phase aggregation and JSON
 * time-series export.
 *
 * IntervalStats (sim/interval_stats.hh) is a flat vector of
 * fixed-length windows; the consumers added around it want two other
 * shapes. The scenario harnesses want the series *folded along the
 * schedule* — one aggregate row per phase occurrence, so "what did the
 * storm phase cost in total?" is one number instead of thirty windows —
 * and plotting pipelines want the raw series as structured JSON instead
 * of scraping the Reporter's CSV. Both are pure functions of collected
 * data: nothing here touches the measure path.
 *
 * Aggregation keeps the repository's exactness discipline: a phase
 * aggregate is IntervalRecord::merge over the phase's windows (integer
 * sums, latency histograms folded bucket-wise), so per-phase numbers
 * are bit-identical at any `--jobs` x `--shards` setting, like the
 * windows they fold.
 */

#ifndef CDIR_SIM_INTERVAL_EXPORT_HH
#define CDIR_SIM_INTERVAL_EXPORT_HH

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sim/interval_stats.hh"
#include "workload/scenario.hh"

namespace cdir {

/** One phase occurrence's worth of interval windows, folded. */
struct PhaseAggregate
{
    std::string label;          //!< phase label from the schedule
    std::uint64_t firstAccess = 0; //!< start of its first window
    std::uint64_t windows = 0;  //!< windows folded into @ref total
    /** Exact integer sums over the occurrence's windows (occupancy()
     *  becomes the mean of the window-boundary point samples). */
    IntervalRecord total;
};

/**
 * Fold @p intervals along @p scenario's schedule: each window is
 * assigned to the phase active at its *start* access (windows are
 * usually much shorter than phases; a window straddling a boundary
 * counts toward the phase it started in), and consecutive windows of
 * the same phase form one aggregate — so a looping scenario yields one
 * entry per phase *occurrence* per pass, in stream order, not one per
 * label. @p first_access is the absolute access index of the first
 * window (the measure run's start, e.g. the warmup length).
 */
std::vector<PhaseAggregate>
aggregateByPhase(const Scenario &scenario, std::uint64_t first_access,
                 const IntervalStats &intervals);

/** One labelled interval series (e.g. an organization's run). */
struct LabelledIntervalSeries
{
    std::string label;
    const IntervalStats *stats = nullptr; //!< borrowed, never null
};

/** A named group of series sharing one time axis (e.g. a scenario). */
struct IntervalSeriesGroup
{
    std::string name;
    std::uint64_t firstAccess = 0; //!< absolute start of window 0
    std::vector<LabelledIntervalSeries> series;
};

/**
 * Write @p groups as one JSON document: an array of
 * `{"name", "intervalAccesses", "series": [{"label", "windows": [...]}]}`
 * objects, each window carrying the raw integer counters plus the
 * derived occupancy / invalidation-rate / attempt metrics and — when a
 * cost model ran — the window's latency percentiles. Numbers use the
 * same `%.17g` round-trip precision as the Reporter's CSV.
 */
void writeIntervalSeriesJson(std::FILE *out,
                             std::span<const IntervalSeriesGroup> groups);

/**
 * writeIntervalSeriesJson to @p path ("-" = stdout).
 * @throws std::runtime_error if the file cannot be opened.
 */
void writeIntervalSeriesJsonFile(
    const std::string &path, std::span<const IntervalSeriesGroup> groups);

} // namespace cdir

#endif // CDIR_SIM_INTERVAL_EXPORT_HH
