#include "sim/cmp_system.hh"

#include <algorithm>
#include <cassert>

#include "common/bit_util.hh"
#include "directory/registry.hh"

namespace cdir {

CmpConfig
CmpConfig::paperConfig(CmpConfigKind kind, std::size_t cores)
{
    CmpConfig cfg;
    cfg.kind = kind;
    cfg.numCores = cores;
    cfg.numSlices = cores; // one slice per tile (Fig. 2)
    if (kind == CmpConfigKind::SharedL2) {
        cfg.privateCache = CacheConfig{512, 2}; // 64KB 2-way L1 (Table 1)
    } else {
        cfg.privateCache = CacheConfig{1024, 16}; // 1MB 16-way L2
    }
    cfg.directory.numCaches = cfg.numCaches();
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    return cfg;
}

CmpSystem::CmpSystem(const CmpConfig &config) : cfg(config)
{
    assert(isPowerOfTwo(cfg.numSlices));
    assert(cfg.batchWindow >= 1);
    sliceMask = cfg.numSlices - 1;
    sliceShift = floorLog2(cfg.numSlices);

    const std::size_t n_caches = cfg.numCaches();
    caches.reserve(n_caches);
    for (std::size_t i = 0; i < n_caches; ++i)
        caches.push_back(std::make_unique<SetAssocCache>(cfg.privateCache));

    DirectoryParams dir = cfg.directory;
    dir.numCaches = n_caches;
    dir.trackedCacheAssoc = cfg.privateCache.assoc;
    const std::string organization = dir.resolvedOrganization();
    if (DirectoryRegistry::instance()
            .traits(organization)
            .mirrorsTrackedCaches) {
        // These organizations mirror the tracked caches' sets; a slice
        // covers cacheSets / numSlices of them (Fig. 3).
        assert(cfg.privateCache.numSets >= cfg.numSlices);
        dir.sets = cfg.privateCache.numSets / cfg.numSlices;
    }
    slices.reserve(cfg.numSlices);
    queues.resize(cfg.numSlices);
    dirtySlices.reserve(cfg.numSlices);
    contexts.reserve(cfg.numSlices);
    for (std::size_t s = 0; s < cfg.numSlices; ++s) {
        dir.hashSeed = cfg.directory.hashSeed + s;
        slices.push_back(makeDirectory(dir));
        contexts.emplace_back(n_caches);
        // A window stages at most batchWindow requests and removals per
        // slice; reserving that bound keeps the steady-state loop free
        // of heap traffic.
        contexts.back().reserve(cfg.batchWindow);
        queues[s].removals.reserve(cfg.batchWindow);
        queues[s].requests.reserve(cfg.batchWindow);
    }
}

CacheId
CmpSystem::cacheIdFor(CoreId core, bool instruction) const
{
    if (cfg.kind == CmpConfigKind::SharedL2) {
        // Even ids: I-caches; odd ids: D-caches.
        return static_cast<CacheId>(core * 2 + (instruction ? 0 : 1));
    }
    return core;
}

void
CmpSystem::stage(const MemAccess &mem)
{
    assert(mem.core < cfg.numCores);
    const CacheId cache_id = cacheIdFor(mem.core, mem.instruction);
    SetAssocCache &priv = *caches[cache_id];
    const std::size_t home = sliceOf(mem.addr);
    const Tag tag = tagOf(mem.addr);

    ++counters.accesses;
    const CacheAccessResult res = priv.access(mem.addr, mem.write);

    if (res.hit) {
        ++counters.cacheHits;
        if (res.writeHitClean) {
            // MSI upgrade: the block may be shared elsewhere; the home
            // directory invalidates the other copies.
            ++counters.writeUpgrades;
            markDirty(home);
            queues[home].requests.push_back(
                DirRequest{tag, cache_id, true});
        }
        return;
    }

    ++counters.cacheMisses;

    // The cache's eviction reaches the directory before this miss's
    // request (it is what keeps Duplicate-Tag slices exactly mirroring
    // the caches); beforeRequest records its position in the slice's
    // replay order.
    if (res.victim) {
        ++counters.cacheEvictions;
        const BlockAddr victim = *res.victim;
        const std::size_t victim_home = sliceOf(victim);
        markDirty(victim_home);
        SliceQueue &victim_queue = queues[victim_home];
        victim_queue.removals.push_back(StagedRemoval{
            static_cast<std::uint32_t>(victim_queue.requests.size()),
            tagOf(victim), cache_id});
    }

    markDirty(home);
    queues[home].requests.push_back(DirRequest{tag, cache_id, mem.write});
}

void
CmpSystem::markDirty(std::size_t slice)
{
    if (!queues[slice].dirty) {
        queues[slice].dirty = true;
        dirtySlices.push_back(static_cast<std::uint32_t>(slice));
    }
}

void
CmpSystem::flush()
{
    for (const std::uint32_t s : dirtySlices) {
        SliceQueue &queue = queues[s];
        queue.dirty = false;
        // Replay the slice's operations in exact staging order: each
        // removal splits the requests into contiguous runs, and every
        // run between two removals goes through accessBatch at once.
        std::size_t next_request = 0;
        for (const StagedRemoval &removal : queue.removals) {
            if (removal.beforeRequest > next_request) {
                runRequestSpan(
                    s, std::span<const DirRequest>(
                           queue.requests.data() + next_request,
                           removal.beforeRequest - next_request));
                next_request = removal.beforeRequest;
            }
            slices[s]->removeSharer(removal.tag, removal.cache);
        }
        if (next_request < queue.requests.size()) {
            runRequestSpan(s, std::span<const DirRequest>(
                                  queue.requests.data() + next_request,
                                  queue.requests.size() - next_request));
        }
        queue.removals.clear();
        queue.requests.clear();
    }
    dirtySlices.clear();
}

void
CmpSystem::runRequestSpan(std::size_t slice,
                          std::span<const DirRequest> requests)
{
    if (requests.empty())
        return;
    DirAccessContext &ctx = contexts[slice];
    ctx.reset();
    slices[slice]->accessBatch(requests, ctx);
    applyDirectoryOutcomes(slice, requests, ctx);
}

void
CmpSystem::applyDirectoryOutcomes(std::size_t slice,
                                  std::span<const DirRequest> requests,
                                  const DirAccessContext &ctx)
{
    assert(ctx.size() == requests.size() &&
           "every request must yield exactly one outcome");
    for (std::size_t i = 0; i < ctx.size(); ++i) {
        const DirAccessOutcome &out = ctx.outcome(i);
        const DirRequest &req = requests[i];

        // Writes invalidate the other sharers' cached copies. The
        // directory already updated its own sharer state; caches are
        // invalidated silently (no removeSharer echo).
        if (out.hadSharerInvalidations) {
            const BlockAddr addr = addrOf(req.tag, slice);
            const DynamicBitset &targets = ctx.sharerInvalidations(out);
            for (std::size_t c = targets.findFirst(); c < targets.size();
                 c = targets.findNext(c)) {
                if (c == req.cache)
                    continue;
                if (caches[c]->invalidate(addr))
                    ++counters.sharingInvalidations;
            }
        }

        // Forced evictions (set conflicts / Cuckoo give-up): the evicted
        // entries' blocks must leave the private caches to keep the
        // directory precise (§3.2).
        for (std::size_t e = 0; e < out.evictionCount; ++e) {
            const EvictedEntry &evicted = ctx.forcedEviction(out, e);
            const BlockAddr block = addrOf(evicted.tag, slice);
            for (std::size_t c = evicted.targets.findFirst();
                 c < evicted.targets.size();
                 c = evicted.targets.findNext(c)) {
                if (caches[c]->invalidate(block))
                    ++counters.forcedInvalidations;
            }
        }
    }
}

void
CmpSystem::access(const MemAccess &mem)
{
    stage(mem);
    flush();
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count)
{
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        stage(workload.next());
        if (++staged == window) {
            flush();
            staged = 0;
        }
    }
    flush();
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count,
               std::uint64_t sample_every)
{
    assert(sample_every > 0);
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        stage(workload.next());
        ++staged;
        const bool sample_due = (i + 1) % sample_every == 0;
        if (staged == window || sample_due) {
            flush();
            staged = 0;
        }
        if (sample_due)
            sampleOccupancy();
    }
    flush();
}

std::uint64_t
CmpSystem::run(AccessSource &source, std::uint64_t count,
               std::uint64_t sample_every)
{
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    std::uint64_t executed = 0;
    while (executed < count && !source.exhausted()) {
        stage(source.next());
        ++executed;
        ++staged;
        const bool sample_due =
            sample_every != 0 && executed % sample_every == 0;
        if (staged == window || sample_due) {
            flush();
            staged = 0;
        }
        if (sample_due)
            sampleOccupancy();
    }
    flush();
    return executed;
}

void
CmpSystem::sampleOccupancy()
{
    counters.directoryOccupancy.add(currentOccupancy());
}

double
CmpSystem::currentOccupancy() const
{
    std::size_t valid = 0, total = 0;
    for (const auto &s : slices) {
        valid += s->validEntries();
        total += s->capacity();
    }
    return total == 0 ? 0.0 : double(valid) / double(total);
}

DirectoryStats
CmpSystem::aggregateDirectoryStats() const
{
    DirectoryStats agg;
    for (const auto &s : slices) {
        const DirectoryStats &d = s->stats();
        agg.lookups += d.lookups;
        agg.hits += d.hits;
        agg.insertions += d.insertions;
        agg.sharerAdds += d.sharerAdds;
        agg.writeUpgrades += d.writeUpgrades;
        agg.sharerRemovals += d.sharerRemovals;
        agg.entryFrees += d.entryFrees;
        agg.forcedEvictions += d.forcedEvictions;
        agg.forcedBlockInvalidations += d.forcedBlockInvalidations;
        agg.insertFailures += d.insertFailures;
        agg.attemptHistogram.merge(d.attemptHistogram);
        agg.insertionAttempts.addWeighted(d.insertionAttempts.mean(),
                                          d.insertionAttempts.count());
    }
    return agg;
}

Histogram
CmpSystem::aggregateAttemptHistogram() const
{
    Histogram merged(32);
    for (const auto &s : slices)
        merged.merge(s->stats().attemptHistogram);
    return merged;
}

void
CmpSystem::resetStats()
{
    counters = CmpStats{};
    for (auto &s : slices)
        s->resetStats();
}

bool
CmpSystem::directoryCoversCaches() const
{
    DynamicBitset sharers;
    for (std::size_t c = 0; c < caches.size(); ++c) {
        for (BlockAddr addr : caches[c]->residentAddresses()) {
            if (!slices[sliceOf(addr)]->probe(tagOf(addr), &sharers))
                return false;
            if (c < sharers.size() && !sharers.test(c))
                return false;
        }
    }
    return true;
}

} // namespace cdir
