#include "sim/cmp_system.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bit_util.hh"
#include "directory/registry.hh"
#include "model/cost_model.hh"
#include "sim/probe.hh"

namespace cdir {

CmpConfig
CmpConfig::paperConfig(CmpConfigKind kind, std::size_t cores)
{
    CmpConfig cfg;
    cfg.kind = kind;
    cfg.numCores = cores;
    cfg.numSlices = cores; // one slice per tile (Fig. 2)
    if (kind == CmpConfigKind::SharedL2) {
        cfg.privateCache = CacheConfig{512, 2}; // 64KB 2-way L1 (Table 1)
    } else {
        cfg.privateCache = CacheConfig{1024, 16}; // 1MB 16-way L2
    }
    cfg.directory.numCaches = cfg.numCaches();
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    return cfg;
}

CmpSystem::CmpSystem(const CmpConfig &config) : cfg(config)
{
    if (cfg.numSlices == 0 || !isPowerOfTwo(cfg.numSlices))
        throw std::invalid_argument(
            "CmpConfig: numSlices must be a power of two (got " +
            std::to_string(cfg.numSlices) + ")");
    if (cfg.batchWindow < 1)
        throw std::invalid_argument("CmpConfig: batchWindow must be >= 1");
    sliceMask = cfg.numSlices - 1;
    sliceShift = floorLog2(cfg.numSlices);

    const std::size_t n_caches = cfg.numCaches();
    caches.reserve(n_caches);
    for (std::size_t i = 0; i < n_caches; ++i)
        caches.push_back(std::make_unique<SetAssocCache>(cfg.privateCache));

    DirectoryParams dir = cfg.directory;
    dir.numCaches = n_caches;
    dir.trackedCacheAssoc = cfg.privateCache.assoc;
    const std::string organization = dir.resolvedOrganization();
    if (DirectoryRegistry::instance()
            .traits(organization)
            .mirrorsTrackedCaches) {
        // These organizations mirror the tracked caches' sets; a slice
        // covers cacheSets / numSlices of them (Fig. 3). A very large
        // system whose slice count exceeds the private cache's sets
        // would round that to *zero* sets per slice — a mis-sized
        // directory that used to slip through silently in release
        // builds (the former assert); reject it explicitly.
        if (cfg.privateCache.numSets < cfg.numSlices)
            throw std::invalid_argument(
                "CmpConfig: organization '" + organization +
                "' mirrors the tracked caches, but numSlices (" +
                std::to_string(cfg.numSlices) +
                ") exceeds the private cache's sets (" +
                std::to_string(cfg.privateCache.numSets) +
                ") — each slice would cover zero sets");
        dir.sets = cfg.privateCache.numSets / cfg.numSlices;
    }
    slices.reserve(cfg.numSlices);
    queues.resize(cfg.numSlices);
    dirtySlices.reserve(cfg.numSlices);
    contexts.reserve(cfg.numSlices);
    for (std::size_t s = 0; s < cfg.numSlices; ++s) {
        dir.hashSeed = cfg.directory.hashSeed + s;
        slices.push_back(makeDirectory(dir));
        contexts.emplace_back(n_caches);
        // A window stages at most batchWindow requests and removals per
        // slice; reserving that bound keeps the steady-state loop free
        // of heap traffic.
        contexts.back().reserve(cfg.batchWindow);
        queues[s].removals.reserve(cfg.batchWindow);
        queues[s].requests.reserve(cfg.batchWindow);
    }
    // Serial default: every slice on lane 0.
    sliceShard.assign(cfg.numSlices, 0);
    rebuildLaneLists();
}

CacheId
CmpSystem::cacheIdFor(CoreId core, bool instruction) const
{
    if (cfg.kind == CmpConfigKind::SharedL2) {
        // Even ids: I-caches; odd ids: D-caches.
        return static_cast<CacheId>(core * 2 + (instruction ? 0 : 1));
    }
    return core;
}

void
CmpSystem::stage(const MemAccess &mem)
{
    assert(mem.core < cfg.numCores);
    const CacheId cache_id = cacheIdFor(mem.core, mem.instruction);
    SetAssocCache &priv = *caches[cache_id];
    const std::size_t home = sliceOf(mem.addr);
    const Tag tag = tagOf(mem.addr);

    ++counters.accesses;
    const CacheAccessResult res = priv.access(mem.addr, mem.write);

    if (res.hit) {
        ++counters.cacheHits;
        if (res.writeHitClean) {
            // MSI upgrade: the block may be shared elsewhere; the home
            // directory invalidates the other copies.
            ++counters.writeUpgrades;
            markDirty(home);
            queues[home].requests.push_back(
                DirRequest{tag, cache_id, true});
        }
        return;
    }

    ++counters.cacheMisses;

    // The cache's eviction reaches the directory before this miss's
    // request (it is what keeps Duplicate-Tag slices exactly mirroring
    // the caches); beforeRequest records its position in the slice's
    // replay order.
    if (res.victim) {
        ++counters.cacheEvictions;
        const BlockAddr victim = *res.victim;
        const std::size_t victim_home = sliceOf(victim);
        markDirty(victim_home);
        SliceQueue &victim_queue = queues[victim_home];
        victim_queue.removals.push_back(StagedRemoval{
            static_cast<std::uint32_t>(victim_queue.requests.size()),
            tagOf(victim), cache_id});
    }

    markDirty(home);
    queues[home].requests.push_back(DirRequest{tag, cache_id, mem.write});
}

void
CmpSystem::markDirty(std::size_t slice)
{
    if (!queues[slice].dirty) {
        queues[slice].dirty = true;
        dirtySlices.push_back(static_cast<std::uint32_t>(slice));
        if (shardCount > 1)
            shardDirty[shardOf(slice)].push_back(
                static_cast<std::uint32_t>(slice));
    }
}

void
CmpSystem::setShards(unsigned shards)
{
    if (shards == 0)
        shards = 1;
    if (shards > cfg.numSlices)
        shards = static_cast<unsigned>(cfg.numSlices);
    assert(dirtySlices.empty() &&
           "setShards must not interrupt an open batch window");
    if (shards != shardCount) {
        shardGroup.reset();
        shardPool.reset();
        shardCount = shards;
        shardDirty.assign(shardCount, {});
        shardOccupancy.assign(shardCount, {0, 0});
        if (shardCount > 1) {
            for (auto &list : shardDirty)
                list.reserve(cfg.numSlices);
            // The calling thread drives shard 0, so N shards need N-1
            // workers; the pool persists across windows (TaskGroup
            // barriers join each round without re-spawning threads).
            shardPool = std::make_unique<ThreadPool>(shardCount - 1);
            shardGroup = std::make_unique<TaskGroup>(*shardPool);
        }
    }
    // Default topology-aware mapping: lane k owns the contiguous,
    // balanced slice group [floor(k*n/K), floor((k+1)*n/K)) — dense in
    // slice-allocation order, never an empty lane while K <= n. Custom
    // topologies go through setShardMapping() afterwards.
    for (std::size_t s = 0; s < cfg.numSlices; ++s)
        sliceShard[s] = static_cast<std::uint32_t>(
            (s * shardCount) / cfg.numSlices);
    rebuildLaneLists();
}

void
CmpSystem::setShardMapping(std::vector<std::uint32_t> mapping)
{
    assert(dirtySlices.empty() &&
           "setShardMapping must not interrupt an open batch window");
    if (mapping.size() != cfg.numSlices)
        throw std::invalid_argument(
            "setShardMapping: mapping names " +
            std::to_string(mapping.size()) + " slices, system has " +
            std::to_string(cfg.numSlices));
    for (const std::uint32_t lane : mapping)
        if (lane >= shardCount)
            throw std::invalid_argument(
                "setShardMapping: lane " + std::to_string(lane) +
                " out of range (shards = " + std::to_string(shardCount) +
                ")");
    sliceShard = std::move(mapping);
    rebuildLaneLists();
}

void
CmpSystem::rebuildLaneLists()
{
    laneSlices.assign(shardCount, {});
    for (std::size_t s = 0; s < sliceShard.size(); ++s)
        laneSlices[sliceShard[s]].push_back(
            static_cast<std::uint32_t>(s));
}

void
CmpSystem::flush()
{
    if (dirtySlices.empty())
        return;

    // Phase 1 — replay: slice-local directory work. Lanes own disjoint
    // slices (the sliceShard mapping; contiguous groups by default),
    // queues are fixed for the whole flush, and nothing here touches
    // the private caches, so running the lanes concurrently cannot
    // change any observable state.
    if (shardCount > 1 && dirtySlices.size() > 1) {
        for (std::size_t k = 1; k < shardCount; ++k) {
            if (shardDirty[k].empty())
                continue;
            shardGroup->run([this, k] {
                for (const std::uint32_t s : shardDirty[k])
                    replaySlice(s);
            });
        }
        for (const std::uint32_t s : shardDirty[0])
            replaySlice(s);
        shardGroup->wait(); // barrier between replay and apply
    } else {
        for (const std::uint32_t s : dirtySlices)
            replaySlice(s);
    }
    for (auto &list : shardDirty)
        list.clear();

    // Phase 2 — apply: cache invalidations and system counters, on the
    // calling thread in first-touch slice order with per-slice outcomes
    // in staging order — the exact call sequence of the serial driver.
    for (const std::uint32_t s : dirtySlices) {
        SliceQueue &queue = queues[s];
        queue.dirty = false;
        applyDirectoryOutcomes(
            s,
            std::span<const DirRequest>(queue.requests.data(),
                                        queue.requests.size()),
            contexts[s]);
        queue.removals.clear();
        queue.requests.clear();
    }
    dirtySlices.clear();
}

void
CmpSystem::replaySlice(std::size_t s)
{
    SliceQueue &queue = queues[s];
    Directory &dir = *slices[s];
    DirAccessContext &ctx = contexts[s];
    ctx.reset();
    // Replay the slice's operations in exact staging order: each
    // removal splits the requests into contiguous runs, and every run
    // between two removals goes through accessBatch at once. Outcomes
    // accumulate in the context — one per request, in request order —
    // for the apply phase.
    std::size_t next_request = 0;
    for (const StagedRemoval &removal : queue.removals) {
        if (removal.beforeRequest > next_request) {
            dir.accessBatch(std::span<const DirRequest>(
                                queue.requests.data() + next_request,
                                removal.beforeRequest - next_request),
                            ctx);
            next_request = removal.beforeRequest;
        }
        dir.removeSharer(removal.tag, removal.cache);
    }
    if (next_request < queue.requests.size()) {
        dir.accessBatch(std::span<const DirRequest>(
                            queue.requests.data() + next_request,
                            queue.requests.size() - next_request),
                        ctx);
    }
}

void
CmpSystem::applyDirectoryOutcomes(std::size_t slice,
                                  std::span<const DirRequest> requests,
                                  const DirAccessContext &ctx)
{
    assert(ctx.size() == requests.size() &&
           "every request must yield exactly one outcome");
    for (std::size_t i = 0; i < ctx.size(); ++i) {
        const DirAccessOutcome &out = ctx.outcome(i);
        const DirRequest &req = requests[i];

        // Timing: the apply phase runs serially in canonical order at
        // any shard count, so accounting here keeps latency histograms
        // bit-identical across --jobs x --shards for free.
        if (costs != nullptr)
            counters.latency.add(costs->accessLatency(req, out, ctx, slice));

        // Writes invalidate the other sharers' cached copies. The
        // directory already updated its own sharer state; caches are
        // invalidated silently (no removeSharer echo).
        if (out.hadSharerInvalidations) {
            const BlockAddr addr = addrOf(req.tag, slice);
            const DynamicBitset &targets = ctx.sharerInvalidations(out);
            targets.forEachSetBit([&](std::size_t c) {
                if (c == req.cache)
                    return;
                if (caches[c]->invalidate(addr))
                    ++counters.sharingInvalidations;
            });
        }

        // Forced evictions (set conflicts / Cuckoo give-up): the evicted
        // entries' blocks must leave the private caches to keep the
        // directory precise (§3.2).
        for (std::size_t e = 0; e < out.evictionCount; ++e) {
            const EvictedEntry &evicted = ctx.forcedEviction(out, e);
            const BlockAddr block = addrOf(evicted.tag, slice);
            evicted.targets.forEachSetBit([&](std::size_t c) {
                if (caches[c]->invalidate(block))
                    ++counters.forcedInvalidations;
            });
        }
    }
}

void
CmpSystem::access(const MemAccess &mem)
{
    stage(mem);
    flush();
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count)
{
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        stage(workload.next());
        if (++staged == window) {
            flush();
            staged = 0;
        }
    }
    flush();
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count,
               std::uint64_t sample_every)
{
    assert(sample_every > 0);
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        stage(workload.next());
        ++staged;
        const bool sample_due = (i + 1) % sample_every == 0;
        if (staged == window || sample_due) {
            flush();
            staged = 0;
        }
        if (sample_due)
            sampleOccupancy();
    }
    flush();
}

std::uint64_t
CmpSystem::run(AccessSource &source, std::uint64_t count,
               std::uint64_t sample_every)
{
    const std::size_t window = std::max<std::size_t>(cfg.batchWindow, 1);
    std::size_t staged = 0;
    std::uint64_t executed = 0;
    while (executed < count && !source.exhausted()) {
        stage(source.next());
        ++executed;
        ++staged;
        const bool sample_due =
            sample_every != 0 && executed % sample_every == 0;
        // Probe boundaries force a flush so the capture sees the state
        // after *exactly* probe->accessesSeen() accesses — the serial
        // apply has retired everything staged so far, making the
        // snapshot independent of batch windowing position and shard
        // count.
        const bool probe_due =
            feedbackProbe != nullptr && feedbackProbe->tick();
        if (staged == window || sample_due || probe_due) {
            flush();
            staged = 0;
        }
        if (sample_due)
            sampleOccupancy();
        if (probe_due)
            feedbackProbe->capture(*this);
    }
    flush();
    return executed;
}

void
CmpSystem::sampleOccupancy()
{
    // Occupancy is a pure read of per-slice entry counts — and for the
    // mirroring organizations validEntries() walks the slice's frames,
    // so at large core counts one sample is real work. Shard the
    // reduction: partial integer sums per shard, merged in shard index
    // order (commutative, so the serial value is reproduced exactly).
    if (shardCount > 1) {
        for (std::size_t k = 1; k < shardCount; ++k) {
            shardGroup->run(
                [this, k] { shardOccupancy[k] = occupancySpan(k); });
        }
        shardOccupancy[0] = occupancySpan(0);
        shardGroup->wait();
        std::size_t valid = 0, total = 0;
        for (const auto &[shard_valid, shard_total] : shardOccupancy) {
            valid += shard_valid;
            total += shard_total;
        }
        counters.directoryOccupancy.add(
            total == 0 ? 0.0 : double(valid) / double(total));
        return;
    }
    counters.directoryOccupancy.add(currentOccupancy());
}

std::pair<std::size_t, std::size_t>
CmpSystem::occupancySpan(std::size_t shard) const
{
    std::size_t valid = 0, total = 0;
    for (const std::uint32_t s : laneSlices[shard]) {
        valid += slices[s]->validEntries();
        total += slices[s]->capacity();
    }
    return {valid, total};
}

std::size_t
CmpSystem::estimatedMemoryBytes() const
{
    std::size_t total = sizeof(*this);
    for (const auto &s : slices)
        total += s->memoryBytes();
    for (const auto &c : caches)
        total += c->memoryBytes();
    return total;
}

double
CmpSystem::currentOccupancy() const
{
    std::size_t valid = 0, total = 0;
    for (const auto &s : slices) {
        valid += s->validEntries();
        total += s->capacity();
    }
    return total == 0 ? 0.0 : double(valid) / double(total);
}

DirectoryStats
CmpSystem::aggregateDirectoryStats() const
{
    DirectoryStats agg;
    for (const auto &s : slices)
        agg.merge(s->stats());
    return agg;
}

Histogram
CmpSystem::aggregateAttemptHistogram() const
{
    Histogram merged(32);
    for (const auto &s : slices)
        merged.merge(s->stats().attemptHistogram);
    return merged;
}

void
CmpSystem::setCostModel(const CostModel *model)
{
    costs = model;
    if (costs != nullptr)
        counters.latency.preallocate();
}

void
CmpSystem::resetStats()
{
    counters = CmpStats{};
    if (costs != nullptr)
        counters.latency.preallocate();
    for (auto &s : slices)
        s->resetStats();
    if (feedbackProbe != nullptr)
        feedbackProbe->onStatsReset();
}

bool
CmpSystem::directoryCoversCaches() const
{
    // The invariant per resident block: its home slice tracks the tag
    // with a sharer set that names the holding cache. An *undersized*
    // sharer vector — a slice that cannot even name cache c — is a
    // coverage failure, never a silent pass.
    DynamicBitset probe_sharers;
    const auto covers = [this](CacheId cache, BlockAddr addr,
                               DynamicBitset &sharers) {
        if (!slices[sliceOf(addr)]->probe(tagOf(addr), &sharers))
            return false;
        return cache < sharers.size() && sharers.test(cache);
    };

    if (shardCount <= 1) {
        for (std::size_t c = 0; c < caches.size(); ++c)
            for (BlockAddr addr : caches[c]->residentAddresses())
                if (!covers(static_cast<CacheId>(c), addr,
                            probe_sharers))
                    return false;
        return true;
    }

    // Shard-aware: at large core counts the probe walk dominates, so
    // enumerate every cache's resident set once, bucket the blocks by
    // owning lane (the sliceShard mapping), and fan the probing out
    // over the persistent shard lanes. Lanes probe disjoint slice state, making
    // the fan-out race-free; only the scheduler is touched, hence the
    // const_cast.
    struct ResidentBlock
    {
        CacheId cache;
        BlockAddr addr;
    };
    std::vector<std::vector<ResidentBlock>> lane_work(shardCount);
    for (std::size_t c = 0; c < caches.size(); ++c)
        for (BlockAddr addr : caches[c]->residentAddresses())
            lane_work[shardOf(sliceOf(addr))].push_back(
                ResidentBlock{static_cast<CacheId>(c), addr});

    std::vector<char> covered(shardCount, 1);
    const auto laneCovers = [this, &lane_work,
                             &covers](std::size_t lane) {
        DynamicBitset sharers;
        for (const ResidentBlock &block : lane_work[lane])
            if (!covers(block.cache, block.addr, sharers))
                return false;
        return true;
    };
    auto *self = const_cast<CmpSystem *>(this);
    for (std::size_t k = 1; k < shardCount; ++k) {
        self->shardGroup->run([&laneCovers, &covered, k] {
            covered[k] = laneCovers(k) ? 1 : 0;
        });
    }
    covered[0] = laneCovers(0) ? 1 : 0;
    self->shardGroup->wait();
    return std::all_of(covered.begin(), covered.end(),
                       [](char ok) { return ok != 0; });
}

} // namespace cdir
