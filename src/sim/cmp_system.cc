#include "sim/cmp_system.hh"

#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

CmpConfig
CmpConfig::paperConfig(CmpConfigKind kind, std::size_t cores)
{
    CmpConfig cfg;
    cfg.kind = kind;
    cfg.numCores = cores;
    cfg.numSlices = cores; // one slice per tile (Fig. 2)
    if (kind == CmpConfigKind::SharedL2) {
        cfg.privateCache = CacheConfig{512, 2}; // 64KB 2-way L1 (Table 1)
    } else {
        cfg.privateCache = CacheConfig{1024, 16}; // 1MB 16-way L2
    }
    cfg.directory.numCaches = cfg.numCaches();
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    return cfg;
}

CmpSystem::CmpSystem(const CmpConfig &config) : cfg(config)
{
    assert(isPowerOfTwo(cfg.numSlices));
    sliceMask = cfg.numSlices - 1;
    sliceShift = floorLog2(cfg.numSlices);

    const std::size_t n_caches = cfg.numCaches();
    caches.reserve(n_caches);
    for (std::size_t i = 0; i < n_caches; ++i)
        caches.push_back(std::make_unique<SetAssocCache>(cfg.privateCache));

    DirectoryParams dir = cfg.directory;
    dir.numCaches = n_caches;
    dir.trackedCacheAssoc = cfg.privateCache.assoc;
    if (dir.kind == DirectoryKind::DuplicateTag ||
        dir.kind == DirectoryKind::Tagless) {
        // These organizations mirror the tracked caches' sets; a slice
        // covers cacheSets / numSlices of them (Fig. 3).
        assert(cfg.privateCache.numSets >= cfg.numSlices);
        dir.sets = cfg.privateCache.numSets / cfg.numSlices;
    }
    slices.reserve(cfg.numSlices);
    for (std::size_t s = 0; s < cfg.numSlices; ++s) {
        dir.hashSeed = cfg.directory.hashSeed + s;
        slices.push_back(makeDirectory(dir));
    }
}

CacheId
CmpSystem::cacheIdFor(CoreId core, bool instruction) const
{
    if (cfg.kind == CmpConfigKind::SharedL2) {
        // Even ids: I-caches; odd ids: D-caches.
        return static_cast<CacheId>(core * 2 + (instruction ? 0 : 1));
    }
    return core;
}

void
CmpSystem::access(const MemAccess &mem)
{
    assert(mem.core < cfg.numCores);
    const CacheId cache_id = cacheIdFor(mem.core, mem.instruction);
    SetAssocCache &priv = *caches[cache_id];
    const std::size_t home = sliceOf(mem.addr);
    const Tag tag = tagOf(mem.addr);

    ++counters.accesses;
    const CacheAccessResult res = priv.access(mem.addr, mem.write);

    if (res.hit) {
        ++counters.cacheHits;
        if (res.writeHitClean) {
            // MSI upgrade: the block may be shared elsewhere; the home
            // directory invalidates the other copies.
            ++counters.writeUpgrades;
            DirAccessResult dres =
                slices[home]->access(tag, cache_id, true);
            handleDirectoryResult(dres, mem.addr, home, cache_id);
        }
        return;
    }

    ++counters.cacheMisses;

    // The cache's eviction reaches the directory first (it is what keeps
    // Duplicate-Tag slices exactly mirroring the caches).
    if (res.victim) {
        ++counters.cacheEvictions;
        const BlockAddr victim = *res.victim;
        slices[sliceOf(victim)]->removeSharer(tagOf(victim), cache_id);
    }

    DirAccessResult dres = slices[home]->access(tag, cache_id, mem.write);
    handleDirectoryResult(dres, mem.addr, home, cache_id);
}

void
CmpSystem::handleDirectoryResult(const DirAccessResult &result,
                                 BlockAddr addr, std::size_t slice,
                                 CacheId requester)
{
    // Writes invalidate the other sharers' cached copies. The directory
    // already updated its own sharer state; caches are invalidated
    // silently (no removeSharer echo).
    if (result.hadSharerInvalidations) {
        const DynamicBitset &targets = result.sharerInvalidations;
        for (std::size_t c = targets.findFirst(); c < targets.size();
             c = targets.findNext(c)) {
            if (c == requester)
                continue;
            if (caches[c]->invalidate(addr))
                ++counters.sharingInvalidations;
        }
    }

    // Forced evictions (set conflicts / Cuckoo give-up): the evicted
    // entries' blocks must leave the private caches to keep the
    // directory precise (§3.2).
    for (const EvictedEntry &evicted : result.forcedEvictions) {
        const BlockAddr block = addrOf(evicted.tag, slice);
        for (std::size_t c = evicted.targets.findFirst();
             c < evicted.targets.size();
             c = evicted.targets.findNext(c)) {
            if (caches[c]->invalidate(block))
                ++counters.forcedInvalidations;
        }
    }
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        access(workload.next());
}

void
CmpSystem::run(SyntheticWorkload &workload, std::uint64_t count,
               std::uint64_t sample_every)
{
    assert(sample_every > 0);
    for (std::uint64_t i = 0; i < count; ++i) {
        access(workload.next());
        if ((i + 1) % sample_every == 0)
            sampleOccupancy();
    }
}

std::uint64_t
CmpSystem::run(AccessSource &source, std::uint64_t count,
               std::uint64_t sample_every)
{
    std::uint64_t executed = 0;
    while (executed < count && !source.exhausted()) {
        access(source.next());
        ++executed;
        if (sample_every != 0 && executed % sample_every == 0)
            sampleOccupancy();
    }
    return executed;
}

void
CmpSystem::sampleOccupancy()
{
    counters.directoryOccupancy.add(currentOccupancy());
}

double
CmpSystem::currentOccupancy() const
{
    std::size_t valid = 0, total = 0;
    for (const auto &s : slices) {
        valid += s->validEntries();
        total += s->capacity();
    }
    return total == 0 ? 0.0 : double(valid) / double(total);
}

DirectoryStats
CmpSystem::aggregateDirectoryStats() const
{
    DirectoryStats agg;
    for (const auto &s : slices) {
        const DirectoryStats &d = s->stats();
        agg.lookups += d.lookups;
        agg.hits += d.hits;
        agg.insertions += d.insertions;
        agg.sharerAdds += d.sharerAdds;
        agg.writeUpgrades += d.writeUpgrades;
        agg.sharerRemovals += d.sharerRemovals;
        agg.entryFrees += d.entryFrees;
        agg.forcedEvictions += d.forcedEvictions;
        agg.forcedBlockInvalidations += d.forcedBlockInvalidations;
        agg.insertFailures += d.insertFailures;
        agg.attemptHistogram.merge(d.attemptHistogram);
        agg.insertionAttempts.addWeighted(d.insertionAttempts.mean(),
                                          d.insertionAttempts.count());
    }
    return agg;
}

Histogram
CmpSystem::aggregateAttemptHistogram() const
{
    Histogram merged(32);
    for (const auto &s : slices)
        merged.merge(s->stats().attemptHistogram);
    return merged;
}

void
CmpSystem::resetStats()
{
    counters = CmpStats{};
    for (auto &s : slices)
        s->resetStats();
}

bool
CmpSystem::directoryCoversCaches() const
{
    for (std::size_t c = 0; c < caches.size(); ++c) {
        for (BlockAddr addr : caches[c]->residentAddresses()) {
            DynamicBitset sharers;
            if (!slices[sliceOf(addr)]->probe(tagOf(addr), &sharers))
                return false;
            if (c < sharers.size() && !sharers.test(c))
                return false;
        }
    }
    return true;
}

} // namespace cdir
