/**
 * @file
 * Trace-driven CMP model: private caches + address-interleaved coherence
 * directory slices (Fig. 2).
 *
 * Two configurations from §2/§5 are supported:
 *
 *  - **Shared-L2**: each core has split I/D L1s; the directory tracks L1
 *    contents. The shared L2 itself needs no coherence (it is
 *    address-interleaved) and is not modelled — only the L1s determine
 *    directory behaviour.
 *  - **Private-L2**: each core has a private unified L2 (the L1s are
 *    included in it); the directory tracks L2 contents.
 *
 * The model is untimed: the paper's directory metrics (occupancy,
 * insertion attempts, forced invalidations) are functions of the
 * per-cache resident block sets over time, not of latencies. Coherence
 * follows an MSI-style discipline: a write to a block that is not
 * Modified consults the home directory, which invalidates the other
 * sharers; a directory-forced eviction invalidates every tracked copy.
 *
 * Address interleaving: slice = blockAddr mod numSlices; slices operate
 * on slice-local tags (blockAddr / numSlices), so a Duplicate-Tag
 * slice's low tag bits reproduce the private-cache set index (Fig. 3).
 *
 * Batched directory protocol: references are staged into per-slice
 * queues (sharer removals + DirRequests) and flushed through
 * Directory::accessBatch with one reusable DirAccessContext per slice,
 * so the steady-state loop performs zero heap allocations. With
 * CmpConfig::batchWindow == 1 (the default) every reference is flushed
 * immediately and behaviour is bit-identical to the historical serial
 * driver; larger windows treat the window's references as concurrent
 * across slices, while each slice replays its own removals and
 * accesses in exact staging order (accessBatch is driven over the
 * maximal request runs between removals, so an eviction staged after
 * its tag's insertion still retires the sharer). What a larger window
 * trades away is only the cross-reference feedback through the private
 * caches (invalidations land at run boundaries instead of between
 * references).
 *
 * Sharded execution (setShards): the physical directory is distributed —
 * every block address maps to exactly one slice, so slices never share
 * state — and the driver exploits that inside a single experiment.
 * Each flush of a batch window runs in two phases:
 *
 *  1. *Replay* (parallel): dirty slices are partitioned across shard
 *     lanes by the slice->lane mapping. The default is topology-aware:
 *     each lane owns one *contiguous* group of ~numSlices/shards slice
 *     ids, so a lane's slice state (directories, queues, contexts —
 *     allocated in slice order) stays dense in memory instead of
 *     striding shardCount-sized gaps the way the historical
 *     `slice mod shardCount` assignment did; setShardMapping() installs
 *     any custom mapping. Each lane drives its slices' staged removals
 *     and request runs through the slice-local directory and context in
 *     exact staging order. Lanes touch disjoint slice/queue/context
 *     state, so the phase is race-free by construction, and a TaskGroup
 *     barrier joins it.
 *  2. *Apply* (serial, canonical first-touch order): the recorded
 *     outcomes are applied to the private caches and system counters by
 *     the calling thread — the identical call sequence the serial
 *     driver performs, because cache invalidations never feed back into
 *     directory work within a flush (queues are fixed at flush time and
 *     directories are only read/written in phase 1).
 *
 * Per-slice statistics, cache state, and therefore every merged
 * experiment metric are bit-identical at any shard count *and any
 * slice->lane mapping* — phase 2 always applies outcomes serially in
 * the first-touch dirtySlices order, which no mapping affects; only
 * wall-clock changes. Parallelism within a window is bounded by the
 * window's dirty-slice count, so sharding pays off with batchWindow >>
 * 1 (cells use CmpConfig::batchWindow; the determinism contract is
 * per-window, not across window sizes). Shard dispatch allocates O(ns)
 * task handles per window; the zero-allocation guarantee continues to
 * hold for the serial (shards <= 1) driver and for all per-slice
 * simulation state.
 */

#ifndef CDIR_SIM_CMP_SYSTEM_HH
#define CDIR_SIM_CMP_SYSTEM_HH

#include <memory>
#include <utility>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "directory/directory.hh"
#include "model/latency_histogram.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace cdir {

class CostModel;
class SystemProbe;

/** Which §2 cache organization is simulated. */
enum class CmpConfigKind
{
    SharedL2,  //!< directory tracks split I/D private L1s
    PrivateL2, //!< directory tracks private unified L2s
};

/** Full system configuration (defaults follow Table 1, 16 cores). */
struct CmpConfig
{
    CmpConfigKind kind = CmpConfigKind::SharedL2;
    std::size_t numCores = 16;
    std::size_t numSlices = 16;

    /** Geometry of each tracked private cache. */
    CacheConfig privateCache{512, 2}; //!< 64KB, 2-way, 64B blocks

    /** Per-slice directory organization. */
    DirectoryParams directory;

    /**
     * References staged before the per-slice directory queues are
     * flushed. 1 (default) reproduces the serial driver exactly; larger
     * windows batch directory accesses per slice (see file comment).
     */
    std::size_t batchWindow = 1;

    /** Caches per core: 2 (I+D) for SharedL2, 1 for PrivateL2. */
    unsigned
    cachesPerCore() const
    {
        return kind == CmpConfigKind::SharedL2 ? 2u : 1u;
    }

    /** Total private caches the directory names. */
    std::size_t numCaches() const { return numCores * cachesPerCore(); }

    /** Aggregate tracked cache frames (the 1x provisioning baseline). */
    std::size_t
    aggregateFrames() const
    {
        return numCaches() * privateCache.capacityBlocks();
    }

    /** Table 1 configuration for @p kind at @p cores cores. */
    static CmpConfig paperConfig(CmpConfigKind kind,
                                 std::size_t cores = 16);
};

/** System-level counters accumulated by CmpSystem. */
struct CmpStats
{
    std::uint64_t accesses = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t writeUpgrades = 0;        //!< write hits on clean blocks
    std::uint64_t cacheEvictions = 0;
    std::uint64_t sharingInvalidations = 0; //!< blocks killed by writes
    std::uint64_t forcedInvalidations = 0;  //!< blocks killed by conflicts
    RunningMean directoryOccupancy;         //!< sampled (Fig. 8)
    /**
     * Modelled access latencies (cycles); empty unless a CostModel is
     * attached (CmpSystem::setCostModel) — a default-constructed
     * histogram owns no storage, so the stats block stays cheap when
     * timing is off.
     */
    LatencyHistogram latency;

    /**
     * Fold @p other into this accumulator (deterministic in any fixed
     * merge order); the counterpart of DirectoryStats::merge for
     * combining per-shard or per-system counter blocks.
     */
    void
    merge(const CmpStats &other)
    {
        accesses += other.accesses;
        cacheHits += other.cacheHits;
        cacheMisses += other.cacheMisses;
        writeUpgrades += other.writeUpgrades;
        cacheEvictions += other.cacheEvictions;
        sharingInvalidations += other.sharingInvalidations;
        forcedInvalidations += other.forcedInvalidations;
        directoryOccupancy.merge(other.directoryOccupancy);
        latency.merge(other.latency);
    }
};

/** The simulated CMP (see file comment). */
class CmpSystem
{
  public:
    /**
     * @throws std::invalid_argument for a mis-sized configuration:
     * non-power-of-two slice count, zero batch window, or a
     * cache-mirroring organization (Duplicate-Tag/Tagless) whose slice
     * count exceeds the private cache's sets — the very-large-system
     * geometry that would silently round to zero-set slices.
     */
    explicit CmpSystem(const CmpConfig &config);

    /** Drive one memory reference through the system. */
    void access(const MemAccess &access);

    /** Run @p count accesses from @p workload. */
    void run(SyntheticWorkload &workload, std::uint64_t count);

    /**
     * Run @p count accesses, sampling directory occupancy every
     * @p sample_every accesses into stats().directoryOccupancy.
     */
    void run(SyntheticWorkload &workload, std::uint64_t count,
             std::uint64_t sample_every);

    /**
     * Drive from any AccessSource (e.g. a trace reader) until @p count
     * accesses have run or the source is exhausted.
     * @return accesses actually executed.
     */
    std::uint64_t run(AccessSource &source, std::uint64_t count,
                      std::uint64_t sample_every = 0);

    /**
     * Partition the slices across @p shards parallel execution lanes
     * (see file comment). 1 (the default) keeps the serial driver and
     * owns no threads; N > 1 spawns N-1 persistent workers — the
     * calling thread drives shard 0 — and is clamped to numSlices().
     * Results are bit-identical at every value; only wall-clock
     * changes. Must not be called while a batch window is open (i.e.
     * only between run()/access() calls).
     */
    void setShards(unsigned shards);

    /** Parallel execution lanes in force (1 = serial). */
    unsigned shards() const { return shardCount; }

    /**
     * Install an explicit slice->lane mapping (the topology hook).
     * setShards() installs the default contiguous-group mapping; call
     * this afterwards to override it — e.g. to co-locate slices by NUMA
     * domain or mesh quadrant. Results are bit-identical under any
     * mapping (see file comment); only locality/wall-clock changes.
     * @param mapping one lane id per slice; every id < shards().
     * @throws std::invalid_argument on a mis-sized mapping or an
     *         out-of-range lane id.
     */
    void setShardMapping(std::vector<std::uint32_t> mapping);

    /** Lane that owns @p slice under the mapping in force. */
    std::size_t shardOfSlice(std::size_t slice) const
    {
        return sliceShard[slice];
    }

    /**
     * Estimated host bytes of the simulated state: every directory
     * slice (Directory::memoryBytes) plus every private cache. This is
     * the dominant, deterministic part of the process footprint — the
     * RAM-budgeting number ext_scalability_sim reports per cell
     * alongside the (environmental) peak RSS.
     */
    std::size_t estimatedMemoryBytes() const;

    /**
     * Attach @p model (non-owning; nullptr detaches): every directory
     * access outcome is charged model->accessLatency() cycles into
     * stats().latency during the serial apply phase — canonical order
     * at any shard count, so the histogram is bit-identical at any
     * `--jobs` x `--shards` setting. With no model attached (the
     * default) the measure path is exactly the unmodelled driver: one
     * pointer test per outcome, no histogram storage.
     */
    void setCostModel(const CostModel *model);

    /** The attached cost model (nullptr = timing off). */
    const CostModel *costModel() const { return costs; }

    /**
     * Attach @p probe (non-owning; nullptr detaches): the
     * AccessSource-driven run loop counts every access into it and, at
     * each probe boundary, flushes the open batch window and lets the
     * probe capture the system state — after the serial apply phase,
     * so the published snapshot (and every feedback decision taken
     * from it) is bit-identical at any `--jobs` x `--shards` setting.
     * resetStats() re-baselines the probe's windowed deltas. With no
     * probe attached (the default) the run loop pays one pointer test
     * per access.
     */
    void setProbe(SystemProbe *probe) { feedbackProbe = probe; }

    /** The attached probe (nullptr = feedback off). */
    SystemProbe *probe() const { return feedbackProbe; }

    /** Sample aggregate directory occupancy once. */
    void sampleOccupancy();

    /** Aggregate occupancy over all slices right now. */
    double currentOccupancy() const;

    /** Sum of per-slice directory statistics. */
    DirectoryStats aggregateDirectoryStats() const;

    /** Merged attempt histogram across slices (Fig. 11). */
    Histogram aggregateAttemptHistogram() const;

    /** System counters. */
    const CmpStats &stats() const { return counters; }

    /** Reset system and per-slice statistics (state is kept). */
    void resetStats();

    /** Access to a slice (tests / diagnostics). */
    Directory &slice(std::size_t i) { return *slices[i]; }
    const Directory &slice(std::size_t i) const { return *slices[i]; }
    std::size_t numSlices() const { return slices.size(); }

    /** Access to a private cache (tests / diagnostics). */
    SetAssocCache &cache(std::size_t i) { return *caches[i]; }
    std::size_t numCaches() const { return caches.size(); }

    /** The configuration in force. */
    const CmpConfig &config() const { return cfg; }

    /**
     * Invariant check (tests): every resident private-cache block is
     * tracked by its home slice, with a sharer set large enough to name
     * the holding cache (an undersized sharer vector fails the check).
     * Shard-aware: with setShards(N > 1) the walk fans out across the
     * persistent shard lanes — each lane probes only the slices it owns
     * — so very large systems validate in parallel; the result is
     * identical at any shard count.
     * @return true iff the directory covers all cached blocks.
     */
    bool directoryCoversCaches() const;

  private:
    /** A sharer removal staged between two request runs. */
    struct StagedRemoval
    {
        /** Requests staged before this removal (its replay position). */
        std::uint32_t beforeRequest;
        Tag tag;
        CacheId cache;
    };

    /** Per-slice staged directory work for the current batch window. */
    struct SliceQueue
    {
        /** Removals, interleaved with the requests by beforeRequest. */
        std::vector<StagedRemoval> removals;
        /** Miss / upgrade requests driven through accessBatch. */
        std::vector<DirRequest> requests;
        /** Whether this slice is on the dirty list. */
        bool dirty = false;
    };

    CacheId cacheIdFor(CoreId core, bool instruction) const;
    std::size_t sliceOf(BlockAddr addr) const
    {
        return static_cast<std::size_t>(addr) & sliceMask;
    }
    Tag tagOf(BlockAddr addr) const { return addr >> sliceShift; }
    BlockAddr addrOf(Tag tag, std::size_t slice) const
    {
        return (tag << sliceShift) | slice;
    }

    /** Phase 1: private-cache access; stage directory work per slice. */
    void stage(const MemAccess &access);

    /** Put @p slice on the dirty list if it is not there yet. */
    void markDirty(std::size_t slice);

    /** Phases 2+3: drain every slice queue and apply the outcomes. */
    void flush();

    /**
     * Replay one dirty slice's staged removals and request runs through
     * its directory, accumulating every outcome into the slice context
     * (application deferred to applySliceOutcomes). Slice-local: safe to
     * run concurrently for distinct slices.
     */
    void replaySlice(std::size_t slice);

    /** Apply a replayed slice's batch outcomes to the private caches. */
    void applyDirectoryOutcomes(std::size_t slice,
                                std::span<const DirRequest> requests,
                                const DirAccessContext &ctx);

    /** Shard lane owning @p slice under the mapping in force. */
    std::size_t shardOf(std::size_t slice) const
    {
        return sliceShard[slice];
    }

    /** Rebuild the per-lane slice lists from sliceShard. */
    void rebuildLaneLists();

    /** (validEntries, capacity) summed over shard @p shard's slices. */
    std::pair<std::size_t, std::size_t>
    occupancySpan(std::size_t shard) const;

    CmpConfig cfg;
    std::size_t sliceMask;
    unsigned sliceShift;
    std::vector<std::unique_ptr<SetAssocCache>> caches;
    std::vector<std::unique_ptr<Directory>> slices;
    std::vector<SliceQueue> queues;
    /** Slices with staged work, in first-touch order. */
    std::vector<std::uint32_t> dirtySlices;
    std::vector<DirAccessContext> contexts; //!< one per slice, reused
    CmpStats counters;
    /** Attached timing model (non-owning; nullptr = timing off). */
    const CostModel *costs = nullptr;
    /** Attached feedback probe (non-owning; nullptr = feedback off). */
    SystemProbe *feedbackProbe = nullptr;

    // --- shard scheduler (see file comment; serial when shardCount <= 1) ---
    unsigned shardCount = 1;
    /** Lane id per slice (default: contiguous groups; see setShards). */
    std::vector<std::uint32_t> sliceShard;
    /** Slice ids owned by each lane (the mapping, inverted). */
    std::vector<std::vector<std::uint32_t>> laneSlices;
    /** Per-shard dirty-slice lists (subsequences of dirtySlices). */
    std::vector<std::vector<std::uint32_t>> shardDirty;
    /** Per-shard occupancy partial sums, merged in shard order. */
    std::vector<std::pair<std::size_t, std::size_t>> shardOccupancy;
    /** Pool of shardCount-1 workers; group declared first so the pool
     *  (destroyed first, joining its threads) can never outlive it. */
    std::unique_ptr<TaskGroup> shardGroup;
    std::unique_ptr<ThreadPool> shardPool;
};

} // namespace cdir

#endif // CDIR_SIM_CMP_SYSTEM_HH
