/**
 * @file
 * SystemProbe: the sim-side producer of the closed-loop feedback
 * channel (workload/feedback.hh).
 *
 * The probe attaches to a CmpSystem (CmpSystem::setProbe) and counts
 * every access the driver stages. When the count reaches a probe
 * boundary — an exact multiple of the configured interval — the driver
 * flushes the open batch window and calls capture(), which reads the
 * system *after* the serial apply phase: occupancy per slice and in
 * aggregate, plus windowed deltas (insertions, insertion attempts,
 * forced invalidations, and latency percentiles when a cost model is
 * attached) cut against the previous capture with the same
 * exact-subtract machinery interval telemetry uses. The snapshot is
 * published into the probe's FeedbackChannel for consumer workloads.
 *
 * Because boundaries are exact access counts and capture runs in the
 * serial section, every snapshot — and every trigger decision a
 * workload takes from it — is bit-identical at any `--jobs` x
 * `--shards` setting.
 *
 * The access counter spans run() calls, so warmup and measure share
 * one boundary grid; CmpSystem::resetStats() re-baselines the window
 * deltas (via onStatsReset) without disturbing that grid.
 */

#ifndef CDIR_SIM_PROBE_HH
#define CDIR_SIM_PROBE_HH

#include <cstdint>

#include "model/latency_histogram.hh"
#include "workload/feedback.hh"

namespace cdir {

class CmpSystem;

/** Access-count-aligned metric probe (see file comment). */
class SystemProbe
{
  public:
    /** @throws std::invalid_argument when @p interval_accesses is 0. */
    explicit SystemProbe(std::uint64_t interval_accesses);

    /** Accesses between captures. */
    std::uint64_t intervalAccesses() const { return interval; }

    /** The channel consumers attach to. */
    const FeedbackChannel &channel() const { return feed; }

    /**
     * Count one staged access; @return true when the count reached a
     * probe boundary (the driver must flush, then call capture()).
     */
    bool
    tick()
    {
        ++accessCount;
        return accessCount % interval == 0;
    }

    /** Accesses counted so far (spans run() calls). */
    std::uint64_t accessesSeen() const { return accessCount; }

    /** Captures published so far. */
    std::uint64_t captures() const { return sequence; }

    /** Snapshot @p system and publish (call with no open window). */
    void capture(const CmpSystem &system);

    /**
     * Re-baseline the window deltas after the system's counters were
     * zeroed (CmpSystem::resetStats calls this); the access counter
     * and capture sequence keep running.
     */
    void onStatsReset();

  private:
    std::uint64_t interval;
    std::uint64_t accessCount = 0;
    std::uint64_t sequence = 0;
    FeedbackChannel feed;

    // Previous-capture cumulative values the window deltas subtract.
    std::uint64_t prevAccessIndex = 0;
    std::uint64_t prevInsertions = 0;
    double prevAttemptSum = 0.0;
    std::uint64_t prevAttemptCount = 0;
    std::uint64_t prevForcedInvalidations = 0;
    LatencyHistogram prevLatency;
};

} // namespace cdir

#endif // CDIR_SIM_PROBE_HH
