/**
 * @file
 * Parallel experiment sweep engine.
 *
 * The paper's evaluation is a grid — Table 2 workloads x directory
 * organizations x provisioning points — and every figure harness used to
 * hand-roll its own serial loops over it. This subsystem makes the grid
 * declarative and thread-parallel:
 *
 *  - `SweepSpec`: a cartesian grid of labelled axes — `CmpConfig`
 *    (system + directory organization), `WorkloadParams`, and
 *    `ExperimentOptions` (run lengths). An omitted options axis means
 *    "one default point".
 *  - `SweepRunner`: runs every cell's `runExperiment` on a fixed
 *    thread pool (`common/thread_pool.hh`). Results land in cell order
 *    regardless of scheduling, and every cell constructs its own
 *    `CmpSystem` and `SyntheticWorkload` RNG, so a sweep is
 *    deterministic at any `--jobs` value. The generic `map()` escape
 *    hatch runs arbitrary per-cell computations (the analytical-model
 *    and cuckoo-table harnesses) on the same pool.
 *  - `ReportTable` + `Reporter`: one table abstraction emitted as an
 *    aligned text table, CSV, or JSON, replacing per-harness printf
 *    scattering.
 *  - `parseHarnessOptions`: the `--jobs= / --format= / --filter=`
 *    (plus `--scale= / --warmup= / --measure=`) CLI shared by every
 *    figure harness and example.
 *
 * Thread-safety contract (audited): `runExperiment` touches no global
 * mutable state — `DirectoryRegistry` is only written during static
 * initialization and its reads are lock-free, hash families and Zipf
 * samplers are per-instance, and the only process-wide tables
 * (`allPaperWorkloads`) are immutable after their thread-safe magic
 * static initialization. Concurrent cells therefore share nothing.
 */

#ifndef CDIR_SIM_SWEEP_HH
#define CDIR_SIM_SWEEP_HH

#include <cstdio>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"

namespace cdir {

// --- grid declaration --------------------------------------------------------

/** One labelled point on the configuration axis. */
struct ConfigAxisPoint
{
    std::string label;
    CmpConfig config;
};

/** One labelled point on the workload axis. */
struct WorkloadAxisPoint
{
    std::string label;
    WorkloadParams workload;
};

/** One labelled point on the experiment-length axis. */
struct OptionsAxisPoint
{
    std::string label;
    ExperimentOptions options;
};

/** Declarative cartesian experiment grid (see file comment). */
class SweepSpec
{
  public:
    /** Append a configuration axis point. @return *this for chaining. */
    SweepSpec &config(std::string label, CmpConfig cfg);

    /** Append a workload axis point. @return *this for chaining. */
    SweepSpec &workload(std::string label, WorkloadParams params);

    /** Append an options axis point. @return *this for chaining. */
    SweepSpec &options(std::string label, ExperimentOptions opts);

    const std::vector<ConfigAxisPoint> &configs() const { return cfgAxis; }
    const std::vector<WorkloadAxisPoint> &workloads() const
    {
        return wlAxis;
    }
    /** Options axis; empty means one default ExperimentOptions point. */
    const std::vector<OptionsAxisPoint> &optionsAxis() const
    {
        return optAxis;
    }

    /** Cells in the full grid (options axis counted as >= 1). */
    std::size_t
    cellCount() const
    {
        return cfgAxis.size() * wlAxis.size() * optionsPoints();
    }

    /** Points on the options axis, counting the implicit default. */
    std::size_t
    optionsPoints() const
    {
        return optAxis.empty() ? 1 : optAxis.size();
    }

  private:
    std::vector<ConfigAxisPoint> cfgAxis;
    std::vector<WorkloadAxisPoint> wlAxis;
    std::vector<OptionsAxisPoint> optAxis;
};

/** Axis coordinates + labels + metrics of one completed grid cell. */
struct SweepRecord
{
    std::size_t configIndex = 0;
    std::size_t workloadIndex = 0;
    std::size_t optionsIndex = 0;
    std::string configLabel;
    std::string workloadLabel;
    std::string optionsLabel;
    ExperimentResult result;
};

// --- running -----------------------------------------------------------------

/** Worker-count / cell-filter knobs for a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = one per hardware thread, 1 = serial. */
    unsigned jobs = 1;
    /**
     * Comma-separated substrings; a cell runs iff its
     * "config/workload/options" label contains at least one of them.
     * Empty = run everything.
     */
    std::string filter;
};

/** Runs SweepSpec grids (and generic grids) on a thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Run every (filter-surviving) cell of @p spec through
     * `runExperiment` on the pool. A cell whose experiment throws
     * (e.g. a trace cell replaying a damaged file or one with core
     * ids beyond the grid's CMP) is reported on stderr and dropped
     * from the results like a filtered-out cell.
     * @return records in cell order — options-major within workload
     * within config — independent of scheduling.
     */
    std::vector<SweepRecord> run(const SweepSpec &spec) const;

    /**
     * Run several sweep specs as one flattened cell pool, so a
     * multi-configuration harness (fig08/fig10/fig12's Shared-L2 +
     * Private-L2 grids) parallelizes across *both* grids instead of
     * draining them one after the other. Results and stderr diagnostics
     * are grouped per spec in input order, each inner vector exactly as
     * run(spec) would have produced it.
     */
    std::vector<std::vector<SweepRecord>>
    runMany(std::span<const SweepSpec> specs) const;

    /**
     * Generic grid escape hatch: compute `fn(i)` for each cell index on
     * the pool and return the results in index order. For harness grids
     * that are not `runExperiment` cells (analytical model sweeps,
     * cuckoo-table churn); the filter does not apply.
     */
    template <typename Result, typename Fn>
    std::vector<Result>
    map(std::size_t count, Fn &&fn) const
    {
        std::vector<Result> out(count);
        parallelFor(opts.jobs, count,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** The options in force. */
    const SweepOptions &options() const { return opts; }

    /** True iff the label survives this runner's filter. */
    bool matchesFilter(const std::string &cell_label) const;

  private:
    SweepOptions opts;
};

/** "config/workload/options" label of one cell (filter target). */
std::string sweepCellLabel(const std::string &config_label,
                           const std::string &workload_label,
                           const std::string &options_label);

/**
 * Append one workload axis point per trace file behind @p path (a file,
 * or a directory swept in sorted order) — the harnesses' `--trace=`
 * axis. Labels are the files' stems.
 * @throws std::runtime_error if no trace files are found.
 */
void appendTraceWorkloads(SweepSpec &spec, const std::string &path);

/**
 * Append one workload axis point per scenario in @p specs — the
 * harnesses' `--scenario=` axis: a comma-separated list of preset
 * names and/or scenario file paths, or "all" for every preset
 * (workload/scenario.hh). Labels are preset names / file stems.
 * File scenarios are parsed eagerly so a bad path or schedule fails
 * here, not in every grid cell; a non-zero @p max_cores additionally
 * rejects a file needing more cores than the grid's CMPs provide
 * (otherwise every cell would throw and be dropped, leaving an empty
 * table that exits 0).
 * @throws std::runtime_error on an unknown preset, unreadable file,
 * invalid schedule, or over-wide scenario.
 */
void appendScenarioWorkloads(SweepSpec &spec, const std::string &specs,
                             std::size_t max_cores = 0);

// --- reporting ---------------------------------------------------------------

/** Output format shared by every harness (--format=). */
enum class ReportFormat
{
    Table, //!< aligned fixed-width text (default)
    Csv,   //!< one header row then data rows; title as a # comment
    Json,  //!< array of {title, columns, rows} objects
};

/** One table cell: display text plus the raw value for CSV/JSON. */
struct ReportCell
{
    std::string text;    //!< formatted for the aligned table
    double value = 0.0;  //!< raw value (numeric cells)
    bool numeric = false;
};

/** Text cell (left-aligned, emitted as a string). */
ReportCell cellText(std::string text);

/** Numeric cell: @p value rendered with printf @p format for the table. */
ReportCell cellNum(double value, const char *format = "%.3f");

/**
 * Percentage cell over a fraction in [0, 1]: renders like the figures'
 * log-scale axes ("0", "0.0042%", "1.234%"); raw value stays the
 * fraction.
 */
ReportCell cellPct(double fraction);

/** Placeholder for a cell whose experiment was filtered out. */
ReportCell cellMissing();

/** A titled grid of cells with one header row. */
class ReportTable
{
  public:
    ReportTable(std::string title, std::vector<std::string> columns);

    /** Append a row; must match the column count. */
    void addRow(std::vector<ReportCell> cells);

    const std::string &title() const { return heading; }
    const std::vector<std::string> &columns() const { return headers; }
    const std::vector<std::vector<ReportCell>> &rows() const
    {
        return body;
    }

  private:
    std::string heading;
    std::vector<std::string> headers;
    std::vector<std::vector<ReportCell>> body;
};

/**
 * Emits tables and free-form notes in one ReportFormat. JSON output is
 * a single valid array closed when the reporter is destroyed.
 */
class Reporter
{
  public:
    explicit Reporter(ReportFormat format, std::FILE *out = stdout);
    ~Reporter();

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    /** Emit one table. */
    void table(const ReportTable &t);

    /** Free-form commentary (text line / # comment / note object). */
    void note(const std::string &text);

    ReportFormat format() const { return fmt; }

  private:
    void jsonSeparator();

    ReportFormat fmt;
    std::FILE *stream;
    bool jsonStarted = false;
};

// --- shared harness CLI ------------------------------------------------------

/**
 * Two-level thread budget: with @p jobs sweep cells in flight and each
 * cell running @p shards intra-experiment lanes, jobs x shards threads
 * compete for @p hardware lanes. Returns the shard count to actually
 * use: @p shards clamped so the product never oversubscribes, and >= 1.
 * `jobs == 0` (all hardware threads) leaves no shard headroom;
 * `shards == 0` asks for the full remaining budget (hardware / jobs).
 */
unsigned clampedShards(unsigned jobs, unsigned shards, unsigned hardware);

/** Options every figure harness and example accepts. */
struct HarnessOptions
{
    unsigned jobs = 0;          //!< --jobs=N  (0 = hardware threads)
    /**
     * --shards=N: execution lanes *inside* each experiment cell
     * (CmpSystem slice sharding; 0 = fill the remaining thread budget).
     * parseHarnessOptions clamps it through clampedShards() so
     * jobs x shards never oversubscribes the machine. Results are
     * bit-identical at any value.
     */
    unsigned shards = 1;
    /**
     * The raw --shards= value before the jobs x shards clamp (1 when
     * the flag was absent, 0 = auto). Single-experiment binaries —
     * which run one cell, so --jobs does not apply — re-budget it with
     * `clampedShards(1, shardsRequested, hardware)` instead of using
     * the sweep-clamped @ref shards.
     */
    unsigned shardsRequested = 1;
    ReportFormat format = ReportFormat::Table; //!< --format=table|csv|json
    std::string filter;         //!< --filter=substr[,substr...]
    std::uint64_t scale = 1;    //!< --scale=N  run-length multiplier
    std::uint64_t warmupOverride = 0;  //!< --warmup=N  (0 = preset)
    std::uint64_t measureOverride = 0; //!< --measure=N (0 = preset)
    /**
     * --trace=<file|dir>: replace the synthetic workload axis with
     * recorded traces (one axis point per file; a directory is swept in
     * sorted order). Empty = synthetic presets.
     */
    std::string trace;
    /**
     * --scenario=<spec>[,...]: replace the workload axis with dynamic
     * sources — scenario preset names, scenario files, "all" for every
     * preset (workload/scenario.hh), or colon-separated fleet /
     * slo-ramp specs ("fleet:tenants=8:churn=250000",
     * "slo-ramp:target=150" — workload/fleet.hh). Empty = synthetic
     * presets. Mutually exclusive with --trace.
     */
    std::string scenario;
    /**
     * --probe-every=N: override the feedback probe interval of
     * closed-loop workloads (0 = each workload's own request; see
     * ExperimentOptions::probeEvery). No effect on open-loop cells.
     */
    std::uint64_t probeEvery = 0;
    /**
     * --cost-model=<name>[,...]: time every cell under these cost
     * models ("fixed", "mesh", or "all" — see model/cost_model.hh),
     * reporting tail-latency percentiles. Names are validated at parse
     * time. Empty (the default) runs untimed with the measure path
     * unchanged. applyOverrides() applies the first name; grid
     * harnesses expand multiple names into an options axis with
     * appendCostModelOptions().
     */
    std::vector<std::string> costModels;
    /**
     * --campaign-manifest=PATH: instead of running, serialize this
     * harness's grid as a campaign work manifest at PATH and exit 0
     * (sim/campaign.hh). Execution then belongs to campaign_tool.
     */
    std::string campaignManifest;
    /**
     * --campaign-results=PATH: skip execution and render the harness's
     * tables from a merged campaign results document, validated
     * against this exact grid. Mutually exclusive with
     * --campaign-manifest.
     */
    std::string campaignResults;

    /** SweepOptions with this jobs/filter pair. */
    SweepOptions
    sweep() const
    {
        return SweepOptions{jobs, filter};
    }

    /**
     * Apply the --warmup/--measure/--shards overrides to @p opts.
     * Sweep-grid consumers take the budget-clamped shard count; the
     * clamp is reported on stderr (once per process) here — at the
     * point the clamped value is actually consumed — so binaries that
     * re-budget from shardsRequested never emit a misleading note.
     */
    ExperimentOptions
    applyOverrides(ExperimentOptions opts) const
    {
        if (warmupOverride != 0)
            opts.warmupAccesses = warmupOverride;
        if (measureOverride != 0)
            opts.measureAccesses = measureOverride;
        if (!costModels.empty())
            opts.costModel = costModels.front();
        if (probeEvery != 0)
            opts.probeEvery = probeEvery;
        opts.shards = shards;
        if (shardsRequested > 1 && shards != shardsRequested) {
            static bool noted = false;
            if (!noted) {
                noted = true;
                std::fprintf(stderr,
                             "note: --shards=%u requested; grid cells "
                             "run %u lane(s) each so jobs x shards "
                             "fits the hardware threads (results are "
                             "identical at any shard count)\n",
                             shardsRequested, shards);
            }
        }
        return opts;
    }
};

/**
 * Parse the shared flags out of @p argv. Unknown flags and positional
 * arguments are ignored (harness-specific knobs parse them separately).
 * Exits with a usage message on a malformed known flag.
 */
HarnessOptions parseHarnessOptions(int argc, char **argv);

/**
 * Value of a "--name=value" CLI argument, or nullptr if @p arg is not
 * that flag — the matcher behind parseHarnessOptions, exported for
 * tools that parse additional flags in the same style.
 */
const char *cliFlagValue(const char *arg, const char *name);

/**
 * Stderr note that a shared flag was supplied but has no effect on this
 * harness — one helper for every inapplicable-flag warning, so a
 * harness states which flags its grid cannot honour in a single call
 * instead of duplicating per-flag boilerplate:
 *
 *     warnFlagUnused(cli, {"filter", "trace", "shards", "scenario"});
 *
 * Known names: "filter" (generic map() grids have no cell labels),
 * "trace" / "scenario" (the workload axis is not built from
 * paperSweep), "shards" (the grid never constructs a CmpSystem),
 * "cost-model" (the grid runs no timed experiment), and "probe-every"
 * (the grid drives no closed-loop workload). A flag the user
 * did not supply prints nothing, so the call is free in the common
 * case; an unknown name aborts (programming error).
 */
void warnFlagUnused(const HarnessOptions &opts,
                    std::initializer_list<const char *> flags);

/**
 * Append the options axis a grid harness derives from @p base and the
 * --cost-model= selection: one axis point per selected model (labelled
 * by model name, prefixed by @p label when non-empty) with
 * ExperimentOptions::costModel set, or the single untimed @p label /
 * @p base point when no model was selected. Cell labels therefore gain
 * a "/fixed", "/mesh" coordinate exactly when timing is on, keeping
 * untimed harness output byte-identical to before the flag existed.
 */
void appendCostModelOptions(SweepSpec &spec, const std::string &label,
                            const ExperimentOptions &base,
                            const HarnessOptions &cli);

} // namespace cdir

#endif // CDIR_SIM_SWEEP_HH
