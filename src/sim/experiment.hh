/**
 * @file
 * Experiment driver: runs one (configuration, workload) pair through the
 * CMP model with the paper's warmup-then-measure methodology (§5) and
 * returns the per-figure metrics.
 */

#ifndef CDIR_SIM_EXPERIMENT_HH
#define CDIR_SIM_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/cmp_system.hh"
#include "sim/interval_stats.hh"

namespace cdir {

/** Metrics the Fig. 8-12 harnesses consume. */
struct ExperimentResult
{
    std::string workload;
    std::string organization;
    /** Attempts per new-entry insertion (Figs. 9, 10). */
    double avgInsertionAttempts = 0.0;
    /** Forced evictions per insertion (Figs. 9, 12). */
    double forcedInvalidationRate = 0.0;
    /** Sampled aggregate directory occupancy (Fig. 8). */
    double avgOccupancy = 0.0;
    /** Insertion-attempt distribution (Fig. 11). */
    Histogram attemptHistogram{32};
    /** Aggregate directory capacity across slices, in entries. */
    std::size_t directoryCapacity = 0;
    /** Full directory counters. */
    DirectoryStats directory;
    /** Full system counters. */
    CmpStats system;
    /**
     * Per-window time series of the measure run; empty unless
     * ExperimentOptions::intervalAccesses was non-zero (the telemetry
     * is free when unused — see sim/interval_stats.hh).
     */
    IntervalStats intervals;
    /** Cost model the run was timed under ("" = untimed). */
    std::string costModel;
    /**
     * Tail-latency percentiles of the measure run's directory-access
     * latency histogram (system.latency), in cycles; 0 unless a cost
     * model was selected. Nearest-rank over integer buckets, so the
     * values are bit-identical at any --jobs x --shards setting.
     */
    std::uint64_t latencyP50 = 0;
    std::uint64_t latencyP99 = 0;
    std::uint64_t latencyP999 = 0;
    /**
     * Estimated host bytes of the simulated system (directory slices +
     * private caches) at the end of the measure run, from
     * CmpSystem::estimatedMemoryBytes(). Deterministic for a given
     * access history, so it is serialized with campaign checkpoints.
     */
    std::uint64_t estimatedBytes = 0;
    /**
     * Closed-loop feedback witness: the number of feedback decisions
     * the workload took (trigger firings, ramp level transitions) and
     * an order-sensitive FNV-1a digest over them. 0/fnv1aInit() when
     * the workload is open-loop. Deterministic, so serialized with
     * campaign checkpoints — two runs that agree here took identical
     * decisions at identical access counts.
     */
    std::uint64_t feedbackEvents = 0;
    std::uint64_t feedbackDigest = 0;
    /**
     * SLO-ramp results (slo-ramp workloads only; 0 otherwise): the load
     * level in force at the end of the run, the knee (last level whose
     * window stayed within target), and the metric values of the last
     * sustained window and the violating window. Deterministic and
     * serialized.
     */
    std::uint64_t rampFinalLevel = 0;
    std::uint64_t rampKneeLevel = 0;
    double rampKneeMetric = 0.0;
    double rampCrossMetric = 0.0;
    /**
     * Process peak RSS (getrusage ru_maxrss) observed after the run, in
     * bytes, and the cell's measure-phase wall-clock seconds. Both are
     * *environmental* — they depend on the host, concurrency, and which
     * cells shared the process — so they are reported but NOT
     * serialized; cells loaded from a campaign checkpoint carry 0 here.
     */
    std::uint64_t peakRssBytes = 0;
    double wallSeconds = 0.0;
};

/** Current process peak RSS in bytes (getrusage; 0 if unavailable). */
std::uint64_t processPeakRssBytes();

/** Knobs for experiment length (defaults keep full runs under minutes). */
struct ExperimentOptions
{
    std::uint64_t warmupAccesses = 2'000'000;
    std::uint64_t measureAccesses = 2'000'000;
    std::uint64_t occupancySampleEvery = 10'000;
    /**
     * Intra-experiment parallelism: directory slices are partitioned
     * across this many execution lanes inside the cell's CmpSystem
     * (CmpSystem::setShards). 1 = serial; any value is bit-identical.
     * Composes with the sweep layer's cell parallelism — see
     * clampedShards() in sim/sweep.hh for the jobs x shards budget.
     */
    unsigned shards = 1;
    /**
     * Interval telemetry window in accesses: non-zero cuts the measure
     * run into windows of this many accesses and records a per-window
     * IntervalRecord into ExperimentResult::intervals. 0 (the default)
     * collects nothing and keeps the exact single-call measure path.
     * With telemetry on, occupancy-mean sampling positions are taken
     * relative to each window's start.
     */
    std::uint64_t intervalAccesses = 0;
    /**
     * Timing cost model ("fixed", "mesh"; see model/cost_model.hh).
     * Empty (the default) runs untimed: no model is constructed, no
     * histogram is allocated, and the measure path is byte-for-byte the
     * unmodelled one.
     */
    std::string costModel;
    /**
     * Feedback probe interval override, in accesses. 0 (the default)
     * lets a closed-loop workload request its own interval
     * (FeedbackConsumer::probeInterval); non-zero forces this one. No
     * probe is constructed at all for open-loop workloads.
     */
    std::uint64_t probeEvery = 0;
};

/**
 * Run one experiment: construct the system, warm it (statistics
 * discarded), then measure. A workload with a non-empty tracePath is
 * replayed from its file (fresh reader per call, so concurrent cells
 * are independent); one with a scenarioSpec drives a phased
 * ScenarioWorkload (workload/scenario.hh); otherwise the synthetic
 * generator runs.
 */
ExperimentResult runExperiment(const CmpConfig &config,
                               const WorkloadParams &workload,
                               const ExperimentOptions &options = {});

/**
 * Open the access source @p workload describes for a @p config system:
 * a strict trace reader (tracePath), a ScenarioWorkload resolved for
 * config.numCores (scenarioSpec), or a SyntheticSource. Every call
 * returns an independent instance, so concurrent cells share nothing.
 * @throws std::runtime_error if tracePath and scenarioSpec are both
 * set, or if either fails to open/resolve.
 */
std::unique_ptr<AccessSource>
makeWorkloadSource(const CmpConfig &config, const WorkloadParams &workload);

/**
 * Directory parameters for a Cuckoo slice sized as the paper writes it,
 * e.g. "4 x 512": @p ways ways of @p sets_per_way sets per slice.
 */
DirectoryParams cuckooSliceParams(unsigned ways, std::size_t sets_per_way,
                                  SharerFormat format =
                                      SharerFormat::FullVector,
                                  HashKind hash = HashKind::Skewing);

/** Sparse slice parameters ("8-way, over-provisioning x"). */
DirectoryParams sparseSliceParams(unsigned ways, std::size_t sets_per_way,
                                  SharerFormat format =
                                      SharerFormat::FullVector);

/** Skewed-associative slice parameters. */
DirectoryParams skewedSliceParams(unsigned ways, std::size_t sets_per_way,
                                  SharerFormat format =
                                      SharerFormat::FullVector);

/**
 * Provisioning factor of a slice: capacity relative to the worst-case
 * number of blocks the slice must track (tracked cache frames that map
 * to it), as annotated in Fig. 9 ("1x", "2x", "3/4x", ...).
 */
double provisioningFactor(const CmpConfig &config,
                          const DirectoryParams &dir);

} // namespace cdir

#endif // CDIR_SIM_EXPERIMENT_HH
