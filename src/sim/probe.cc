#include "sim/probe.hh"

#include <stdexcept>

#include "sim/cmp_system.hh"

namespace cdir {

SystemProbe::SystemProbe(std::uint64_t interval_accesses)
    : interval(interval_accesses)
{
    if (interval == 0)
        throw std::invalid_argument(
            "SystemProbe: interval must be >= 1 access");
}

void
SystemProbe::capture(const CmpSystem &system)
{
    ProbeSnapshot snap;
    snap.sequence = ++sequence;
    snap.accessIndex = accessCount;

    // Point-in-time occupancy, per slice and aggregate. Serial reads
    // of slice-local entry counts — capture runs between flushes, so
    // no lane owns any slice at this moment.
    snap.sliceOccupancy.reserve(system.numSlices());
    std::uint64_t occupied = 0, capacity = 0;
    for (std::size_t s = 0; s < system.numSlices(); ++s) {
        const std::uint64_t valid = system.slice(s).validEntries();
        const std::uint64_t total = system.slice(s).capacity();
        occupied += valid;
        capacity += total;
        snap.sliceOccupancy.push_back(
            total != 0 ? double(valid) / double(total) : 0.0);
    }
    snap.occupiedEntries = occupied;
    snap.capacityEntries = capacity;
    snap.occupancy = capacity != 0 ? double(occupied) / double(capacity)
                                   : 0.0;

    // Windowed deltas against the previous capture. The attempt sums
    // are integer-valued doubles, so the subtraction is exact — the
    // same argument interval telemetry relies on.
    const DirectoryStats dir = system.aggregateDirectoryStats();
    const CmpStats &sys = system.stats();
    snap.windowAccesses = accessCount - prevAccessIndex;
    snap.windowInsertions = dir.insertions - prevInsertions;
    const double attemptSum = dir.insertionAttempts.sum();
    const std::uint64_t attemptCount = dir.insertionAttempts.count();
    const std::uint64_t windowAttempts = attemptCount - prevAttemptCount;
    snap.windowAttemptMean =
        windowAttempts != 0
            ? (attemptSum - prevAttemptSum) / double(windowAttempts)
            : 0.0;
    snap.windowForcedInvalidations =
        sys.forcedInvalidations - prevForcedInvalidations;
    snap.forcedPer1k =
        snap.windowAccesses != 0
            ? 1000.0 * double(snap.windowForcedInvalidations) /
                  double(snap.windowAccesses)
            : 0.0;

    snap.timed = system.costModel() != nullptr;
    if (snap.timed) {
        LatencyHistogram window = sys.latency;
        window.subtract(prevLatency);
        if (window.count() != 0) {
            snap.windowP50 = window.percentile(500);
            snap.windowP99 = window.percentile(990);
        }
        prevLatency = sys.latency;
    }

    prevAccessIndex = accessCount;
    prevInsertions = dir.insertions;
    prevAttemptSum = attemptSum;
    prevAttemptCount = attemptCount;
    prevForcedInvalidations = sys.forcedInvalidations;

    feed.publish(std::move(snap));
}

void
SystemProbe::onStatsReset()
{
    // The cumulative counters just went to zero; windows restart from
    // the reset point. accessCount and sequence are *not* reset: probe
    // boundaries stay on the same absolute access grid, which is what
    // keeps a warmup-spanning recording replayable.
    prevAccessIndex = accessCount;
    prevInsertions = 0;
    prevAttemptSum = 0.0;
    prevAttemptCount = 0;
    prevForcedInvalidations = 0;
    prevLatency = LatencyHistogram{};
}

} // namespace cdir
