/**
 * @file
 * Interval telemetry: per-window time series of the directory metrics.
 *
 * End-of-run aggregates cannot show the behaviours dynamic workloads
 * exist to probe — gradual frame-by-frame eviction, stale-entry
 * accumulation after a thread migration, invalidation pressure when a
 * sharing pattern shifts (§3.2/§5.4). `IntervalStats` is the
 * time-resolved counterpart: the measure run is cut into fixed-length
 * access windows and each window records the *deltas* of the aggregate
 * counters plus a point sample of directory occupancy at the window
 * boundary.
 *
 * Design constraints, mirroring the PR 4 counter discipline:
 *
 *  - **off by default and free when unused**: collection happens only
 *    when ExperimentOptions::intervalAccesses is non-zero — the
 *    zero-interval path through runExperiment is the exact single-call
 *    driver, so stationary sweeps pay nothing;
 *  - **exactly mergeable**: every field is an integer count (occupancy
 *    is kept as a valid/capacity entry pair, not a ratio), so folding
 *    per-slice or per-shard partial series with merge() in any fixed
 *    order reproduces the whole-system series bit for bit;
 *  - **deterministic**: windows are cut at access counts, not wall
 *    clock, so a scenario's time series is bit-identical at any
 *    `--jobs` / `--shards` setting.
 */

#ifndef CDIR_SIM_INTERVAL_STATS_HH
#define CDIR_SIM_INTERVAL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/latency_histogram.hh"

namespace cdir {

/** Counter deltas over one access window, plus an occupancy sample. */
struct IntervalRecord
{
    std::uint64_t accesses = 0;     //!< accesses executed in the window
    std::uint64_t cacheMisses = 0;
    std::uint64_t insertions = 0;   //!< new directory entries
    /** Insertion attempts recorded in the window (integer-valued, so
     *  the per-window mean attemptSum/insertionAttemptCount is exact). */
    std::uint64_t attemptSum = 0;
    std::uint64_t insertionAttemptCount = 0;
    std::uint64_t forcedEvictions = 0;
    std::uint64_t sharingInvalidations = 0;
    std::uint64_t forcedInvalidations = 0;
    /** Valid directory entries at the window boundary (point sample). */
    std::uint64_t occupiedEntries = 0;
    /** Aggregate directory capacity (kept per record so merged partial
     *  series stay self-describing). */
    std::uint64_t capacityEntries = 0;
    /** Latency samples recorded in the window; empty (and unallocated —
     *  the histogram costs nothing) unless a cost model was attached.
     *  Integer bucket counts, so window histograms sum exactly to the
     *  whole-run histogram. */
    LatencyHistogram latency;

    /** Occupancy fraction at the window boundary. */
    double
    occupancy() const
    {
        return capacityEntries == 0
                   ? 0.0
                   : double(occupiedEntries) / double(capacityEntries);
    }

    /** Forced evictions per insertion within the window (Fig. 12 as a
     *  time series). */
    double
    invalidationRate() const
    {
        return insertions == 0
                   ? 0.0
                   : double(forcedEvictions) / double(insertions);
    }

    /** Mean insertion attempts within the window. */
    double
    avgInsertionAttempts() const
    {
        return insertionAttemptCount == 0
                   ? 0.0
                   : double(attemptSum) / double(insertionAttemptCount);
    }

    /** Fold @p other's window into this one (pure integer sums). */
    void
    merge(const IntervalRecord &other)
    {
        accesses += other.accesses;
        cacheMisses += other.cacheMisses;
        insertions += other.insertions;
        attemptSum += other.attemptSum;
        insertionAttemptCount += other.insertionAttemptCount;
        forcedEvictions += other.forcedEvictions;
        sharingInvalidations += other.sharingInvalidations;
        forcedInvalidations += other.forcedInvalidations;
        occupiedEntries += other.occupiedEntries;
        capacityEntries += other.capacityEntries;
        latency.merge(other.latency);
    }
};

/** A time series of IntervalRecord windows (see file comment). */
struct IntervalStats
{
    /** Window length in accesses (0 = telemetry was off). */
    std::uint64_t intervalAccesses = 0;
    std::vector<IntervalRecord> windows;

    /** True iff no series was collected. */
    bool empty() const { return windows.empty(); }

    /**
     * Fold @p other's series into this one, window by window (a longer
     * series extends this one). Partial series must describe the same
     * window cut — summing differently-cut windows would produce a
     * meaningless series, so mismatched non-zero interval lengths are
     * rejected. Because every field is an integer count, merging
     * per-slice or per-shard partial series in any fixed order is
     * exact.
     * @throws std::invalid_argument on a window-cut mismatch.
     */
    void
    merge(const IntervalStats &other)
    {
        if (intervalAccesses != 0 && other.intervalAccesses != 0 &&
            intervalAccesses != other.intervalAccesses)
            throw std::invalid_argument(
                "IntervalStats::merge: window cuts differ (" +
                std::to_string(intervalAccesses) + " vs " +
                std::to_string(other.intervalAccesses) + " accesses)");
        if (intervalAccesses == 0)
            intervalAccesses = other.intervalAccesses;
        if (windows.size() < other.windows.size())
            windows.resize(other.windows.size());
        for (std::size_t w = 0; w < other.windows.size(); ++w)
            windows[w].merge(other.windows[w]);
    }
};

} // namespace cdir

#endif // CDIR_SIM_INTERVAL_STATS_HH
