#include "sim/campaign.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include <unistd.h>

namespace cdir {

namespace {

// --- JSON writing ------------------------------------------------------------
//
// The campaign format is written and read by this translation unit
// only, so a minimal deterministic writer + recursive-descent parser
// keep the repo dependency-free. Byte-identity of merge-vs-local output
// rests on two properties: every counter is an integer (exact in JSON),
// and doubles print with %.17g, which strtod() round-trips to the same
// bit pattern — so parse(write(x)) == x field-for-field, and rendering
// the reloaded struct reproduces the original bytes.

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
fmtU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
fmtString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** Appends `"key": value` members with correct comma placement. */
class ObjectWriter
{
  public:
    explicit ObjectWriter(std::string &out) : buf(out) { buf += '{'; }

    void
    member(const char *key, const std::string &rendered_value)
    {
        if (!first)
            buf += ", ";
        first = false;
        buf += '"';
        buf += key;
        buf += "\": ";
        buf += rendered_value;
    }

    void u64(const char *key, std::uint64_t v) { member(key, fmtU64(v)); }
    void num(const char *key, double v) { member(key, fmtDouble(v)); }
    void str(const char *key, const std::string &v)
    {
        member(key, fmtString(v));
    }

    void close() { buf += '}'; }

  private:
    std::string &buf;
    bool first = true;
};

// --- JSON parsing ------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< number token or decoded string contents
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const char *key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }

    const JsonValue &
    at(const char *key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error(std::string("campaign JSON: '") +
                                     key + "' looked up in a non-object");
        if (const JsonValue *v = find(key))
            return *v;
        throw std::runtime_error(std::string("campaign JSON: missing '") +
                                 key + "'");
    }

    std::uint64_t
    asU64() const
    {
        if (kind != Kind::Number)
            throw std::runtime_error(
                "campaign JSON: expected an integer");
        char *end = nullptr;
        errno = 0;
        const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || errno == ERANGE)
            throw std::runtime_error("campaign JSON: bad integer '" +
                                     text + "'");
        return v;
    }

    double
    asDouble() const
    {
        if (kind != Kind::Number)
            throw std::runtime_error("campaign JSON: expected a number");
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            throw std::runtime_error("campaign JSON: bad number '" +
                                     text + "'");
        return v;
    }

    const std::string &
    asString() const
    {
        if (kind != Kind::String)
            throw std::runtime_error("campaign JSON: expected a string");
        return text;
    }

    const std::vector<JsonValue> &
    asArray() const
    {
        if (kind != Kind::Array)
            throw std::runtime_error("campaign JSON: expected an array");
        return items;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &input)
        : p(input.c_str()), end(input.c_str() + input.size())
    {
    }

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (p != end)
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("campaign JSON: " + what);
    }

    void
    skipSpace()
    {
        while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                            *p == '\r'))
            ++p;
    }

    char
    peek()
    {
        skipSpace();
        if (p == end)
            fail("unexpected end of input");
        return *p;
    }

    void
    expect(char ch)
    {
        if (peek() != ch)
            fail(std::string("expected '") + ch + "' got '" + *p + "'");
        ++p;
    }

    bool
    consume(char ch)
    {
        if (p != end && peek() == ch) {
            ++p;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        const char ch = peek();
        if (ch == '{')
            return parseObject();
        if (ch == '[')
            return parseArray();
        if (ch == '"')
            return parseString();
        if (ch == 't' || ch == 'f')
            return parseBool();
        if (ch == 'n') {
            parseLiteral("null");
            return JsonValue{};
        }
        return parseNumber();
    }

    void
    parseLiteral(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (static_cast<std::size_t>(end - p) < len ||
            std::strncmp(p, word, len) != 0)
            fail(std::string("expected '") + word + "'");
        p += len;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (*p == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const char *start = p;
        while (p != end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                *p == 'E'))
            ++p;
        if (p == start)
            fail("expected a number");
        v.text.assign(start, p);
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            if (p == end)
                fail("unterminated string");
            const char ch = *p++;
            if (ch == '"')
                break;
            if (ch != '\\') {
                v.text += ch;
                continue;
            }
            if (p == end)
                fail("unterminated escape");
            const char esc = *p++;
            switch (esc) {
              case '"':
                v.text += '"';
                break;
              case '\\':
                v.text += '\\';
                break;
              case '/':
                v.text += '/';
                break;
              case 'n':
                v.text += '\n';
                break;
              case 't':
                v.text += '\t';
                break;
              case 'r':
                v.text += '\r';
                break;
              case 'b':
                v.text += '\b';
                break;
              case 'f':
                v.text += '\f';
                break;
              case 'u': {
                if (end - p < 4)
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only emits \u00xx control codes; reject
                // anything wider rather than mis-decoding it.
                if (code > 0xff)
                    fail("unsupported \\u escape beyond U+00FF");
                v.text += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consume(']'))
            return v;
        while (true) {
            v.items.push_back(parseValue());
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consume('}'))
            return v;
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.members.emplace_back(std::move(key.text), parseValue());
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    const char *p;
    const char *end;
};

// --- struct <-> JSON ---------------------------------------------------------

std::string
runningMeanToJson(const RunningMean &m)
{
    std::string out;
    ObjectWriter w(out);
    w.u64("count", m.count());
    w.num("sum", m.sum());
    w.close();
    return out;
}

RunningMean
parseRunningMean(const JsonValue &v)
{
    RunningMean m;
    m.restore(v.at("count").asU64(), v.at("sum").asDouble());
    return m;
}

std::string
histogramToJson(const Histogram &h)
{
    std::string out = "{\"max\": " + fmtU64(h.maxValue()) +
                      ", \"buckets\": [";
    bool first = true;
    for (std::size_t v = 0; v <= h.maxValue(); ++v) {
        if (h.at(v) == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += "[" + fmtU64(v) + ", " + fmtU64(h.at(v)) + "]";
    }
    out += "]}";
    return out;
}

Histogram
parseHistogram(const JsonValue &v)
{
    Histogram h(static_cast<std::size_t>(v.at("max").asU64()));
    for (const JsonValue &pair : v.at("buckets").asArray()) {
        const auto &entries = pair.asArray();
        if (entries.size() != 2)
            throw std::runtime_error(
                "campaign JSON: histogram bucket is not a pair");
        h.addCount(entries[0].asU64(), entries[1].asU64());
    }
    return h;
}

std::string
latencyHistogramToJson(const LatencyHistogram &h)
{
    std::string out = "{\"sum\": " + fmtU64(h.totalCycles()) +
                      ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        if (h.bucketAt(b) == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += "[" + fmtU64(b) + ", " + fmtU64(h.bucketAt(b)) + "]";
    }
    out += "]}";
    return out;
}

LatencyHistogram
parseLatencyHistogram(const JsonValue &v)
{
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
    for (const JsonValue &pair : v.at("buckets").asArray()) {
        const auto &entries = pair.asArray();
        if (entries.size() != 2)
            throw std::runtime_error(
                "campaign JSON: latency bucket is not a pair");
        buckets.emplace_back(
            static_cast<std::size_t>(entries[0].asU64()),
            entries[1].asU64());
    }
    LatencyHistogram h;
    h.restore(v.at("sum").asU64(), buckets);
    return h;
}

std::string
directoryStatsToJson(const DirectoryStats &s)
{
    std::string out;
    ObjectWriter w(out);
    w.u64("lookups", s.lookups);
    w.u64("hits", s.hits);
    w.u64("insertions", s.insertions);
    w.u64("sharer_adds", s.sharerAdds);
    w.u64("write_upgrades", s.writeUpgrades);
    w.u64("sharer_removals", s.sharerRemovals);
    w.u64("entry_frees", s.entryFrees);
    w.u64("forced_evictions", s.forcedEvictions);
    w.u64("forced_block_invalidations", s.forcedBlockInvalidations);
    w.u64("insert_failures", s.insertFailures);
    w.member("insertion_attempts",
             runningMeanToJson(s.insertionAttempts));
    w.member("attempt_histogram", histogramToJson(s.attemptHistogram));
    w.close();
    return out;
}

DirectoryStats
parseDirectoryStats(const JsonValue &v)
{
    DirectoryStats s;
    s.lookups = v.at("lookups").asU64();
    s.hits = v.at("hits").asU64();
    s.insertions = v.at("insertions").asU64();
    s.sharerAdds = v.at("sharer_adds").asU64();
    s.writeUpgrades = v.at("write_upgrades").asU64();
    s.sharerRemovals = v.at("sharer_removals").asU64();
    s.entryFrees = v.at("entry_frees").asU64();
    s.forcedEvictions = v.at("forced_evictions").asU64();
    s.forcedBlockInvalidations =
        v.at("forced_block_invalidations").asU64();
    s.insertFailures = v.at("insert_failures").asU64();
    s.insertionAttempts = parseRunningMean(v.at("insertion_attempts"));
    s.attemptHistogram = parseHistogram(v.at("attempt_histogram"));
    return s;
}

std::string
cmpStatsToJson(const CmpStats &s)
{
    std::string out;
    ObjectWriter w(out);
    w.u64("accesses", s.accesses);
    w.u64("cache_hits", s.cacheHits);
    w.u64("cache_misses", s.cacheMisses);
    w.u64("write_upgrades", s.writeUpgrades);
    w.u64("cache_evictions", s.cacheEvictions);
    w.u64("sharing_invalidations", s.sharingInvalidations);
    w.u64("forced_invalidations", s.forcedInvalidations);
    w.member("directory_occupancy",
             runningMeanToJson(s.directoryOccupancy));
    w.member("latency", latencyHistogramToJson(s.latency));
    w.close();
    return out;
}

CmpStats
parseCmpStats(const JsonValue &v)
{
    CmpStats s;
    s.accesses = v.at("accesses").asU64();
    s.cacheHits = v.at("cache_hits").asU64();
    s.cacheMisses = v.at("cache_misses").asU64();
    s.writeUpgrades = v.at("write_upgrades").asU64();
    s.cacheEvictions = v.at("cache_evictions").asU64();
    s.sharingInvalidations = v.at("sharing_invalidations").asU64();
    s.forcedInvalidations = v.at("forced_invalidations").asU64();
    s.directoryOccupancy = parseRunningMean(v.at("directory_occupancy"));
    s.latency = parseLatencyHistogram(v.at("latency"));
    return s;
}

std::string
intervalStatsToJson(const IntervalStats &s)
{
    std::string out = "{\"interval\": " + fmtU64(s.intervalAccesses) +
                      ", \"windows\": [";
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
        const IntervalRecord &r = s.windows[i];
        if (i != 0)
            out += ", ";
        ObjectWriter w(out);
        w.u64("accesses", r.accesses);
        w.u64("cache_misses", r.cacheMisses);
        w.u64("insertions", r.insertions);
        w.u64("attempt_sum", r.attemptSum);
        w.u64("attempt_count", r.insertionAttemptCount);
        w.u64("forced_evictions", r.forcedEvictions);
        w.u64("sharing_invalidations", r.sharingInvalidations);
        w.u64("forced_invalidations", r.forcedInvalidations);
        w.u64("occupied", r.occupiedEntries);
        w.u64("capacity", r.capacityEntries);
        w.member("latency", latencyHistogramToJson(r.latency));
        w.close();
    }
    out += "]}";
    return out;
}

IntervalStats
parseIntervalStats(const JsonValue &v)
{
    IntervalStats s;
    s.intervalAccesses = v.at("interval").asU64();
    for (const JsonValue &win : v.at("windows").asArray()) {
        IntervalRecord r;
        r.accesses = win.at("accesses").asU64();
        r.cacheMisses = win.at("cache_misses").asU64();
        r.insertions = win.at("insertions").asU64();
        r.attemptSum = win.at("attempt_sum").asU64();
        r.insertionAttemptCount = win.at("attempt_count").asU64();
        r.forcedEvictions = win.at("forced_evictions").asU64();
        r.sharingInvalidations =
            win.at("sharing_invalidations").asU64();
        r.forcedInvalidations = win.at("forced_invalidations").asU64();
        r.occupiedEntries = win.at("occupied").asU64();
        r.capacityEntries = win.at("capacity").asU64();
        r.latency = parseLatencyHistogram(win.at("latency"));
        s.windows.push_back(std::move(r));
    }
    return s;
}

std::string
cmpConfigToJson(const CmpConfig &c)
{
    std::string dir;
    {
        ObjectWriter w(dir);
        w.str("organization", c.directory.resolvedOrganization());
        w.u64("num_caches", c.directory.numCaches);
        w.u64("ways", c.directory.ways);
        w.u64("sets", c.directory.sets);
        w.u64("format", static_cast<std::uint64_t>(c.directory.format));
        w.u64("hash", static_cast<std::uint64_t>(c.directory.hash));
        w.u64("max_attempts", c.directory.maxAttempts);
        w.u64("bucket_slots", c.directory.bucketSlots);
        w.u64("stash_entries", c.directory.stashEntries);
        w.u64("hash_seed", c.directory.hashSeed);
        w.u64("tracked_cache_assoc", c.directory.trackedCacheAssoc);
        w.u64("tagless_bucket_bits", c.directory.taglessBucketBits);
        w.close();
    }
    std::string out;
    ObjectWriter w(out);
    w.u64("kind", static_cast<std::uint64_t>(c.kind));
    w.u64("num_cores", c.numCores);
    w.u64("num_slices", c.numSlices);
    w.u64("cache_sets", c.privateCache.numSets);
    w.u64("cache_assoc", c.privateCache.assoc);
    w.u64("batch_window", c.batchWindow);
    w.member("dir", dir);
    w.close();
    return out;
}

unsigned
checkedEnum(const JsonValue &v, const char *what, unsigned max)
{
    const std::uint64_t raw = v.asU64();
    if (raw > max)
        throw std::runtime_error(std::string("campaign JSON: ") + what +
                                 " out of range: " + fmtU64(raw));
    return static_cast<unsigned>(raw);
}

CmpConfig
parseCmpConfig(const JsonValue &v)
{
    CmpConfig c;
    c.kind = static_cast<CmpConfigKind>(checkedEnum(v.at("kind"),
                                                    "config kind", 1));
    c.numCores = static_cast<std::size_t>(v.at("num_cores").asU64());
    c.numSlices = static_cast<std::size_t>(v.at("num_slices").asU64());
    c.privateCache.numSets =
        static_cast<std::size_t>(v.at("cache_sets").asU64());
    c.privateCache.assoc =
        static_cast<unsigned>(v.at("cache_assoc").asU64());
    c.batchWindow =
        static_cast<std::size_t>(v.at("batch_window").asU64());
    const JsonValue &d = v.at("dir");
    c.directory.organization = d.at("organization").asString();
    c.directory.numCaches =
        static_cast<std::size_t>(d.at("num_caches").asU64());
    c.directory.ways = static_cast<unsigned>(d.at("ways").asU64());
    c.directory.sets = static_cast<std::size_t>(d.at("sets").asU64());
    c.directory.format = static_cast<SharerFormat>(
        checkedEnum(d.at("format"), "sharer format", 2));
    c.directory.hash =
        static_cast<HashKind>(checkedEnum(d.at("hash"), "hash kind", 2));
    c.directory.maxAttempts =
        static_cast<unsigned>(d.at("max_attempts").asU64());
    c.directory.bucketSlots =
        static_cast<unsigned>(d.at("bucket_slots").asU64());
    c.directory.stashEntries =
        static_cast<unsigned>(d.at("stash_entries").asU64());
    c.directory.hashSeed = d.at("hash_seed").asU64();
    c.directory.trackedCacheAssoc =
        static_cast<unsigned>(d.at("tracked_cache_assoc").asU64());
    c.directory.taglessBucketBits =
        static_cast<std::size_t>(d.at("tagless_bucket_bits").asU64());
    return c;
}

std::string
workloadParamsToJson(const WorkloadParams &p)
{
    std::string out;
    ObjectWriter w(out);
    w.str("name", p.name);
    w.u64("num_cores", p.numCores);
    w.str("trace_path", p.tracePath);
    w.str("scenario_spec", p.scenarioSpec);
    w.u64("code_blocks", p.codeBlocks);
    w.u64("shared_blocks", p.sharedBlocks);
    w.u64("private_blocks_per_core", p.privateBlocksPerCore);
    w.num("instruction_fraction", p.instructionFraction);
    w.num("shared_data_fraction", p.sharedDataFraction);
    w.num("write_fraction", p.writeFraction);
    w.num("code_theta", p.codeTheta);
    w.num("shared_theta", p.sharedTheta);
    w.num("private_theta", p.privateTheta);
    w.u64("seed", p.seed);
    w.close();
    return out;
}

WorkloadParams
parseWorkloadParams(const JsonValue &v)
{
    WorkloadParams p;
    p.name = v.at("name").asString();
    p.numCores = static_cast<std::size_t>(v.at("num_cores").asU64());
    p.tracePath = v.at("trace_path").asString();
    p.scenarioSpec = v.at("scenario_spec").asString();
    p.codeBlocks = static_cast<std::size_t>(v.at("code_blocks").asU64());
    p.sharedBlocks =
        static_cast<std::size_t>(v.at("shared_blocks").asU64());
    p.privateBlocksPerCore =
        static_cast<std::size_t>(v.at("private_blocks_per_core").asU64());
    p.instructionFraction = v.at("instruction_fraction").asDouble();
    p.sharedDataFraction = v.at("shared_data_fraction").asDouble();
    p.writeFraction = v.at("write_fraction").asDouble();
    p.codeTheta = v.at("code_theta").asDouble();
    p.sharedTheta = v.at("shared_theta").asDouble();
    p.privateTheta = v.at("private_theta").asDouble();
    p.seed = v.at("seed").asU64();
    return p;
}

std::string
experimentOptionsToJson(const ExperimentOptions &o)
{
    std::string out;
    ObjectWriter w(out);
    w.u64("warmup", o.warmupAccesses);
    w.u64("measure", o.measureAccesses);
    w.u64("occupancy_sample_every", o.occupancySampleEvery);
    w.u64("shards", o.shards);
    w.u64("interval_accesses", o.intervalAccesses);
    w.str("cost_model", o.costModel);
    w.u64("probe_every", o.probeEvery);
    w.close();
    return out;
}

ExperimentOptions
parseExperimentOptions(const JsonValue &v)
{
    ExperimentOptions o;
    o.warmupAccesses = v.at("warmup").asU64();
    o.measureAccesses = v.at("measure").asU64();
    o.occupancySampleEvery = v.at("occupancy_sample_every").asU64();
    o.shards = static_cast<unsigned>(v.at("shards").asU64());
    o.intervalAccesses = v.at("interval_accesses").asU64();
    o.costModel = v.at("cost_model").asString();
    // Optional for manifests written before the feedback subsystem.
    if (const JsonValue *pe = v.find("probe_every"))
        o.probeEvery = pe->asU64();
    return o;
}

ExperimentResult
parseExperimentResultValue(const JsonValue &v)
{
    ExperimentResult r;
    r.workload = v.at("workload").asString();
    r.organization = v.at("organization").asString();
    r.avgInsertionAttempts = v.at("avg_insertion_attempts").asDouble();
    r.forcedInvalidationRate =
        v.at("forced_invalidation_rate").asDouble();
    r.avgOccupancy = v.at("avg_occupancy").asDouble();
    r.attemptHistogram = parseHistogram(v.at("attempt_histogram"));
    r.directoryCapacity =
        static_cast<std::size_t>(v.at("directory_capacity").asU64());
    r.directory = parseDirectoryStats(v.at("directory"));
    r.system = parseCmpStats(v.at("system"));
    r.intervals = parseIntervalStats(v.at("intervals"));
    r.costModel = v.at("cost_model").asString();
    r.latencyP50 = v.at("latency_p50").asU64();
    r.latencyP99 = v.at("latency_p99").asU64();
    r.latencyP999 = v.at("latency_p999").asU64();
    // Optional for shards written before footprint accounting existed.
    if (const JsonValue *eb = v.find("estimated_bytes"))
        r.estimatedBytes = eb->asU64();
    // Optional for shards written before the feedback subsystem.
    if (const JsonValue *fe = v.find("feedback_events"))
        r.feedbackEvents = fe->asU64();
    if (const JsonValue *fd = v.find("feedback_digest"))
        r.feedbackDigest = fd->asU64();
    if (const JsonValue *rl = v.find("ramp_final_level"))
        r.rampFinalLevel = rl->asU64();
    if (const JsonValue *rk = v.find("ramp_knee_level"))
        r.rampKneeLevel = rk->asU64();
    if (const JsonValue *km = v.find("ramp_knee_metric"))
        r.rampKneeMetric = km->asDouble();
    if (const JsonValue *cm = v.find("ramp_cross_metric"))
        r.rampCrossMetric = cm->asDouble();
    return r;
}

// --- files -------------------------------------------------------------------

std::string
readFileOrThrow(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error(path + ": " + std::strerror(errno));
    std::string content;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw std::runtime_error(path + ": read failed");
    return content;
}

/**
 * Crash-atomic publication: the content lands under a temporary name
 * (unique per process, so concurrent workers never collide) and is
 * moved over the final path with rename(), which POSIX guarantees is
 * atomic within a filesystem. Any observer therefore sees either no
 * file or the complete file — never a torn prefix.
 */
void
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw std::runtime_error(tmp + ": " + std::strerror(errno));
    const bool wrote =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    const bool flushed = std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !flushed || !closed) {
        std::remove(tmp.c_str());
        throw std::runtime_error(tmp + ": write failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string err = std::strerror(errno);
        std::remove(tmp.c_str());
        throw std::runtime_error("rename " + tmp + " -> " + path +
                                 ": " + err);
    }
}

// --- cell serialization ------------------------------------------------------

std::string
campaignCellToJson(const CampaignCell &cell)
{
    std::string out;
    ObjectWriter w(out);
    w.str("id", cell.id);
    w.u64("spec", cell.specIndex);
    w.u64("config_index", cell.configIndex);
    w.u64("workload_index", cell.workloadIndex);
    w.u64("options_index", cell.optionsIndex);
    w.str("config_label", cell.configLabel);
    w.str("workload_label", cell.workloadLabel);
    w.str("options_label", cell.optionsLabel);
    w.member("config", cmpConfigToJson(cell.config));
    w.member("workload", workloadParamsToJson(cell.workload));
    w.member("options", experimentOptionsToJson(cell.options));
    w.close();
    return out;
}

CampaignCell
parseCampaignCell(const JsonValue &v)
{
    CampaignCell cell;
    cell.id = v.at("id").asString();
    cell.specIndex = static_cast<std::size_t>(v.at("spec").asU64());
    cell.configIndex =
        static_cast<std::size_t>(v.at("config_index").asU64());
    cell.workloadIndex =
        static_cast<std::size_t>(v.at("workload_index").asU64());
    cell.optionsIndex =
        static_cast<std::size_t>(v.at("options_index").asU64());
    cell.configLabel = v.at("config_label").asString();
    cell.workloadLabel = v.at("workload_label").asString();
    cell.optionsLabel = v.at("options_label").asString();
    cell.config = parseCmpConfig(v.at("config"));
    cell.workload = parseWorkloadParams(v.at("workload"));
    cell.options = parseExperimentOptions(v.at("options"));
    const std::string expected = campaignCellId(cell);
    if (cell.id != expected)
        throw std::runtime_error(
            "campaign manifest: cell id '" + cell.id +
            "' does not match its content (expected " + expected +
            ") — the manifest was edited or corrupted");
    return cell;
}

std::uint64_t
fnv1a(std::uint64_t hash, const std::string &data)
{
    for (const char ch : data) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace

// --- public API --------------------------------------------------------------

std::string
CampaignCell::label() const
{
    return sweepCellLabel(configLabel, workloadLabel, optionsLabel);
}

std::string
campaignCellId(const CampaignCell &cell)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, fmtU64(cell.specIndex));
    hash = fnv1a(hash, cell.label());
    hash = fnv1a(hash, cmpConfigToJson(cell.config));
    hash = fnv1a(hash, workloadParamsToJson(cell.workload));
    hash = fnv1a(hash, experimentOptionsToJson(cell.options));
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

CampaignManifest
buildCampaignManifest(std::span<const SweepSpec> specs,
                      const SweepRunner &runner, const std::string &tool)
{
    // This enumeration must stay in lockstep with SweepRunner::runMany:
    // same cell order, same filter semantics, same implicit default
    // options point — the merge-vs-in-process byte-identity guarantee
    // depends on both walking the identical cell list.
    static const OptionsAxisPoint default_options{"",
                                                  ExperimentOptions{}};
    const auto optionsPoint = [](const SweepSpec &spec, std::size_t o)
        -> const OptionsAxisPoint & {
        return spec.optionsAxis().empty() ? default_options
                                          : spec.optionsAxis()[o];
    };

    CampaignManifest manifest;
    manifest.tool = tool;
    manifest.specCount = specs.size();
    for (std::size_t g = 0; g < specs.size(); ++g) {
        const SweepSpec &spec = specs[g];
        for (std::size_t c = 0; c < spec.configs().size(); ++c) {
            for (std::size_t w = 0; w < spec.workloads().size(); ++w) {
                for (std::size_t o = 0; o < spec.optionsPoints(); ++o) {
                    CampaignCell cell;
                    cell.specIndex = g;
                    cell.configIndex = c;
                    cell.workloadIndex = w;
                    cell.optionsIndex = o;
                    cell.configLabel = spec.configs()[c].label;
                    cell.workloadLabel = spec.workloads()[w].label;
                    cell.optionsLabel = optionsPoint(spec, o).label;
                    if (!runner.matchesFilter(cell.label()))
                        continue;
                    cell.config = spec.configs()[c].config;
                    cell.workload = spec.workloads()[w].workload;
                    cell.options = optionsPoint(spec, o).options;
                    cell.id = campaignCellId(cell);
                    manifest.cells.push_back(std::move(cell));
                }
            }
        }
    }
    return manifest;
}

std::string
campaignManifestToJson(const CampaignManifest &manifest)
{
    std::string out = "{\"format\": \"cdir-campaign-manifest\", "
                      "\"version\": " +
                      fmtU64(CampaignManifest::kVersion) +
                      ", \"tool\": " + fmtString(manifest.tool) +
                      ", \"spec_count\": " + fmtU64(manifest.specCount) +
                      ",\n \"cells\": [";
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        out += i == 0 ? "\n  " : ",\n  ";
        out += campaignCellToJson(manifest.cells[i]);
    }
    out += "\n ]}\n";
    return out;
}

CampaignManifest
parseCampaignManifest(const std::string &json)
{
    const JsonValue doc = JsonParser(json).parseDocument();
    if (doc.at("format").asString() != "cdir-campaign-manifest")
        throw std::runtime_error(
            "not a campaign manifest (format: '" +
            doc.at("format").asString() + "')");
    if (doc.at("version").asU64() != CampaignManifest::kVersion)
        throw std::runtime_error(
            "unsupported campaign manifest version " +
            fmtU64(doc.at("version").asU64()) + " (tool supports " +
            fmtU64(CampaignManifest::kVersion) + ")");
    CampaignManifest manifest;
    manifest.tool = doc.at("tool").asString();
    manifest.specCount =
        static_cast<std::size_t>(doc.at("spec_count").asU64());
    for (const JsonValue &cell : doc.at("cells").asArray())
        manifest.cells.push_back(parseCampaignCell(cell));
    for (const CampaignCell &cell : manifest.cells)
        if (cell.specIndex >= manifest.specCount)
            throw std::runtime_error(
                "campaign manifest: cell " + cell.id +
                " names spec " + fmtU64(cell.specIndex) +
                " but spec_count is " + fmtU64(manifest.specCount));
    return manifest;
}

void
writeCampaignManifest(const CampaignManifest &manifest,
                      const std::string &path)
{
    atomicWriteFile(path, campaignManifestToJson(manifest));
}

CampaignManifest
readCampaignManifest(const std::string &path)
{
    try {
        return parseCampaignManifest(readFileOrThrow(path));
    } catch (const std::exception &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

std::string
campaignShardDir(const std::string &manifest_path)
{
    return manifest_path + ".shards";
}

std::string
campaignShardPath(const std::string &shard_dir,
                  const std::string &cell_id)
{
    return shard_dir + "/cell-" + cell_id + ".json";
}

void
writeCampaignShard(const std::string &shard_dir,
                   const std::string &cell_id,
                   const ExperimentResult &result)
{
    std::string doc = "{\"format\": \"cdir-campaign-shard\", "
                      "\"version\": " +
                      fmtU64(CampaignManifest::kVersion) +
                      ", \"cell\": " + fmtString(cell_id) +
                      ",\n \"result\": " +
                      experimentResultToJson(result) + "}\n";
    atomicWriteFile(campaignShardPath(shard_dir, cell_id), doc);
}

bool
readCampaignShard(const std::string &shard_dir,
                  const std::string &cell_id, ExperimentResult &out)
{
    const std::string path = campaignShardPath(shard_dir, cell_id);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return false;
    try {
        const JsonValue doc =
            JsonParser(readFileOrThrow(path)).parseDocument();
        if (doc.at("format").asString() != "cdir-campaign-shard")
            throw std::runtime_error("not a campaign shard");
        if (doc.at("version").asU64() != CampaignManifest::kVersion)
            throw std::runtime_error("unsupported shard version");
        if (doc.at("cell").asString() != cell_id)
            throw std::runtime_error(
                "shard is for cell " + doc.at("cell").asString());
        out = parseExperimentResultValue(doc.at("result"));
    } catch (const std::exception &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
    return true;
}

std::string
experimentResultToJson(const ExperimentResult &result)
{
    std::string out;
    ObjectWriter w(out);
    w.str("workload", result.workload);
    w.str("organization", result.organization);
    w.num("avg_insertion_attempts", result.avgInsertionAttempts);
    w.num("forced_invalidation_rate", result.forcedInvalidationRate);
    w.num("avg_occupancy", result.avgOccupancy);
    w.member("attempt_histogram",
             histogramToJson(result.attemptHistogram));
    w.u64("directory_capacity", result.directoryCapacity);
    w.member("directory", directoryStatsToJson(result.directory));
    w.member("system", cmpStatsToJson(result.system));
    w.member("intervals", intervalStatsToJson(result.intervals));
    w.str("cost_model", result.costModel);
    w.u64("latency_p50", result.latencyP50);
    w.u64("latency_p99", result.latencyP99);
    w.u64("latency_p999", result.latencyP999);
    // estimatedBytes is deterministic for a given access history, so it
    // checkpoints safely. peakRssBytes / wallSeconds are environmental
    // (host- and concurrency-dependent) and are deliberately NOT
    // serialized: a campaign-loaded cell reports 0 for them.
    w.u64("estimated_bytes", result.estimatedBytes);
    // Feedback witness and SLO-ramp knee: deterministic functions of
    // the access history, safe to checkpoint and merge.
    w.u64("feedback_events", result.feedbackEvents);
    w.u64("feedback_digest", result.feedbackDigest);
    w.u64("ramp_final_level", result.rampFinalLevel);
    w.u64("ramp_knee_level", result.rampKneeLevel);
    w.num("ramp_knee_metric", result.rampKneeMetric);
    w.num("ramp_cross_metric", result.rampCrossMetric);
    w.close();
    return out;
}

ExperimentResult
parseExperimentResult(const std::string &json)
{
    return parseExperimentResultValue(
        JsonParser(json).parseDocument());
}

CampaignRunReport
runCampaignCells(const CampaignManifest &manifest,
                 const std::string &shard_dir, std::size_t begin,
                 std::size_t end, unsigned jobs)
{
    if (begin > end || end > manifest.cells.size())
        throw std::runtime_error(
            "campaign range " + fmtU64(begin) + ".." + fmtU64(end) +
            " out of bounds (manifest has " +
            fmtU64(manifest.cells.size()) + " cells)");
    std::filesystem::create_directories(shard_dir);

    CampaignRunReport report;
    std::vector<std::size_t> pending;
    for (std::size_t i = begin; i < end; ++i) {
        std::error_code ec;
        if (std::filesystem::exists(
                campaignShardPath(shard_dir, manifest.cells[i].id),
                ec)) {
            ++report.skipped;
        } else {
            pending.push_back(i);
        }
    }

    // A worker killed mid-write leaves `cell-<id>.json.tmp.<pid>`
    // behind. Sweep those for *this run's pending cells only*: a cell
    // another live worker owns is not pending here (ranges are
    // disjoint), and its in-flight tmp file must survive.
    {
        std::vector<std::string> stale_prefixes;
        stale_prefixes.reserve(pending.size());
        for (const std::size_t i : pending)
            stale_prefixes.push_back("cell-" + manifest.cells[i].id +
                                     ".json.tmp.");
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(shard_dir, ec)) {
            const std::string name = entry.path().filename().string();
            for (const std::string &prefix : stale_prefixes) {
                if (name.size() > prefix.size() &&
                    name.compare(0, prefix.size(), prefix) == 0) {
                    std::filesystem::remove(entry.path(), ec);
                    break;
                }
            }
        }
    }

    std::vector<std::string> failures(pending.size());
    parallelFor(jobs, pending.size(), [&](std::size_t p) {
        const CampaignCell &cell = manifest.cells[pending[p]];
        try {
            const ExperimentResult result = runExperiment(
                cell.config, cell.workload, cell.options);
            writeCampaignShard(shard_dir, cell.id, result);
        } catch (const std::exception &e) {
            failures[p] = e.what();
        }
    });
    for (std::size_t p = 0; p < pending.size(); ++p) {
        if (failures[p].empty()) {
            ++report.ran;
            continue;
        }
        ++report.failed;
        std::fprintf(stderr, "campaign cell '%s' (%s) failed: %s\n",
                     manifest.cells[pending[p]].label().c_str(),
                     manifest.cells[pending[p]].id.c_str(),
                     failures[p].c_str());
    }
    return report;
}

CampaignStatus
campaignStatus(const CampaignManifest &manifest,
               const std::string &shard_dir)
{
    CampaignStatus status;
    status.total = manifest.cells.size();
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        std::error_code ec;
        if (std::filesystem::exists(
                campaignShardPath(shard_dir, manifest.cells[i].id), ec))
            ++status.done;
        else
            status.missing.push_back(i);
    }
    return status;
}

std::vector<std::vector<SweepRecord>>
mergeCampaignShards(const CampaignManifest &manifest,
                    const std::string &shard_dir)
{
    const CampaignStatus status = campaignStatus(manifest, shard_dir);
    if (!status.missing.empty()) {
        std::string what = "campaign incomplete: " +
                           fmtU64(status.missing.size()) + " of " +
                           fmtU64(status.total) + " cells missing:";
        const std::size_t shown =
            std::min<std::size_t>(status.missing.size(), 8);
        for (std::size_t i = 0; i < shown; ++i) {
            const CampaignCell &cell =
                manifest.cells[status.missing[i]];
            what += "\n  [" + fmtU64(status.missing[i]) + "] " +
                    cell.label() + " (" + cell.id + ")";
        }
        if (shown < status.missing.size())
            what += "\n  ... and " +
                    fmtU64(status.missing.size() - shown) + " more";
        throw std::runtime_error(what);
    }

    std::vector<std::vector<SweepRecord>> groups(manifest.specCount);
    for (const CampaignCell &cell : manifest.cells) {
        SweepRecord rec;
        rec.configIndex = cell.configIndex;
        rec.workloadIndex = cell.workloadIndex;
        rec.optionsIndex = cell.optionsIndex;
        rec.configLabel = cell.configLabel;
        rec.workloadLabel = cell.workloadLabel;
        rec.optionsLabel = cell.optionsLabel;
        if (!readCampaignShard(shard_dir, cell.id, rec.result))
            throw std::runtime_error(
                "campaign shard for cell " + cell.id +
                " vanished during merge");
        groups[cell.specIndex].push_back(std::move(rec));
    }
    return groups;
}

std::vector<std::vector<SweepRecord>>
runCampaignInProcess(const CampaignManifest &manifest,
                     const SweepRunner &runner)
{
    std::vector<ExperimentResult> results(manifest.cells.size());
    std::vector<std::string> failures(manifest.cells.size());
    parallelFor(runner.options().jobs, manifest.cells.size(),
                [&](std::size_t i) {
                    const CampaignCell &cell = manifest.cells[i];
                    try {
                        results[i] = runExperiment(
                            cell.config, cell.workload, cell.options);
                    } catch (const std::exception &e) {
                        failures[i] = e.what();
                    }
                });

    std::vector<std::vector<SweepRecord>> groups(manifest.specCount);
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        const CampaignCell &cell = manifest.cells[i];
        if (!failures[i].empty()) {
            std::fprintf(stderr, "sweep cell '%s' failed: %s\n",
                         cell.label().c_str(), failures[i].c_str());
            continue;
        }
        SweepRecord rec;
        rec.configIndex = cell.configIndex;
        rec.workloadIndex = cell.workloadIndex;
        rec.optionsIndex = cell.optionsIndex;
        rec.configLabel = cell.configLabel;
        rec.workloadLabel = cell.workloadLabel;
        rec.optionsLabel = cell.optionsLabel;
        rec.result = std::move(results[i]);
        groups[cell.specIndex].push_back(std::move(rec));
    }
    return groups;
}

std::vector<std::vector<SweepRecord>>
parseCampaignResults(const CampaignManifest &manifest,
                     const std::string &json)
{
    const JsonValue doc = JsonParser(json).parseDocument();
    if (doc.at("format").asString() != "cdir-campaign-results")
        throw std::runtime_error(
            "not a campaign results document (format: '" +
            doc.at("format").asString() + "')");
    if (doc.at("version").asU64() != CampaignManifest::kVersion)
        throw std::runtime_error(
            "unsupported campaign results version " +
            fmtU64(doc.at("version").asU64()));
    if (doc.at("tool").asString() != manifest.tool)
        throw std::runtime_error(
            "results were produced for tool '" +
            doc.at("tool").asString() + "', not '" + manifest.tool +
            "'");
    if (doc.at("spec_count").asU64() != manifest.specCount)
        throw std::runtime_error("results spec count mismatch");
    const auto &cells = doc.at("cells").asArray();
    if (cells.size() != manifest.cells.size())
        throw std::runtime_error(
            "results hold " + fmtU64(cells.size()) +
            " cells but this grid has " +
            fmtU64(manifest.cells.size()) +
            " — the grid (or its --filter) changed since the campaign "
            "ran");

    std::vector<std::vector<SweepRecord>> groups(manifest.specCount);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CampaignCell &cell = manifest.cells[i];
        if (cells[i].at("id").asString() != cell.id)
            throw std::runtime_error(
                "results cell " + fmtU64(i) + " has id " +
                cells[i].at("id").asString() + " but this grid's cell " +
                fmtU64(i) + " (" + cell.label() + ") hashes to " +
                cell.id +
                " — the grid changed since the campaign ran");
        SweepRecord rec;
        rec.configIndex = cell.configIndex;
        rec.workloadIndex = cell.workloadIndex;
        rec.optionsIndex = cell.optionsIndex;
        rec.configLabel = cell.configLabel;
        rec.workloadLabel = cell.workloadLabel;
        rec.optionsLabel = cell.optionsLabel;
        rec.result = parseExperimentResultValue(cells[i].at("result"));
        groups[cell.specIndex].push_back(std::move(rec));
    }
    return groups;
}

std::string
campaignResultsToJson(const CampaignManifest &manifest,
                      const std::vector<std::vector<SweepRecord>> &groups)
{
    // Flatten the groups back into manifest cell order. Dropped cells
    // (a failed experiment) have no record; a results document is only
    // written for complete campaigns, so refuse to serialize holes.
    std::vector<const SweepRecord *> ordered(manifest.cells.size(),
                                             nullptr);
    std::vector<std::size_t> cursor(manifest.specCount, 0);
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        const std::size_t g = manifest.cells[i].specIndex;
        if (g < groups.size() && cursor[g] < groups[g].size())
            ordered[i] = &groups[g][cursor[g]++];
    }
    for (std::size_t i = 0; i < ordered.size(); ++i)
        if (!ordered[i])
            throw std::runtime_error(
                "campaign results incomplete: no result for cell " +
                manifest.cells[i].id + " (" +
                manifest.cells[i].label() + ")");

    std::string out = "{\"format\": \"cdir-campaign-results\", "
                      "\"version\": " +
                      fmtU64(CampaignManifest::kVersion) +
                      ", \"tool\": " + fmtString(manifest.tool) +
                      ", \"spec_count\": " + fmtU64(manifest.specCount) +
                      ",\n \"cells\": [";
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        out += i == 0 ? "\n  " : ",\n  ";
        out += "{\"id\": " + fmtString(manifest.cells[i].id) +
               ", \"result\": " +
               experimentResultToJson(ordered[i]->result) + "}";
    }
    out += "\n ]}\n";
    return out;
}

std::vector<std::vector<SweepRecord>>
campaignRunMany(const HarnessOptions &cli, const SweepRunner &runner,
                std::span<const SweepSpec> specs, const std::string &tool)
{
    if (!cli.campaignManifest.empty()) {
        const CampaignManifest manifest =
            buildCampaignManifest(specs, runner, tool);
        try {
            writeCampaignManifest(manifest, cli.campaignManifest);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "campaign: %s\n", e.what());
            std::exit(2);
        }
        std::fprintf(stderr,
                     "campaign: wrote manifest '%s' (%zu cells); run "
                     "it with: campaign_tool run --manifest=%s\n",
                     cli.campaignManifest.c_str(),
                     manifest.cells.size(),
                     cli.campaignManifest.c_str());
        std::exit(0);
    }
    if (!cli.campaignResults.empty()) {
        try {
            const CampaignManifest manifest =
                buildCampaignManifest(specs, runner, tool);
            return parseCampaignResults(
                manifest, readFileOrThrow(cli.campaignResults));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "campaign: %s: %s\n",
                         cli.campaignResults.c_str(), e.what());
            std::exit(2);
        }
    }
    return runner.runMany(specs);
}

} // namespace cdir
