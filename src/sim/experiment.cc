#include "sim/experiment.hh"

namespace cdir {

ExperimentResult
runExperiment(const CmpConfig &config, const WorkloadParams &workload,
              const ExperimentOptions &options)
{
    CmpSystem system(config);
    system.setShards(options.shards);

    if (!workload.tracePath.empty()) {
        // Trace cell: replay the file through the same warmup-then-
        // measure methodology. Each call opens an independent strict
        // reader (bounded to the system's core count), so concurrent
        // sweep cells over one trace file share nothing and any --jobs
        // value yields bit-identical results. A trace shorter than
        // warmup + measure simply ends early (system.accesses records
        // how much actually ran).
        const std::unique_ptr<AccessSource> source = makeTraceReader(
            workload.tracePath, TraceReadOptions{config.numCores, true});
        system.run(*source, options.warmupAccesses);
        system.resetStats();
        system.run(*source, options.measureAccesses,
                   options.occupancySampleEvery);
    } else {
        SyntheticWorkload gen(workload);
        system.run(gen, options.warmupAccesses);
        system.resetStats();
        system.run(gen, options.measureAccesses,
                   options.occupancySampleEvery);
    }

    ExperimentResult result;
    result.workload = workload.name;
    result.organization = system.slice(0).name();
    result.directory = system.aggregateDirectoryStats();
    result.system = system.stats();
    result.attemptHistogram = system.aggregateAttemptHistogram();
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        result.directoryCapacity += system.slice(s).capacity();
    result.avgInsertionAttempts =
        result.directory.insertionAttempts.mean();
    result.forcedInvalidationRate =
        result.directory.forcedInvalidationRate();
    result.avgOccupancy = system.stats().directoryOccupancy.mean();
    return result;
}

DirectoryParams
cuckooSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format, HashKind hash)
{
    DirectoryParams p;
    p.organization = "Cuckoo";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = hash;
    return p;
}

DirectoryParams
sparseSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format)
{
    DirectoryParams p;
    p.organization = "Sparse";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = HashKind::Modulo;
    return p;
}

DirectoryParams
skewedSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format)
{
    DirectoryParams p;
    p.organization = "Skewed";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = HashKind::Skewing;
    return p;
}

double
provisioningFactor(const CmpConfig &config, const DirectoryParams &dir)
{
    const double frames_per_slice =
        double(config.aggregateFrames()) / double(config.numSlices);
    return double(dir.totalEntries()) / frames_per_slice;
}

} // namespace cdir
