#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include <sys/resource.h>

#include "model/cost_model.hh"
#include "sim/probe.hh"
#include "workload/feedback.hh"
#include "workload/fleet.hh"
#include "workload/scenario.hh"

namespace cdir {

std::uint64_t
processPeakRssBytes()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

namespace {

/** Point-in-time aggregate counters an interval delta is cut from. */
struct StatsSnapshot
{
    std::uint64_t cacheMisses = 0;
    std::uint64_t insertions = 0;
    double attemptSum = 0.0;
    std::uint64_t attemptCount = 0;
    std::uint64_t forcedEvictions = 0;
    std::uint64_t sharingInvalidations = 0;
    std::uint64_t forcedInvalidations = 0;
    LatencyHistogram latency; //!< cumulative; windows cut via subtract()
};

StatsSnapshot
takeSnapshot(const CmpSystem &system)
{
    const DirectoryStats dir = system.aggregateDirectoryStats();
    StatsSnapshot snap;
    snap.cacheMisses = system.stats().cacheMisses;
    snap.insertions = dir.insertions;
    snap.attemptSum = dir.insertionAttempts.sum();
    snap.attemptCount = dir.insertionAttempts.count();
    snap.forcedEvictions = dir.forcedEvictions;
    snap.sharingInvalidations = system.stats().sharingInvalidations;
    snap.forcedInvalidations = system.stats().forcedInvalidations;
    snap.latency = system.stats().latency;
    return snap;
}

/**
 * Measure run with interval telemetry: cut into intervalAccesses-sized
 * windows, each recording the counter deltas since the previous
 * boundary plus an occupancy point sample. The attempt sums are
 * integer-valued (exactly representable doubles), so the delta
 * arithmetic is exact.
 */
void
runMeasureWithIntervals(CmpSystem &system, AccessSource &source,
                        const ExperimentOptions &options,
                        IntervalStats &intervals)
{
    intervals.intervalAccesses = options.intervalAccesses;
    std::uint64_t capacity = 0;
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        capacity += system.slice(s).capacity();

    StatsSnapshot prev = takeSnapshot(system);
    std::uint64_t remaining = options.measureAccesses;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min(options.intervalAccesses, remaining);
        const std::uint64_t executed =
            system.run(source, chunk, options.occupancySampleEvery);
        if (executed == 0)
            break; // source exhausted on the window boundary
        const StatsSnapshot cur = takeSnapshot(system);

        IntervalRecord rec;
        rec.accesses = executed;
        rec.cacheMisses = cur.cacheMisses - prev.cacheMisses;
        rec.insertions = cur.insertions - prev.insertions;
        rec.attemptSum = static_cast<std::uint64_t>(cur.attemptSum -
                                                    prev.attemptSum);
        rec.insertionAttemptCount = cur.attemptCount - prev.attemptCount;
        rec.forcedEvictions =
            cur.forcedEvictions - prev.forcedEvictions;
        rec.sharingInvalidations =
            cur.sharingInvalidations - prev.sharingInvalidations;
        rec.forcedInvalidations =
            cur.forcedInvalidations - prev.forcedInvalidations;
        // Window histogram = cumulative minus the previous boundary's
        // snapshot (exact bucket-wise difference); no-op when untimed.
        rec.latency = cur.latency;
        rec.latency.subtract(prev.latency);
        for (std::size_t s = 0; s < system.numSlices(); ++s)
            rec.occupiedEntries += system.slice(s).validEntries();
        rec.capacityEntries = capacity;
        intervals.windows.push_back(rec);

        prev = cur;
        remaining -= executed;
        if (executed < chunk)
            break; // source exhausted mid-window
    }
}

} // namespace

std::unique_ptr<AccessSource>
makeWorkloadSource(const CmpConfig &config, const WorkloadParams &workload)
{
    if (!workload.tracePath.empty() && !workload.scenarioSpec.empty())
        throw std::runtime_error(
            "workload '" + workload.name +
            "' sets both tracePath and scenarioSpec; they are "
            "mutually exclusive");
    if (!workload.tracePath.empty()) {
        // Trace cell: an independent strict reader (bounded to the
        // system's core count), so concurrent sweep cells over one
        // trace file share nothing and any --jobs value yields
        // bit-identical results.
        return makeTraceReader(workload.tracePath,
                               TraceReadOptions{config.numCores, true});
    }
    if (!workload.scenarioSpec.empty()) {
        // Dynamic cell: a fleet/slo-ramp spec or a scenario
        // preset/file, resolved for this system's core count; every
        // source is deterministic, so per-cell instances yield
        // identical streams.
        return makeDynamicSource(workload.scenarioSpec, config.numCores);
    }
    return std::make_unique<SyntheticSource>(workload);
}

ExperimentResult
runExperiment(const CmpConfig &config, const WorkloadParams &workload,
              const ExperimentOptions &options)
{
    CmpSystem system(config);
    system.setShards(options.shards);

    // Optional timing: construct the selected cost model and attach it
    // before warmup (warmup samples are discarded with resetStats, like
    // every other counter). Empty = untimed, nothing allocated.
    std::unique_ptr<CostModel> costs;
    if (!options.costModel.empty()) {
        costs = makeCostModel(options.costModel, config);
        system.setCostModel(costs.get());
    }

    // Warmup-then-measure methodology (§5): warm the system with
    // statistics discarded, then measure. A trace shorter than
    // warmup + measure simply ends early (system.accesses records how
    // much actually ran).
    const std::unique_ptr<AccessSource> source =
        makeWorkloadSource(config, workload);

    // Closed-loop wiring: a feedback-consuming source gets a
    // SystemProbe snapshotting the live system at its requested
    // interval (or the explicit override), attached before the first
    // access so warmup windows already steer it. Probes capture after
    // the serial apply phase, so snapshots — and every decision made
    // from them — are bit-identical at any shard count.
    std::unique_ptr<SystemProbe> probe;
    FeedbackConsumer *consumer =
        dynamic_cast<FeedbackConsumer *>(source.get());
    if (consumer != nullptr && !consumer->wantsFeedback())
        consumer = nullptr;
    if (consumer != nullptr) {
        if (consumer->needsTiming() && options.costModel.empty())
            throw std::runtime_error(
                "workload '" + workload.name +
                "' steers on a latency metric but no cost model is "
                "attached; pass --cost-model (latency triggers can "
                "never fire untimed)");
        const std::uint64_t interval = options.probeEvery != 0
                                           ? options.probeEvery
                                           : consumer->probeInterval();
        probe = std::make_unique<SystemProbe>(interval);
        system.setProbe(probe.get());
        consumer->attachFeedback(probe->channel());
    }

    system.run(*source, options.warmupAccesses);
    system.resetStats();

    ExperimentResult result;
    const auto measureStart = std::chrono::steady_clock::now();
    if (options.intervalAccesses == 0) {
        system.run(*source, options.measureAccesses,
                   options.occupancySampleEvery);
    } else {
        runMeasureWithIntervals(system, *source, options,
                                result.intervals);
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      measureStart)
            .count();
    result.workload = workload.name;
    result.organization = system.slice(0).name();
    result.directory = system.aggregateDirectoryStats();
    result.system = system.stats();
    result.attemptHistogram = system.aggregateAttemptHistogram();
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        result.directoryCapacity += system.slice(s).capacity();
    result.avgInsertionAttempts =
        result.directory.insertionAttempts.mean();
    result.forcedInvalidationRate =
        result.directory.forcedInvalidationRate();
    result.avgOccupancy = system.stats().directoryOccupancy.mean();
    result.estimatedBytes = system.estimatedMemoryBytes();
    result.peakRssBytes = processPeakRssBytes();
    if (costs) {
        result.costModel = costs->name();
        const LatencyHistogram &lat = result.system.latency;
        result.latencyP50 = lat.percentile(500);
        result.latencyP99 = lat.percentile(990);
        result.latencyP999 = lat.percentile(999);
    }
    if (consumer != nullptr) {
        result.feedbackEvents = consumer->feedbackEventCount();
        result.feedbackDigest = consumer->feedbackDigest();
        if (const auto *ramp =
                dynamic_cast<const SloRampWorkload *>(source.get())) {
            result.rampFinalLevel = ramp->currentLevel();
            result.rampKneeLevel = ramp->kneeLevel();
            result.rampKneeMetric = ramp->kneeMetric();
            result.rampCrossMetric = ramp->crossMetric();
        }
    }
    return result;
}

DirectoryParams
cuckooSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format, HashKind hash)
{
    DirectoryParams p;
    p.organization = "Cuckoo";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = hash;
    return p;
}

DirectoryParams
sparseSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format)
{
    DirectoryParams p;
    p.organization = "Sparse";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = HashKind::Modulo;
    return p;
}

DirectoryParams
skewedSliceParams(unsigned ways, std::size_t sets_per_way,
                  SharerFormat format)
{
    DirectoryParams p;
    p.organization = "Skewed";
    p.ways = ways;
    p.sets = sets_per_way;
    p.format = format;
    p.hash = HashKind::Skewing;
    return p;
}

double
provisioningFactor(const CmpConfig &config, const DirectoryParams &dir)
{
    const double frames_per_slice =
        double(config.aggregateFrames()) / double(config.numSlices);
    return double(dir.totalEntries()) / frames_per_slice;
}

} // namespace cdir
