/**
 * @file
 * Checkpointed multi-process sweep campaigns.
 *
 * A 4096-core x 7-organization x scenario grid is days of CPU — beyond
 * one process. This layer turns any `SweepSpec` grid into a *campaign*:
 *
 *  - **manifest**: the grid's filter-surviving cells serialize into a
 *    versioned JSON work manifest. Every cell carries a stable 64-bit
 *    id (FNV-1a over its spec index, label, and the full serialized
 *    configuration/workload/options), so editing any knob invalidates
 *    stale results instead of silently merging them.
 *  - **shards**: each completed cell lands its `ExperimentResult`
 *    (counters, interval series, latency histograms) as one JSON file
 *    `cell-<id>.json` in the manifest's shard directory. Shards are
 *    written to a temporary name and published with an atomic
 *    `rename()`, so a killed worker leaves no torn shard — shard
 *    existence implies shard completeness.
 *  - **resume**: running a cell range skips cells whose shard already
 *    exists; re-running after a kill recomputes only the missing cells.
 *  - **exact merge**: the serialization keeps every counter integral
 *    and prints doubles with %.17g (strtod round-trips that exactly),
 *    so results reloaded from shards are bit-identical to the
 *    in-memory originals and the merged results document is
 *    byte-identical to a single-process run by construction — the same
 *    merge-of-partials discipline as the PR 4-6 stats types
 *    (CmpStats::merge / IntervalStats::merge / LatencyHistogram::merge).
 *
 * `tools/campaign_tool.cc` is the CLI (run / status / resume / merge /
 * local); harness grids opt in through `campaignRunMany()` and the
 * shared `--campaign-manifest=` / `--campaign-results=` flags.
 */

#ifndef CDIR_SIM_CAMPAIGN_HH
#define CDIR_SIM_CAMPAIGN_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace cdir {

/** One unit of campaign work: a fully-serialized sweep cell. */
struct CampaignCell
{
    /** Stable 16-hex-digit content id (see campaignCellId()). */
    std::string id;
    /** Which spec of the emitting harness's runMany() span. */
    std::size_t specIndex = 0;
    std::size_t configIndex = 0;
    std::size_t workloadIndex = 0;
    std::size_t optionsIndex = 0;
    std::string configLabel;
    std::string workloadLabel;
    std::string optionsLabel;
    CmpConfig config;
    WorkloadParams workload;
    ExperimentOptions options;

    /** "config/workload/options" filter label of this cell. */
    std::string label() const;
};

/** A versioned campaign work list (see file comment). */
struct CampaignManifest
{
    static constexpr int kVersion = 1;
    /** Emitting harness ("fig12", "ext_tail_latency", ...). */
    std::string tool;
    /** Specs in the emitting runMany() span (grouping key on merge). */
    std::size_t specCount = 0;
    /** Filter-surviving cells in exact runMany() cell order. */
    std::vector<CampaignCell> cells;
};

// --- cell enumeration / ids --------------------------------------------------

/**
 * Enumerate @p specs' cells exactly as SweepRunner::runMany would —
 * spec-major, then options-major within workload within config, with
 * @p runner's filter applied and the implicit default options point
 * when a spec's options axis is empty — and assign content ids.
 */
CampaignManifest buildCampaignManifest(std::span<const SweepSpec> specs,
                                       const SweepRunner &runner,
                                       const std::string &tool);

/**
 * Content id of a cell: FNV-1a 64-bit over the spec index, cell label,
 * and serialized config/workload/options, formatted as 16 hex digits.
 * Any knob change — organization, run length, cost model, trace path —
 * changes the id, so stale shards never merge silently.
 */
std::string campaignCellId(const CampaignCell &cell);

// --- manifest / shard I/O ----------------------------------------------------

/** Serialize @p manifest to its canonical JSON text. */
std::string campaignManifestToJson(const CampaignManifest &manifest);

/**
 * Parse a manifest document.
 * @throws std::runtime_error on malformed JSON, a format/version
 * mismatch, or a cell whose stored id disagrees with its content.
 */
CampaignManifest parseCampaignManifest(const std::string &json);

/** Write @p manifest to @p path atomically (tmp + rename). */
void writeCampaignManifest(const CampaignManifest &manifest,
                           const std::string &path);

/** Read and validate a manifest file. @throws std::runtime_error. */
CampaignManifest readCampaignManifest(const std::string &path);

/** Shard directory a manifest at @p manifest_path uses by default. */
std::string campaignShardDir(const std::string &manifest_path);

/** Path of cell @p cell_id's result shard inside @p shard_dir. */
std::string campaignShardPath(const std::string &shard_dir,
                              const std::string &cell_id);

/**
 * Publish @p result as cell @p cell_id's shard: write the full document
 * to `<shard>.tmp.<pid>`, then atomically rename it over the final
 * name. A crash at any point leaves either no shard or a complete one.
 * @throws std::runtime_error on I/O failure.
 */
void writeCampaignShard(const std::string &shard_dir,
                        const std::string &cell_id,
                        const ExperimentResult &result);

/**
 * Load cell @p cell_id's shard if present.
 * @return false if the shard does not exist.
 * @throws std::runtime_error on a torn/foreign/mismatched shard.
 */
bool readCampaignShard(const std::string &shard_dir,
                       const std::string &cell_id,
                       ExperimentResult &out);

// --- result serialization ----------------------------------------------------

/**
 * Serialize one ExperimentResult — counters, attempt histograms,
 * interval series, latency histograms — as a compact JSON object.
 * Integers are exact; doubles print with %.17g so strtod() reconstructs
 * them bit-for-bit; histograms store sparse (bucket, count) pairs.
 */
std::string experimentResultToJson(const ExperimentResult &result);

/** Inverse of experimentResultToJson. @throws std::runtime_error. */
ExperimentResult parseExperimentResult(const std::string &json);

// --- running / merging -------------------------------------------------------

/** Outcome summary of runCampaignCells. */
struct CampaignRunReport
{
    std::size_t ran = 0;     //!< cells computed and published
    std::size_t skipped = 0; //!< cells whose shard already existed
    std::size_t failed = 0;  //!< cells whose experiment threw
};

/**
 * Run cells [@p begin, @p end) of @p manifest on @p jobs worker
 * threads, skipping cells whose shard already exists (resume) and
 * publishing each completed cell atomically. Stale temporary files
 * left by killed workers for this range's cells are removed first. A
 * cell whose experiment throws is reported on stderr and counted
 * failed, like a SweepRunner cell. The shard directory is created if
 * missing.
 */
CampaignRunReport runCampaignCells(const CampaignManifest &manifest,
                                   const std::string &shard_dir,
                                   std::size_t begin, std::size_t end,
                                   unsigned jobs);

/** Per-cell completion state of a campaign. */
struct CampaignStatus
{
    std::size_t total = 0;
    std::size_t done = 0;
    /** Manifest indices of cells with no shard, in cell order. */
    std::vector<std::size_t> missing;
};

/** Scan @p shard_dir for @p manifest's shards. */
CampaignStatus campaignStatus(const CampaignManifest &manifest,
                              const std::string &shard_dir);

/**
 * Load every cell's shard and regroup them into the exact
 * `runMany()`-shaped record groups (one vector per spec, cell order).
 * @throws std::runtime_error listing the missing cells if the campaign
 * is incomplete, or on a torn/mismatched shard.
 */
std::vector<std::vector<SweepRecord>>
mergeCampaignShards(const CampaignManifest &manifest,
                    const std::string &shard_dir);

/**
 * Reference single-process run: every manifest cell through
 * `runExperiment` on @p runner's pool (cell-order results, any --jobs),
 * grouped like mergeCampaignShards. A cell that throws is dropped with
 * a stderr note, exactly like SweepRunner::runMany.
 */
std::vector<std::vector<SweepRecord>>
runCampaignInProcess(const CampaignManifest &manifest,
                     const SweepRunner &runner);

/**
 * Serialize record groups as the canonical campaign results document.
 * `campaign_tool merge` (from shards) and `campaign_tool local` (from
 * an in-process run) both emit through this writer, which is what makes
 * their outputs byte-identical when the underlying results are equal.
 */
std::string
campaignResultsToJson(const CampaignManifest &manifest,
                      const std::vector<std::vector<SweepRecord>> &groups);

/**
 * Parse a results document back into record groups, validating the
 * cell ids (and group count) against @p manifest so a results file from
 * an edited grid is rejected instead of mislabelled.
 * @throws std::runtime_error.
 */
std::vector<std::vector<SweepRecord>>
parseCampaignResults(const CampaignManifest &manifest,
                     const std::string &json);

// --- harness integration -----------------------------------------------------

/**
 * The campaign-aware replacement for `runner.runMany(specs)` every grid
 * harness routes through:
 *
 *  - `--campaign-manifest=PATH`: serialize the grid (under the
 *    harness's --filter) to PATH, print a cell-count note on stderr,
 *    and exit 0 — the harness emits no tables; the campaign tool owns
 *    execution from here.
 *  - `--campaign-results=PATH`: skip execution and load a merged
 *    results document instead, validated against this exact grid; the
 *    harness then renders its normal tables from the loaded records,
 *    byte-identical to an in-process run over the same results.
 *  - neither flag: plain `runner.runMany(specs)`.
 *
 * Exits 2 with a message on a results/grid mismatch or unreadable file.
 */
std::vector<std::vector<SweepRecord>>
campaignRunMany(const HarnessOptions &cli, const SweepRunner &runner,
                std::span<const SweepSpec> specs, const std::string &tool);

} // namespace cdir

#endif // CDIR_SIM_CAMPAIGN_HH
