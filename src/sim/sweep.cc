#include "sim/sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "model/cost_model.hh"
#include "workload/fleet.hh"
#include "workload/scenario.hh"
#include "workload/trace.hh"

namespace cdir {

// --- SweepSpec ---------------------------------------------------------------

SweepSpec &
SweepSpec::config(std::string label, CmpConfig cfg)
{
    cfgAxis.push_back(ConfigAxisPoint{std::move(label), std::move(cfg)});
    return *this;
}

SweepSpec &
SweepSpec::workload(std::string label, WorkloadParams params)
{
    wlAxis.push_back(
        WorkloadAxisPoint{std::move(label), std::move(params)});
    return *this;
}

SweepSpec &
SweepSpec::options(std::string label, ExperimentOptions opts)
{
    optAxis.push_back(OptionsAxisPoint{std::move(label), opts});
    return *this;
}

// --- SweepRunner -------------------------------------------------------------

std::string
sweepCellLabel(const std::string &config_label,
               const std::string &workload_label,
               const std::string &options_label)
{
    std::string label = config_label;
    label += '/';
    label += workload_label;
    if (!options_label.empty()) {
        label += '/';
        label += options_label;
    }
    return label;
}

void
appendTraceWorkloads(SweepSpec &spec, const std::string &path)
{
    const std::vector<std::string> files = listTraceFiles(path);

    // Label by stem, but fall back to the full filename when stems
    // collide (e.g. a corpus holding oltp.ctr and oltp.trace) so axis
    // labels stay unique and --filter can tell the cells apart.
    std::vector<WorkloadParams> params;
    params.reserve(files.size());
    for (const std::string &file : files)
        params.push_back(traceWorkloadParams(file));
    const auto stem_collides = [&](std::size_t i) {
        for (std::size_t j = 0; j < files.size(); ++j)
            if (j != i && std::filesystem::path(files[j]).stem() ==
                              std::filesystem::path(files[i]).stem())
                return true;
        return false;
    };
    for (std::size_t i = 0; i < params.size(); ++i) {
        std::string label =
            stem_collides(i)
                ? std::filesystem::path(files[i]).filename().string()
                : params[i].name;
        params[i].name = label;
        spec.workload(std::move(label), std::move(params[i]));
    }
}

void
appendScenarioWorkloads(SweepSpec &spec, const std::string &specs,
                        std::size_t max_cores)
{
    const std::vector<std::string> items = splitScenarioSpecs(specs);
    if (items.empty())
        throw std::runtime_error("--scenario= names no scenarios");

    const auto &presets = scenarioPresetNames();
    std::vector<WorkloadParams> params;
    params.reserve(items.size());
    for (const std::string &item : items) {
        // Fail fast on a bad spec, file path, schedule, or core bound:
        // a preset name is known-good (and adapts to any core count), a
        // fleet/slo-ramp spec validates by constructing a throwaway
        // instance, and anything else must parse as a scenario file now
        // rather than erroring once per grid cell later.
        if (isFleetSpec(item) || isSloRampSpec(item)) {
            makeDynamicSource(item, max_cores != 0 ? max_cores : 16);
        } else if (std::find(presets.begin(), presets.end(), item) ==
                   presets.end()) {
            const Scenario scenario = parseScenarioFile(item);
            if (max_cores != 0 && scenario.numCores > max_cores)
                throw std::runtime_error(
                    item + ": scenario needs " +
                    std::to_string(scenario.numCores) +
                    " cores but the grid's systems have " +
                    std::to_string(max_cores));
        }
        params.push_back(dynamicWorkloadParams(item));
    }
    // Label by stem/preset name, but fall back to the full spec when
    // labels collide (e.g. a/night.scn + b/night.scn) so axis labels
    // stay unique and --filter can tell the cells apart — the same
    // hardening appendTraceWorkloads has.
    std::vector<std::string> stems;
    stems.reserve(params.size());
    for (const WorkloadParams &p : params)
        stems.push_back(p.name);
    for (std::size_t i = 0; i < params.size(); ++i) {
        bool collides = false;
        for (std::size_t j = 0; j < stems.size(); ++j)
            if (j != i && stems[j] == stems[i])
                collides = true;
        std::string label = collides ? items[i] : stems[i];
        params[i].name = label;
        spec.workload(std::move(label), std::move(params[i]));
    }
}

SweepRunner::SweepRunner(SweepOptions options) : opts(std::move(options)) {}

bool
SweepRunner::matchesFilter(const std::string &cell_label) const
{
    if (opts.filter.empty())
        return true;
    std::string_view rest = opts.filter;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view needle = rest.substr(0, comma);
        if (!needle.empty() &&
            cell_label.find(needle) != std::string::npos)
            return true;
        if (comma == std::string_view::npos)
            break;
        rest.remove_prefix(comma + 1);
    }
    return false;
}

std::vector<SweepRecord>
SweepRunner::run(const SweepSpec &spec) const
{
    return runMany(std::span<const SweepSpec>(&spec, 1)).front();
}

std::vector<std::vector<SweepRecord>>
SweepRunner::runMany(std::span<const SweepSpec> specs) const
{
    static const OptionsAxisPoint default_options{
        "", ExperimentOptions{}};
    const auto optionsPoint = [](const SweepSpec &spec, std::size_t o)
        -> const OptionsAxisPoint & {
        return spec.optionsAxis().empty() ? default_options
                                          : spec.optionsAxis()[o];
    };

    // Enumerate every spec's filter-surviving cells into one flattened
    // pool up front, so results can be written into their final
    // (spec-major, cell-order) slots from any worker and the grids of a
    // multi-configuration harness share the sweep's whole thread pool.
    struct PendingCell
    {
        std::size_t spec;
        SweepRecord rec;
    };
    std::vector<PendingCell> cells;
    for (std::size_t g = 0; g < specs.size(); ++g) {
        const SweepSpec &spec = specs[g];
        cells.reserve(cells.size() + spec.cellCount());
        for (std::size_t c = 0; c < spec.configs().size(); ++c) {
            for (std::size_t w = 0; w < spec.workloads().size(); ++w) {
                for (std::size_t o = 0; o < spec.optionsPoints(); ++o) {
                    SweepRecord rec;
                    rec.configIndex = c;
                    rec.workloadIndex = w;
                    rec.optionsIndex = o;
                    rec.configLabel = spec.configs()[c].label;
                    rec.workloadLabel = spec.workloads()[w].label;
                    rec.optionsLabel = optionsPoint(spec, o).label;
                    if (!matchesFilter(sweepCellLabel(rec.configLabel,
                                                      rec.workloadLabel,
                                                      rec.optionsLabel)))
                        continue;
                    cells.push_back(PendingCell{g, std::move(rec)});
                }
            }
        }
    }

    // A cell that throws (a trace cell's strict reader hitting a bad
    // record, an out-of-range core id for this grid's CMP) is dropped
    // like a filtered-out cell — consumers already render missing
    // cells as '-' — instead of aborting the whole harness through an
    // uncaught exception in main. Messages are emitted serially after
    // the sweep so output stays deterministic.
    std::vector<std::string> failures(cells.size());
    parallelFor(opts.jobs, cells.size(), [&](std::size_t i) {
        SweepRecord &rec = cells[i].rec;
        const SweepSpec &spec = specs[cells[i].spec];
        try {
            rec.result = runExperiment(
                spec.configs()[rec.configIndex].config,
                spec.workloads()[rec.workloadIndex].workload,
                optionsPoint(spec, rec.optionsIndex).options);
        } catch (const std::exception &e) {
            failures[i] = e.what();
        }
    });

    std::vector<std::vector<SweepRecord>> surviving(specs.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SweepRecord &rec = cells[i].rec;
        const std::string label = sweepCellLabel(
            rec.configLabel, rec.workloadLabel, rec.optionsLabel);
        if (!failures[i].empty()) {
            std::fprintf(stderr, "sweep cell '%s' failed: %s\n",
                         label.c_str(), failures[i].c_str());
            continue;
        }
        // An all-zero cell from a trace (or non-looping scenario)
        // exhausted during warmup looks exactly like a perfect result;
        // never let it pass silently.
        const WorkloadParams &cell_wl = specs[cells[i].spec]
                                            .workloads()[rec.workloadIndex]
                                            .workload;
        const bool finite_cell = !cell_wl.tracePath.empty() ||
                                 !cell_wl.scenarioSpec.empty();
        if (finite_cell && rec.result.system.accesses == 0)
            std::fprintf(stderr,
                         "sweep cell '%s': workload exhausted during "
                         "warmup — 0 accesses measured (shrink "
                         "--warmup= or lengthen the trace/scenario)\n",
                         label.c_str());
        surviving[cells[i].spec].push_back(std::move(rec));
    }
    return surviving;
}

// --- report cells ------------------------------------------------------------

ReportCell
cellText(std::string text)
{
    ReportCell cell;
    cell.text = std::move(text);
    return cell;
}

ReportCell
cellNum(double value, const char *format)
{
    ReportCell cell;
    char buf[64];
    std::snprintf(buf, sizeof buf, format, value);
    cell.text = buf;
    cell.value = value;
    cell.numeric = true;
    return cell;
}

ReportCell
cellPct(double fraction)
{
    ReportCell cell;
    char buf[32];
    if (fraction == 0.0)
        std::snprintf(buf, sizeof buf, "0");
    else if (fraction < 0.0001)
        std::snprintf(buf, sizeof buf, "%.4f%%", fraction * 100.0);
    else
        std::snprintf(buf, sizeof buf, "%.3f%%", fraction * 100.0);
    cell.text = buf;
    cell.value = fraction;
    cell.numeric = true;
    return cell;
}

ReportCell
cellMissing()
{
    ReportCell cell;
    cell.text = "-";
    return cell;
}

// --- ReportTable -------------------------------------------------------------

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : heading(std::move(title)), headers(std::move(columns))
{
}

void
ReportTable::addRow(std::vector<ReportCell> cells)
{
    if (cells.size() != headers.size()) {
        std::fprintf(stderr,
                     "ReportTable '%s': row has %zu cells, expected %zu\n",
                     heading.c_str(), cells.size(), headers.size());
        std::abort();
    }
    body.push_back(std::move(cells));
}

// --- Reporter ----------------------------------------------------------------

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** Quote a CSV field only when it needs it. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
emitAlignedTable(const ReportTable &t, std::FILE *out)
{
    std::fprintf(out, "\n=== %s ===\n", t.title().c_str());
    const std::size_t cols = t.columns().size();
    std::vector<std::size_t> width(cols);
    // A column right-aligns (cells and header) iff it holds a numeric
    // (or filtered-out "-") cell and no text cell.
    std::vector<bool> right(cols, false), text(cols, false);
    for (std::size_t c = 0; c < cols; ++c)
        width[c] = t.columns()[c].size();
    for (const auto &row : t.rows()) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].text.size());
            (row[c].numeric || row[c].text == "-" ? right : text)[c] =
                true;
        }
    }
    for (std::size_t c = 0; c < cols; ++c)
        right[c] = right[c] && !text[c];

    for (std::size_t c = 0; c < cols; ++c)
        std::fprintf(out, "%s%*s", c == 0 ? "" : "  ",
                     static_cast<int>(width[c]) * (right[c] ? 1 : -1),
                     t.columns()[c].c_str());
    std::fprintf(out, "\n");
    for (const auto &row : t.rows()) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "%s%*s", c == 0 ? "" : "  ",
                         static_cast<int>(width[c]) * (right[c] ? 1 : -1),
                         row[c].text.c_str());
        }
        std::fprintf(out, "\n");
    }
}

void
emitCsvTable(const ReportTable &t, std::FILE *out)
{
    std::fprintf(out, "# %s\n", t.title().c_str());
    for (std::size_t c = 0; c < t.columns().size(); ++c)
        std::fprintf(out, "%s%s", c == 0 ? "" : ",",
                     csvField(t.columns()[c]).c_str());
    std::fprintf(out, "\n");
    for (const auto &row : t.rows()) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "%s", c == 0 ? "" : ",");
            if (row[c].numeric)
                std::fprintf(out, "%.17g", row[c].value);
            else
                std::fprintf(out, "%s", csvField(row[c].text).c_str());
        }
        std::fprintf(out, "\n");
    }
}

void
emitJsonTable(const ReportTable &t, std::FILE *out)
{
    std::fprintf(out, "{\"title\": \"%s\", \"columns\": [",
                 jsonEscape(t.title()).c_str());
    for (std::size_t c = 0; c < t.columns().size(); ++c)
        std::fprintf(out, "%s\"%s\"", c == 0 ? "" : ", ",
                     jsonEscape(t.columns()[c]).c_str());
    std::fprintf(out, "], \"rows\": [");
    for (std::size_t r = 0; r < t.rows().size(); ++r) {
        std::fprintf(out, "%s\n  [", r == 0 ? "" : ",");
        const auto &row = t.rows()[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "%s", c == 0 ? "" : ", ");
            if (row[c].numeric)
                std::fprintf(out, "%.17g", row[c].value);
            else
                std::fprintf(out, "\"%s\"",
                             jsonEscape(row[c].text).c_str());
        }
        std::fprintf(out, "]");
    }
    std::fprintf(out, "]}");
}

} // namespace

Reporter::Reporter(ReportFormat format, std::FILE *out)
    : fmt(format), stream(out)
{
}

Reporter::~Reporter()
{
    if (fmt == ReportFormat::Json)
        std::fprintf(stream, jsonStarted ? "\n]\n" : "[]\n");
    std::fflush(stream);
}

void
Reporter::jsonSeparator()
{
    std::fprintf(stream, jsonStarted ? ",\n" : "[\n");
    jsonStarted = true;
}

void
Reporter::table(const ReportTable &t)
{
    switch (fmt) {
      case ReportFormat::Table:
        emitAlignedTable(t, stream);
        break;
      case ReportFormat::Csv:
        emitCsvTable(t, stream);
        break;
      case ReportFormat::Json:
        jsonSeparator();
        emitJsonTable(t, stream);
        break;
    }
}

void
Reporter::note(const std::string &text)
{
    switch (fmt) {
      case ReportFormat::Table:
        std::fprintf(stream, "\n%s\n", text.c_str());
        break;
      case ReportFormat::Csv:
        std::fprintf(stream, "# %s\n", text.c_str());
        break;
      case ReportFormat::Json:
        jsonSeparator();
        std::fprintf(stream, "{\"note\": \"%s\"}",
                     jsonEscape(text).c_str());
        break;
    }
}

// --- shared harness CLI ------------------------------------------------------

const char *
cliFlagValue(const char *arg, const char *name)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, "--", 2) != 0)
        return nullptr;
    if (std::strncmp(arg + 2, name, len) != 0 || arg[2 + len] != '=')
        return nullptr;
    return arg + 2 + len + 1;
}

namespace {

[[noreturn]] void
usage(const char *bad)
{
    std::fprintf(
        stderr,
        "bad flag value '%s'\n"
        "shared harness flags:\n"
        "  --jobs=N              worker threads (0 = all hardware "
        "threads; default 0)\n"
        "  --shards=N            execution lanes inside each experiment "
        "cell\n"
        "                        (slice sharding; 0 = fill the jobs x "
        "shards thread\n"
        "                        budget; default 1; results are "
        "bit-identical at any N)\n"
        "  --format=table|csv|json  output format (default table)\n"
        "  --filter=S[,S...]     run only cells whose "
        "config/workload/options label\n"
        "                        contains one of the substrings\n"
        "  --scale=N             run-length multiplier\n"
        "  --warmup=N            override warmup access count\n"
        "  --measure=N           override measured access count\n"
        "  --trace=FILE|DIR      replay recorded traces as the workload "
        "axis\n"
        "                        (a directory is swept in sorted order)\n"
        "  --scenario=S[,S...]   drive dynamic workloads as the workload "
        "axis\n"
        "                        (scenario presets/files, 'all', or "
        "fleet: /\n"
        "                        slo-ramp: specs — see workload/fleet.hh)\n"
        "  --probe-every=N       override the feedback probe interval "
        "of\n"
        "                        closed-loop workloads (default: the\n"
        "                        workload's own request)\n"
        "  --cost-model=M[,M...] time each cell under these cost models\n"
        "                        ('fixed', 'mesh', or 'all'; default: "
        "untimed)\n"
        "                        and report p50/p99/p99.9 latency\n"
        "  --campaign-manifest=PATH  write this grid as a campaign work\n"
        "                        manifest and exit (run it with "
        "campaign_tool)\n"
        "  --campaign-results=PATH   render tables from a merged "
        "campaign\n"
        "                        results document instead of running\n",
        bad);
    std::exit(2);
}

} // namespace

namespace {

/** Whole-string unsigned parse; exits with usage on any trailing junk. */
std::uint64_t
parseU64(const char *value, const char *arg)
{
    char *end = nullptr;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        usage(arg);
    return parsed;
}

} // namespace

unsigned
clampedShards(unsigned jobs, unsigned shards, unsigned hardware)
{
    if (hardware == 0)
        hardware = 1;
    if (jobs == 0)
        jobs = hardware; // --jobs=0 claims every hardware thread
    const unsigned budget =
        jobs >= hardware ? 1u : std::max(1u, hardware / jobs);
    if (shards == 0)
        return budget; // auto: fill the remaining budget
    return std::min(shards, budget);
}

HarnessOptions
parseHarnessOptions(int argc, char **argv)
{
    HarnessOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = cliFlagValue(argv[i], "jobs")) {
            opts.jobs = static_cast<unsigned>(parseU64(v, argv[i]));
        } else if (const char *v = cliFlagValue(argv[i], "shards")) {
            opts.shards = static_cast<unsigned>(parseU64(v, argv[i]));
        } else if (const char *v = cliFlagValue(argv[i], "format")) {
            if (std::strcmp(v, "table") == 0)
                opts.format = ReportFormat::Table;
            else if (std::strcmp(v, "csv") == 0)
                opts.format = ReportFormat::Csv;
            else if (std::strcmp(v, "json") == 0)
                opts.format = ReportFormat::Json;
            else
                usage(argv[i]);
        } else if (const char *v = cliFlagValue(argv[i], "filter")) {
            opts.filter = v;
        } else if (const char *v = cliFlagValue(argv[i], "scale")) {
            opts.scale = parseU64(v, argv[i]);
            if (opts.scale == 0)
                usage(argv[i]);
        } else if (const char *v = cliFlagValue(argv[i], "warmup")) {
            opts.warmupOverride = parseU64(v, argv[i]);
        } else if (const char *v = cliFlagValue(argv[i], "measure")) {
            opts.measureOverride = parseU64(v, argv[i]);
        } else if (const char *v = cliFlagValue(argv[i], "trace")) {
            if (*v == '\0')
                usage(argv[i]);
            opts.trace = v;
        } else if (const char *v = cliFlagValue(argv[i], "scenario")) {
            if (*v == '\0')
                usage(argv[i]);
            opts.scenario = v;
        } else if (const char *v = cliFlagValue(argv[i], "probe-every")) {
            opts.probeEvery = parseU64(v, argv[i]);
            if (opts.probeEvery == 0)
                usage(argv[i]);
        } else if (const char *v = cliFlagValue(argv[i], "cost-model")) {
            // Validate every name at parse time so a typo fails with a
            // usage message here, not once per grid cell mid-sweep.
            if (std::strcmp(v, "all") == 0) {
                opts.costModels = costModelNames();
            } else {
                std::string_view rest = v;
                while (!rest.empty()) {
                    const std::size_t comma = rest.find(',');
                    const std::string name(rest.substr(0, comma));
                    if (!isCostModelName(name))
                        usage(argv[i]);
                    opts.costModels.push_back(name);
                    if (comma == std::string_view::npos)
                        break;
                    rest.remove_prefix(comma + 1);
                }
                if (opts.costModels.empty())
                    usage(argv[i]);
            }
        } else if (const char *v =
                       cliFlagValue(argv[i], "campaign-manifest")) {
            if (*v == '\0')
                usage(argv[i]);
            opts.campaignManifest = v;
        } else if (const char *v =
                       cliFlagValue(argv[i], "campaign-results")) {
            if (*v == '\0')
                usage(argv[i]);
            opts.campaignResults = v;
        }
        // Anything else is a harness-specific flag or positional
        // argument; the harness parses those itself.
    }
    if (!opts.campaignManifest.empty() && !opts.campaignResults.empty()) {
        std::fprintf(stderr,
                     "--campaign-manifest and --campaign-results are "
                     "mutually exclusive\n");
        std::exit(2);
    }
    // Two-level budget: never let jobs x shards oversubscribe the
    // machine. Clamping is output-invariant (sharding is bit-identical
    // at any count), so it only changes wall-clock, never results;
    // applyOverrides reports it when a sweep actually consumes the
    // clamped value.
    opts.shardsRequested = opts.shards;
    opts.shards = clampedShards(opts.jobs, opts.shards,
                                ThreadPool::hardwareWorkers());
    return opts;
}

void
appendCostModelOptions(SweepSpec &spec, const std::string &label,
                       const ExperimentOptions &base,
                       const HarnessOptions &cli)
{
    if (cli.costModels.empty()) {
        spec.options(label, base);
        return;
    }
    for (const std::string &model : cli.costModels) {
        ExperimentOptions opts = base;
        opts.costModel = model;
        spec.options(label.empty() ? model : label + "/" + model, opts);
    }
}

void
warnFlagUnused(const HarnessOptions &opts,
               std::initializer_list<const char *> flags)
{
    for (const char *flag : flags) {
        if (std::strcmp(flag, "filter") == 0) {
            if (!opts.filter.empty())
                std::fprintf(stderr,
                             "note: this harness runs a generic grid; "
                             "--filter=%s has no effect\n",
                             opts.filter.c_str());
        } else if (std::strcmp(flag, "trace") == 0) {
            if (!opts.trace.empty())
                std::fprintf(stderr,
                             "note: this harness's grid is not "
                             "trace-driven; --trace=%s has no effect\n",
                             opts.trace.c_str());
        } else if (std::strcmp(flag, "scenario") == 0) {
            if (!opts.scenario.empty())
                std::fprintf(stderr,
                             "note: this harness's grid is not "
                             "scenario-driven; --scenario=%s has no "
                             "effect\n",
                             opts.scenario.c_str());
        } else if (std::strcmp(flag, "shards") == 0) {
            if (opts.shardsRequested > 1 || opts.shardsRequested == 0)
                std::fprintf(stderr,
                             "note: this harness runs no CMP "
                             "simulation; --shards has no effect\n");
        } else if (std::strcmp(flag, "cost-model") == 0) {
            if (!opts.costModels.empty())
                std::fprintf(stderr,
                             "note: this harness runs no timed "
                             "experiment; --cost-model has no effect\n");
        } else if (std::strcmp(flag, "probe-every") == 0) {
            if (opts.probeEvery != 0)
                std::fprintf(stderr,
                             "note: this harness drives no closed-loop "
                             "workload; --probe-every has no effect\n");
        } else {
            std::fprintf(stderr,
                         "warnFlagUnused: unknown flag name '%s'\n",
                         flag);
            std::abort();
        }
    }
}

} // namespace cdir
