/**
 * @file
 * Memory-trace file I/O.
 *
 * The paper drives its directories from FLEXUS full-system traces; this
 * reproduction uses synthetic generators by default but accepts
 * external traces in a simple text format, one access per line:
 *
 *     <core> <block-address-hex> <r|w|i>
 *
 * ('i' marks instruction fetches, which route to the I-cache in the
 * Shared-L2 configuration.) Lines starting with '#' are comments.
 * Converters from gem5/champsim traces reduce to emitting this format.
 */

#ifndef CDIR_WORKLOAD_TRACE_HH
#define CDIR_WORKLOAD_TRACE_HH

#include <fstream>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace cdir {

/** Anything that yields MemAccess records. */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /** Produce the next access; only valid while !exhausted(). */
    virtual MemAccess next() = 0;

    /** True when no further accesses are available. */
    virtual bool exhausted() const = 0;
};

/** Adapter: a SyntheticWorkload as an endless AccessSource. */
class SyntheticSource : public AccessSource
{
  public:
    explicit SyntheticSource(const WorkloadParams &params)
        : workload(params)
    {}

    MemAccess next() override { return workload.next(); }
    bool exhausted() const override { return false; }

    /** Underlying generator. */
    SyntheticWorkload &generator() { return workload; }

  private:
    SyntheticWorkload workload;
};

/** Streaming reader for the text trace format (see file comment). */
class TraceReader : public AccessSource
{
  public:
    /** Open @p path; throws std::runtime_error if unreadable. */
    explicit TraceReader(const std::string &path);

    MemAccess next() override;
    bool exhausted() const override { return !hasBuffered; }

    /** Records delivered so far. */
    std::uint64_t recordsRead() const { return count; }

    /** Lines skipped because they were malformed. */
    std::uint64_t malformedLines() const { return malformed; }

  private:
    void fill();

    std::ifstream in;
    MemAccess buffered{};
    bool hasBuffered = false;
    std::uint64_t count = 0;
    std::uint64_t malformed = 0;
};

/** Writer for the text trace format. */
class TraceWriter
{
  public:
    /** Create/truncate @p path; throws std::runtime_error on failure. */
    explicit TraceWriter(const std::string &path);

    /** Append one record. */
    void write(const MemAccess &access);

    /** Flush and close (also done by the destructor). */
    void close();

    /** Records written so far. */
    std::uint64_t recordsWritten() const { return count; }

  private:
    std::ofstream out;
    std::uint64_t count = 0;
};

/**
 * Parse one trace line into @p access.
 * @return false if the line is a comment, blank, or malformed.
 */
bool parseTraceLine(const std::string &line, MemAccess &access);

/** Format one record as a trace line (no newline). */
std::string formatTraceLine(const MemAccess &access);

} // namespace cdir

#endif // CDIR_WORKLOAD_TRACE_HH
