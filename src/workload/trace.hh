/**
 * @file
 * Memory-trace record/replay pipeline.
 *
 * The paper drives its directories from FLEXUS full-system traces; this
 * reproduction uses synthetic generators by default but treats recorded
 * traces as first-class workload inputs. Two on-disk formats are
 * supported, selected automatically by sniffing the file:
 *
 *  - **Text** (diffable, conversion target for external tools): one
 *    access per line,
 *
 *        <core> <block-address-hex> <r|w|i>
 *
 *    ('i' marks instruction fetches, which route to the I-cache in the
 *    Shared-L2 configuration.) Lines starting with '#' are comments.
 *    Converters from gem5/champsim traces reduce to emitting this
 *    format — or the compact binary one below.
 *
 *  - **Binary** (compact, ~3-4 bytes per access): an 8-byte header —
 *    magic "CDTR", one version byte, three reserved zero bytes —
 *    followed by one record per access: a LEB128 varint packing
 *    `(core << 2) | op` (op: 0 = read, 1 = write, 2 = ifetch), then the
 *    zigzag-encoded varint delta of the block address from the previous
 *    record. Delta coding makes the hot-region locality of real traces
 *    compress into single-byte addresses.
 *
 * Everything composes through two small interfaces: `AccessSource`
 * (anything that yields MemAccess records — synthetic generators, either
 * reader) and `TraceSink` (either writer). `TraceRecorder` decorates any
 * source and tees its stream into a sink, which is how `trace_tool
 * record` and the `--trace` sweep axis capture workloads.
 */

#ifndef CDIR_WORKLOAD_TRACE_HH
#define CDIR_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace cdir {

/** Anything that yields MemAccess records. */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /** Produce the next access; only valid while !exhausted(). */
    virtual MemAccess next() = 0;

    /** True when no further accesses are available. */
    virtual bool exhausted() const = 0;
};

/** Adapter: a SyntheticWorkload as an endless AccessSource. */
class SyntheticSource : public AccessSource
{
  public:
    explicit SyntheticSource(const WorkloadParams &params)
        : workload(params)
    {}

    MemAccess next() override { return workload.next(); }
    bool exhausted() const override { return false; }

    /** Underlying generator. */
    SyntheticWorkload &generator() { return workload; }

  private:
    SyntheticWorkload workload;
};

/** Anything that consumes MemAccess records (trace writers). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one record. */
    virtual void write(const MemAccess &access) = 0;

    /**
     * Flush and close, throwing if any buffered write failed (disk
     * full, closed pipe). Destruction without close() closes the file
     * silently — always call close() when the recording matters.
     */
    virtual void close() = 0;

    /** Records written so far. */
    std::uint64_t recordsWritten() const { return count; }

  protected:
    std::uint64_t count = 0;
};

/** Reader knobs shared by both trace formats. */
struct TraceReadOptions
{
    /**
     * When non-zero, records whose core id is >= maxCores are parse
     * errors (the CMP driver indexes caches by core, so an oversized id
     * must never reach it).
     */
    std::size_t maxCores = 0;
    /**
     * Strict readers throw std::runtime_error ("path:line: message") on
     * the first parse error; tolerant readers (the default) skip the
     * record, count it in malformedRecords(), and remember the message
     * in lastError().
     */
    bool strict = false;
};

/**
 * Shared machinery of the line-oriented readers: buffered one-record
 * lookahead, comment/blank skipping, and "path:line: message" error
 * reporting with strict/tolerant modes. Derived classes supply only the
 * line grammar (native text, ChampSim-style external text).
 */
class LineTraceReader : public AccessSource
{
  public:
    MemAccess next() override;
    bool exhausted() const override { return !hasBuffered; }

    /** Records delivered so far. */
    std::uint64_t recordsRead() const { return count; }

    /** Records skipped because they were malformed. */
    std::uint64_t malformedRecords() const { return malformed; }

    /** "path:line: message" of the most recent parse error ("" if none). */
    const std::string &lastError() const { return error; }

  protected:
    /** Open @p path; throws std::runtime_error if unreadable. */
    LineTraceReader(const std::string &path, TraceReadOptions options);

    /** Buffer the first record; call once the derived grammar is
     *  constructed (a virtual cannot run from the base constructor). */
    void prime() { fill(); }

    TraceReadOptions opts;

  private:
    /**
     * Parse one line. @return false for a comment/blank line (leave
     * @p error empty) or a malformed record (@p error set).
     */
    virtual bool parseLine(const std::string &line, MemAccess &access,
                           std::string &error) const = 0;

    void fill();
    void recordError(std::uint64_t line_number, const std::string &what);

    std::string file;
    std::ifstream in;
    MemAccess buffered{};
    bool hasBuffered = false;
    std::uint64_t lineNumber = 0;
    std::uint64_t count = 0;
    std::uint64_t malformed = 0;
    std::string error;
};

/** Streaming reader for the text trace format (see file comment). */
class TextTraceReader : public LineTraceReader
{
  public:
    /** Open @p path; throws std::runtime_error if unreadable. */
    explicit TextTraceReader(const std::string &path,
                             TraceReadOptions options = {});

  private:
    bool parseLine(const std::string &line, MemAccess &access,
                   std::string &error) const override;
};

/**
 * Reader for ChampSim-style external text traces: one access per line,
 *
 *     <block-addr-hex> <core> <r|w|i>
 *
 * (the address-first column order external tools emit; `0x` prefixes
 * are accepted, `#` comments and blank lines are skipped). The
 * conversion front-end of `trace_tool convert --from=champsim` — reduce
 * any gem5/champsim/pintool capture to these lines and convert it into
 * the compact CDTR binary format. Malformed lines carry
 * "path:line: message" like every other reader.
 */
class ChampSimTraceReader : public LineTraceReader
{
  public:
    /** Open @p path; throws std::runtime_error if unreadable. */
    explicit ChampSimTraceReader(const std::string &path,
                                 TraceReadOptions options = {});

  private:
    bool parseLine(const std::string &line, MemAccess &access,
                   std::string &error) const override;
};

/** Writer for the text trace format. */
class TextTraceWriter : public TraceSink
{
  public:
    /** Create/truncate @p path; throws std::runtime_error on failure. */
    explicit TextTraceWriter(const std::string &path);

    void write(const MemAccess &access) override;
    /** @throws std::runtime_error if any buffered write failed. */
    void close() override;

  private:
    std::string file;
    std::ofstream out;
};

/** Streaming reader for the binary trace format (see file comment). */
class BinaryTraceReader : public AccessSource
{
  public:
    /**
     * Open @p path; throws std::runtime_error if unreadable or the
     * header is missing, corrupt, or of an unsupported version.
     */
    explicit BinaryTraceReader(const std::string &path,
                               TraceReadOptions options = {});

    /**
     * @throws std::runtime_error on a truncated or corrupt record —
     * unlike stray text lines, damage inside a binary stream desyncs
     * everything after it, so it is never skippable.
     */
    MemAccess next() override;
    bool exhausted() const override { return !hasBuffered; }

    /** Records delivered so far. */
    std::uint64_t recordsRead() const { return count; }

    /** Records skipped for an out-of-range core (tolerant mode only). */
    std::uint64_t malformedRecords() const { return malformed; }

    /** "path: byte N: message" of the most recent error ("" if none). */
    const std::string &lastError() const { return error; }

  private:
    void fill();
    /**
     * Decode one LEB128 varint. @return false on clean EOF before the
     * first byte; throws on EOF mid-varint or an over-long encoding.
     */
    bool readVarint(std::uint64_t &value);
    /**
     * Next raw byte through the 64 KiB block buffer (one bulk read()
     * per block instead of one istream::get() virtual-call round trip
     * per byte — the decode hot path). @return EOF at end of stream.
     */
    int
    nextByte()
    {
        if (blockPos == blockLen && !refillBlock())
            return std::char_traits<char>::eof();
        return static_cast<unsigned char>(block[blockPos++]);
    }
    bool refillBlock();
    [[noreturn]] void corrupt(const std::string &what);

    std::string file;
    TraceReadOptions opts;
    std::ifstream in;
    std::vector<char> block;      //!< 64 KiB decode buffer
    std::size_t blockPos = 0;     //!< consumed bytes in @ref block
    std::size_t blockLen = 0;     //!< valid bytes in @ref block
    MemAccess buffered{};
    bool hasBuffered = false;
    BlockAddr prevAddr = 0;
    std::uint64_t offset = 8; //!< bytes consumed (header included)
    std::uint64_t count = 0;
    std::uint64_t malformed = 0;
    std::string error;
};

/** Writer for the binary trace format. */
class BinaryTraceWriter : public TraceSink
{
  public:
    /** Create/truncate @p path; throws std::runtime_error on failure. */
    explicit BinaryTraceWriter(const std::string &path);

    void write(const MemAccess &access) override;
    /** @throws std::runtime_error if any buffered write failed. */
    void close() override;

  private:
    void writeVarint(std::uint64_t value);

    std::string file;
    std::ofstream out;
    BlockAddr prevAddr = 0;
};

/**
 * AccessSource decorator that tees every delivered record into a sink —
 * point it at any workload (synthetic, another trace) to record it.
 */
class TraceRecorder : public AccessSource
{
  public:
    /** Neither @p inner nor @p sink is owned; both must outlive this. */
    TraceRecorder(AccessSource &inner, TraceSink &sink)
        : source(inner), out(sink)
    {}

    MemAccess
    next() override
    {
        const MemAccess access = source.next();
        out.write(access);
        return access;
    }

    bool exhausted() const override { return source.exhausted(); }

  private:
    AccessSource &source;
    TraceSink &out;
};

/**
 * Parse one text trace line into @p access.
 * @param error if non-null, receives the reason on failure ("" for
 *              skippable comment/blank lines).
 * @return false if the line is a comment, blank, or malformed — a core
 * id that overflows CoreId (or is >= @p max_cores when non-zero) is
 * malformed, never silently wrapped.
 */
bool parseTraceLine(const std::string &line, MemAccess &access,
                    std::string *error = nullptr,
                    std::size_t max_cores = 0);

/** Format one record as a text trace line (no newline). */
std::string formatTraceLine(const MemAccess &access);

/**
 * Parse one ChampSim-style external trace line
 * (`<block-addr-hex> <core> <r|w|i>`) into @p access — the same
 * contract as parseTraceLine, with the external column order and an
 * optional `0x` address prefix.
 */
bool parseChampSimLine(const std::string &line, MemAccess &access,
                       std::string *error = nullptr,
                       std::size_t max_cores = 0);

/** True iff @p path starts with the binary trace magic. */
bool traceFileIsBinary(const std::string &path);

/** Open @p path with the format-appropriate reader (sniffs the magic). */
std::unique_ptr<AccessSource> makeTraceReader(const std::string &path,
                                              TraceReadOptions options = {});

/** Create a sink at @p path in the requested format. */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &path,
                                         bool binary = true);

/**
 * WorkloadParams naming @p path as a trace source: sweep grid cells
 * built from it replay the file instead of running a generator (see
 * runExperiment). The label/name is the file's stem.
 */
WorkloadParams traceWorkloadParams(const std::string &path);

/**
 * Trace files behind @p path: the file itself (taken as-is), or the
 * directory's regular files in sorted order (a recorded-trace corpus
 * as a sweep axis) — directory entries that are not recognizably
 * traces (binary magic, or a first data line that parses) are skipped
 * so stray files (READMEs, checksums) cannot poison a sweep.
 * @throws std::runtime_error if nothing qualifies.
 */
std::vector<std::string> listTraceFiles(const std::string &path);

} // namespace cdir

#endif // CDIR_WORKLOAD_TRACE_HH
