/**
 * @file
 * Phased scenario engine: dynamic workloads as a first-class subsystem.
 *
 * Every other workload in the repository is *stationary* — a
 * SyntheticWorkload draws from one fixed sharing profile and a trace
 * replays a frozen stream — so the behaviours the paper argues matter
 * most (gradual frame-by-frame eviction, stale-entry accumulation,
 * invalidation pressure when sharing patterns *change*, §3.2/§5.4) are
 * never exercised over time. A `Scenario` makes workload dynamism
 * declarative: a schedule of timed **phases**, each wrapping a
 * `WorkloadParams` (synthetic knobs or a trace segment), plus
 * **transition events** applied when a phase begins:
 *
 *  - *thread migration*: a logical thread keeps its private footprint
 *    but starts issuing from another physical core — the classic
 *    OS-rebalance pattern that strands stale directory entries naming
 *    the old core and drags the region into a second cache;
 *  - *core off-/on-lining*: consolidation — an offline physical core
 *    issues nothing, so its cached blocks decay out of the directory
 *    only as conflicts evict them;
 *  - *footprint growth/shrink*: phases simply carry different
 *    `WorkloadParams` footprints (the region layout is rank-stable, so
 *    a grown footprint shares its hot head with the previous phase);
 *  - *bursty producer-consumer sharing*: a per-phase overlay that
 *    interleaves a write-then-fan-out ring into the base stream.
 *
 * `ScenarioWorkload` exposes a scenario as a plain `AccessSource`, so it
 * composes unchanged with the recorder (record a scenario to a trace),
 * the trace replay pipeline, the sweep engine's cells, and sharded
 * execution — every consumer constructs its own instance, so scenario
 * sweeps stay bit-identical at any `--jobs`/`--shards` value.
 *
 * Scenarios come from three places: built-in presets (`scenarioPreset`),
 * a line-oriented text format (`parseScenarioFile`, same error
 * conventions as the trace readers: "path:line: message"), or
 * programmatic construction (see examples/phased_scenario.cc).
 */

#ifndef CDIR_WORKLOAD_SCENARIO_HH
#define CDIR_WORKLOAD_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/feedback.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace cdir {

/** One transition applied when a phase begins (in declaration order). */
struct ScenarioEvent
{
    enum class Kind
    {
        /** Logical thread @ref from starts issuing from physical core
         *  @ref to (its private region follows it). */
        Migrate,
        /** Physical core @ref from stops issuing accesses. */
        Offline,
        /** Physical core @ref from resumes issuing accesses. */
        Online,
    };

    Kind kind = Kind::Migrate;
    CoreId from = 0; //!< Migrate: logical thread; Offline/Online: core
    CoreId to = 0;   //!< Migrate only: destination physical core
};

/** Bursty producer-consumer overlay mixed into one phase's stream. */
struct BurstParams
{
    /** Probability an access is a burst access (0 = overlay off). */
    double fraction = 0.0;
    /** Ring of shared blocks cycled by the producer. */
    std::uint64_t ringBlocks = 256;
    /** Physical core that writes the ring. */
    CoreId producer = 0;
};

/** One timed phase of a scenario. */
struct ScenarioPhase
{
    std::string label;
    /** Absolute access index at which the phase begins; phases must
     *  tile the schedule exactly (no gaps, no overlap). */
    std::uint64_t startAccess = 0;
    /** Accesses the phase emits (>= 1). */
    std::uint64_t accesses = 0;
    /** Base stream: synthetic knobs, or a trace segment when
     *  workload.tracePath is set (a plain segment shorter than the
     *  phase simply ends the phase early; a *windowed* segment — see
     *  traceOffset / traceCursor — must cover the phase). */
    WorkloadParams workload;
    /**
     * Records of the trace segment skipped before the phase's first
     * access (trace phases only), so one long trace can serve several
     * phases as distinct windows. A windowed phase that runs dry
     * mid-phase throws instead of ending early: the declared schedule
     * (phase labels, loop period) must never silently shift.
     */
    std::uint64_t traceOffset = 0;
    /**
     * Persistent segment cursor (trace phases only): the phase's reader
     * survives phase exits and loop wraps, so each pass through the
     * phase consumes the *next* window of the trace instead of
     * restarting at traceOffset. The offset is applied once, when the
     * reader first opens. Like traceOffset, running dry mid-phase
     * throws rather than shifting the schedule.
     */
    bool traceCursor = false;
    /** Transitions applied when the phase begins. */
    std::vector<ScenarioEvent> events;
    /** Producer-consumer overlay (fraction 0 = off). */
    BurstParams burst;
    /**
     * Event triggers (`until occupancy>0.8`, `when p99>120`): the
     * phase ends early when any trigger is satisfied by a feedback
     * snapshot captured *after* the phase began; @ref accesses then
     * acts as the timeout cap. Requires a feedback channel
     * (runExperiment attaches one automatically); like a short plain
     * trace segment, an early exit shifts the emitted stream ahead of
     * the declared schedule — deterministically, because snapshots
     * fire at exact access counts (see workload/feedback.hh).
     */
    std::vector<PhaseTrigger> triggers;
};

/** A schedule of timed phases (see file comment). */
struct Scenario
{
    std::string name = "scenario";
    /** Physical cores the scenario issues from (core ids < numCores). */
    std::size_t numCores = 16;
    /**
     * Loop the schedule when the last phase ends (the default, so a
     * scenario behaves like the endless synthetic generators and the
     * warmup/measure lengths control the run). Each wrap restarts from
     * a clean slate: identity thread mapping, every core online.
     */
    bool loop = true;
    /**
     * Accesses between feedback probe captures for triggered phases
     * (`probe <N>` in the text format); 0 = the default interval
     * (kDefaultProbeEvery). Only consulted when some phase declares a
     * trigger.
     */
    std::uint64_t probeEvery = 0;
    std::vector<ScenarioPhase> phases;

    /** Accesses in one pass of the schedule. */
    std::uint64_t totalAccesses() const;

    /**
     * Phase active at absolute access @p index (looping scenarios wrap
     * modulo totalAccesses()). Requires a validated scenario. The
     * tiling assumes every phase emits its declared length: a plain
     * trace segment shorter than its phase ends the phase early,
     * shifting the emitted stream ahead of this schedule (labels and
     * the loop period then describe the declaration, not the stream);
     * a *windowed* segment (traceOffset / traceCursor) instead throws
     * when it cannot cover its phase, so windowed schedules never
     * shift.
     */
    const ScenarioPhase &phaseAt(std::uint64_t index) const;

    /**
     * Check the schedule: phases tile exactly from access 0 (a phase
     * that starts early *overlaps* its predecessor; one that starts
     * late leaves a *gap* — both rejected), every phase is non-empty,
     * event/burst core ids are < numCores, burst fractions are
     * probabilities, and at least one core is online in every phase.
     * @throws std::invalid_argument naming the offending phase.
     */
    void validate() const;
};

/** Default accesses between feedback probe captures. */
inline constexpr std::uint64_t kDefaultProbeEvery = 10'000;

/**
 * A scenario as an AccessSource: emits each phase's base stream (with
 * the burst overlay mixed in) through the live thread-to-core mapping
 * and online set. Deterministic: two instances of the same scenario
 * yield identical streams, so record -> replay through the trace
 * pipeline is bit-identical to the live run.
 *
 * Scenarios with *triggered* phases are closed-loop FeedbackConsumers:
 * the driver (runExperiment) attaches a probe channel, and a phase
 * with triggers ends as soon as a snapshot captured after the phase
 * began satisfies one — still deterministic, because snapshots fire at
 * exact access counts, so the recorded stream of a closed-loop run
 * replays as an ordinary trace. Without an attached channel triggers
 * never fire (phases run to their timeout caps); drivers that cannot
 * attach one should refuse closed-loop scenarios loudly (trace_tool
 * record does).
 */
class ScenarioWorkload : public AccessSource, public FeedbackConsumer
{
  public:
    /** One trigger firing: which phase/trigger fired on which
     *  snapshot. Deterministic at any `--jobs` x `--shards`. */
    struct TriggerFiring
    {
        std::uint32_t phase = 0;   //!< phase index that ended early
        std::uint32_t trigger = 0; //!< index into the phase's triggers
        std::uint64_t sequence = 0;    //!< snapshot sequence that fired
        std::uint64_t accessIndex = 0; //!< snapshot's access position
    };

    /** Validates @p scenario (throws std::invalid_argument). */
    explicit ScenarioWorkload(const Scenario &scenario);

    MemAccess next() override;
    bool exhausted() const override;

    /** The schedule driving this source. */
    const Scenario &scenario() const { return script; }

    /** Label of the phase the next access falls into. */
    const std::string &currentPhaseLabel() const;

    /** Physical core logical thread @p thread currently issues from. */
    CoreId coreOf(CoreId thread) const { return threadToCore[thread]; }

    /** True iff physical core @p core is online. */
    bool coreOnline(CoreId core) const { return online[core]; }

    // FeedbackConsumer interface (see class comment).
    bool wantsFeedback() const override;
    std::uint64_t probeInterval() const override;
    void attachFeedback(const FeedbackChannel &channel) override;
    bool needsTiming() const override;
    std::uint64_t
    feedbackEventCount() const override
    {
        return triggerLog.size();
    }
    std::uint64_t feedbackDigest() const override;

    /** Trigger firings so far, in firing order. */
    const std::vector<TriggerFiring> &firings() const
    {
        return triggerLog;
    }

  private:
    void enterPhase(std::size_t index);
    void applyEvent(const ScenarioEvent &event);
    MemAccess burstAccess();
    /** Advance past finished phases; false when the scenario ends. */
    bool ensurePhase();
    /** Buffer the next access (one-record lookahead, like the trace
     *  readers), or clear hasBuffered at the end of the schedule —
     *  which is how exhausted() stays exact even when a trace segment
     *  runs dry mid-phase. */
    void fill();

    Scenario script;
    std::size_t phaseIndex = 0;
    std::uint64_t emittedInPhase = 0;
    /** Base stream of the current phase (synthetic or trace segment);
     *  empty while a cursor phase runs (its reader lives in
     *  cursorReaders). */
    std::unique_ptr<AccessSource> phaseSource;
    /** Per-phase persistent readers for traceCursor phases, surviving
     *  phase exits and loop wraps (indexed by phase). */
    std::vector<std::unique_ptr<AccessSource>> cursorReaders;
    /** The stream fill() draws from: phaseSource, or the current
     *  phase's cursor reader. Non-owning. */
    AccessSource *phaseStream = nullptr;
    /** Burst-mixing RNG, reseeded per phase entry. */
    Rng burstRng{0};
    std::uint64_t burstSeq = 0;
    /** Online physical cores other than the producer, in id order. */
    std::vector<CoreId> burstConsumers;
    std::vector<CoreId> threadToCore; //!< logical thread -> physical core
    std::vector<bool> online;         //!< physical core online?
    MemAccess buffered{};
    bool hasBuffered = false;
    /** Phase the buffered access belongs to (its events are applied). */
    std::size_t bufferedPhase = 0;
    /**
     * Deferred dry-out error: when the one-record lookahead discovers a
     * windowed trace segment ran dry, the failure is buffered here
     * instead of thrown from fill(), so the record already buffered is
     * still delivered; the *following* next() call throws. While the
     * error is pending exhausted() stays false, keeping drivers calling
     * next() so the failure is never silently swallowed.
     */
    std::string deferredError;

    // --- closed-loop state (empty-trigger scenarios never touch it) ---
    /** Attached feedback channel (nullptr = open loop). */
    const FeedbackChannel *feed = nullptr;
    /** Snapshot sequence current at phase entry: only snapshots
     *  captured after the phase began may end it. */
    std::uint64_t phaseEntrySequence = 0;
    /** Last snapshot sequence already evaluated against the current
     *  phase's triggers (each snapshot is tested once). */
    std::uint64_t evaluatedSequence = 0;
    /** Firings so far (feedbackDigest() hashes this log). */
    std::vector<TriggerFiring> triggerLog;
};

// --- scenario text format ----------------------------------------------------

/**
 * Parse the line-oriented scenario format:
 *
 *     # comment
 *     scenario <name>
 *     cores <N>
 *     probe <N>                           # feedback probe interval
 *     phase <label> <accesses>            # starts where the last ended
 *     phase <label> <start> <accesses>    # explicit start (validated)
 *       preset <DB2|ocean|...|synthetic>  # base WorkloadParams
 *       set <knob>=<value>                # override a synthetic knob
 *       trace <path> [offset=N] [cursor]  # trace segment instead
 *       migrate <thread> <core>
 *       offline <core>
 *       online <core>
 *       burst fraction=<f> ring=<blocks> producer=<core>
 *       until <metric><op><value>         # event trigger: end early
 *       when <metric><op><value>          # alias of `until`
 *
 * `set` knobs: code-blocks, shared-blocks, private-blocks, instr-frac,
 * shared-frac, write-frac, code-theta, shared-theta, private-theta,
 * seed. `trace` options: `offset=N` skips the segment's first N records
 * and `cursor` makes the reader persistent across passes (windowing one
 * long trace — see ScenarioPhase); either one makes the segment
 * *windowed*, rejected at run time if it cannot cover its phase.
 * Directives before the first `phase` configure the scenario;
 * `loop <on|off>` controls wrapping. Errors (unknown directive/event,
 * malformed value, core id out of range) throw std::runtime_error
 * carrying "<name>:<line>: message"; schedule errors (overlapping
 * phases, gaps) are reported with the same prefix after parsing.
 */
Scenario parseScenarioText(const std::string &text,
                           const std::string &name);

/** Read and parse @p path; throws std::runtime_error (file errors and
 *  parse errors both carry the path). */
Scenario parseScenarioFile(const std::string &path);

// --- presets -----------------------------------------------------------------

/** Names of the built-in scenario presets. */
const std::vector<std::string> &scenarioPresetNames();

/**
 * Build a preset schedule for a @p num_cores CMP. @p phase_accesses
 * scales the schedule (each preset phase is one or a few multiples of
 * it). @throws std::invalid_argument for an unknown name.
 *
 *  - "migration-storm": OLTP profile; every phase migrates a rotating
 *    pair of threads, piling stale entries onto the directory.
 *  - "phase-oltp-dss": OLTP -> DSS -> OLTP phase change (mix and
 *    footprint shift, the classic daily batch window).
 *  - "diurnal": day / dusk / night / morning — footprints shrink, half
 *    the cores consolidate offline overnight, then everything returns.
 *  - "producer-ring": light private load with a producer-consumer ring
 *    burst phase (invalidation pressure), then quiescence.
 *  - "consolidation": threads progressively migrate onto fewer cores as
 *    the donors go offline, then the CMP repopulates.
 *  - "footprint-ramp": shared footprint grows phase over phase, then
 *    collapses back (directory fill/drain).
 */
Scenario scenarioPreset(const std::string &name, std::size_t num_cores,
                        std::uint64_t phase_accesses = 250'000);

/**
 * Resolve @p spec — a preset name, else a scenario file path — for a
 * @p num_cores CMP. A file whose `cores` exceeds @p num_cores is
 * rejected (mirrors the trace readers' core-id bound).
 */
Scenario resolveScenario(const std::string &spec, std::size_t num_cores);

/**
 * Expand a `--scenario=` argument into individual specs: split on
 * commas (empty items dropped), with "all" expanding to every preset
 * name wherever it appears ("all,my.scn" works). The one grammar
 * shared by the sweep axis (appendScenarioWorkloads) and the
 * scenario-driven harnesses.
 */
std::vector<std::string> splitScenarioSpecs(const std::string &specs);

/**
 * WorkloadParams naming @p spec as a scenario source: experiment cells
 * built from it construct a ScenarioWorkload instead of a stationary
 * generator (see runExperiment). The label/name is the preset name or
 * the file's stem.
 */
WorkloadParams scenarioWorkloadParams(const std::string &spec);

} // namespace cdir

#endif // CDIR_WORKLOAD_SCENARIO_HH
