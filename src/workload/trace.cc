#include "workload/trace.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cdir {

namespace {

/** Binary format framing (see trace.hh file comment). */
constexpr char binaryMagic[4] = {'C', 'D', 'T', 'R'};
constexpr std::uint8_t binaryVersion = 1;
constexpr std::size_t binaryHeaderBytes = 8;

/** Operation codes packed into the low bits of the record header. */
enum BinaryOp : std::uint64_t
{
    opRead = 0,
    opWrite = 1,
    opIfetch = 2,
};

std::uint64_t
packHeader(const MemAccess &access)
{
    const std::uint64_t op = access.instruction
                                 ? opIfetch
                                 : (access.write ? opWrite : opRead);
    return (std::uint64_t{access.core} << 2) | op;
}

std::uint64_t
zigzagEncode(std::uint64_t delta)
{
    const auto signed_delta = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(signed_delta) << 1) ^
           static_cast<std::uint64_t>(signed_delta >> 63);
}

std::uint64_t
zigzagDecode(std::uint64_t encoded)
{
    return (encoded >> 1) ^ (~(encoded & 1) + 1);
}

} // namespace

// --- text format -------------------------------------------------------------

namespace {

// Field validators shared by the native and ChampSim line grammars —
// only the column order (and the external trailing-field check)
// differs between the two parsers.

/** True for a comment or blank line (skippable without error). */
bool
skippableLine(const std::string &line)
{
    const std::size_t begin = line.find_first_not_of(" \t");
    return begin == std::string::npos || line[begin] == '#';
}

/** Validate the <r|w|i> token; @p why receives the reason on failure. */
bool
checkOpKind(const std::string &kind, std::string &why)
{
    if (kind.size() == 1 &&
        (kind[0] == 'r' || kind[0] == 'w' || kind[0] == 'i'))
        return true;
    why = "bad operation '" + kind + "' (expected r, w, or i)";
    return false;
}

/** Bounds-check a parsed core id against CoreId and @p max_cores. */
bool
checkCoreId(std::uint64_t core, std::size_t max_cores, std::string &why)
{
    if (core > std::numeric_limits<CoreId>::max()) {
        why = "core id " + std::to_string(core) + " overflows CoreId";
        return false;
    }
    if (max_cores != 0 && core >= max_cores) {
        why = "core id " + std::to_string(core) +
              " out of range (trace limited to " +
              std::to_string(max_cores) + " cores)";
        return false;
    }
    return true;
}

/** Whole-token hex block address (bare or 0x-prefixed). */
bool
parseHexAddr(const std::string &text, BlockAddr &addr)
{
    char *end = nullptr;
    addr = std::strtoull(text.c_str(), &end, 16);
    return end != text.c_str() && *end == '\0';
}

} // namespace

bool
parseTraceLine(const std::string &line, MemAccess &access,
               std::string *error, std::size_t max_cores)
{
    if (error)
        error->clear();
    if (skippableLine(line))
        return false;

    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    std::istringstream is(line);
    std::uint64_t core = 0;
    std::string addr_text, kind, why;
    if (!(is >> core >> addr_text >> kind))
        return fail("expected '<core> <block-addr-hex> <r|w|i>'");
    if (!checkOpKind(kind, why) || !checkCoreId(core, max_cores, why))
        return fail(why);
    BlockAddr addr = 0;
    if (!parseHexAddr(addr_text, addr))
        return fail("bad block address '" + addr_text + "'");

    access.core = static_cast<CoreId>(core);
    access.addr = addr;
    access.write = kind[0] == 'w';
    access.instruction = kind[0] == 'i';
    return true;
}

std::string
formatTraceLine(const MemAccess &access)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%u %llx %c", access.core,
                  static_cast<unsigned long long>(access.addr),
                  access.instruction ? 'i' : (access.write ? 'w' : 'r'));
    return buf;
}

bool
parseChampSimLine(const std::string &line, MemAccess &access,
                  std::string *error, std::size_t max_cores)
{
    if (error)
        error->clear();
    if (skippableLine(line))
        return false;

    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    std::istringstream is(line);
    std::string addr_text, kind, extra, why;
    std::uint64_t core = 0;
    if (!(is >> addr_text >> core >> kind))
        return fail("expected '<block-addr-hex> <core> <r|w|i>'");
    // Strict import contract: an unreduced external capture (extra
    // latency/PC columns) must abort, never be silently truncated.
    if (is >> extra && extra[0] != '#')
        return fail("trailing field '" + extra +
                    "' (reduce the capture to "
                    "'<block-addr-hex> <core> <r|w|i>')");
    if (!checkOpKind(kind, why) || !checkCoreId(core, max_cores, why))
        return fail(why);
    BlockAddr addr = 0;
    if (!parseHexAddr(addr_text, addr))
        return fail("bad block address '" + addr_text + "'");

    access.core = static_cast<CoreId>(core);
    access.addr = addr;
    access.write = kind[0] == 'w';
    access.instruction = kind[0] == 'i';
    return true;
}

LineTraceReader::LineTraceReader(const std::string &path,
                                 TraceReadOptions options)
    : opts(options), file(path), in(path)
{
    if (!in.is_open())
        throw std::runtime_error("cannot open trace: " + path);
}

void
LineTraceReader::recordError(std::uint64_t line_number,
                             const std::string &what)
{
    ++malformed;
    error = file + ":" + std::to_string(line_number) + ": " + what;
    if (opts.strict)
        throw std::runtime_error(error);
}

void
LineTraceReader::fill()
{
    hasBuffered = false;
    std::string line, parse_error;
    while (std::getline(in, line)) {
        ++lineNumber;
        if (parseLine(line, buffered, parse_error)) {
            hasBuffered = true;
            return;
        }
        if (!parse_error.empty())
            recordError(lineNumber, parse_error);
    }
}

MemAccess
LineTraceReader::next()
{
    if (!hasBuffered)
        throw std::runtime_error("trace exhausted: " + file);
    const MemAccess result = buffered;
    ++count;
    fill();
    return result;
}

TextTraceReader::TextTraceReader(const std::string &path,
                                 TraceReadOptions options)
    : LineTraceReader(path, options)
{
    prime();
}

bool
TextTraceReader::parseLine(const std::string &line, MemAccess &access,
                           std::string &error) const
{
    return parseTraceLine(line, access, &error, opts.maxCores);
}

ChampSimTraceReader::ChampSimTraceReader(const std::string &path,
                                         TraceReadOptions options)
    : LineTraceReader(path, options)
{
    prime();
}

bool
ChampSimTraceReader::parseLine(const std::string &line, MemAccess &access,
                               std::string &error) const
{
    return parseChampSimLine(line, access, &error, opts.maxCores);
}

TextTraceWriter::TextTraceWriter(const std::string &path)
    : file(path), out(path)
{
    if (!out.is_open())
        throw std::runtime_error("cannot create trace: " + path);
    out << "# cuckoo-directory trace v1: <core> <block-addr-hex> <r|w|i>\n";
}

void
TextTraceWriter::write(const MemAccess &access)
{
    out << formatTraceLine(access) << '\n';
    ++count;
}

void
TextTraceWriter::close()
{
    if (out.is_open()) {
        out.flush();
        // Stream failbits are sticky, so one check here surfaces any
        // buffered write failure (ENOSPC, closed pipe) of the run.
        if (!out)
            throw std::runtime_error("write failure on trace: " + file);
        out.close();
    }
}

// --- binary format -----------------------------------------------------------

BinaryTraceReader::BinaryTraceReader(const std::string &path,
                                     TraceReadOptions options)
    : file(path), opts(options), in(path, std::ios::binary)
{
    if (!in.is_open())
        throw std::runtime_error("cannot open trace: " + path);

    char header[binaryHeaderBytes] = {};
    in.read(header, sizeof header);
    if (in.gcount() != static_cast<std::streamsize>(sizeof header) ||
        !std::equal(binaryMagic, binaryMagic + sizeof binaryMagic, header))
        throw std::runtime_error(path +
                                 ": not a binary trace (bad magic)");
    const auto version = static_cast<std::uint8_t>(header[4]);
    if (version != binaryVersion)
        throw std::runtime_error(
            path + ": unsupported binary trace version " +
            std::to_string(version) + " (expected " +
            std::to_string(binaryVersion) + ")");
    block.resize(std::size_t{64} * 1024);
    fill();
}

bool
BinaryTraceReader::refillBlock()
{
    in.read(block.data(), static_cast<std::streamsize>(block.size()));
    blockLen = static_cast<std::size_t>(in.gcount());
    blockPos = 0;
    return blockLen != 0;
}

void
BinaryTraceReader::corrupt(const std::string &what)
{
    error = file + ": byte " + std::to_string(offset) + ": " + what;
    throw std::runtime_error(error);
}

bool
BinaryTraceReader::readVarint(std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    for (;;) {
        const int byte = nextByte();
        if (byte == std::char_traits<char>::eof()) {
            if (shift == 0)
                return false;
            corrupt("truncated record (EOF mid-varint)");
        }
        ++offset;
        if (shift >= 64)
            corrupt("over-long varint (more than 10 bytes)");
        // The 10th byte can only contribute bit 63: any higher payload
        // bit (or a continuation bit) is a non-canonical encoding that
        // would silently lose value bits — reject it as corruption.
        if (shift == 63 && (byte & 0xfe) != 0)
            corrupt("over-long varint (non-canonical final byte)");
        value |= (std::uint64_t{static_cast<unsigned>(byte)} & 0x7f)
                 << shift;
        if ((byte & 0x80) == 0)
            return true;
        shift += 7;
    }
}

void
BinaryTraceReader::fill()
{
    hasBuffered = false;
    for (;;) {
        std::uint64_t header = 0;
        if (!readVarint(header))
            return; // clean EOF at a record boundary
        std::uint64_t encoded_delta = 0;
        if (!readVarint(encoded_delta))
            corrupt("truncated record (missing address delta)");
        prevAddr += zigzagDecode(encoded_delta);

        const std::uint64_t op = header & 3;
        const std::uint64_t core = header >> 2;
        if (op > opIfetch)
            corrupt("bad operation code " + std::to_string(op));
        if (core > std::numeric_limits<CoreId>::max())
            corrupt("core id " + std::to_string(core) +
                    " overflows CoreId");
        if (opts.maxCores != 0 && core >= opts.maxCores) {
            // Out-of-range cores are data errors, not framing errors:
            // the stream stays in sync, so tolerant readers may skip.
            ++malformed;
            error = file + ": byte " + std::to_string(offset) +
                    ": core id " + std::to_string(core) +
                    " out of range (trace limited to " +
                    std::to_string(opts.maxCores) + " cores)";
            if (opts.strict)
                throw std::runtime_error(error);
            continue;
        }

        buffered.core = static_cast<CoreId>(core);
        buffered.addr = prevAddr;
        buffered.write = op == opWrite;
        buffered.instruction = op == opIfetch;
        hasBuffered = true;
        return;
    }
}

MemAccess
BinaryTraceReader::next()
{
    if (!hasBuffered)
        throw std::runtime_error("trace exhausted: " + file);
    const MemAccess result = buffered;
    ++count;
    fill();
    return result;
}

BinaryTraceWriter::BinaryTraceWriter(const std::string &path)
    : file(path), out(path, std::ios::binary)
{
    if (!out.is_open())
        throw std::runtime_error("cannot create trace: " + path);
    char header[binaryHeaderBytes] = {};
    std::copy(binaryMagic, binaryMagic + sizeof binaryMagic, header);
    header[4] = static_cast<char>(binaryVersion);
    out.write(header, sizeof header);
}

void
BinaryTraceWriter::writeVarint(std::uint64_t value)
{
    do {
        std::uint8_t byte = value & 0x7f;
        value >>= 7;
        if (value != 0)
            byte |= 0x80;
        out.put(static_cast<char>(byte));
    } while (value != 0);
}

void
BinaryTraceWriter::write(const MemAccess &access)
{
    writeVarint(packHeader(access));
    writeVarint(zigzagEncode(access.addr - prevAddr));
    prevAddr = access.addr;
    ++count;
}

void
BinaryTraceWriter::close()
{
    if (out.is_open()) {
        out.flush();
        if (!out)
            throw std::runtime_error("write failure on trace: " + file);
        out.close();
    }
}

// --- format-agnostic helpers -------------------------------------------------

bool
traceFileIsBinary(const std::string &path)
{
    std::ifstream probe(path, std::ios::binary);
    if (!probe.is_open())
        throw std::runtime_error("cannot open trace: " + path);
    char magic[sizeof binaryMagic] = {};
    probe.read(magic, sizeof magic);
    return probe.gcount() == static_cast<std::streamsize>(sizeof magic) &&
           std::equal(binaryMagic, binaryMagic + sizeof binaryMagic, magic);
}

std::unique_ptr<AccessSource>
makeTraceReader(const std::string &path, TraceReadOptions options)
{
    if (traceFileIsBinary(path))
        return std::make_unique<BinaryTraceReader>(path, options);
    return std::make_unique<TextTraceReader>(path, options);
}

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &path, bool binary)
{
    if (binary)
        return std::make_unique<BinaryTraceWriter>(path);
    return std::make_unique<TextTraceWriter>(path);
}

WorkloadParams
traceWorkloadParams(const std::string &path)
{
    WorkloadParams params;
    params.tracePath = path;
    const std::string stem = std::filesystem::path(path).stem().string();
    params.name = stem.empty() ? path : stem;
    return params;
}

namespace {

/**
 * Cheap recognizer for corpus sweeps: the binary magic, or a text file
 * whose first non-comment line parses as a record. Keeps stray files in
 * a trace directory (READMEs, checksums) out of the workload axis.
 */
bool
looksLikeTrace(const std::string &path)
{
    try {
        if (traceFileIsBinary(path))
            return true;
    } catch (const std::runtime_error &) {
        return false; // unreadable: not sweepable
    }
    std::ifstream in(path);
    if (!in.is_open())
        return false;
    std::string line;
    MemAccess scratch;
    for (std::size_t scanned = 0; scanned < 64 && std::getline(in, line);
         ++scanned) {
        const std::size_t begin = line.find_first_not_of(" \t");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        return parseTraceLine(line, scratch);
    }
    return false; // comments/blank only: no evidence of records
}

} // namespace

std::vector<std::string>
listTraceFiles(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    if (fs::is_directory(path)) {
        for (const fs::directory_entry &entry : fs::directory_iterator(path))
            if (entry.is_regular_file() &&
                looksLikeTrace(entry.path().string()))
                files.push_back(entry.path().string());
        std::sort(files.begin(), files.end());
    } else if (fs::is_regular_file(path)) {
        // An explicitly named file is never second-guessed; format
        // errors surface through the reader with full diagnostics.
        files.push_back(path);
    }
    if (files.empty())
        throw std::runtime_error("no trace files at: " + path);
    return files;
}

} // namespace cdir
