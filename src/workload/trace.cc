#include "workload/trace.hh"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cdir {

bool
parseTraceLine(const std::string &line, MemAccess &access)
{
    std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#')
        return false;

    std::istringstream is(line);
    std::uint64_t core = 0;
    std::string addr_text, kind;
    if (!(is >> core >> addr_text >> kind))
        return false;
    if (kind.size() != 1 ||
        (kind[0] != 'r' && kind[0] != 'w' && kind[0] != 'i'))
        return false;

    char *end = nullptr;
    const BlockAddr addr = std::strtoull(addr_text.c_str(), &end, 16);
    if (end == addr_text.c_str() || *end != '\0')
        return false;

    access.core = static_cast<CoreId>(core);
    access.addr = addr;
    access.write = kind[0] == 'w';
    access.instruction = kind[0] == 'i';
    return true;
}

std::string
formatTraceLine(const MemAccess &access)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%u %llx %c", access.core,
                  static_cast<unsigned long long>(access.addr),
                  access.instruction ? 'i' : (access.write ? 'w' : 'r'));
    return buf;
}

TraceReader::TraceReader(const std::string &path) : in(path)
{
    if (!in.is_open())
        throw std::runtime_error("cannot open trace: " + path);
    fill();
}

void
TraceReader::fill()
{
    hasBuffered = false;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t begin = line.find_first_not_of(" \t");
        const bool skippable =
            begin == std::string::npos || line[begin] == '#';
        if (parseTraceLine(line, buffered)) {
            hasBuffered = true;
            return;
        }
        if (!skippable)
            ++malformed;
    }
}

MemAccess
TraceReader::next()
{
    if (!hasBuffered)
        throw std::runtime_error("trace exhausted");
    const MemAccess result = buffered;
    ++count;
    fill();
    return result;
}

TraceWriter::TraceWriter(const std::string &path) : out(path)
{
    if (!out.is_open())
        throw std::runtime_error("cannot create trace: " + path);
    out << "# cuckoo-directory trace v1: <core> <block-addr-hex> <r|w|i>\n";
}

void
TraceWriter::write(const MemAccess &access)
{
    out << formatTraceLine(access) << '\n';
    ++count;
}

void
TraceWriter::close()
{
    if (out.is_open()) {
        out.flush();
        out.close();
    }
}

} // namespace cdir
