#include "workload/workload.hh"

#include <cassert>

namespace cdir {

namespace {

/**
 * Region bases in block-address space, 2^33 blocks apart so scattered
 * pages never collide across regions (48-bit physical space, Table 1).
 */
constexpr BlockAddr regionStride = 1ull << 33;
constexpr BlockAddr codeRegion = 1 * regionStride;
constexpr BlockAddr sharedRegion = 2 * regionStride;
constexpr BlockAddr privateRegion = 4 * regionStride;

/** Blocks per page: 8KB pages (Table 1) of 64B blocks. */
constexpr std::uint64_t pageBlocks = 128;

/**
 * Page colors preserved by the allocator: Solaris 8 (the paper's OS)
 * colors physical pages so that a page's low frame bits match its
 * virtual page number modulo the color count (1MB L2 / 8KB pages = 128
 * colors). Higher frame bits are effectively random.
 *
 * This is the address structure the directory experiments hinge on:
 * threads allocating mirrored structures at the same virtual offsets
 * get the *same color bits* on every core, so their blocks collide in
 * low-order-indexed (Sparse) directory sets 16 deep — the Fig. 3
 * conflict — while skewed/Cuckoo hashing folds in the randomized high
 * frame bits and disperses them.
 */
constexpr std::uint64_t pageColors = 128;

/**
 * Map a region-relative block rank to a physical block offset with
 * page-coloring structure: the color bits (virtual page mod 128) are
 * preserved, the higher frame bits are a salted bijective scramble.
 * The mapping is injective per salt, so footprint sizes are exact.
 */
BlockAddr
scatterPages(std::uint64_t salt, std::uint64_t rank)
{
    const std::uint64_t page = rank / pageBlocks;
    const std::uint64_t offset = rank % pageBlocks;
    const std::uint64_t color = page % pageColors;
    const std::uint64_t group = page / pageColors;
    const std::uint64_t frame_high =
        ((group * 0x6364136223846793ull) ^
         (salt * 0x9e3779b97f4a7c15ull)) &
        ((1ull << 19) - 1);
    const std::uint64_t frame = frame_high * pageColors + color;
    return frame * pageBlocks + offset;
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params)
    : cfg(params),
      rng(params.seed),
      codeZipf(params.codeBlocks, params.codeTheta),
      sharedZipf(params.sharedBlocks, params.sharedTheta),
      privateZipf(params.privateBlocksPerCore, params.privateTheta)
{
    assert(params.numCores >= 1);
    assert(params.codeBlocks >= 1 && params.sharedBlocks >= 1 &&
           params.privateBlocksPerCore >= 1);
}

BlockAddr
SyntheticWorkload::codeBase() const
{
    return codeRegion;
}

BlockAddr
SyntheticWorkload::sharedBase() const
{
    return sharedRegion;
}

BlockAddr
SyntheticWorkload::privateBase(CoreId core) const
{
    return privateRegion + BlockAddr{core} * regionStride;
}

MemAccess
SyntheticWorkload::next()
{
    MemAccess access;
    access.core = nextCore;
    nextCore = static_cast<CoreId>((nextCore + 1) % cfg.numCores);

    if (rng.chance(cfg.instructionFraction)) {
        access.instruction = true;
        access.write = false;
        access.addr =
            codeBase() + scatterPages(1, codeZipf.sample(rng));
        return access;
    }

    access.write = rng.chance(cfg.writeFraction);
    if (rng.chance(cfg.sharedDataFraction)) {
        access.addr =
            sharedBase() + scatterPages(2, sharedZipf.sample(rng));
    } else {
        // Per-core salt randomizes the high frame bits; the color bits
        // stay aligned across cores because SPMD/server threads
        // allocate mirrored structures at the same virtual offsets
        // (see scatterPages).
        access.addr = privateBase(access.core) +
                      scatterPages(3 + access.core,
                                   privateZipf.sample(rng));
    }
    return access;
}

std::size_t
SyntheticWorkload::distinctBlocks() const
{
    return cfg.codeBlocks + cfg.sharedBlocks +
           cfg.numCores * cfg.privateBlocksPerCore;
}

const std::vector<PaperWorkload> &
allPaperWorkloads()
{
    static const std::vector<PaperWorkload> all = {
        PaperWorkload::OltpDb2,  PaperWorkload::OltpOracle,
        PaperWorkload::DssQry2,  PaperWorkload::DssQry16,
        PaperWorkload::DssQry17, PaperWorkload::WebApache,
        PaperWorkload::WebZeus,  PaperWorkload::SciEm3d,
        PaperWorkload::SciOcean,
    };
    return all;
}

std::string
paperWorkloadName(PaperWorkload workload)
{
    switch (workload) {
      case PaperWorkload::OltpDb2:
        return "DB2";
      case PaperWorkload::OltpOracle:
        return "Oracle";
      case PaperWorkload::DssQry2:
        return "Qry2";
      case PaperWorkload::DssQry16:
        return "Qry16";
      case PaperWorkload::DssQry17:
        return "Qry17";
      case PaperWorkload::WebApache:
        return "Apache";
      case PaperWorkload::WebZeus:
        return "Zeus";
      case PaperWorkload::SciEm3d:
        return "em3d";
      case PaperWorkload::SciOcean:
        return "ocean";
    }
    return "?";
}

bool
paperWorkloadByName(const std::string &name, PaperWorkload &workload)
{
    for (PaperWorkload w : allPaperWorkloads()) {
        if (paperWorkloadName(w) == name) {
            workload = w;
            return true;
        }
    }
    return false;
}

WorkloadParams
paperWorkloadParams(PaperWorkload workload, bool private_l2,
                    std::size_t num_cores)
{
    // Tracked private cache, in blocks: 64KB I + 64KB D L1s for the
    // Shared-L2 configuration, a 1MB unified L2 for Private-L2
    // (Table 1). Footprints below are expressed against this capacity
    // so profiles keep their character for both configurations.
    const std::size_t cap = private_l2 ? 16384 : 1024;

    WorkloadParams p;
    p.name = paperWorkloadName(workload);
    p.numCores = num_cores;
    p.seed = 0x5eed0000 + static_cast<std::uint64_t>(workload) * 977 +
             (private_l2 ? 7 : 0);

    switch (workload) {
      case PaperWorkload::OltpDb2:
        // TPC-C on DB2: hot shared code, large shared buffer pool,
        // modest private heaps; write-heavy transactions.
        p.codeBlocks = 6 * cap;
        p.sharedBlocks = 24 * cap;
        p.privateBlocksPerCore = cap;
        p.instructionFraction = 0.35;
        p.sharedDataFraction = 0.60;
        p.writeFraction = 0.22;
        p.codeTheta = 0.9;
        p.sharedTheta = 0.7;
        p.privateTheta = 0.3;
        break;
      case PaperWorkload::OltpOracle:
        // TPC-C on Oracle: similar profile, slightly bigger SGA and
        // more private working set than DB2.
        p.codeBlocks = 8 * cap;
        p.sharedBlocks = 28 * cap;
        p.privateBlocksPerCore = cap * 5 / 4;
        p.instructionFraction = 0.32;
        p.sharedDataFraction = 0.55;
        p.writeFraction = 0.24;
        p.codeTheta = 0.9;
        p.sharedTheta = 0.7;
        p.privateTheta = 0.3;
        break;
      case PaperWorkload::DssQry2:
        // TPC-H: scan-dominated decision support; large private scan
        // buffers, read-mostly.
        p.codeBlocks = 2 * cap;
        p.sharedBlocks = 12 * cap;
        p.privateBlocksPerCore = 2 * cap;
        p.instructionFraction = 0.18;
        p.sharedDataFraction = 0.25;
        p.writeFraction = 0.08;
        p.codeTheta = 0.8;
        p.sharedTheta = 0.4;
        p.privateTheta = 0.1;
        break;
      case PaperWorkload::DssQry16:
        p.codeBlocks = 2 * cap;
        p.sharedBlocks = 16 * cap;
        p.privateBlocksPerCore = 3 * cap / 2;
        p.instructionFraction = 0.20;
        p.sharedDataFraction = 0.30;
        p.writeFraction = 0.10;
        p.codeTheta = 0.8;
        p.sharedTheta = 0.5;
        p.privateTheta = 0.1;
        break;
      case PaperWorkload::DssQry17:
        p.codeBlocks = 2 * cap;
        p.sharedBlocks = 12 * cap;
        p.privateBlocksPerCore = 2 * cap;
        p.instructionFraction = 0.16;
        p.sharedDataFraction = 0.22;
        p.writeFraction = 0.08;
        p.codeTheta = 0.8;
        p.sharedTheta = 0.4;
        p.privateTheta = 0.05;
        break;
      case PaperWorkload::WebApache:
        // SPECweb99: very hot shared server code, shared file cache,
        // small per-worker private state; read-mostly.
        p.codeBlocks = 5 * cap;
        p.sharedBlocks = 20 * cap;
        p.privateBlocksPerCore = cap / 2;
        p.instructionFraction = 0.40;
        p.sharedDataFraction = 0.65;
        p.writeFraction = 0.12;
        p.codeTheta = 1.0;
        p.sharedTheta = 0.7;
        p.privateTheta = 0.4;
        break;
      case PaperWorkload::WebZeus:
        p.codeBlocks = 4 * cap;
        p.sharedBlocks = 18 * cap;
        p.privateBlocksPerCore = cap / 2;
        p.instructionFraction = 0.42;
        p.sharedDataFraction = 0.70;
        p.writeFraction = 0.10;
        p.codeTheta = 1.0;
        p.sharedTheta = 0.75;
        p.privateTheta = 0.4;
        break;
      case PaperWorkload::SciEm3d:
        // em3d, 15% remote: mostly private graph nodes, a slice of
        // shared neighbours.
        p.codeBlocks = cap / 4;
        p.sharedBlocks = 6 * cap;
        p.privateBlocksPerCore = 2 * cap;
        p.instructionFraction = 0.06;
        p.sharedDataFraction = 0.15;
        p.writeFraction = 0.30;
        p.codeTheta = 0.8;
        p.sharedTheta = 0.0;
        p.privateTheta = 0.0;
        break;
      case PaperWorkload::SciOcean:
        // ocean: grid partitions private per core, nearly 100% unique
        // blocks across all caches (§5.2), boundary exchange only.
        p.codeBlocks = cap / 8;
        p.sharedBlocks = cap;
        p.privateBlocksPerCore = 3 * cap;
        p.instructionFraction = 0.03;
        p.sharedDataFraction = 0.02;
        p.writeFraction = 0.35;
        p.codeTheta = 0.8;
        p.sharedTheta = 0.0;
        p.privateTheta = 0.0;
        break;
    }
    return p;
}

} // namespace cdir
