#include "workload/scenario.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cdir {

namespace {

/**
 * Block-address base of the producer-consumer ring, far above every
 * synthetic region (regions sit at (1..4+core) * 2^33; 2^52 clears a
 * 2^19-core CMP) so burst traffic never aliases the base stream.
 */
constexpr BlockAddr burstRegion = BlockAddr{1} << 52;

std::string
eventName(ScenarioEvent::Kind kind)
{
    switch (kind) {
      case ScenarioEvent::Kind::Migrate:
        return "migrate";
      case ScenarioEvent::Kind::Offline:
        return "offline";
      case ScenarioEvent::Kind::Online:
        return "online";
    }
    return "?";
}

} // namespace

// --- Scenario ----------------------------------------------------------------

std::uint64_t
Scenario::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const ScenarioPhase &phase : phases)
        total += phase.accesses;
    return total;
}

const ScenarioPhase &
Scenario::phaseAt(std::uint64_t index) const
{
    assert(!phases.empty());
    const std::uint64_t total = totalAccesses();
    if (loop && total > 0)
        index %= total;
    for (const ScenarioPhase &phase : phases) {
        if (index < phase.startAccess + phase.accesses)
            return phase;
    }
    return phases.back();
}

void
Scenario::validate() const
{
    const auto fail = [this](const std::string &what) {
        throw std::invalid_argument("scenario '" + name + "': " + what);
    };
    if (numCores == 0)
        fail("numCores must be >= 1");
    if (phases.empty())
        fail("schedule has no phases");

    // Simulate the slate the workload will carry through one pass (a
    // looping scenario restarts from the same clean slate, so one pass
    // covers every reachable state).
    std::vector<CoreId> map(numCores);
    std::iota(map.begin(), map.end(), CoreId{0});
    std::vector<bool> on(numCores, true);

    std::uint64_t expect = 0;
    for (const ScenarioPhase &phase : phases) {
        const std::string at = "phase '" + phase.label + "'";
        if (phase.accesses == 0)
            fail(at + ": accesses must be >= 1");
        if (phase.startAccess < expect)
            fail(at + ": overlaps the previous phase (starts at " +
                 std::to_string(phase.startAccess) +
                 ", previous ends at " + std::to_string(expect) + ")");
        if (phase.startAccess > expect)
            fail(at + ": leaves a gap (starts at " +
                 std::to_string(phase.startAccess) +
                 ", previous ends at " + std::to_string(expect) + ")");
        expect += phase.accesses;

        for (const ScenarioEvent &event : phase.events) {
            if (event.from >= numCores ||
                (event.kind == ScenarioEvent::Kind::Migrate &&
                 event.to >= numCores))
                fail(at + ": " + eventName(event.kind) +
                     " names a core id >= numCores (" +
                     std::to_string(numCores) + ")");
            switch (event.kind) {
              case ScenarioEvent::Kind::Migrate:
                map[event.from] = event.to;
                break;
              case ScenarioEvent::Kind::Offline:
                on[event.from] = false;
                break;
              case ScenarioEvent::Kind::Online:
                on[event.from] = true;
                break;
            }
        }

        const BurstParams &burst = phase.burst;
        if (burst.fraction < 0.0 || burst.fraction > 1.0)
            fail(at + ": burst fraction must be in [0, 1]");
        if (burst.fraction > 0.0) {
            if (burst.ringBlocks == 0)
                fail(at + ": burst ring must be >= 1 block");
            if (burst.producer >= numCores)
                fail(at + ": burst producer core id >= numCores");
            if (!on[burst.producer])
                fail(at + ": burst producer is offline");
        }

        // The base stream must make progress: at least one logical
        // thread has to issue from an online core, or the offline
        // filter would drop every access forever.
        bool progress = false;
        for (CoreId t = 0; t < numCores; ++t)
            progress = progress || on[map[t]];
        if (!progress)
            fail(at + ": every thread is mapped to an offline core");

        if (phase.workload.tracePath.empty() &&
            (phase.workload.codeBlocks == 0 ||
             phase.workload.sharedBlocks == 0 ||
             phase.workload.privateBlocksPerCore == 0))
            fail(at + ": synthetic footprints must be >= 1 block");
        if (phase.workload.tracePath.empty() &&
            (phase.traceOffset != 0 || phase.traceCursor))
            fail(at + ": trace offset/cursor without a trace segment");
    }
}

// --- ScenarioWorkload --------------------------------------------------------

ScenarioWorkload::ScenarioWorkload(const Scenario &scenario)
    : script(scenario)
{
    script.validate();
    cursorReaders.resize(script.phases.size());
    threadToCore.resize(script.numCores);
    online.resize(script.numCores);
    std::iota(threadToCore.begin(), threadToCore.end(), CoreId{0});
    std::fill(online.begin(), online.end(), true);
    enterPhase(0);
    fill();
}

void
ScenarioWorkload::applyEvent(const ScenarioEvent &event)
{
    switch (event.kind) {
      case ScenarioEvent::Kind::Migrate:
        threadToCore[event.from] = event.to;
        break;
      case ScenarioEvent::Kind::Offline:
        online[event.from] = false;
        break;
      case ScenarioEvent::Kind::Online:
        online[event.from] = true;
        break;
    }
}

void
ScenarioWorkload::enterPhase(std::size_t index)
{
    phaseIndex = index;
    emittedInPhase = 0;
    burstSeq = 0;
    // Triggers only consider snapshots captured *after* this entry: a
    // stale snapshot from the previous phase must not end the new one
    // before it emitted anything of its own.
    phaseEntrySequence = feed != nullptr ? feed->latest().sequence : 0;
    evaluatedSequence = phaseEntrySequence;
    const ScenarioPhase &phase = script.phases[index];
    for (const ScenarioEvent &event : phase.events)
        applyEvent(event);

    WorkloadParams params = phase.workload;
    params.numCores = script.numCores;
    if (!params.tracePath.empty()) {
        // A trace segment: strict, core-bounded, one private reader per
        // workload instance (concurrent cells share nothing). The
        // offset is consumed when the reader opens — once per entry for
        // plain phases, once ever for cursor phases, whose reader
        // persists across exits and loop wraps so each pass reads the
        // trace's next window.
        const auto skipOffset = [&](AccessSource &reader) {
            for (std::uint64_t skipped = 0; skipped < phase.traceOffset;
                 ++skipped) {
                if (reader.exhausted())
                    throw std::runtime_error(
                        "scenario '" + script.name + "' phase '" +
                        phase.label + "': trace offset " +
                        std::to_string(phase.traceOffset) +
                        " is past the end of " + params.tracePath +
                        " (" + std::to_string(skipped) +
                        " record(s) available)");
                reader.next();
            }
        };
        if (phase.traceCursor) {
            phaseSource.reset();
            if (!cursorReaders[index]) {
                cursorReaders[index] = makeTraceReader(
                    params.tracePath,
                    TraceReadOptions{script.numCores, true});
                skipOffset(*cursorReaders[index]);
            }
            phaseStream = cursorReaders[index].get();
        } else {
            phaseSource = makeTraceReader(
                params.tracePath,
                TraceReadOptions{script.numCores, true});
            skipOffset(*phaseSource);
            phaseStream = phaseSource.get();
        }
    } else {
        phaseSource = std::make_unique<SyntheticSource>(params);
        phaseStream = phaseSource.get();
    }

    // Phase-keyed mixing RNG: reseeded on every entry so a looping
    // schedule is exactly periodic.
    burstRng = Rng(params.seed ^ (0x5ce9a210u + index * 0x9e3779b9u));
    burstConsumers.clear();
    if (phase.burst.fraction > 0.0) {
        for (CoreId c = 0; c < script.numCores; ++c)
            if (online[c] && c != phase.burst.producer)
                burstConsumers.push_back(c);
    }
}

bool
ScenarioWorkload::ensurePhase()
{
    while (emittedInPhase >= script.phases[phaseIndex].accesses) {
        if (phaseIndex + 1 < script.phases.size()) {
            enterPhase(phaseIndex + 1);
            continue;
        }
        if (!script.loop) {
            phaseSource.reset();
            phaseStream = nullptr;
            return false;
        }
        // Wrap to a clean slate: identity mapping, every core online,
        // so the schedule is truly periodic.
        std::iota(threadToCore.begin(), threadToCore.end(), CoreId{0});
        std::fill(online.begin(), online.end(), true);
        enterPhase(0);
    }
    return true;
}

bool
ScenarioWorkload::exhausted() const
{
    // A pending dry-out error keeps the stream "not exhausted": the
    // next next() call must throw it rather than let the driver stop
    // cleanly and mask the schedule shift.
    return !hasBuffered && deferredError.empty();
}

const std::string &
ScenarioWorkload::currentPhaseLabel() const
{
    return script.phases[bufferedPhase].label;
}

MemAccess
ScenarioWorkload::burstAccess()
{
    const BurstParams &burst = script.phases[phaseIndex].burst;
    const std::uint64_t fan = burstConsumers.size() + 1;
    const std::uint64_t step = burstSeq % fan;
    const std::uint64_t block = (burstSeq / fan) % burst.ringBlocks;
    ++burstSeq;

    MemAccess access;
    access.addr = burstRegion + block;
    access.instruction = false;
    if (step == 0) {
        access.core = burst.producer;
        access.write = true;
    } else {
        access.core = burstConsumers[step - 1];
        access.write = false;
    }
    return access;
}

void
ScenarioWorkload::fill()
{
    hasBuffered = false;
    for (;;) {
        if (!ensurePhase())
            return; // schedule over: exhausted() turns true
        const ScenarioPhase &phase = script.phases[phaseIndex];

        // Event triggers: a fresh snapshot (captured after this phase
        // began, and not yet evaluated — each snapshot decides at most
        // one phase exit) satisfying any trigger ends the phase early,
        // exactly as if its access budget ran out. The phase must have
        // emitted at least one access so a firing always makes forward
        // progress through the schedule.
        if (!phase.triggers.empty() && feed != nullptr &&
            feed->hasSnapshot()) {
            const ProbeSnapshot &snap = feed->latest();
            if (emittedInPhase > 0 && snap.sequence > phaseEntrySequence &&
                snap.sequence > evaluatedSequence) {
                evaluatedSequence = snap.sequence;
                bool fired = false;
                for (std::size_t i = 0; i < phase.triggers.size(); ++i) {
                    const PhaseTrigger &trigger = phase.triggers[i];
                    // Latency triggers are inert against an untimed
                    // snapshot; the driver rejects such runs up front
                    // (needsTiming), so this only guards direct drives.
                    if (triggerMetricNeedsTiming(trigger.metric) &&
                        !snap.timed)
                        continue;
                    if (triggerSatisfied(trigger, snap)) {
                        triggerLog.push_back(TriggerFiring{
                            static_cast<std::uint32_t>(phaseIndex),
                            static_cast<std::uint32_t>(i),
                            snap.sequence, snap.accessIndex});
                        fired = true;
                        break;
                    }
                }
                if (fired) {
                    emittedInPhase = phase.accesses;
                    continue;
                }
            }
        }

        // A plain trace segment shorter than its phase ends it early —
        // the segment bounds the phase even when a burst overlay could
        // still emit (checked first so a dry segment never leaves a
        // phase emitting pure burst traffic). A *windowed* segment
        // (offset/cursor) running dry instead fails loudly: ending the
        // phase early would silently shift every label and loop period
        // the schedule declares.
        if (phaseStream->exhausted()) {
            if (phase.traceOffset != 0 || phase.traceCursor) {
                // Don't throw here: fill() runs one record ahead, so a
                // throw would swallow the record next() is about to
                // hand out. Buffer the error; the following next()
                // call throws it, after every available record of the
                // window has been delivered.
                deferredError =
                    "scenario '" + script.name + "' phase '" +
                    phase.label + "': windowed trace segment " +
                    phase.workload.tracePath + " ran dry after " +
                    std::to_string(emittedInPhase) + " of " +
                    std::to_string(phase.accesses) +
                    " accesses — the declared schedule would shift";
                return;
            }
            emittedInPhase = phase.accesses;
            continue;
        }
        if (phase.burst.fraction > 0.0 &&
            burstRng.chance(phase.burst.fraction)) {
            buffered = burstAccess();
        } else {
            buffered = phaseStream->next();
            // The base stream's core id is a *logical thread*; the
            // live mapping decides which physical core issues it.
            // Accesses from offline cores are dropped (the thread is
            // parked), which the validator guarantees cannot starve
            // the stream.
            buffered.core = threadToCore[buffered.core];
            if (!online[buffered.core])
                continue;
        }
        bufferedPhase = phaseIndex;
        hasBuffered = true;
        ++emittedInPhase;
        return;
    }
}

MemAccess
ScenarioWorkload::next()
{
    if (!hasBuffered) {
        if (!deferredError.empty())
            throw std::runtime_error(deferredError);
        throw std::runtime_error("scenario '" + script.name +
                                 "' exhausted");
    }
    const MemAccess result = buffered;
    fill();
    return result;
}

bool
ScenarioWorkload::wantsFeedback() const
{
    for (const ScenarioPhase &phase : script.phases)
        if (!phase.triggers.empty())
            return true;
    return false;
}

std::uint64_t
ScenarioWorkload::probeInterval() const
{
    return script.probeEvery != 0 ? script.probeEvery : kDefaultProbeEvery;
}

void
ScenarioWorkload::attachFeedback(const FeedbackChannel &channel)
{
    feed = &channel;
}

bool
ScenarioWorkload::needsTiming() const
{
    for (const ScenarioPhase &phase : script.phases)
        for (const PhaseTrigger &trigger : phase.triggers)
            if (triggerMetricNeedsTiming(trigger.metric))
                return true;
    return false;
}

std::uint64_t
ScenarioWorkload::feedbackDigest() const
{
    std::uint64_t hash = fnv1aInit();
    for (const TriggerFiring &firing : triggerLog) {
        hash = fnv1aMix(hash, firing.phase);
        hash = fnv1aMix(hash, firing.trigger);
        hash = fnv1aMix(hash, firing.sequence);
        hash = fnv1aMix(hash, firing.accessIndex);
    }
    return hash;
}

// --- scenario text format ----------------------------------------------------

namespace {

[[noreturn]] void
parseFail(const std::string &name, std::uint64_t line,
          const std::string &what)
{
    throw std::runtime_error(name + ":" + std::to_string(line) + ": " +
                             what);
}

std::uint64_t
parseCount(const std::string &token, const std::string &name,
           std::uint64_t line, const char *what)
{
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0')
        parseFail(name, line,
                  std::string("malformed ") + what + " '" + token + "'");
    return value;
}

double
parseFraction(const std::string &token, const std::string &name,
              std::uint64_t line, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
        parseFail(name, line,
                  std::string("malformed ") + what + " '" + token + "'");
    return value;
}

CoreId
parseCore(const std::string &token, std::size_t num_cores,
          const std::string &name, std::uint64_t line)
{
    const std::uint64_t value = parseCount(token, name, line, "core id");
    if (value >= num_cores)
        parseFail(name, line,
                  "core id " + token + " out of range (cores " +
                      std::to_string(num_cores) + ")");
    return static_cast<CoreId>(value);
}

/** Split "key=value"; @return false if there is no '='. */
bool
splitKeyValue(const std::string &token, std::string &key,
              std::string &value)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

/** Apply one `set <knob>=<value>` override; @return false if unknown. */
bool
applyKnob(WorkloadParams &params, const std::string &key,
          const std::string &value, const std::string &name,
          std::uint64_t line)
{
    if (key == "code-blocks")
        params.codeBlocks = parseCount(value, name, line, key.c_str());
    else if (key == "shared-blocks")
        params.sharedBlocks = parseCount(value, name, line, key.c_str());
    else if (key == "private-blocks")
        params.privateBlocksPerCore =
            parseCount(value, name, line, key.c_str());
    else if (key == "instr-frac")
        params.instructionFraction =
            parseFraction(value, name, line, key.c_str());
    else if (key == "shared-frac")
        params.sharedDataFraction =
            parseFraction(value, name, line, key.c_str());
    else if (key == "write-frac")
        params.writeFraction = parseFraction(value, name, line, key.c_str());
    else if (key == "code-theta")
        params.codeTheta = parseFraction(value, name, line, key.c_str());
    else if (key == "shared-theta")
        params.sharedTheta = parseFraction(value, name, line, key.c_str());
    else if (key == "private-theta")
        params.privateTheta = parseFraction(value, name, line, key.c_str());
    else if (key == "seed")
        params.seed = parseCount(value, name, line, key.c_str());
    else
        return false;
    return true;
}

} // namespace

Scenario
parseScenarioText(const std::string &text, const std::string &name)
{
    Scenario scenario;
    scenario.name = name;

    std::istringstream in(text);
    std::string line;
    std::uint64_t line_number = 0;
    bool in_phase = false;
    bool saw_phase = false;
    ScenarioPhase phase;
    std::uint64_t auto_start = 0;

    const auto finishPhase = [&] {
        if (!in_phase)
            return;
        auto_start = phase.startAccess + phase.accesses;
        scenario.phases.push_back(std::move(phase));
        phase = ScenarioPhase{};
        in_phase = false;
    };

    while (std::getline(in, line)) {
        ++line_number;
        std::istringstream tokens(line);
        std::string directive;
        if (!(tokens >> directive) || directive[0] == '#')
            continue;
        std::vector<std::string> args;
        for (std::string tok; tokens >> tok;) {
            if (tok[0] == '#')
                break;
            args.push_back(std::move(tok));
        }
        const auto want = [&](std::size_t lo, std::size_t hi) {
            if (args.size() < lo || args.size() > hi)
                parseFail(name, line_number,
                          "'" + directive + "' takes " +
                              std::to_string(lo) +
                              (hi != lo ? ".." + std::to_string(hi)
                                        : std::string()) +
                              " argument(s)");
        };
        const auto phaseScoped = [&] {
            if (!in_phase)
                parseFail(name, line_number,
                          "'" + directive + "' outside a phase");
        };

        if (directive == "scenario") {
            want(1, 1);
            scenario.name = args[0];
        } else if (directive == "cores") {
            want(1, 1);
            if (saw_phase)
                parseFail(name, line_number,
                          "'cores' must precede the first phase");
            scenario.numCores =
                parseCount(args[0], name, line_number, "core count");
            if (scenario.numCores == 0)
                parseFail(name, line_number, "core count must be >= 1");
        } else if (directive == "probe") {
            want(1, 1);
            scenario.probeEvery =
                parseCount(args[0], name, line_number, "probe interval");
            if (scenario.probeEvery == 0)
                parseFail(name, line_number,
                          "probe interval must be >= 1");
        } else if (directive == "loop") {
            want(1, 1);
            if (args[0] == "on")
                scenario.loop = true;
            else if (args[0] == "off")
                scenario.loop = false;
            else
                parseFail(name, line_number, "loop takes 'on' or 'off'");
        } else if (directive == "phase") {
            want(2, 3);
            finishPhase();
            in_phase = true;
            saw_phase = true;
            phase.label = args[0];
            if (args.size() == 2) {
                phase.startAccess = auto_start;
                phase.accesses = parseCount(args[1], name, line_number,
                                            "phase length");
            } else {
                phase.startAccess = parseCount(args[1], name, line_number,
                                               "phase start");
                phase.accesses = parseCount(args[2], name, line_number,
                                            "phase length");
            }
        } else if (directive == "preset") {
            want(1, 1);
            phaseScoped();
            PaperWorkload workload{};
            if (args[0] == "synthetic") {
                phase.workload = WorkloadParams{};
            } else if (paperWorkloadByName(args[0], workload)) {
                phase.workload = paperWorkloadParams(workload, false,
                                                     scenario.numCores);
            } else {
                parseFail(name, line_number,
                          "unknown preset '" + args[0] +
                              "' (try DB2, ocean, ..., or synthetic)");
            }
        } else if (directive == "set") {
            want(1, 64);
            phaseScoped();
            for (const std::string &arg : args) {
                std::string key, value;
                if (!splitKeyValue(arg, key, value) ||
                    !applyKnob(phase.workload, key, value, name,
                               line_number))
                    parseFail(name, line_number,
                              "unknown knob '" + arg + "'");
            }
        } else if (directive == "trace") {
            want(1, 3);
            phaseScoped();
            phase.workload.tracePath = args[0];
            for (std::size_t a = 1; a < args.size(); ++a) {
                std::string key, value;
                if (args[a] == "cursor")
                    phase.traceCursor = true;
                else if (splitKeyValue(args[a], key, value) &&
                         key == "offset")
                    phase.traceOffset = parseCount(value, name,
                                                   line_number,
                                                   "trace offset");
                else
                    parseFail(name, line_number,
                              "unknown trace option '" + args[a] +
                                  "' (try offset=N or cursor)");
            }
        } else if (directive == "migrate") {
            want(2, 2);
            phaseScoped();
            phase.events.push_back(ScenarioEvent{
                ScenarioEvent::Kind::Migrate,
                parseCore(args[0], scenario.numCores, name, line_number),
                parseCore(args[1], scenario.numCores, name,
                          line_number)});
        } else if (directive == "offline" || directive == "online") {
            want(1, 1);
            phaseScoped();
            phase.events.push_back(ScenarioEvent{
                directive == "offline" ? ScenarioEvent::Kind::Offline
                                       : ScenarioEvent::Kind::Online,
                parseCore(args[0], scenario.numCores, name, line_number),
                0});
        } else if (directive == "burst") {
            want(1, 3);
            phaseScoped();
            for (const std::string &arg : args) {
                std::string key, value;
                if (!splitKeyValue(arg, key, value))
                    parseFail(name, line_number,
                              "burst takes key=value arguments");
                if (key == "fraction")
                    phase.burst.fraction = parseFraction(
                        value, name, line_number, "burst fraction");
                else if (key == "ring")
                    phase.burst.ringBlocks = parseCount(
                        value, name, line_number, "burst ring");
                else if (key == "producer")
                    phase.burst.producer = parseCore(
                        value, scenario.numCores, name, line_number);
                else
                    parseFail(name, line_number,
                              "unknown burst knob '" + key + "'");
            }
        } else if (directive == "until" || directive == "when") {
            // Two spellings of the same thing: "until occupancy>0.8"
            // reads naturally for ramps, "when p99>150" for alarms.
            want(1, 1);
            phaseScoped();
            try {
                phase.triggers.push_back(parsePhaseTrigger(args[0]));
            } catch (const std::invalid_argument &e) {
                parseFail(name, line_number, e.what());
            }
        } else {
            // The "unknown event" rejection case: anything that is not
            // a known directive is an error, never silently skipped.
            parseFail(name, line_number,
                      "unknown directive '" + directive + "'");
        }
    }
    finishPhase();

    try {
        scenario.validate();
    } catch (const std::invalid_argument &e) {
        // Schedule-level errors (overlap, gap, starvation) carry the
        // file name like parse errors, just without a line.
        throw std::runtime_error(name + ": " + e.what());
    }
    return scenario;
}

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open scenario file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    Scenario scenario =
        parseScenarioText(text.str(), std::filesystem::path(path).string());
    if (scenario.name == std::filesystem::path(path).string())
        scenario.name = std::filesystem::path(path).stem().string();
    return scenario;
}

// --- presets -----------------------------------------------------------------

namespace {

/** Per-phase reseed so consecutive phases draw distinct streams. */
WorkloadParams
phaseProfile(WorkloadParams base, std::uint64_t phase_index)
{
    base.seed = base.seed + 0x9e37 * (phase_index + 1);
    return base;
}

/** Append a phase continuing the schedule at the running offset. */
ScenarioPhase &
addPhase(Scenario &scenario, std::string label, std::uint64_t accesses,
         WorkloadParams workload)
{
    ScenarioPhase phase;
    phase.label = std::move(label);
    phase.startAccess = scenario.totalAccesses();
    phase.accesses = accesses;
    phase.workload = std::move(workload);
    scenario.phases.push_back(std::move(phase));
    return scenario.phases.back();
}

Scenario
migrationStorm(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "migration-storm";
    sc.numCores = cores;
    const WorkloadParams oltp =
        paperWorkloadParams(PaperWorkload::OltpDb2, false, cores);
    addPhase(sc, "steady", accesses, phaseProfile(oltp, 0));
    for (std::uint64_t k = 1; k <= 5; ++k) {
        ScenarioPhase &phase = addPhase(sc, "storm-" + std::to_string(k),
                                        accesses, phaseProfile(oltp, k));
        // Two rotating threads hop half-way across the CMP each phase:
        // their private regions land in fresh caches while the old
        // copies linger as stale directory entries.
        const CoreId a = static_cast<CoreId>((2 * k) % cores);
        const CoreId b = static_cast<CoreId>((2 * k + 5) % cores);
        phase.events.push_back(
            {ScenarioEvent::Kind::Migrate, a,
             static_cast<CoreId>((a + cores / 2) % cores)});
        phase.events.push_back(
            {ScenarioEvent::Kind::Migrate, b,
             static_cast<CoreId>((b + cores / 2 + 1) % cores)});
    }
    return sc;
}

Scenario
phaseOltpDss(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "phase-oltp-dss";
    sc.numCores = cores;
    const WorkloadParams oltp =
        paperWorkloadParams(PaperWorkload::OltpDb2, false, cores);
    const WorkloadParams dss =
        paperWorkloadParams(PaperWorkload::DssQry2, false, cores);
    addPhase(sc, "oltp", accesses, phaseProfile(oltp, 0));
    // The batch window: scan-heavy private footprints sweep the shared
    // OLTP working set out of the directory...
    addPhase(sc, "dss", 2 * accesses, phaseProfile(dss, 1));
    // ...and the return shift re-inserts it under pressure.
    addPhase(sc, "oltp-return", accesses, phaseProfile(oltp, 2));
    return sc;
}

Scenario
diurnal(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "diurnal";
    sc.numCores = cores;
    const WorkloadParams web =
        paperWorkloadParams(PaperWorkload::WebApache, false, cores);
    WorkloadParams dusk = web;
    dusk.sharedBlocks = std::max<std::size_t>(1, web.sharedBlocks / 4);
    dusk.privateBlocksPerCore =
        std::max<std::size_t>(1, web.privateBlocksPerCore / 2);

    addPhase(sc, "day", accesses, phaseProfile(web, 0));
    addPhase(sc, "dusk", accesses / 2 + 1, phaseProfile(dusk, 1));

    // Night: the upper half of the CMP consolidates onto the lower
    // half and powers down (a 1-core system has nothing to shed).
    ScenarioPhase &night =
        addPhase(sc, "night", accesses, phaseProfile(dusk, 2));
    const std::size_t half = cores >= 2 ? cores / 2 : cores;
    for (std::size_t c = half; c < cores; ++c) {
        night.events.push_back(
            {ScenarioEvent::Kind::Migrate, static_cast<CoreId>(c),
             static_cast<CoreId>(c - half)});
        night.events.push_back(
            {ScenarioEvent::Kind::Offline, static_cast<CoreId>(c), 0});
    }

    ScenarioPhase &morning =
        addPhase(sc, "morning", accesses, phaseProfile(web, 3));
    for (std::size_t c = half; c < cores; ++c) {
        morning.events.push_back(
            {ScenarioEvent::Kind::Online, static_cast<CoreId>(c), 0});
        morning.events.push_back(
            {ScenarioEvent::Kind::Migrate, static_cast<CoreId>(c),
             static_cast<CoreId>(c)});
    }
    return sc;
}

Scenario
producerRing(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "producer-ring";
    sc.numCores = cores;
    const WorkloadParams sci =
        paperWorkloadParams(PaperWorkload::SciOcean, false, cores);
    addPhase(sc, "calm", accesses, phaseProfile(sci, 0));
    // Burst: one producer writes a block ring while every other core
    // reads it back — write-upgrade and sharing-invalidation pressure
    // concentrated on a tiny, maximally shared footprint.
    ScenarioPhase &burst =
        addPhase(sc, "burst", accesses, phaseProfile(sci, 1));
    burst.burst.fraction = 0.6;
    burst.burst.ringBlocks = 512;
    burst.burst.producer = 0;
    addPhase(sc, "drain", accesses, phaseProfile(sci, 2));
    return sc;
}

Scenario
consolidation(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "consolidation";
    sc.numCores = cores;
    const WorkloadParams oltp =
        paperWorkloadParams(PaperWorkload::OltpOracle, false, cores);
    addPhase(sc, "full", accesses, phaseProfile(oltp, 0));
    // Shed a quarter of the cores per step, threads folding onto the
    // survivors, until a quarter of the CMP carries everything.
    const std::size_t quarter = std::max<std::size_t>(1, cores / 4);
    std::size_t live = cores;
    for (std::uint64_t k = 1; k <= 3 && live > quarter; ++k) {
        ScenarioPhase &phase =
            addPhase(sc, "consolidate-" + std::to_string(k), accesses,
                     phaseProfile(oltp, k));
        const std::size_t target = std::max(quarter, live - quarter);
        for (std::size_t c = target; c < live; ++c) {
            phase.events.push_back(
                {ScenarioEvent::Kind::Migrate, static_cast<CoreId>(c),
                 static_cast<CoreId>(c % target)});
            phase.events.push_back({ScenarioEvent::Kind::Offline,
                                    static_cast<CoreId>(c), 0});
        }
        live = target;
    }
    ScenarioPhase &back =
        addPhase(sc, "repopulate", accesses, phaseProfile(oltp, 7));
    for (std::size_t c = 0; c < cores; ++c) {
        back.events.push_back(
            {ScenarioEvent::Kind::Online, static_cast<CoreId>(c), 0});
        back.events.push_back({ScenarioEvent::Kind::Migrate,
                               static_cast<CoreId>(c),
                               static_cast<CoreId>(c)});
    }
    return sc;
}

Scenario
footprintRamp(std::size_t cores, std::uint64_t accesses)
{
    Scenario sc;
    sc.name = "footprint-ramp";
    sc.numCores = cores;
    WorkloadParams base;
    base.name = "ramp";
    base.numCores = cores;
    base.codeBlocks = 2048;
    base.sharedBlocks = 8192;
    base.privateBlocksPerCore = 1024;
    base.sharedDataFraction = 0.5;
    base.writeFraction = 0.3;
    for (std::uint64_t k = 0; k < 3; ++k) {
        WorkloadParams grown = phaseProfile(base, k);
        grown.sharedBlocks = base.sharedBlocks << (2 * k);
        addPhase(sc, "grow-" + std::to_string(1u << (2 * k)), accesses,
                 std::move(grown));
    }
    addPhase(sc, "collapse", accesses, phaseProfile(base, 3));
    return sc;
}

} // namespace

const std::vector<std::string> &
scenarioPresetNames()
{
    static const std::vector<std::string> names = {
        "migration-storm", "phase-oltp-dss", "diurnal",
        "producer-ring",   "consolidation",  "footprint-ramp",
    };
    return names;
}

Scenario
scenarioPreset(const std::string &name, std::size_t num_cores,
               std::uint64_t phase_accesses)
{
    if (num_cores == 0 || phase_accesses == 0)
        throw std::invalid_argument(
            "scenarioPreset needs num_cores >= 1 and phase_accesses >= 1");
    Scenario scenario;
    if (name == "migration-storm")
        scenario = migrationStorm(num_cores, phase_accesses);
    else if (name == "phase-oltp-dss")
        scenario = phaseOltpDss(num_cores, phase_accesses);
    else if (name == "diurnal")
        scenario = diurnal(num_cores, phase_accesses);
    else if (name == "producer-ring")
        scenario = producerRing(num_cores, phase_accesses);
    else if (name == "consolidation")
        scenario = consolidation(num_cores, phase_accesses);
    else if (name == "footprint-ramp")
        scenario = footprintRamp(num_cores, phase_accesses);
    else
        throw std::invalid_argument(
            "unknown scenario preset '" + name + "' (try " +
            [] {
                std::string all;
                for (const std::string &n : scenarioPresetNames())
                    all += (all.empty() ? "" : ", ") + n;
                return all;
            }() +
            ", or a scenario file path)");
    scenario.validate();
    return scenario;
}

std::vector<std::string>
splitScenarioSpecs(const std::string &specs)
{
    std::vector<std::string> items;
    std::size_t begin = 0;
    while (begin <= specs.size()) {
        const std::size_t comma = specs.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? specs.size() : comma;
        const std::string item = specs.substr(begin, end - begin);
        // "all" expands to every preset wherever it appears, so it
        // composes with extra files ("all,my.scn").
        if (item == "all") {
            const auto &presets = scenarioPresetNames();
            items.insert(items.end(), presets.begin(), presets.end());
        } else if (!item.empty()) {
            items.push_back(item);
        }
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return items;
}

Scenario
resolveScenario(const std::string &spec, std::size_t num_cores)
{
    const auto &names = scenarioPresetNames();
    if (std::find(names.begin(), names.end(), spec) != names.end())
        return scenarioPreset(spec, num_cores);
    Scenario scenario = parseScenarioFile(spec);
    if (scenario.numCores > num_cores)
        throw std::runtime_error(
            spec + ": scenario needs " +
            std::to_string(scenario.numCores) +
            " cores but the system has " + std::to_string(num_cores));
    return scenario;
}

WorkloadParams
scenarioWorkloadParams(const std::string &spec)
{
    WorkloadParams params;
    params.scenarioSpec = spec;
    const auto &names = scenarioPresetNames();
    params.name =
        std::find(names.begin(), names.end(), spec) != names.end()
            ? spec
            : std::filesystem::path(spec).stem().string();
    return params;
}

} // namespace cdir
