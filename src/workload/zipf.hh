/**
 * @file
 * Zipf-distributed rank sampler.
 *
 * Server workloads touch their footprints with strong popularity skew
 * (hot database pages, hot code paths); scientific sweeps are close to
 * uniform. The synthetic workload generator draws block ranks from a
 * Zipf(theta) distribution: P(rank k) proportional to 1/k^theta, theta=0
 * degenerating to uniform.
 */

#ifndef CDIR_WORKLOAD_ZIPF_HH
#define CDIR_WORKLOAD_ZIPF_HH

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace cdir {

/** Inverse-CDF Zipf sampler over ranks [0, n). */
class ZipfSampler
{
  public:
    /**
     * @param n     number of ranks.
     * @param theta skew; 0 = uniform, ~1 = classic Zipf.
     */
    ZipfSampler(std::size_t n, double theta) : items(n), skew(theta)
    {
        assert(n >= 1);
        if (skew <= 0.0)
            return; // uniform fast path
        cdf.reserve(n);
        double total = 0.0;
        for (std::size_t k = 1; k <= n; ++k) {
            total += 1.0 / std::pow(static_cast<double>(k), skew);
            cdf.push_back(total);
        }
        for (auto &v : cdf)
            v /= total;

        // Coarse index over u-space: bucketStart[b] is the first rank
        // whose CDF value reaches b/K. A draw's answer (first rank with
        // cdf >= u) then lies in [bucketStart[b], bucketStart[b+1]] for
        // u's bucket b, so the binary search runs over a handful of
        // ranks instead of the whole CDF — the answer is provably the
        // same index, only found through fewer (cache-missing) probes.
        indexBuckets = std::min<std::size_t>(4096, std::max<std::size_t>(64, n));
        bucketStart.resize(indexBuckets + 1);
        std::size_t rank = 0;
        for (std::size_t b = 0; b < indexBuckets; ++b) {
            const double threshold =
                static_cast<double>(b) / static_cast<double>(indexBuckets);
            while (rank < n - 1 && cdf[rank] < threshold)
                ++rank;
            bucketStart[b] = rank;
        }
        bucketStart[indexBuckets] = n - 1;
    }

    /** Draw one rank using @p rng. */
    std::size_t
    sample(Rng &rng) const
    {
        if (skew <= 0.0)
            return static_cast<std::size_t>(rng.below(items));
        const double u = rng.uniform();
        // Binary search the CDF for the first bucket >= u, with the
        // bounds pre-narrowed by the coarse index (same first-true
        // index as a full-range search).
        const std::size_t b = std::min(
            indexBuckets - 1,
            static_cast<std::size_t>(u * static_cast<double>(indexBuckets)));
        std::size_t lo = bucketStart[b], hi = bucketStart[b + 1];
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Number of ranks. */
    std::size_t size() const { return items; }

    /** Configured skew. */
    double theta() const { return skew; }

  private:
    std::size_t items;
    double skew;
    std::vector<double> cdf;
    std::size_t indexBuckets = 0;
    std::vector<std::size_t> bucketStart; //!< coarse u-space index
};

} // namespace cdir

#endif // CDIR_WORKLOAD_ZIPF_HH
