/**
 * @file
 * Zipf-distributed rank sampler.
 *
 * Server workloads touch their footprints with strong popularity skew
 * (hot database pages, hot code paths); scientific sweeps are close to
 * uniform. The synthetic workload generator draws block ranks from a
 * Zipf(theta) distribution: P(rank k) proportional to 1/k^theta, theta=0
 * degenerating to uniform.
 */

#ifndef CDIR_WORKLOAD_ZIPF_HH
#define CDIR_WORKLOAD_ZIPF_HH

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace cdir {

/** Inverse-CDF Zipf sampler over ranks [0, n). */
class ZipfSampler
{
  public:
    /**
     * @param n     number of ranks.
     * @param theta skew; 0 = uniform, ~1 = classic Zipf.
     */
    ZipfSampler(std::size_t n, double theta) : items(n), skew(theta)
    {
        assert(n >= 1);
        if (skew <= 0.0)
            return; // uniform fast path
        cdf.reserve(n);
        double total = 0.0;
        for (std::size_t k = 1; k <= n; ++k) {
            total += 1.0 / std::pow(static_cast<double>(k), skew);
            cdf.push_back(total);
        }
        for (auto &v : cdf)
            v /= total;
    }

    /** Draw one rank using @p rng. */
    std::size_t
    sample(Rng &rng) const
    {
        if (skew <= 0.0)
            return static_cast<std::size_t>(rng.below(items));
        const double u = rng.uniform();
        // Binary search the CDF for the first bucket >= u.
        std::size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Number of ranks. */
    std::size_t size() const { return items; }

    /** Configured skew. */
    double theta() const { return skew; }

  private:
    std::size_t items;
    double skew;
    std::vector<double> cdf;
};

} // namespace cdir

#endif // CDIR_WORKLOAD_ZIPF_HH
