/**
 * @file
 * Synthetic workload generation.
 *
 * The paper evaluates unmodified server and scientific workloads under
 * FLEXUS/Simics (Table 2). Those traces are not redistributable, so this
 * reproduction substitutes parameterized synthetic generators (see
 * DESIGN.md, "Substitutions"): what the directory experiments measure —
 * occupancy, insertion behaviour, conflict rates — depends only on each
 * workload's *block sharing profile*, which the generator controls
 * directly:
 *
 *  - a shared instruction region, touched by every core with identical
 *    popularity skew (server code footprints are heavily shared);
 *  - a shared data region (database buffer pool, web cache) with
 *    configurable read/write mix;
 *  - a per-core private region (scan buffers, private heaps, grid
 *    partitions) sized relative to the private cache.
 *
 * One preset per Table 2 workload captures the paper's qualitative
 * profiles (§5.2): OLTP/Web are dominated by shared instructions and
 * data; DSS queries and em3d have large private footprints with modest
 * sharing; ocean is nearly 100% unique private blocks.
 */

#ifndef CDIR_WORKLOAD_WORKLOAD_HH
#define CDIR_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/zipf.hh"

namespace cdir {

/** One memory reference produced by a core. */
struct MemAccess
{
    CoreId core = 0;
    BlockAddr addr = 0;
    bool write = false;
    bool instruction = false;
};

/**
 * Tunable sharing profile of a synthetic workload — or, when
 * @ref tracePath is set, a recorded trace standing in for the
 * generator (the sweep engine's trace axis).
 */
struct WorkloadParams
{
    std::string name = "synthetic";
    std::size_t numCores = 16;

    /**
     * When non-empty, this workload is a recorded trace: experiment
     * cells replay the file (text or binary, sniffed) instead of
     * constructing a SyntheticWorkload, and every cell opens its own
     * reader so sweeps stay bit-identical at any worker count. The
     * synthetic knobs below are ignored. See traceWorkloadParams().
     */
    std::string tracePath;

    /**
     * When non-empty, this workload is a phased scenario: a preset name
     * or scenario file resolved against the cell's core count, driven
     * through a per-cell ScenarioWorkload (workload/scenario.hh). The
     * synthetic knobs below are ignored; mutually exclusive with
     * @ref tracePath. See scenarioWorkloadParams().
     */
    std::string scenarioSpec;

    /** Shared instruction footprint in blocks (read-only). */
    std::size_t codeBlocks = 4096;
    /** Shared data footprint in blocks. */
    std::size_t sharedBlocks = 32768;
    /** Private footprint per core in blocks. */
    std::size_t privateBlocksPerCore = 8192;

    /** Probability an access is an instruction fetch. */
    double instructionFraction = 0.3;
    /** Probability a data access targets the shared region. */
    double sharedDataFraction = 0.4;
    /** Probability a data access is a write. */
    double writeFraction = 0.2;

    /** Popularity skew of each region (0 = uniform). */
    double codeTheta = 0.8;
    double sharedTheta = 0.6;
    double privateTheta = 0.2;

    std::uint64_t seed = 42;
};

/** Deterministic generator of MemAccess streams (see file comment). */
class SyntheticWorkload
{
  public:
    explicit SyntheticWorkload(const WorkloadParams &params);

    /** Generate the next access (cores round-robin). */
    MemAccess next();

    /** Parameters this generator was built from. */
    const WorkloadParams &params() const { return cfg; }

    /**
     * Distinct block addresses the workload can ever touch; an upper
     * bound on aggregate directory footprint.
     */
    std::size_t distinctBlocks() const;

  private:
    BlockAddr codeBase() const;
    BlockAddr sharedBase() const;
    BlockAddr privateBase(CoreId core) const;

    WorkloadParams cfg;
    Rng rng;
    ZipfSampler codeZipf;
    ZipfSampler sharedZipf;
    ZipfSampler privateZipf;
    CoreId nextCore = 0;
};

/** The nine Table 2 workloads. */
enum class PaperWorkload
{
    OltpDb2,
    OltpOracle,
    DssQry2,
    DssQry16,
    DssQry17,
    WebApache,
    WebZeus,
    SciEm3d,
    SciOcean,
};

/** All paper workloads in Table 2 / figure order. */
const std::vector<PaperWorkload> &allPaperWorkloads();

/** Short label used on the figure x-axes ("DB2", "ocean", ...). */
std::string paperWorkloadName(PaperWorkload workload);

/**
 * Reverse lookup of @ref paperWorkloadName (case-sensitive, e.g.
 * "DB2", "ocean"). @return false if @p name is not a Table 2 label.
 */
bool paperWorkloadByName(const std::string &name, PaperWorkload &workload);

/**
 * Sharing-profile preset for a paper workload.
 *
 * @param workload     which Table 2 workload.
 * @param private_l2   true for the Private-L2 configuration (footprints
 *                     scale to the larger tracked cache, §5.2).
 * @param num_cores    CMP size.
 */
WorkloadParams paperWorkloadParams(PaperWorkload workload, bool private_l2,
                                   std::size_t num_cores = 16);

} // namespace cdir

#endif // CDIR_WORKLOAD_WORKLOAD_HH
