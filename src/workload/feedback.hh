/**
 * @file
 * Closed-loop feedback channel: live system metrics for workloads.
 *
 * Every workload source before this subsystem was open-loop — phases
 * fired on access-count schedules no matter what the simulated system
 * was doing. The feedback channel closes the loop: the experiment
 * driver installs a SystemProbe (sim/probe.hh) that snapshots the live
 * system — per-slice occupancy, windowed forced-invalidation rate,
 * windowed insertion attempts, and (when a cost model is attached)
 * windowed p50/p99 latency — at exact access counts, and publishes
 * each ProbeSnapshot here, where a FeedbackConsumer workload
 * (event-triggered ScenarioWorkload phases, the SLO-ramp controller)
 * reads it to steer what it emits next.
 *
 * Determinism contract: probes fire at exact access counts and capture
 * after the serial apply phase of a flush, so a snapshot's contents —
 * and therefore every trigger decision derived from it — are
 * bit-identical at any `--jobs` x `--shards` setting. The emitted
 * access stream is then a deterministic function of (workload spec,
 * system config, probe interval), which is why a *recorded* closed-loop
 * run replays as an ordinary trace: the trace already embodies every
 * feedback decision.
 *
 * Layering: this header is workload-side (no sim/ dependency); the
 * sim-side producer lives in sim/probe.hh. Trigger grammar
 * ("occupancy>0.8", "p99<120") is shared by the scenario text format
 * and the SLO-ramp spec.
 */

#ifndef CDIR_WORKLOAD_FEEDBACK_HH
#define CDIR_WORKLOAD_FEEDBACK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cdir {

/**
 * One probe capture: point-in-time occupancy plus windowed (since the
 * previous capture) event rates and latency percentiles. All values
 * are deterministic functions of the access history up to
 * @ref accessIndex.
 */
struct ProbeSnapshot
{
    /** Capture ordinal, 1-based (0 = the null snapshot). */
    std::uint64_t sequence = 0;
    /** Accesses the probe had counted when this capture fired. The
     *  counter spans run() calls (warmup + measure), so the index is an
     *  absolute position in the driven stream. */
    std::uint64_t accessIndex = 0;

    /** Aggregate directory occupancy (valid / capacity) right now. */
    double occupancy = 0.0;
    std::uint64_t occupiedEntries = 0;
    std::uint64_t capacityEntries = 0;
    /** Per-slice occupancy fractions (valid / capacity per slice). */
    std::vector<double> sliceOccupancy;

    /** Accesses driven since the previous capture (== the probe
     *  interval except for the capture straddling a stats reset). */
    std::uint64_t windowAccesses = 0;
    /** New-entry insertions in the window. */
    std::uint64_t windowInsertions = 0;
    /** Mean insertion attempts per insertion in the window (0 when the
     *  window saw no insertions). */
    double windowAttemptMean = 0.0;
    /** Forced (conflict) invalidations in the window. */
    std::uint64_t windowForcedInvalidations = 0;
    /** Forced invalidations per 1000 window accesses. */
    double forcedPer1k = 0.0;

    /** True when a cost model was attached: the latency fields below
     *  are meaningful. */
    bool timed = false;
    /** Windowed latency percentiles, in cycles (0 when untimed or the
     *  window recorded no samples). */
    std::uint64_t windowP50 = 0;
    std::uint64_t windowP99 = 0;
};

/**
 * The mailbox between the sim-side probe and workload-side consumers:
 * holds the most recent snapshot. Single-threaded by design — the
 * probe publishes and the workload reads on the driving thread, in the
 * serial sections of the run loop.
 */
class FeedbackChannel
{
  public:
    /** Install @p snapshot as the latest capture. */
    void publish(ProbeSnapshot snapshot) { last = std::move(snapshot); }

    /** Most recent capture (sequence 0 until the first publish). */
    const ProbeSnapshot &latest() const { return last; }

    /** True once at least one capture was published. */
    bool hasSnapshot() const { return last.sequence != 0; }

  private:
    ProbeSnapshot last;
};

/**
 * Workload sources that consume feedback implement this interface; the
 * experiment driver (runExperiment) detects it, installs a
 * SystemProbe at the consumer's requested interval, and attaches the
 * probe's channel before the first access runs.
 */
class FeedbackConsumer
{
  public:
    virtual ~FeedbackConsumer() = default;

    /** True when this source actually steers on feedback (e.g. a
     *  scenario with at least one triggered phase); false lets the
     *  driver skip probe construction entirely. */
    virtual bool wantsFeedback() const = 0;

    /** Accesses between probe captures this source wants. */
    virtual std::uint64_t probeInterval() const = 0;

    /** Attach the channel (non-owning; outlives this source's use). */
    virtual void attachFeedback(const FeedbackChannel &channel) = 0;

    /**
     * True when some feedback decision reads a latency metric, i.e.
     * the run must attach a cost model; the driver fails loudly up
     * front instead of letting a latency trigger silently never fire.
     */
    virtual bool needsTiming() const { return false; }

    /**
     * Feedback decisions taken so far (trigger firings, ramp level
     * transitions) and an order-sensitive FNV-1a digest over them —
     * the cheap serialized witness that two runs took identical
     * decisions at identical access counts.
     */
    virtual std::uint64_t feedbackEventCount() const { return 0; }
    virtual std::uint64_t feedbackDigest() const { return 0; }
};

/** Metrics a trigger can test (all read from a ProbeSnapshot). */
enum class TriggerMetric
{
    Occupancy,     //!< aggregate occupancy fraction in [0, 1]
    P50,           //!< windowed p50 latency (cycles; needs a cost model)
    P99,           //!< windowed p99 latency (cycles; needs a cost model)
    ForcedPer1k,   //!< forced invalidations per 1k window accesses
    Attempts,      //!< mean insertion attempts per window insertion
};

/** Grammar name of @p metric ("occupancy", "p99", ...). */
const char *triggerMetricName(TriggerMetric metric);

/** Reverse lookup; @return false for an unknown name. */
bool triggerMetricByName(const std::string &name, TriggerMetric &metric);

/** True for metrics that are only meaningful under a cost model. */
bool triggerMetricNeedsTiming(TriggerMetric metric);

/** Read @p metric out of @p snapshot. */
double triggerMetricValue(const ProbeSnapshot &snapshot,
                          TriggerMetric metric);

/** One condition over a snapshot: `<metric><op><threshold>`. */
struct PhaseTrigger
{
    TriggerMetric metric = TriggerMetric::Occupancy;
    /** true: fires when value > threshold; false: when value <. */
    bool greater = true;
    double threshold = 0.0;
};

/**
 * Parse "occupancy>0.8" / "p99<120" (no spaces; ops '>' and '<').
 * @throws std::invalid_argument naming what is malformed.
 */
PhaseTrigger parsePhaseTrigger(const std::string &text);

/** Canonical text of @p trigger (parses back to itself). */
std::string formatPhaseTrigger(const PhaseTrigger &trigger);

/** Evaluate @p trigger against @p snapshot. */
bool triggerSatisfied(const PhaseTrigger &trigger,
                      const ProbeSnapshot &snapshot);

/** Fold @p value into an FNV-1a accumulator (seed with fnv1aInit()). */
constexpr std::uint64_t
fnv1aInit()
{
    return 14695981039346656037ull;
}

constexpr std::uint64_t
fnv1aMix(std::uint64_t hash, std::uint64_t value)
{
    for (unsigned byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xff;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace cdir

#endif // CDIR_WORKLOAD_FEEDBACK_HH
