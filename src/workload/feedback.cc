#include "workload/feedback.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cdir {

const char *
triggerMetricName(TriggerMetric metric)
{
    switch (metric) {
      case TriggerMetric::Occupancy:
        return "occupancy";
      case TriggerMetric::P50:
        return "p50";
      case TriggerMetric::P99:
        return "p99";
      case TriggerMetric::ForcedPer1k:
        return "forced-per-1k";
      case TriggerMetric::Attempts:
        return "attempts";
    }
    return "?";
}

bool
triggerMetricByName(const std::string &name, TriggerMetric &metric)
{
    if (name == "occupancy")
        metric = TriggerMetric::Occupancy;
    else if (name == "p50")
        metric = TriggerMetric::P50;
    else if (name == "p99")
        metric = TriggerMetric::P99;
    else if (name == "forced-per-1k")
        metric = TriggerMetric::ForcedPer1k;
    else if (name == "attempts")
        metric = TriggerMetric::Attempts;
    else
        return false;
    return true;
}

bool
triggerMetricNeedsTiming(TriggerMetric metric)
{
    return metric == TriggerMetric::P50 || metric == TriggerMetric::P99;
}

double
triggerMetricValue(const ProbeSnapshot &snapshot, TriggerMetric metric)
{
    switch (metric) {
      case TriggerMetric::Occupancy:
        return snapshot.occupancy;
      case TriggerMetric::P50:
        return static_cast<double>(snapshot.windowP50);
      case TriggerMetric::P99:
        return static_cast<double>(snapshot.windowP99);
      case TriggerMetric::ForcedPer1k:
        return snapshot.forcedPer1k;
      case TriggerMetric::Attempts:
        return snapshot.windowAttemptMean;
    }
    return 0.0;
}

PhaseTrigger
parsePhaseTrigger(const std::string &text)
{
    const std::size_t gt = text.find('>');
    const std::size_t lt = text.find('<');
    if (gt == std::string::npos && lt == std::string::npos)
        throw std::invalid_argument(
            "trigger '" + text + "' has no comparison ('>' or '<')");
    if (gt != std::string::npos && lt != std::string::npos)
        throw std::invalid_argument(
            "trigger '" + text + "' mixes '>' and '<'");
    const std::size_t op = gt != std::string::npos ? gt : lt;

    PhaseTrigger trigger;
    trigger.greater = gt != std::string::npos;
    const std::string name = text.substr(0, op);
    if (!triggerMetricByName(name, trigger.metric))
        throw std::invalid_argument(
            "trigger '" + text + "' names unknown metric '" + name +
            "' (try occupancy, p50, p99, forced-per-1k, attempts)");

    const std::string value = text.substr(op + 1);
    char *end = nullptr;
    trigger.threshold = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0')
        throw std::invalid_argument(
            "trigger '" + text + "' has malformed threshold '" + value +
            "'");
    if (trigger.threshold < 0.0)
        throw std::invalid_argument(
            "trigger '" + text + "' threshold must be >= 0");
    if (trigger.metric == TriggerMetric::Occupancy &&
        trigger.threshold > 1.0)
        throw std::invalid_argument(
            "trigger '" + text +
            "': occupancy is a fraction, threshold must be <= 1");
    return trigger;
}

std::string
formatPhaseTrigger(const PhaseTrigger &trigger)
{
    char value[32];
    std::snprintf(value, sizeof value, "%g", trigger.threshold);
    return std::string(triggerMetricName(trigger.metric)) +
           (trigger.greater ? ">" : "<") + value;
}

bool
triggerSatisfied(const PhaseTrigger &trigger,
                 const ProbeSnapshot &snapshot)
{
    const double value = triggerMetricValue(snapshot, trigger.metric);
    return trigger.greater ? value > trigger.threshold
                           : value < trigger.threshold;
}

} // namespace cdir
