#include "workload/fleet.hh"

#include <cstdlib>
#include <stdexcept>

#include "workload/scenario.hh"

namespace cdir {

namespace {

/**
 * Block-address base of the fleet's tenant slots: 2^53 clears every
 * synthetic region ((1..4+core) * 2^33 for core counts up to 2^19) and
 * the scenario burst ring at 2^52, so fleet traffic never aliases any
 * other generator's blocks.
 */
constexpr BlockAddr fleetRegion = BlockAddr{1} << 53;

/** Tenant slot stride; matches the synthetic regions' 2^33 spacing. */
constexpr BlockAddr slotStride = BlockAddr{1} << 33;

/** Slot count bound keeping tenant slots clear of address wrap. */
constexpr std::size_t maxTenants = std::size_t{1} << 19;

/** 8KB pages of 64B blocks, 128 page colors — the same Solaris-style
 *  page-coloring structure as workload.cc's scatterPages, replicated
 *  here so fleet footprints stress the directories the same way the
 *  Table 2 generators do. */
constexpr std::uint64_t pageBlocks = 128;
constexpr std::uint64_t pageColors = 128;

BlockAddr
scatterFleetPages(std::uint64_t salt, std::uint64_t rank)
{
    const std::uint64_t page = rank / pageBlocks;
    const std::uint64_t offset = rank % pageBlocks;
    const std::uint64_t color = page % pageColors;
    const std::uint64_t group = page / pageColors;
    const std::uint64_t frame_high =
        ((group * 0x6364136223846793ull) ^
         (salt * 0x9e3779b97f4a7c15ull)) &
        ((1ull << 19) - 1);
    const std::uint64_t frame = frame_high * pageColors + color;
    return frame * pageBlocks + offset;
}

[[noreturn]] void
fleetFail(const std::string &what)
{
    throw std::invalid_argument("fleet workload: " + what);
}

} // namespace

// --- FleetWorkload -----------------------------------------------------------

FleetWorkload::FleetWorkload(const FleetParams &params)
    : cfg(params),
      rng(params.seed ^ 0xf1ee7f1ee7ull),
      keyZipf(params.blocksPerTenant >= 1 ? params.blocksPerTenant : 1,
              params.theta),
      sharedZipf(params.sharedBlocks >= 1 ? params.sharedBlocks : 1,
                 params.theta)
{
    if (cfg.numCores == 0)
        fleetFail("numCores must be >= 1");
    if (cfg.tenants == 0)
        fleetFail("tenants must be >= 1");
    if (cfg.tenants > maxTenants)
        fleetFail("tenants must be <= " + std::to_string(maxTenants));
    if (cfg.blocksPerTenant == 0)
        fleetFail("blocks per tenant must be >= 1");
    if (cfg.sharedBlocks == 0)
        fleetFail("shared blocks must be >= 1");
    if (cfg.theta < 0.0)
        fleetFail("theta must be >= 0");
    if (cfg.writeFraction < 0.0 || cfg.writeFraction > 1.0 ||
        cfg.sharedFraction < 0.0 || cfg.sharedFraction > 1.0 ||
        cfg.stormFraction < 0.0 || cfg.stormFraction > 1.0)
        fleetFail("fractions must be in [0, 1]");
    if (cfg.stormEvery != 0 && cfg.stormLength == 0)
        fleetFail("storm length must be >= 1 when storms are on");
    if (cfg.minActiveTenants == 0 || cfg.minActiveTenants > cfg.tenants)
        fleetFail("min active tenants must be in [1, tenants]");
    generation.assign(cfg.tenants, 0);
}

BlockAddr
FleetWorkload::tenantAddr(std::size_t tenant, std::uint64_t rank) const
{
    // The scatter salt folds in the tenant's churn generation: a
    // redeploy moves the whole footprint to fresh frames (cold start)
    // while staying injective inside the tenant's 2^33-block slot. The
    // generation is spread by an odd multiplier so it lands in the low
    // bits — scatterFleetPages keeps only the low 19 bits of its frame
    // scramble, and a multiply never carries high-bit changes downward.
    const std::uint64_t salt =
        cfg.seed ^ ((tenant + 1) * 0x100000001b3ull) ^
        (std::uint64_t{generation[tenant]} * 0xd1b54a32d192ed03ull);
    return fleetRegion + BlockAddr{tenant} * slotStride +
           scatterFleetPages(salt, rank);
}

void
FleetWorkload::setActiveTenants(std::size_t count)
{
    if (count == 0)
        count = 1;
    if (count > cfg.tenants)
        count = cfg.tenants;
    pinnedActive = count;
}

std::size_t
FleetWorkload::activeTenants() const
{
    if (pinnedActive != 0)
        return pinnedActive;
    if (cfg.diurnalPeriod == 0)
        return cfg.tenants;
    // Integer triangle wave: rises from minActive to tenants over the
    // first half-period, falls back over the second. Pure integer
    // arithmetic — bit-identical on every platform.
    const std::uint64_t period = cfg.diurnalPeriod;
    const std::uint64_t pos = emitted % period;
    const std::uint64_t half = period / 2 != 0 ? period / 2 : 1;
    const std::uint64_t range = cfg.tenants - cfg.minActiveTenants;
    const std::uint64_t rise = pos < half ? pos : period - pos;
    return cfg.minActiveTenants +
           static_cast<std::size_t>(rise * range / half);
}

MemAccess
FleetWorkload::next()
{
    MemAccess access;
    access.core = nextCore;
    nextCore = static_cast<CoreId>((nextCore + 1) % cfg.numCores);

    const std::uint64_t tick = emitted;
    const std::size_t active = activeTenants();
    ++emitted;

    if (cfg.churnEvery != 0 && tick != 0 && tick % cfg.churnEvery == 0) {
        ++generation[churnCursor];
        churnCursor = (churnCursor + 1) % cfg.tenants;
        ++churns;
    }
    if (cfg.stormEvery != 0 && tick != 0 && tick % cfg.stormEvery == 0) {
        stormRemaining = cfg.stormLength;
        stormTenant = static_cast<std::size_t>(storms % cfg.tenants);
        stormKey = 0; // the tenant's hottest key melts down
        ++storms;
    }

    if (stormRemaining != 0) {
        --stormRemaining;
        if (rng.chance(cfg.stormFraction)) {
            access.addr = tenantAddr(stormTenant, stormKey);
            access.write = rng.chance(cfg.writeFraction);
            return access;
        }
    }

    if (rng.chance(cfg.sharedFraction)) {
        // Shared frontend/runtime code: every tenant executes it, so
        // it lands in a slot of its own past the last tenant.
        access.instruction = true;
        access.addr = fleetRegion + BlockAddr{cfg.tenants} * slotStride +
                      scatterFleetPages(cfg.seed ^ 0x5a5a5a5aull,
                                        sharedZipf.sample(rng));
        return access;
    }

    const std::size_t tenant =
        static_cast<std::size_t>(rng.below(active));
    access.addr = tenantAddr(tenant, keyZipf.sample(rng));
    access.write = rng.chance(cfg.writeFraction);
    return access;
}

// --- SloRampWorkload ---------------------------------------------------------

SloRampWorkload::SloRampWorkload(const SloRampParams &params)
    : cfg(params), fleet(params.fleet)
{
    const auto fail = [](const std::string &what) {
        throw std::invalid_argument("slo-ramp: " + what);
    };
    if (cfg.step == 0)
        fail("step must be >= 1 access");
    if (cfg.target <= 0.0)
        fail("target must be > 0");
    top = cfg.maxLevel != 0 ? cfg.maxLevel : cfg.fleet.tenants;
    if (top > cfg.fleet.tenants)
        fail("max level exceeds the fleet's tenant count (" +
             std::to_string(cfg.fleet.tenants) + ")");
    if (cfg.startLevel == 0 || cfg.startLevel > top)
        fail("start level must be in [1, max level]");
    level = cfg.startLevel;
    fleet.setActiveTenants(static_cast<std::size_t>(level));
}

void
SloRampWorkload::attachFeedback(const FeedbackChannel &channel)
{
    feed = &channel;
}

bool
SloRampWorkload::needsTiming() const
{
    return triggerMetricNeedsTiming(cfg.metric);
}

std::uint64_t
SloRampWorkload::feedbackEventCount() const
{
    return log.size();
}

std::uint64_t
SloRampWorkload::feedbackDigest() const
{
    std::uint64_t hash = fnv1aInit();
    for (const RampTransition &t : log) {
        hash = fnv1aMix(hash, t.sequence);
        hash = fnv1aMix(hash, t.accessIndex);
        hash = fnv1aMix(hash, t.level);
        hash = fnv1aMix(hash, t.violation ? 1 : 0);
    }
    return hash;
}

void
SloRampWorkload::evaluate()
{
    if (feed == nullptr || !feed->hasSnapshot())
        return;
    const ProbeSnapshot &snap = feed->latest();
    if (snap.sequence <= evaluatedSequence)
        return;
    evaluatedSequence = snap.sequence;
    if (violated)
        return; // holding at the knee
    if (triggerMetricNeedsTiming(cfg.metric) && !snap.timed)
        return; // driver rejects untimed latency ramps up front

    const double value = triggerMetricValue(snap, cfg.metric);
    if (value > cfg.target) {
        // First violating window: back off to the last sustained level
        // and hold. A knee of 0 means not even startLevel held — the
        // fleet stays where it is (something must keep emitting) and
        // the result reports the cross with kneeLevel 0.
        violated = true;
        crossValue = value;
        if (knee != 0 && knee != level) {
            level = knee;
            fleet.setActiveTenants(static_cast<std::size_t>(level));
        }
        log.push_back(
            RampTransition{snap.sequence, snap.accessIndex, level, true});
        return;
    }

    // Window sustained within SLO: remember it as the knee-so-far and
    // escalate (steady state at the top logs nothing).
    knee = level;
    kneeValue = value;
    if (level < top) {
        ++level;
        fleet.setActiveTenants(static_cast<std::size_t>(level));
        log.push_back(
            RampTransition{snap.sequence, snap.accessIndex, level, false});
    }
}

MemAccess
SloRampWorkload::next()
{
    evaluate();
    return fleet.next();
}

// --- spec grammar ------------------------------------------------------------

namespace {

[[noreturn]] void
specFail(const std::string &head, const std::string &what)
{
    throw std::invalid_argument(head + " spec: " + what);
}

std::vector<std::string>
splitSpecTokens(const std::string &spec)
{
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t colon = spec.find(':', start);
        const std::size_t end =
            colon == std::string::npos ? spec.size() : colon;
        tokens.push_back(spec.substr(start, end - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    return tokens;
}

std::uint64_t
parseSpecCount(const std::string &head, const std::string &key,
               const std::string &value)
{
    if (value.empty())
        specFail(head, "'" + key + "' needs a value");
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        specFail(head, "'" + key + "' is not a count: '" + value + "'");
    return parsed;
}

double
parseSpecReal(const std::string &head, const std::string &key,
              const std::string &value)
{
    if (value.empty())
        specFail(head, "'" + key + "' needs a value");
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0')
        specFail(head, "'" + key + "' is not a number: '" + value + "'");
    return parsed;
}

/** Apply one fleet knob; @return false if @p key is not a fleet knob. */
bool
applyFleetKnob(FleetParams &params, const std::string &head,
               const std::string &key, const std::string &value)
{
    if (key == "tenants")
        params.tenants = parseSpecCount(head, key, value);
    else if (key == "blocks")
        params.blocksPerTenant = parseSpecCount(head, key, value);
    else if (key == "theta")
        params.theta = parseSpecReal(head, key, value);
    else if (key == "write")
        params.writeFraction = parseSpecReal(head, key, value);
    else if (key == "shared")
        params.sharedBlocks = parseSpecCount(head, key, value);
    else if (key == "shared-frac")
        params.sharedFraction = parseSpecReal(head, key, value);
    else if (key == "churn")
        params.churnEvery = parseSpecCount(head, key, value);
    else if (key == "storm")
        params.stormEvery = parseSpecCount(head, key, value);
    else if (key == "storm-len")
        params.stormLength = parseSpecCount(head, key, value);
    else if (key == "storm-frac")
        params.stormFraction = parseSpecReal(head, key, value);
    else if (key == "diurnal")
        params.diurnalPeriod = parseSpecCount(head, key, value);
    else if (key == "min-active")
        params.minActiveTenants = parseSpecCount(head, key, value);
    else if (key == "seed")
        params.seed = parseSpecCount(head, key, value);
    else
        return false;
    return true;
}

bool
specHead(const std::string &spec, const std::string &head)
{
    return spec == head ||
           (spec.size() > head.size() && spec[head.size()] == ':' &&
            spec.compare(0, head.size(), head) == 0);
}

} // namespace

bool
isFleetSpec(const std::string &spec)
{
    return specHead(spec, "fleet");
}

bool
isSloRampSpec(const std::string &spec)
{
    return specHead(spec, "slo-ramp");
}

FleetParams
parseFleetSpec(const std::string &spec, std::size_t num_cores)
{
    if (!isFleetSpec(spec))
        specFail("fleet", "expected 'fleet[:knob=value...]', got '" +
                              spec + "'");
    FleetParams params;
    params.numCores = num_cores;
    const std::vector<std::string> tokens = splitSpecTokens(spec);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            specFail("fleet", "knob '" + token + "' is not key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (!applyFleetKnob(params, "fleet", key, value))
            specFail("fleet", "unknown knob '" + key + "'");
    }
    return params;
}

SloRampParams
parseSloRampSpec(const std::string &spec, std::size_t num_cores)
{
    if (!isSloRampSpec(spec))
        specFail("slo-ramp",
                 "expected 'slo-ramp[:knob=value...]', got '" + spec +
                     "'");
    SloRampParams params;
    params.fleet.numCores = num_cores;
    const std::vector<std::string> tokens = splitSpecTokens(spec);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            specFail("slo-ramp", "knob '" + token + "' is not key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "metric") {
            if (!triggerMetricByName(value, params.metric))
                specFail("slo-ramp", "unknown metric '" + value + "'");
        } else if (key == "target") {
            params.target = parseSpecReal("slo-ramp", key, value);
        } else if (key == "step") {
            params.step = parseSpecCount("slo-ramp", key, value);
        } else if (key == "start") {
            params.startLevel = parseSpecCount("slo-ramp", key, value);
        } else if (key == "max") {
            params.maxLevel = parseSpecCount("slo-ramp", key, value);
        } else if (!applyFleetKnob(params.fleet, "slo-ramp", key,
                                   value)) {
            specFail("slo-ramp", "unknown knob '" + key + "'");
        }
    }
    return params;
}

std::unique_ptr<AccessSource>
makeDynamicSource(const std::string &spec, std::size_t num_cores)
{
    if (isFleetSpec(spec))
        return std::make_unique<FleetWorkload>(
            parseFleetSpec(spec, num_cores));
    if (isSloRampSpec(spec))
        return std::make_unique<SloRampWorkload>(
            parseSloRampSpec(spec, num_cores));
    return std::make_unique<ScenarioWorkload>(
        resolveScenario(spec, num_cores));
}

WorkloadParams
dynamicWorkloadParams(const std::string &spec)
{
    if (isFleetSpec(spec) || isSloRampSpec(spec)) {
        WorkloadParams params;
        params.name = spec;
        params.scenarioSpec = spec;
        return params;
    }
    return scenarioWorkloadParams(spec);
}

} // namespace cdir
