/**
 * @file
 * Multi-tenant server-fleet workload and SLO-ramp controller.
 *
 * The paper's Table 2 workloads model one application owning the whole
 * CMP. A consolidation fleet looks different: N tenants, each with its
 * own Zipf-skewed key footprint, time-share every core; tenants churn
 * (a redeploy cold-starts a tenant's footprint), suffer hot-key storms
 * (one key of one tenant briefly dominates the mix), and wax and wane
 * on a diurnal curve (a triangle wave over active-tenant count — no
 * libm trig, so the wave is bit-identical across platforms). All
 * randomness draws from one seeded Xoshiro stream, so the emitted
 * access sequence is a pure function of FleetParams.
 *
 * On top of the fleet sits the closed-loop SLO-ramp controller
 * (SloRampWorkload): a FeedbackConsumer that steps offered load — the
 * number of active tenants — one level at a time, holding each level
 * for one probe window. While the windowed SLO metric (p99 by default)
 * stays within target, the ramp escalates; the first violating window
 * backs the fleet off one level and holds. The *knee* — the last level
 * sustained within SLO — is the figure of merit bench/ext_slo_knee.cc
 * compares across directory organizations.
 *
 * Both sources ride the sweep/campaign stack through
 * WorkloadParams::scenarioSpec, using a colon-separated spec grammar
 * ("fleet:tenants=8:churn=250000", "slo-ramp:target=150:step=20000")
 * that survives the comma-splitting of `--scenario=` lists. The
 * makeDynamicSource() dispatcher below resolves any spec — fleet,
 * slo-ramp, or classic scenario — into an AccessSource.
 */

#ifndef CDIR_WORKLOAD_FLEET_HH
#define CDIR_WORKLOAD_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/feedback.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"
#include "workload/zipf.hh"

namespace cdir {

/** Knobs of the fleet generator; every field has a sensible default. */
struct FleetParams
{
    std::size_t numCores = 16;
    /** Tenant count (the ceiling on active tenants). */
    std::size_t tenants = 8;
    /** Per-tenant key footprint in blocks. */
    std::size_t blocksPerTenant = 16384;
    /** Popularity skew of each tenant's keys. */
    double theta = 0.9;
    /** Probability a tenant data access is a write. */
    double writeFraction = 0.15;

    /** Shared frontend/code footprint every tenant touches. */
    std::size_t sharedBlocks = 4096;
    /** Probability an access hits the shared frontend (as ifetch). */
    double sharedFraction = 0.05;

    /** Accesses between churn events (0 = off). Each event redeploys
     *  one tenant round-robin: its scatter salt changes generation, so
     *  the footprint cold-starts at fresh addresses. */
    std::uint64_t churnEvery = 0;
    /** Accesses between hot-key storm onsets (0 = off). */
    std::uint64_t stormEvery = 0;
    /** Storm duration in accesses. */
    std::uint64_t stormLength = 20'000;
    /** During a storm, probability an access targets the hot key. */
    double stormFraction = 0.5;

    /** Diurnal period in accesses (0 = off): active-tenant count rides
     *  a triangle wave between minActiveTenants and tenants. */
    std::uint64_t diurnalPeriod = 0;
    std::size_t minActiveTenants = 1;

    std::uint64_t seed = 42;
};

/** Deterministic multi-tenant fleet generator (see file comment). */
class FleetWorkload : public AccessSource
{
  public:
    /** @throws std::invalid_argument for out-of-range knobs. */
    explicit FleetWorkload(const FleetParams &params);

    MemAccess next() override;
    bool exhausted() const override { return false; }

    const FleetParams &params() const { return cfg; }

    /**
     * Pin the active-tenant count (clamped to [1, tenants]); the
     * SLO-ramp controller's load lever. Overrides the diurnal wave
     * until the next call.
     */
    void setActiveTenants(std::size_t count);

    /** Active tenants the next access will draw from. */
    std::size_t activeTenants() const;

    /** Accesses emitted so far. */
    std::uint64_t accessesEmitted() const { return emitted; }

    /** Churn events applied so far. */
    std::uint64_t churnEvents() const { return churns; }

    /** Storm onsets so far. */
    std::uint64_t stormOnsets() const { return storms; }

  private:
    BlockAddr tenantAddr(std::size_t tenant, std::uint64_t rank) const;

    FleetParams cfg;
    Rng rng;
    ZipfSampler keyZipf;
    ZipfSampler sharedZipf;
    std::vector<std::uint32_t> generation; //!< per-tenant churn epoch
    CoreId nextCore = 0;
    std::uint64_t emitted = 0;
    std::uint64_t churns = 0;
    std::size_t churnCursor = 0;
    std::uint64_t storms = 0;
    std::uint64_t stormRemaining = 0;
    std::size_t stormTenant = 0;
    std::uint64_t stormKey = 0;
    std::size_t pinnedActive = 0; //!< 0 = follow the diurnal wave
};

/** Knobs of the SLO-ramp controller. */
struct SloRampParams
{
    /** The underlying fleet (tenants = the top ramp level). */
    FleetParams fleet;
    /** Windowed SLO metric the ramp watches. */
    TriggerMetric metric = TriggerMetric::P99;
    /** SLO target: a window whose metric exceeds this violates. */
    double target = 150.0;
    /** Accesses per ramp step == the probe interval, so each snapshot
     *  window measures exactly one load level. */
    std::uint64_t step = 20'000;
    /** First load level (active tenants). */
    std::size_t startLevel = 1;
    /** Ceiling (0 = fleet.tenants). */
    std::size_t maxLevel = 0;
};

/**
 * One level-change decision of the ramp, logged for the feedback
 * digest and for tests asserting identical decision points.
 */
struct RampTransition
{
    std::uint64_t sequence = 0;    //!< snapshot that triggered it
    std::uint64_t accessIndex = 0; //!< probe position of that snapshot
    std::uint64_t level = 0;       //!< level in force *after* it
    bool violation = false;        //!< true for the back-off transition
};

/**
 * Closed-loop load ramp over a FleetWorkload (see file comment).
 * Escalates one level per in-SLO window, backs off and holds on the
 * first violation. The knee (last sustained level) and the metric
 * values around it surface through ExperimentResult.
 */
class SloRampWorkload : public AccessSource, public FeedbackConsumer
{
  public:
    /** @throws std::invalid_argument for out-of-range knobs. */
    explicit SloRampWorkload(const SloRampParams &params);

    MemAccess next() override;
    bool exhausted() const override { return false; }

    // FeedbackConsumer
    bool wantsFeedback() const override { return true; }
    std::uint64_t probeInterval() const override { return cfg.step; }
    void attachFeedback(const FeedbackChannel &channel) override;
    bool needsTiming() const override;
    std::uint64_t feedbackEventCount() const override;
    std::uint64_t feedbackDigest() const override;

    const SloRampParams &params() const { return cfg; }

    /** Level in force right now. */
    std::uint64_t currentLevel() const { return level; }

    /** True once a window violated the target. */
    bool crossed() const { return violated; }

    /** Last level sustained within SLO (0 = not even startLevel). */
    std::uint64_t kneeLevel() const { return knee; }

    /** Metric value of the last sustained window (0 until one). */
    double kneeMetric() const { return kneeValue; }

    /** Metric value of the violating window (0 until crossed). */
    double crossMetric() const { return crossValue; }

    /** Every level decision taken, in order. */
    const std::vector<RampTransition> &transitions() const
    {
        return log;
    }

  private:
    void evaluate();

    SloRampParams cfg;
    FleetWorkload fleet;
    const FeedbackChannel *feed = nullptr;
    std::uint64_t evaluatedSequence = 0;
    std::uint64_t level = 0;
    std::uint64_t top = 0;
    bool violated = false;
    std::uint64_t knee = 0;
    double kneeValue = 0.0;
    double crossValue = 0.0;
    std::vector<RampTransition> log;
};

// --- spec grammar ------------------------------------------------------------

/** True iff @p spec is a fleet spec ("fleet" or "fleet:..."). */
bool isFleetSpec(const std::string &spec);

/** True iff @p spec is an SLO-ramp spec ("slo-ramp" or "slo-ramp:..."). */
bool isSloRampSpec(const std::string &spec);

/**
 * Parse "fleet:tenants=8:blocks=16384:theta=0.9:write=0.15:shared=4096:
 * shared-frac=0.05:churn=250000:storm=500000:storm-len=20000:
 * storm-frac=0.5:diurnal=1000000:min-active=1:seed=42" (every knob
 * optional, any order). @p num_cores binds FleetParams::numCores.
 * @throws std::invalid_argument naming the bad knob.
 */
FleetParams parseFleetSpec(const std::string &spec, std::size_t num_cores);

/**
 * Parse "slo-ramp:metric=p99:target=150:step=20000:start=1:max=16"
 * plus any fleet knob (forwarded to the embedded FleetParams).
 * @throws std::invalid_argument naming the bad knob.
 */
SloRampParams parseSloRampSpec(const std::string &spec,
                               std::size_t num_cores);

/**
 * Resolve any dynamic-workload spec — "fleet:...", "slo-ramp:...", a
 * scenario preset name, or a scenario file path — into a fresh source
 * for a @p num_cores CMP. Every experiment cell calls this to get its
 * own private instance, preserving sweep bit-identity at any worker
 * count.
 */
std::unique_ptr<AccessSource> makeDynamicSource(const std::string &spec,
                                                std::size_t num_cores);

/**
 * WorkloadParams naming @p spec as a dynamic source: fleet and
 * slo-ramp specs label cells with the spec text itself; everything
 * else defers to scenarioWorkloadParams.
 */
WorkloadParams dynamicWorkloadParams(const std::string &spec);

} // namespace cdir

#endif // CDIR_WORKLOAD_FLEET_HH
