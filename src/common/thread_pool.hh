/**
 * @file
 * Fixed-size worker-thread pool with a single FIFO task queue.
 *
 * The experiment layer (src/sim/sweep.hh) fans whole grid cells out to
 * workers; each cell is a multi-second simulation, so a plain
 * mutex-protected queue — no work stealing, no per-worker deques — is
 * the right amount of machinery: contention on the queue lock is
 * negligible next to the task granularity, and a strict FIFO keeps the
 * execution order easy to reason about.
 *
 * Determinism contract: the pool schedules *when* tasks run, never what
 * they compute. Tasks that share no mutable state (every sweep cell owns
 * its CmpSystem and SyntheticWorkload RNG) produce identical results at
 * any worker count.
 */

#ifndef CDIR_COMMON_THREAD_POOL_HH
#define CDIR_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cdir {

/** Fixed pool of workers draining one FIFO queue (see file comment). */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 picks hardwareWorkers(). */
    explicit ThreadPool(unsigned workers)
    {
        if (workers == 0)
            workers = hardwareWorkers();
        threads.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads.emplace_back([this] { workerLoop(); });
    }

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (std::thread &t : threads)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; it runs on some worker in FIFO order. */
    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.push_back(std::move(task));
        }
        wake.notify_one();
    }

    /** Block until the queue is empty and no task is running. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        idle.wait(lock,
                  [this] { return queue.empty() && running == 0; });
    }

    /** Workers owned by this pool. */
    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Reasonable default worker count for this machine (>= 1). */
    static unsigned
    hardwareWorkers()
    {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1u : n;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [this] {
                    return stopping || !queue.empty();
                });
                if (queue.empty())
                    return; // stopping and fully drained
                task = std::move(queue.front());
                queue.pop_front();
                ++running;
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mutex);
                --running;
                if (queue.empty() && running == 0)
                    idle.notify_all();
            }
        }
    }

    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable idle;
    std::deque<std::function<void()>> queue;
    std::size_t running = 0;
    bool stopping = false;
    std::vector<std::thread> threads;
};

/**
 * Completion handle for one batch of tasks on a shared ThreadPool — a
 * reusable barrier. Several groups can coexist on one pool; `wait()`
 * blocks until *this group's* tasks have finished, not until the whole
 * pool drains, so a long-lived pool can serve repeated fork/join rounds
 * (the CMP shard scheduler runs one round per batch window) without
 * re-spawning threads.
 *
 * The first exception thrown by a task in the group is captured and
 * rethrown from the next `wait()` — after the barrier completes, so the
 * group is always quiescent when `wait()` returns or throws.
 *
 * The group must outlive every task submitted through it; waiting after
 * each round of `run()` calls (the only sensible fork/join usage)
 * guarantees that.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : owner(pool) {}

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit @p task to the pool as part of this group. */
    void
    run(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++pending;
        }
        owner.submit([this, task = std::move(task)] {
            std::exception_ptr error;
            try {
                task();
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (error && !firstError)
                firstError = error;
            if (--pending == 0)
                done.notify_all();
        });
    }

    /**
     * Barrier: block until every task run() through this group has
     * completed, then rethrow the round's first exception, if any.
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        done.wait(lock, [this] { return pending == 0; });
        if (firstError) {
            std::exception_ptr error = firstError;
            firstError = nullptr;
            lock.unlock();
            std::rethrow_exception(error);
        }
    }

    /** The pool this group submits to. */
    ThreadPool &pool() const { return owner; }

  private:
    ThreadPool &owner;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr firstError;
};

/**
 * Run `fn(i)` for every i in [0, @p count) across @p jobs workers.
 *
 * `jobs <= 1` runs the loop inline on the calling thread — no threads
 * are created, which keeps single-job runs trivially serial (the
 * determinism baseline) and sanitizer-friendly. The first exception
 * thrown by any invocation is rethrown after all work settles; later
 * exceptions are dropped.
 */
template <typename Fn>
void
parallelFor(unsigned jobs, std::size_t count, Fn &&fn)
{
    if (jobs == 0)
        jobs = ThreadPool::hardwareWorkers();
    if (jobs > count)
        jobs = static_cast<unsigned>(count); // never idle-spawn workers
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Declared before the pool: if submit() throws mid-loop, the pool
    // must be destroyed (joining in-flight tasks) while this state the
    // tasks capture is still alive.
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::atomic<bool> failed{false};
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
            if (failed.load(std::memory_order_relaxed))
                return; // fail fast: skip remaining cells
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        });
    }
    pool.wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace cdir

#endif // CDIR_COMMON_THREAD_POOL_HH
