/**
 * @file
 * Run-time-sized bitset used for sharer vectors and Bloom-filter rows.
 *
 * std::bitset is compile-time sized and std::vector<bool> lacks word-level
 * operations; directory sharer vectors need a size chosen at configuration
 * time (the number of private caches) plus fast population count and
 * iteration over set bits.
 *
 * Word storage is 64-byte aligned (one cache line) so the bulk kernels —
 * orWith/andWith, popcountRange, setRange, forEachSetBit — stream whole
 * lines and auto-vectorize cleanly; a 1024-core sharer vector is exactly
 * two lines. forEachSetBit is the invalidation fan-out primitive: it
 * walks words and extracts set bits with countr_zero instead of
 * re-scanning from the start per bit the way findFirst/findNext chains
 * do.
 */

#ifndef CDIR_COMMON_BITSET_HH
#define CDIR_COMMON_BITSET_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

namespace cdir {

/**
 * Minimal allocator pinning allocations to @p Align bytes; keeps
 * std::vector's value semantics while making every word buffer start on
 * a cache-line boundary.
 */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    bool operator==(const AlignedAllocator &) const { return true; }
    bool operator!=(const AlignedAllocator &) const { return false; }
};

/** Dynamically sized bitset with word-parallel operations. */
class DynamicBitset
{
  public:
    /** Cache-line-aligned word buffer (see file comment). */
    using WordVector =
        std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, 64>>;

    DynamicBitset() = default;

    /** Construct with @p bits bits, all clear. */
    explicit DynamicBitset(std::size_t bits)
        : numBits(bits), words((bits + 63) / 64, 0)
    {}

    /** Number of bits in the set. */
    std::size_t size() const { return numBits; }

    /** Set bit @p pos. */
    void
    set(std::size_t pos)
    {
        assert(pos < numBits);
        words[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    }

    /** Clear bit @p pos. */
    void
    reset(std::size_t pos)
    {
        assert(pos < numBits);
        words[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
    }

    /** Test bit @p pos. */
    bool
    test(std::size_t pos) const
    {
        assert(pos < numBits);
        return (words[pos >> 6] >> (pos & 63)) & 1;
    }

    /** Clear every bit. */
    void
    clear()
    {
        for (auto &w : words)
            w = 0;
    }

    /**
     * Resize to @p bits bits, all clear, reusing the existing word
     * storage when possible (no heap traffic once the high-water size
     * has been reached — the property the allocation-free access
     * protocol relies on).
     */
    void
    reinit(std::size_t bits)
    {
        numBits = bits;
        words.assign((bits + 63) / 64, 0);
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (auto w : words)
            total += static_cast<std::size_t>(std::popcount(w));
        return total;
    }

    /** Number of set bits in [lo, hi). */
    std::size_t
    popcountRange(std::size_t lo, std::size_t hi) const
    {
        assert(lo <= hi && hi <= numBits);
        if (lo >= hi)
            return 0;
        const std::size_t first = lo >> 6;
        const std::size_t last = (hi - 1) >> 6;
        if (first == last) {
            const std::uint64_t m =
                highBitsFrom(lo & 63) & lowBits(((hi - 1) & 63) + 1);
            return static_cast<std::size_t>(std::popcount(words[first] & m));
        }
        std::size_t total = static_cast<std::size_t>(
            std::popcount(words[first] & highBitsFrom(lo & 63)));
        for (std::size_t wi = first + 1; wi < last; ++wi)
            total += static_cast<std::size_t>(std::popcount(words[wi]));
        total += static_cast<std::size_t>(
            std::popcount(words[last] & lowBits(((hi - 1) & 63) + 1)));
        return total;
    }

    /** True iff no bit is set. */
    bool
    none() const
    {
        for (auto w : words)
            if (w != 0)
                return false;
        return true;
    }

    /** True iff at least one bit is set. */
    bool any() const { return !none(); }

    /**
     * Index of the first set bit at or after @p from, or size() if none.
     * Enables cheap iteration: for (i = findFirst(); i < size();
     * i = findNext(i)).
     */
    std::size_t
    findFirstFrom(std::size_t from) const
    {
        if (from >= numBits)
            return numBits;
        std::size_t wi = from >> 6;
        std::uint64_t w = words[wi] & ~lowBits(from & 63);
        while (true) {
            if (w != 0) {
                std::size_t pos =
                    (wi << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                return pos < numBits ? pos : numBits;
            }
            if (++wi >= words.size())
                return numBits;
            w = words[wi];
        }
    }

    /** Index of the first set bit, or size() if none. */
    std::size_t findFirst() const { return findFirstFrom(0); }

    /** Index of the next set bit strictly after @p pos, or size(). */
    std::size_t findNext(std::size_t pos) const
    {
        return findFirstFrom(pos + 1);
    }

    /**
     * Invoke @p visitor(pos) for every set bit in ascending order. One
     * linear pass over the words with countr_zero extraction — the fan
     * -out loops (cache invalidations, hierarchical expansion) use this
     * instead of a findFirst/findNext chain, which re-reads words from
     * the start on every step.
     */
    template <typename Visitor>
    void
    forEachSetBit(Visitor &&visitor) const
    {
        const std::size_t n = words.size();
        for (std::size_t wi = 0; wi < n; ++wi) {
            std::uint64_t w = words[wi];
            while (w != 0) {
                const std::size_t pos =
                    (wi << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                if (pos >= numBits)
                    return;
                visitor(pos);
                w &= w - 1; // clear the lowest set bit
            }
        }
    }

    /** Set every bit in [lo, hi) with word-masked fills. */
    void
    setRange(std::size_t lo, std::size_t hi)
    {
        assert(lo <= hi && hi <= numBits);
        if (lo >= hi)
            return;
        const std::size_t first = lo >> 6;
        const std::size_t last = (hi - 1) >> 6;
        const std::uint64_t head = highBitsFrom(lo & 63);
        const std::uint64_t tail = lowBits(((hi - 1) & 63) + 1);
        if (first == last) {
            words[first] |= head & tail;
            return;
        }
        words[first] |= head;
        for (std::size_t wi = first + 1; wi < last; ++wi)
            words[wi] = ~std::uint64_t{0};
        words[last] |= tail;
    }

    /** In-place union kernel. Sizes must match. */
    void
    orWith(const DynamicBitset &other)
    {
        assert(numBits == other.numBits);
        const std::size_t n = words.size();
        for (std::size_t i = 0; i < n; ++i)
            words[i] |= other.words[i];
    }

    /** In-place intersection kernel. Sizes must match. */
    void
    andWith(const DynamicBitset &other)
    {
        assert(numBits == other.numBits);
        const std::size_t n = words.size();
        for (std::size_t i = 0; i < n; ++i)
            words[i] &= other.words[i];
    }

    /** In-place union. Sizes must match. */
    DynamicBitset &
    operator|=(const DynamicBitset &other)
    {
        orWith(other);
        return *this;
    }

    /** In-place intersection. Sizes must match. */
    DynamicBitset &
    operator&=(const DynamicBitset &other)
    {
        andWith(other);
        return *this;
    }

    /** Equality (same size and same bits). */
    bool
    operator==(const DynamicBitset &other) const
    {
        return numBits == other.numBits && words == other.words;
    }

    /**
     * Bytes of heap the word buffer holds (capacity, not live size —
     * reinit() keeps high-water storage by design). Feeds the footprint
     * accounting in Directory::memoryBytes().
     */
    std::size_t heapBytes() const
    {
        return words.capacity() * sizeof(std::uint64_t);
    }

  private:
    static std::uint64_t
    lowBits(unsigned n)
    {
        return n == 0 ? 0 : (n >= 64 ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << n) - 1));
    }

    /** Mask with bits [n, 64) set. */
    static std::uint64_t
    highBitsFrom(unsigned n)
    {
        return ~lowBits(n);
    }

    std::size_t numBits = 0;
    WordVector words;
};

} // namespace cdir

#endif // CDIR_COMMON_BITSET_HH
