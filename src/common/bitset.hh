/**
 * @file
 * Run-time-sized bitset used for sharer vectors and Bloom-filter rows.
 *
 * std::bitset is compile-time sized and std::vector<bool> lacks word-level
 * operations; directory sharer vectors need a size chosen at configuration
 * time (the number of private caches) plus fast population count and
 * iteration over set bits.
 */

#ifndef CDIR_COMMON_BITSET_HH
#define CDIR_COMMON_BITSET_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cdir {

/** Dynamically sized bitset with word-parallel operations. */
class DynamicBitset
{
  public:
    DynamicBitset() = default;

    /** Construct with @p bits bits, all clear. */
    explicit DynamicBitset(std::size_t bits)
        : numBits(bits), words((bits + 63) / 64, 0)
    {}

    /** Number of bits in the set. */
    std::size_t size() const { return numBits; }

    /** Set bit @p pos. */
    void
    set(std::size_t pos)
    {
        assert(pos < numBits);
        words[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    }

    /** Clear bit @p pos. */
    void
    reset(std::size_t pos)
    {
        assert(pos < numBits);
        words[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
    }

    /** Test bit @p pos. */
    bool
    test(std::size_t pos) const
    {
        assert(pos < numBits);
        return (words[pos >> 6] >> (pos & 63)) & 1;
    }

    /** Clear every bit. */
    void
    clear()
    {
        for (auto &w : words)
            w = 0;
    }

    /**
     * Resize to @p bits bits, all clear, reusing the existing word
     * storage when possible (no heap traffic once the high-water size
     * has been reached — the property the allocation-free access
     * protocol relies on).
     */
    void
    reinit(std::size_t bits)
    {
        numBits = bits;
        words.assign((bits + 63) / 64, 0);
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (auto w : words)
            total += static_cast<std::size_t>(std::popcount(w));
        return total;
    }

    /** True iff no bit is set. */
    bool
    none() const
    {
        for (auto w : words)
            if (w != 0)
                return false;
        return true;
    }

    /** True iff at least one bit is set. */
    bool any() const { return !none(); }

    /**
     * Index of the first set bit at or after @p from, or size() if none.
     * Enables cheap iteration: for (i = findFirst(); i < size();
     * i = findNext(i)).
     */
    std::size_t
    findFirstFrom(std::size_t from) const
    {
        if (from >= numBits)
            return numBits;
        std::size_t wi = from >> 6;
        std::uint64_t w = words[wi] & ~lowBits(from & 63);
        while (true) {
            if (w != 0) {
                std::size_t pos =
                    (wi << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                return pos < numBits ? pos : numBits;
            }
            if (++wi >= words.size())
                return numBits;
            w = words[wi];
        }
    }

    /** Index of the first set bit, or size() if none. */
    std::size_t findFirst() const { return findFirstFrom(0); }

    /** Index of the next set bit strictly after @p pos, or size(). */
    std::size_t findNext(std::size_t pos) const
    {
        return findFirstFrom(pos + 1);
    }

    /** In-place union. Sizes must match. */
    DynamicBitset &
    operator|=(const DynamicBitset &other)
    {
        assert(numBits == other.numBits);
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] |= other.words[i];
        return *this;
    }

    /** In-place intersection. Sizes must match. */
    DynamicBitset &
    operator&=(const DynamicBitset &other)
    {
        assert(numBits == other.numBits);
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] &= other.words[i];
        return *this;
    }

    /** Equality (same size and same bits). */
    bool
    operator==(const DynamicBitset &other) const
    {
        return numBits == other.numBits && words == other.words;
    }

  private:
    static std::uint64_t
    lowBits(unsigned n)
    {
        return n == 0 ? 0 : (n >= 64 ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << n) - 1));
    }

    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace cdir

#endif // CDIR_COMMON_BITSET_HH
