/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the reproduction (workload generation, the
 * Fig. 7 random-value experiment, randomized property tests) draws from a
 * seeded Xoshiro256** generator so results are bit-reproducible across
 * runs and platforms.
 */

#ifndef CDIR_COMMON_RNG_HH
#define CDIR_COMMON_RNG_HH

#include <cstdint>

namespace cdir {

/**
 * Xoshiro256** generator (Blackman & Vigna). Satisfies the needs of a
 * simulator: fast, high quality, 64-bit output, trivially seedable.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free reduction is adequate
        // here; slight modulo bias at 2^64-scale bounds is irrelevant to
        // the experiments.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace cdir

#endif // CDIR_COMMON_RNG_HH
