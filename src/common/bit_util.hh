/**
 * @file
 * Small bit-manipulation helpers used by the hash functions, cache
 * indexing, and the analytical energy/area model — plus the
 * word-parallel probe kernels the directory hot path runs on.
 *
 * The probe kernels mirror the hardware the paper describes: a
 * directory lookup fires all way comparators simultaneously (§4), so
 * the software model compares a whole candidate run branchlessly and
 * reduces the matches to a uint64_t mask. Written as plain loops over
 * contiguous SoA arrays so the compiler auto-vectorizes them — no
 * intrinsics, portable everywhere (build with -DCDIR_NATIVE=ON for
 * -march=native codegen).
 *
 * Every kernel has a branchy scalar reference implementation that is
 * bit-identical in observable behaviour; setting CDIR_FORCE_SCALAR=1 in
 * the environment (or calling setForceScalarKernels) routes every call
 * through the reference path. The bit-identity test suite pins that the
 * two paths reproduce the same golden-trace tables.
 */

#ifndef CDIR_COMMON_BIT_UTIL_HH
#define CDIR_COMMON_BIT_UTIL_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdlib>

#include "common/types.hh"

namespace cdir {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2; @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOfTwo(v) ? 0u : 1u);
}

/** Number of bits needed to name @p n distinct values (at least 1). */
constexpr unsigned
bitsToName(std::uint64_t n)
{
    return n <= 1 ? 1u : ceilLog2(n);
}

/** Largest s with s*s <= n (exact integer square root). */
constexpr std::uint64_t
isqrtFloor(std::uint64_t n)
{
    if (n < 2)
        return n;
    // Newton's iteration seeded above sqrt(n): 2^ceil(log2(n)/2) squares
    // to >= n, and the iteration decreases monotonically to floor(sqrt).
    std::uint64_t x = std::uint64_t{1} << ((floorLog2(n) / 2) + 1);
    std::uint64_t y = (x + n / x) / 2;
    while (y < x) {
        x = y;
        y = (x + n / x) / 2;
    }
    return x;
}

/**
 * Smallest s with s*s >= n. Used for cluster-geometry derivations
 * (hierarchical sharer vectors, the analytical model) in place of
 * std::ceil(std::sqrt(double)) so storage accounting cannot drift
 * across platforms, FP modes, or libm versions.
 */
constexpr std::uint64_t
isqrtCeil(std::uint64_t n)
{
    const std::uint64_t r = isqrtFloor(n);
    return r * r == n ? r : r + 1;
}

/** Mask with the low @p bits bits set. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    assert(bits <= 64);
    return bits == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [lo, lo+count) of @p v. */
constexpr std::uint64_t
extractBits(std::uint64_t v, unsigned lo, unsigned count)
{
    return (v >> lo) & lowMask(count);
}

/** Rotate the low @p width bits of @p v left by @p amount. */
constexpr std::uint64_t
rotateLeft(std::uint64_t v, unsigned amount, unsigned width)
{
    assert(width > 0 && width <= 64);
    v &= lowMask(width);
    amount %= width;
    if (amount == 0)
        return v;
    return ((v << amount) | (v >> (width - amount))) & lowMask(width);
}

// --- word-parallel probe kernels ---------------------------------------------

/**
 * Widest candidate run a single kernel call reduces (the match mask is
 * one uint64_t). Directory probes never exceed it: the widest shipped
 * organization compares caches x assoc frames per chunk of 64.
 */
inline constexpr std::size_t kKernelWidth = 64;

namespace detail {

/** Mutable force-scalar switch, seeded once from CDIR_FORCE_SCALAR. */
inline int &
forceScalarState()
{
    static int state = [] {
        const char *env = std::getenv("CDIR_FORCE_SCALAR");
        return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    }();
    return state;
}

} // namespace detail

/**
 * True when every probe kernel must take its branchy scalar reference
 * path (runtime escape hatch for the bit-identity suite and for
 * debugging suspected kernel miscompiles). Seeded from the
 * CDIR_FORCE_SCALAR environment variable at first use.
 */
inline bool
forceScalarKernels()
{
    return detail::forceScalarState() != 0;
}

/** Override the force-scalar switch (tests compare both paths in-process). */
inline void
setForceScalarKernels(bool force)
{
    detail::forceScalarState() = force ? 1 : 0;
}

/**
 * Scalar reference: index of the first valid slot in [0, n) whose tag
 * equals @p needle, or @p n if absent. Early-exit branchy loop.
 */
inline std::size_t
findTagScalar(const Tag *tags, const std::uint8_t *valid, std::size_t n,
              Tag needle)
{
    for (std::size_t i = 0; i < n; ++i)
        if (valid[i] != 0 && tags[i] == needle)
            return i;
    return n;
}

/**
 * Branchless match mask over a contiguous candidate run: bit i is set
 * iff valid[i] && tags[i] == needle. No early exit — the loop body is
 * a pure compare/accumulate the compiler turns into SIMD compares, the
 * software analogue of the hardware's parallel way comparators.
 * @p n must be <= kKernelWidth.
 */
inline std::uint64_t
tagMatchMask(const Tag *tags, const std::uint8_t *valid, std::size_t n,
             Tag needle)
{
    assert(n <= kKernelWidth);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t hit =
            static_cast<std::uint64_t>(tags[i] == needle) &
            static_cast<std::uint64_t>(valid[i] != 0);
        mask |= hit << i;
    }
    return mask;
}

/**
 * First valid slot in a contiguous run holding @p needle, or @p n.
 * Kernel path reduces a branchless match mask; scalar path is the
 * early-exit reference. Both return the same index for any input.
 */
inline std::size_t
findTag(const Tag *tags, const std::uint8_t *valid, std::size_t n,
        Tag needle)
{
    if (forceScalarKernels())
        return findTagScalar(tags, valid, n, needle);
    const std::uint64_t mask = tagMatchMask(tags, valid, n, needle);
    return mask != 0 ? static_cast<std::size_t>(std::countr_zero(mask)) : n;
}

/**
 * Scalar reference for findVacant: first *invalid* slot in [0, n), or n.
 */
inline std::size_t
findVacantScalar(const std::uint8_t *valid, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (valid[i] == 0)
            return i;
    return n;
}

/** Branchless vacancy mask: bit i set iff valid[i] == 0 (n <= 64). */
inline std::uint64_t
vacancyMask(const std::uint8_t *valid, std::size_t n)
{
    assert(n <= kKernelWidth);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i)
        mask |= static_cast<std::uint64_t>(valid[i] == 0) << i;
    return mask;
}

/** First invalid slot in a contiguous run, or @p n. */
inline std::size_t
findVacant(const std::uint8_t *valid, std::size_t n)
{
    if (forceScalarKernels())
        return findVacantScalar(valid, n);
    const std::uint64_t mask = vacancyMask(valid, n);
    return mask != 0 ? static_cast<std::size_t>(std::countr_zero(mask)) : n;
}

/**
 * Hint the cache hierarchy to pull @p addr for a read. Purely a
 * performance hint — never changes observable behaviour, so it needs no
 * scalar twin.
 */
inline void
prefetchRead(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
    (void)addr;
#endif
}

} // namespace cdir

#endif // CDIR_COMMON_BIT_UTIL_HH
