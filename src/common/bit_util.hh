/**
 * @file
 * Small bit-manipulation helpers used by the hash functions, cache
 * indexing, and the analytical energy/area model.
 */

#ifndef CDIR_COMMON_BIT_UTIL_HH
#define CDIR_COMMON_BIT_UTIL_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace cdir {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2; @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOfTwo(v) ? 0u : 1u);
}

/** Number of bits needed to name @p n distinct values (at least 1). */
constexpr unsigned
bitsToName(std::uint64_t n)
{
    return n <= 1 ? 1u : ceilLog2(n);
}

/** Mask with the low @p bits bits set. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    assert(bits <= 64);
    return bits == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [lo, lo+count) of @p v. */
constexpr std::uint64_t
extractBits(std::uint64_t v, unsigned lo, unsigned count)
{
    return (v >> lo) & lowMask(count);
}

/** Rotate the low @p width bits of @p v left by @p amount. */
constexpr std::uint64_t
rotateLeft(std::uint64_t v, unsigned amount, unsigned width)
{
    assert(width > 0 && width <= 64);
    v &= lowMask(width);
    amount %= width;
    if (amount == 0)
        return v;
    return ((v << amount) | (v >> (width - amount))) & lowMask(width);
}

} // namespace cdir

#endif // CDIR_COMMON_BIT_UTIL_HH
