/**
 * @file
 * Statistics primitives: counters, running means, and bounded histograms.
 *
 * Each directory organization and the CMP simulator expose their behaviour
 * through these types; the bench harnesses read them to regenerate the
 * paper's figures (e.g. the Fig. 11 insertion-attempt histogram).
 */

#ifndef CDIR_COMMON_STATS_HH
#define CDIR_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cdir {

/** Running mean without storing samples. */
class RunningMean
{
  public:
    /** Add one sample. */
    void
    add(double value)
    {
        ++n;
        total += value;
    }

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Mean of samples seen so far (0 if empty). */
    double mean() const { return n == 0 ? 0.0 : total / double(n); }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Add @p count samples of the same @p value. */
    void
    addWeighted(double value, std::uint64_t count)
    {
        n += count;
        total += value * double(count);
    }

    /**
     * Fold @p other's samples into this mean, exactly (sums counts and
     * totals, so merging per-shard or per-slice accumulators in any
     * fixed order reproduces the single-accumulator result whenever the
     * sample sum is exactly representable — true for the integer-valued
     * series the simulator records).
     */
    void
    merge(const RunningMean &other)
    {
        n += other.n;
        total += other.total;
    }

    /** Discard all samples. */
    void
    reset()
    {
        n = 0;
        total = 0.0;
    }

    /**
     * Rebuild from serialized state (count() / sum() of an earlier
     * accumulator — the campaign shard JSON round-trip). Replaces the
     * current contents.
     */
    void
    restore(std::uint64_t count, double sum)
    {
        n = count;
        total = sum;
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
};

/**
 * Fixed-range integer histogram with an inclusive overflow top bucket,
 * matching how the paper buckets insertion attempts (0..32, where 32
 * also accumulates terminated insertions).
 */
class Histogram
{
  public:
    /** Buckets cover [0, maxValue]; samples above clamp to maxValue. */
    explicit Histogram(std::size_t max_value = 32)
        : buckets(max_value + 1, 0)
    {}

    /** Record one sample. */
    void
    add(std::uint64_t value)
    {
        if (value >= buckets.size())
            value = buckets.size() - 1;
        ++buckets[value];
        ++n;
    }

    /**
     * Record @p count identical samples at once (used when rebuilding a
     * histogram from its serialized sparse-bucket form).
     */
    void
    addCount(std::uint64_t value, std::uint64_t count)
    {
        if (value >= buckets.size())
            value = buckets.size() - 1;
        buckets[value] += count;
        n += count;
    }

    /** Count in bucket @p value. */
    std::uint64_t
    at(std::size_t value) const
    {
        return value < buckets.size() ? buckets[value] : 0;
    }

    /** Fraction of samples in bucket @p value (0 if empty histogram). */
    double
    fraction(std::size_t value) const
    {
        return n == 0 ? 0.0 : double(at(value)) / double(n);
    }

    /** Total samples. */
    std::uint64_t count() const { return n; }

    /** Largest representable bucket index. */
    std::size_t maxValue() const { return buckets.size() - 1; }

    /** Mean of recorded (clamped) samples. */
    double
    mean() const
    {
        if (n == 0)
            return 0.0;
        double weighted = 0.0;
        for (std::size_t v = 0; v < buckets.size(); ++v)
            weighted += double(v) * double(buckets[v]);
        return weighted / double(n);
    }

    /** Accumulate every bucket of @p other into this histogram. */
    void
    merge(const Histogram &other)
    {
        for (std::size_t v = 0; v <= other.maxValue(); ++v) {
            const std::uint64_t k = other.at(v);
            const std::size_t dest =
                v < buckets.size() ? v : buckets.size() - 1;
            buckets[dest] += k;
            n += k;
        }
    }

    /** Discard all samples. */
    void
    reset()
    {
        for (auto &b : buckets)
            b = 0;
        n = 0;
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t n = 0;
};

} // namespace cdir

#endif // CDIR_COMMON_STATS_HH
