/**
 * @file
 * Process-wide heap-allocation counter for allocation-free-path
 * verification (the zero-alloc tests and the micro benchmark's
 * allocs/op counter).
 *
 * Deliberately NOT part of the cdir library: linking the companion
 * alloc_counter.cc into a binary replaces the global operator
 * new/delete, which only test/bench targets should opt into. Add
 * `src/common/alloc_counter.cc` to the target's sources to enable it.
 */

#ifndef CDIR_COMMON_ALLOC_COUNTER_HH
#define CDIR_COMMON_ALLOC_COUNTER_HH

#include <cstddef>

namespace cdir {

/**
 * Number of operator-new calls the process has performed so far.
 * Measure a window by differencing two reads.
 */
std::size_t allocationCount();

} // namespace cdir

#endif // CDIR_COMMON_ALLOC_COUNTER_HH
