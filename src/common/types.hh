/**
 * @file
 * Fundamental type definitions shared by every library in the Cuckoo
 * directory reproduction.
 *
 * The paper models a 48-bit physical address space with 64-byte blocks
 * (Table 1); all structures in this repository index *block* addresses,
 * i.e. the byte address with the block-offset bits stripped.
 */

#ifndef CDIR_COMMON_TYPES_HH
#define CDIR_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace cdir {

/** Physical byte address (48 bits used, per Table 1). */
using Addr = std::uint64_t;

/** Block address: byte address >> log2(blockSize). */
using BlockAddr = std::uint64_t;

/** Directory tag: block address (possibly further truncated by an index). */
using Tag = std::uint64_t;

/** Identifier of a private cache (one per core, or two for I+D splits). */
using CacheId = std::uint32_t;

/** Identifier of a core. */
using CoreId = std::uint32_t;

/** Sentinel for "no cache". */
inline constexpr CacheId invalidCacheId = ~CacheId{0};

/** Cache-block size in bytes used throughout the paper (Table 1). */
inline constexpr std::size_t blockBytes = 64;

/** Physical address width in bits (Table 1). */
inline constexpr unsigned physAddrBits = 48;

} // namespace cdir

#endif // CDIR_COMMON_TYPES_HH
