#include "common/alloc_counter.hh"

#include <cstdlib>
#include <new>

namespace {
std::size_t g_allocations = 0;
}

namespace cdir {

std::size_t
allocationCount()
{
    return g_allocations;
}

} // namespace cdir

// GCC pairs inlined std::vector new-expressions with these replaced
// deletes and flags the malloc/free mix; the pairing is ours and
// correct (new uses malloc), so the warning is spurious.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop
