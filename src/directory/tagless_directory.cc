#include "directory/tagless_directory.hh"

#include <cassert>
#include <sstream>

#include "common/bit_util.hh"
#include "common/rng.hh"
#include "hash/strong_hash.hh"

namespace cdir {

TaglessDirectory::TaglessDirectory(std::size_t num_caches,
                                   std::size_t num_sets,
                                   std::size_t bucket_bits,
                                   unsigned num_grids, std::uint64_t seed)
    : Directory(num_caches),
      sets(num_sets),
      bucketBits(bucket_bits),
      grids(num_grids)
{
    assert(isPowerOfTwo(num_sets));
    assert(isPowerOfTwo(bucket_bits));
    assert(num_grids >= 1);
    indexMask = num_sets - 1;
    bucketMask = bucket_bits - 1;
    Rng rng(seed);
    for (unsigned g = 0; g < grids; ++g)
        hashKeys.push_back(rng.next() | 1);
    counters.assign(std::size_t{grids} * sets * num_caches * bucket_bits,
                    0);
}

std::size_t
TaglessDirectory::bucketIndex(unsigned grid, Tag tag) const
{
    // Hash the tag bits above the set index so rows discriminate within
    // a set.
    return static_cast<std::size_t>(
        StrongHashFamily::mix((tag >> 1) * hashKeys[grid] + grid) &
        bucketMask);
}

std::uint16_t &
TaglessDirectory::counter(unsigned grid, std::size_t set, CacheId cache,
                          std::size_t bucket)
{
    return counters[((std::size_t{grid} * sets + set) * caches + cache) *
                        bucketBits +
                    bucket];
}

const std::uint16_t &
TaglessDirectory::counter(unsigned grid, std::size_t set, CacheId cache,
                          std::size_t bucket) const
{
    return const_cast<TaglessDirectory *>(this)->counter(grid, set, cache,
                                                         bucket);
}

bool
TaglessDirectory::filterMatch(Tag tag, CacheId cache) const
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g)
        if (counter(g, set, cache, bucketIndex(g, tag)) == 0)
            return false;
    return true;
}

void
TaglessDirectory::filterAdd(Tag tag, CacheId cache)
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g)
        ++counter(g, set, cache, bucketIndex(g, tag));
}

void
TaglessDirectory::filterRemove(Tag tag, CacheId cache)
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g) {
        auto &c = counter(g, set, cache, bucketIndex(g, tag));
        assert(c > 0);
        --c;
    }
}

DirAccessResult
TaglessDirectory::access(Tag tag, CacheId cache, bool is_write)
{
    DirAccessResult result;
    ++statistics.lookups;

    auto shadow_it = shadow.find(tag);
    const bool tracked = shadow_it != shadow.end();

    // Filter column read: superset of sharers.
    DynamicBitset filter_holders(caches);
    for (CacheId c = 0; c < caches; ++c)
        if (filterMatch(tag, c))
            filter_holders.set(c);

    if (tracked) {
        result.hit = true;
        ++statistics.hits;
    }

    if (is_write) {
        DynamicBitset targets = filter_holders;
        if (cache < targets.size() && targets.test(cache))
            targets.reset(cache);
        if (targets.any()) {
            result.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
            // Acks reveal the true holders; clear their filter state.
            if (tracked) {
                DynamicBitset &truth = shadow_it->second;
                for (std::size_t c = targets.findFirst();
                     c < targets.size(); c = targets.findNext(c)) {
                    if (truth.test(c)) {
                        filterRemove(tag, static_cast<CacheId>(c));
                        truth.reset(c);
                    } else {
                        ++spurious;
                    }
                }
            } else {
                spurious += targets.count();
            }
            result.sharerInvalidations = std::move(targets);
        }
    }

    // Track the requester's allocation unless it already holds the tag.
    const bool requester_holds =
        tracked && shadow_it->second.test(cache);
    if (!requester_holds) {
        if (!tracked) {
            shadow_it =
                shadow.emplace(tag, DynamicBitset(caches)).first;
        }
        shadow_it->second.set(cache);
        filterAdd(tag, cache);
        result.attempts = 1;
        if (!tracked) {
            // New tag; adding a cache to a tracked tag is a sharer add.
            result.inserted = true;
            ++statistics.insertions;
            statistics.insertionAttempts.add(1);
            statistics.attemptHistogram.add(1);
        } else if (!is_write) {
            ++statistics.sharerAdds;
        }
    }
    // An emptied entry disappears from the shadow map.
    if (shadow_it != shadow.end() && shadow_it->second.none())
        shadow.erase(shadow_it);
    return result;
}

void
TaglessDirectory::removeSharer(Tag tag, CacheId cache)
{
    auto it = shadow.find(tag);
    if (it == shadow.end() || !it->second.test(cache))
        return;
    ++statistics.sharerRemovals;
    filterRemove(tag, cache);
    it->second.reset(cache);
    if (it->second.none()) {
        shadow.erase(it);
        ++statistics.entryFrees;
    }
}

bool
TaglessDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    if (sharers) {
        *sharers = DynamicBitset(caches);
        for (CacheId c = 0; c < caches; ++c)
            if (filterMatch(tag, c))
                sharers->set(c);
    }
    return shadow.contains(tag);
}

std::size_t
TaglessDirectory::capacity() const
{
    // Design capacity: the blocks of the mirrored cache sets. The
    // filters themselves have no entry notion.
    return sets * caches;
}

std::string
TaglessDirectory::name() const
{
    std::ostringstream os;
    os << "Tagless-" << grids << "g" << bucketBits << "b x" << sets;
    return os.str();
}

} // namespace cdir
