#include "directory/tagless_directory.hh"

#include <bit>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/bit_util.hh"
#include "common/rng.hh"
#include "directory/registry.hh"
#include "hash/strong_hash.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(tagless, "Tagless",
                        DirectoryTraits{.mirrorsTrackedCaches = true},
                        [](const DirectoryParams &p) {
                            return std::make_unique<TaglessDirectory>(
                                p.numCaches, p.sets, p.taglessBucketBits,
                                2, p.hashSeed);
                        });

// --- TagSharerMap ----------------------------------------------------------

TagSharerMap::TagSharerMap(std::size_t num_caches,
                           std::size_t initial_capacity)
    : caches(num_caches)
{
    const std::size_t cap =
        std::bit_ceil(initial_capacity < 16 ? 16 : initial_capacity);
    slots.resize(cap);
    // Provision every slot's bitset storage up front so inserting into
    // a never-used slot does not allocate.
    for (Slot &s : slots)
        s.sharers.reinit(caches);
    mask = cap - 1;
}

std::size_t
TagSharerMap::home(Tag tag) const
{
    return static_cast<std::size_t>(
               StrongHashFamily::mix(tag + 0x9e3779b97f4a7c15ULL)) &
           mask;
}

DynamicBitset *
TagSharerMap::find(Tag tag)
{
    for (std::size_t i = home(tag); slots[i].occupied; i = (i + 1) & mask) {
        if (slots[i].tag == tag)
            return &slots[i].sharers;
    }
    return nullptr;
}

const DynamicBitset *
TagSharerMap::find(Tag tag) const
{
    return const_cast<TagSharerMap *>(this)->find(tag);
}

DynamicBitset &
TagSharerMap::insert(Tag tag)
{
    assert(find(tag) == nullptr && "duplicate insert");
    // Grow at 70% load; only then does the table allocate.
    if ((used + 1) * 10 >= slots.size() * 7)
        grow();
    std::size_t i = home(tag);
    while (slots[i].occupied)
        i = (i + 1) & mask;
    slots[i].tag = tag;
    slots[i].occupied = true;
    slots[i].sharers.reinit(caches);
    ++used;
    return slots[i].sharers;
}

void
TagSharerMap::erase(Tag tag)
{
    std::size_t i = home(tag);
    while (true) {
        if (!slots[i].occupied)
            return; // absent
        if (slots[i].tag == tag)
            break;
        i = (i + 1) & mask;
    }
    slots[i].occupied = false;
    --used;
    // Backward-shift deletion: close the probe chain without
    // tombstones. Swapping the bitsets keeps their word storage
    // circulating among the slots, so no allocation ever happens here.
    std::size_t j = i;
    while (true) {
        j = (j + 1) & mask;
        if (!slots[j].occupied)
            return;
        const std::size_t h = home(slots[j].tag);
        if (((j - h) & mask) >= ((j - i) & mask)) {
            slots[i].tag = slots[j].tag;
            std::swap(slots[i].sharers, slots[j].sharers);
            slots[i].occupied = true;
            slots[j].occupied = false;
            i = j;
        }
    }
}

void
TagSharerMap::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    for (Slot &s : slots)
        s.sharers.reinit(caches);
    mask = slots.size() - 1;
    for (Slot &s : old) {
        if (!s.occupied)
            continue;
        std::size_t i = home(s.tag);
        while (slots[i].occupied)
            i = (i + 1) & mask;
        slots[i].tag = s.tag;
        slots[i].occupied = true;
        std::swap(slots[i].sharers, s.sharers);
    }
}

// --- TaglessDirectory ------------------------------------------------------

TaglessDirectory::TaglessDirectory(std::size_t num_caches,
                                   std::size_t num_sets,
                                   std::size_t bucket_bits,
                                   unsigned num_grids, std::uint64_t seed)
    : Directory(num_caches),
      sets(num_sets),
      bucketBits(bucket_bits),
      grids(num_grids),
      shadow(num_caches),
      scratchHolders(num_caches)
{
    assert(isPowerOfTwo(num_sets));
    assert(isPowerOfTwo(bucket_bits));
    assert(num_grids >= 1);
    indexMask = num_sets - 1;
    bucketMask = bucket_bits - 1;
    Rng rng(seed);
    for (unsigned g = 0; g < grids; ++g)
        hashKeys.push_back(rng.next() | 1);
    counters.assign(std::size_t{grids} * sets * num_caches * bucket_bits,
                    0);
}

std::size_t
TaglessDirectory::bucketIndex(unsigned grid, Tag tag) const
{
    // Hash the tag bits above the set index so rows discriminate within
    // a set.
    return static_cast<std::size_t>(
        StrongHashFamily::mix((tag >> 1) * hashKeys[grid] + grid) &
        bucketMask);
}

std::uint16_t &
TaglessDirectory::counter(unsigned grid, std::size_t set, CacheId cache,
                          std::size_t bucket)
{
    return counters[((std::size_t{grid} * sets + set) * caches + cache) *
                        bucketBits +
                    bucket];
}

const std::uint16_t &
TaglessDirectory::counter(unsigned grid, std::size_t set, CacheId cache,
                          std::size_t bucket) const
{
    return const_cast<TaglessDirectory *>(this)->counter(grid, set, cache,
                                                         bucket);
}

bool
TaglessDirectory::filterMatch(Tag tag, CacheId cache) const
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g)
        if (counter(g, set, cache, bucketIndex(g, tag)) == 0)
            return false;
    return true;
}

void
TaglessDirectory::filterAdd(Tag tag, CacheId cache)
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g)
        ++counter(g, set, cache, bucketIndex(g, tag));
}

void
TaglessDirectory::filterRemove(Tag tag, CacheId cache)
{
    const std::size_t set = setIndex(tag);
    for (unsigned g = 0; g < grids; ++g) {
        auto &c = counter(g, set, cache, bucketIndex(g, tag));
        assert(c > 0);
        --c;
    }
}

void
TaglessDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    const Tag tag = request.tag;
    const CacheId cache = request.cache;

    DynamicBitset *truth = shadow.find(tag);
    const bool tracked = truth != nullptr;

    // Filter column read: superset of sharers.
    DynamicBitset &filter_holders = scratchHolders;
    filter_holders.clear();
    for (CacheId c = 0; c < caches; ++c)
        if (filterMatch(tag, c))
            filter_holders.set(c);

    if (tracked) {
        out.hit = true;
        ++statistics.hits;
    }

    if (request.isWrite) {
        DynamicBitset &targets = ctx.sharerTargets(out);
        targets = filter_holders;
        if (cache < targets.size() && targets.test(cache))
            targets.reset(cache);
        if (targets.any()) {
            out.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
            // Acks reveal the true holders; clear their filter state.
            if (tracked) {
                targets.forEachSetBit([&](std::size_t c) {
                    if (truth->test(c)) {
                        filterRemove(tag, static_cast<CacheId>(c));
                        truth->reset(c);
                    } else {
                        ++spurious;
                    }
                });
            } else {
                spurious += targets.count();
            }
        }
    }

    // Track the requester's allocation unless it already holds the tag.
    const bool requester_holds = tracked && truth->test(cache);
    if (!requester_holds) {
        if (!tracked)
            truth = &shadow.insert(tag);
        truth->set(cache);
        filterAdd(tag, cache);
        out.attempts = 1;
        if (!tracked) {
            // New tag; adding a cache to a tracked tag is a sharer add.
            out.inserted = true;
            ++statistics.insertions;
            statistics.insertionAttempts.add(1);
            statistics.attemptHistogram.add(1);
        } else if (!request.isWrite) {
            ++statistics.sharerAdds;
        }
    }
    // An emptied entry disappears from the shadow map.
    if (truth != nullptr && truth->none())
        shadow.erase(tag);
}

void
TaglessDirectory::removeSharer(Tag tag, CacheId cache)
{
    DynamicBitset *truth = shadow.find(tag);
    if (truth == nullptr || !truth->test(cache))
        return;
    ++statistics.sharerRemovals;
    filterRemove(tag, cache);
    truth->reset(cache);
    if (truth->none()) {
        shadow.erase(tag);
        ++statistics.entryFrees;
    }
}

bool
TaglessDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    if (sharers) {
        sharers->reinit(caches);
        for (CacheId c = 0; c < caches; ++c)
            if (filterMatch(tag, c))
                sharers->set(c);
    }
    return shadow.contains(tag);
}

std::size_t
TaglessDirectory::capacity() const
{
    // Design capacity: the blocks of the mirrored cache sets. The
    // filters themselves have no entry notion.
    return sets * caches;
}

std::string
TaglessDirectory::name() const
{
    std::ostringstream os;
    os << "Tagless-" << grids << "g" << bucketBits << "b x" << sets;
    return os.str();
}

} // namespace cdir
