#include "directory/cuckoo_directory.hh"

#include <cassert>
#include <sstream>

#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(cuckoo, "Cuckoo",
                        DirectoryTraits{.usesBucketSlots = true},
                        [](const DirectoryParams &p) {
                            return std::make_unique<CuckooDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                p.hash, p.maxAttempts, p.hashSeed,
                                p.bucketSlots, p.stashEntries);
                        });

CuckooDirectory::CuckooDirectory(std::size_t num_caches, unsigned ways,
                                 std::size_t sets_per_way,
                                 SharerFormat fmt, HashKind hash,
                                 unsigned max_attempts,
                                 std::uint64_t hash_seed,
                                 unsigned bucket_slots,
                                 unsigned stash_entries)
    : Directory(num_caches),
      format(fmt),
      hashKind(hash),
      family(makeHashFamily(hash, ways, sets_per_way, hash_seed)),
      table(*family, max_attempts, bucket_slots),
      stashCapacity(stash_entries)
{
    stash.reserve(stash_entries);
    // +1 covers the in-flight rep a give-up insertion holds while the
    // table and stash are both full.
    prefillRepPool(fmt, table.capacity() + stash_entries + 1);
}

CuckooDirectory::StashEntry *
CuckooDirectory::findStash(Tag tag)
{
    for (StashEntry &e : stash)
        if (e.tag == tag)
            return &e;
    return nullptr;
}

void
CuckooDirectory::drainStash()
{
    if (stash.empty())
        return;
    StashEntry entry = std::move(stash.back());
    stash.pop_back();
    auto ins = table.insert(entry.tag, std::move(entry.rep));
    if (ins.discarded) {
        // No room yet: park the (possibly different) displaced entry.
        assert(ins.discardedPayload.has_value());
        stash.push_back(
            {ins.discardedTag, std::move(*ins.discardedPayload)});
    }
}

void
CuckooDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;

    if (Rep *rep = table.find(request.tag)) {
        out.hit = true;
        ++statistics.hits;
        updateEntryOnHit(**rep, request, ctx, out);
        return;
    }
    if (StashEntry *entry = findStash(request.tag)) {
        out.hit = true;
        ++statistics.hits;
        updateEntryOnHit(*entry->rep, request, ctx, out);
        return;
    }

    // Miss: allocate an entry tracking the requester.
    Rep rep = acquireRep(format);
    rep->add(request.cache);
    auto ins = table.insert(request.tag, std::move(rep));

    out.inserted = true;
    out.attempts = ins.attempts;
    ++statistics.insertions;
    statistics.insertionAttempts.add(ins.attempts);
    statistics.attemptHistogram.add(ins.attempts);

    if (ins.discarded) {
        assert(ins.discardedPayload.has_value());
        if (stash.size() < stashCapacity) {
            // Kirsch-style stash extension: park the overflow entry
            // instead of invalidating its blocks.
            stash.push_back(
                {ins.discardedTag, std::move(*ins.discardedPayload)});
            ++stashAbsorbs;
        } else {
            out.insertDiscarded = true;
            ++statistics.insertFailures;
            ++statistics.forcedEvictions;
            EvictedEntry &evicted = ctx.appendEviction(out);
            evicted.tag = ins.discardedTag;
            (*ins.discardedPayload)->invalidationTargets(evicted.targets);
            statistics.forcedBlockInvalidations += evicted.targets.count();
            recycleRep(std::move(*ins.discardedPayload));
        }
    }
}

void
CuckooDirectory::removeSharer(Tag tag, CacheId cache)
{
    const std::size_t pos = table.findPos(tag);
    if (pos != CuckooTable<Rep>::npos) {
        ++statistics.sharerRemovals;
        Rep &rep = table.payloadAt(pos);
        if (rep->remove(cache)) {
            // One probe serves both the removal and the free: erase at
            // the position the lookup already found instead of
            // re-probing all ways.
            recycleRep(table.eraseAt(pos));
            ++statistics.entryFrees;
            // A freed slot is the opportunity to re-home a parked
            // overflow entry.
            drainStash();
        }
        return;
    }
    if (StashEntry *entry = findStash(tag)) {
        ++statistics.sharerRemovals;
        if (entry->rep->remove(cache)) {
            recycleRep(std::move(entry->rep));
            if (entry != &stash.back())
                *entry = std::move(stash.back());
            stash.pop_back();
            ++statistics.entryFrees;
        }
    }
}

bool
CuckooDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    if (const Rep *rep = table.find(tag)) {
        if (sharers)
            (*rep)->invalidationTargets(*sharers);
        return true;
    }
    auto *self = const_cast<CuckooDirectory *>(this);
    if (StashEntry *entry = self->findStash(tag)) {
        if (sharers)
            entry->rep->invalidationTargets(*sharers);
        return true;
    }
    return false;
}

std::size_t
CuckooDirectory::validEntries() const
{
    return table.size() + stash.size();
}

std::size_t
CuckooDirectory::capacity() const
{
    return table.capacity() + stashCapacity;
}

std::string
CuckooDirectory::name() const
{
    std::ostringstream os;
    os << "Cuckoo-" << table.numWays() << "x" << table.setsPerWay();
    if (table.slotsPerBucket() > 1)
        os << "b" << table.slotsPerBucket();
    if (stashCapacity > 0)
        os << "+stash" << stashCapacity;
    return os.str();
}

} // namespace cdir
