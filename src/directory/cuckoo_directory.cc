#include "directory/cuckoo_directory.hh"

#include <cassert>
#include <sstream>

namespace cdir {

namespace {

/**
 * Shared hit-path update: writes collect an invalidation vector for the
 * other sharers and leave the writer as sole owner; reads add a sharer.
 */
void
updateOnHit(SharerRep &rep, CacheId cache, bool is_write,
            DirAccessResult &result, DirectoryStats &stats)
{
    if (is_write) {
        DynamicBitset targets;
        rep.invalidationTargets(targets);
        if (cache < targets.size() && targets.test(cache))
            targets.reset(cache);
        if (targets.any()) {
            result.hadSharerInvalidations = true;
            result.sharerInvalidations = std::move(targets);
            ++stats.writeUpgrades;
        }
        rep.clear();
        rep.add(cache);
    } else {
        rep.add(cache);
        ++stats.sharerAdds;
    }
}

} // namespace

CuckooDirectory::CuckooDirectory(std::size_t num_caches, unsigned ways,
                                 std::size_t sets_per_way,
                                 SharerFormat fmt, HashKind hash,
                                 unsigned max_attempts,
                                 std::uint64_t hash_seed,
                                 unsigned bucket_slots,
                                 unsigned stash_entries)
    : Directory(num_caches),
      format(fmt),
      hashKind(hash),
      family(makeHashFamily(hash, ways, sets_per_way, hash_seed)),
      table(*family, max_attempts, bucket_slots),
      stashCapacity(stash_entries)
{
    stash.reserve(stash_entries);
}

CuckooDirectory::StashEntry *
CuckooDirectory::findStash(Tag tag)
{
    for (StashEntry &e : stash)
        if (e.tag == tag)
            return &e;
    return nullptr;
}

void
CuckooDirectory::drainStash()
{
    if (stash.empty())
        return;
    StashEntry entry = std::move(stash.back());
    stash.pop_back();
    auto ins = table.insert(entry.tag, std::move(entry.rep));
    if (ins.discarded) {
        // No room yet: park the (possibly different) displaced entry.
        assert(ins.discardedPayload.has_value());
        stash.push_back(
            {ins.discardedTag, std::move(*ins.discardedPayload)});
    }
}

DirAccessResult
CuckooDirectory::access(Tag tag, CacheId cache, bool is_write)
{
    DirAccessResult result;
    ++statistics.lookups;

    if (Rep *rep = table.find(tag)) {
        result.hit = true;
        ++statistics.hits;
        updateOnHit(**rep, cache, is_write, result, statistics);
        return result;
    }
    if (StashEntry *entry = findStash(tag)) {
        result.hit = true;
        ++statistics.hits;
        updateOnHit(*entry->rep, cache, is_write, result, statistics);
        return result;
    }

    // Miss: allocate an entry tracking the requester.
    Rep rep = makeSharerRep(format, caches);
    rep->add(cache);
    auto ins = table.insert(tag, std::move(rep));

    result.inserted = true;
    result.attempts = ins.attempts;
    ++statistics.insertions;
    statistics.insertionAttempts.add(ins.attempts);
    statistics.attemptHistogram.add(ins.attempts);

    if (ins.discarded) {
        assert(ins.discardedPayload.has_value());
        if (stash.size() < stashCapacity) {
            // Kirsch-style stash extension: park the overflow entry
            // instead of invalidating its blocks.
            stash.push_back(
                {ins.discardedTag, std::move(*ins.discardedPayload)});
            ++stashAbsorbs;
        } else {
            result.insertDiscarded = true;
            ++statistics.insertFailures;
            ++statistics.forcedEvictions;
            EvictedEntry evicted;
            evicted.tag = ins.discardedTag;
            (*ins.discardedPayload)->invalidationTargets(evicted.targets);
            statistics.forcedBlockInvalidations += evicted.targets.count();
            result.forcedEvictions.push_back(std::move(evicted));
        }
    }
    return result;
}

void
CuckooDirectory::removeSharer(Tag tag, CacheId cache)
{
    if (Rep *rep = table.find(tag)) {
        ++statistics.sharerRemovals;
        if ((*rep)->remove(cache)) {
            table.erase(tag);
            ++statistics.entryFrees;
            // A freed slot is the opportunity to re-home a parked
            // overflow entry.
            drainStash();
        }
        return;
    }
    if (StashEntry *entry = findStash(tag)) {
        ++statistics.sharerRemovals;
        if (entry->rep->remove(cache)) {
            if (entry != &stash.back())
                *entry = std::move(stash.back());
            stash.pop_back();
            ++statistics.entryFrees;
        }
    }
}

bool
CuckooDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    if (const Rep *rep = table.find(tag)) {
        if (sharers)
            (*rep)->invalidationTargets(*sharers);
        return true;
    }
    auto *self = const_cast<CuckooDirectory *>(this);
    if (StashEntry *entry = self->findStash(tag)) {
        if (sharers)
            entry->rep->invalidationTargets(*sharers);
        return true;
    }
    return false;
}

std::size_t
CuckooDirectory::validEntries() const
{
    return table.size() + stash.size();
}

std::size_t
CuckooDirectory::capacity() const
{
    return table.capacity() + stashCapacity;
}

std::string
CuckooDirectory::name() const
{
    std::ostringstream os;
    os << "Cuckoo-" << table.numWays() << "x" << table.setsPerWay();
    if (table.slotsPerBucket() > 1)
        os << "b" << table.slotsPerBucket();
    if (stashCapacity > 0)
        os << "+stash" << stashCapacity;
    return os.str();
}

} // namespace cdir
