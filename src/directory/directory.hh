/**
 * @file
 * Coherence-directory interface shared by every organization.
 *
 * A directory slice tracks which private caches hold which block tags.
 * The CMP simulator drives slices through three operations that mirror
 * §4.2 of the paper:
 *
 *  - access(tag, cache, is_write): a read or write miss from a private
 *    cache arrives at the home slice. If the tag is present the sharer
 *    set is updated (a write also yields an invalidation vector for the
 *    other sharers). If absent, a new entry is inserted — possibly
 *    conflicting, displacing, or forcing the eviction of other entries
 *    depending on the organization.
 *  - removeSharer(tag, cache): a private cache evicted the block; the
 *    entry empties and becomes reusable when the last sharer leaves.
 *  - probe(tag): lookup without side effects.
 *
 * Every organization reports the same statistics, so the Fig. 8-12
 * harnesses can iterate over organizations generically.
 */

#ifndef CDIR_DIRECTORY_DIRECTORY_HH
#define CDIR_DIRECTORY_DIRECTORY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitset.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "hash/hash_family.hh"
#include "sharers/sharer_rep.hh"

namespace cdir {

/** A directory entry evicted because of a conflict (forced eviction). */
struct EvictedEntry
{
    Tag tag = 0;
    /** Caches that must invalidate the block (superset of sharers). */
    DynamicBitset targets;
};

/** Outcome of one Directory::access call. */
struct DirAccessResult
{
    bool hit = false;          //!< tag was already tracked
    bool inserted = false;     //!< a new entry was allocated
    /**
     * The insertion procedure gave up (Cuckoo attempt bound) and
     * discarded an entry; the discarded entry is in forcedEvictions.
     */
    bool insertDiscarded = false;
    unsigned attempts = 0;     //!< insertion attempts (0 on hit)
    /** Write hit: caches (other than the requester) to invalidate. */
    bool hadSharerInvalidations = false;
    DynamicBitset sharerInvalidations;
    /** Entries evicted to make room (set conflicts / give-up). */
    std::vector<EvictedEntry> forcedEvictions;
};

/** Statistics common to all organizations. */
struct DirectoryStats
{
    std::uint64_t lookups = 0;          //!< access() calls
    std::uint64_t hits = 0;             //!< access() found the tag
    std::uint64_t insertions = 0;       //!< new entries allocated
    std::uint64_t sharerAdds = 0;       //!< sharer added to existing entry
    std::uint64_t writeUpgrades = 0;    //!< writes that invalidated sharers
    std::uint64_t sharerRemovals = 0;   //!< removeSharer() calls that hit
    std::uint64_t entryFrees = 0;       //!< entries emptied by last removal
    std::uint64_t forcedEvictions = 0;  //!< entries evicted by conflicts
    /** Cached blocks invalidated by forced evictions (sum of targets). */
    std::uint64_t forcedBlockInvalidations = 0;
    /** Insertions that exhausted the attempt budget (Cuckoo only). */
    std::uint64_t insertFailures = 0;
    RunningMean insertionAttempts;  //!< attempts per new-entry insertion
    Histogram attemptHistogram{32}; //!< Fig. 11 distribution

    /** Forced invalidation rate: forced evictions per insertion. */
    double
    forcedInvalidationRate() const
    {
        return insertions == 0
                   ? 0.0
                   : double(forcedEvictions) / double(insertions);
    }

    void
    reset()
    {
        *this = DirectoryStats{};
    }
};

/** Abstract coherence-directory slice (see file comment). */
class Directory
{
  public:
    /** @param num_caches private caches this slice can name. */
    explicit Directory(std::size_t num_caches) : caches(num_caches) {}
    virtual ~Directory() = default;

    /**
     * Handle a read or write miss from @p cache for block @p tag.
     * See the file comment for semantics.
     */
    virtual DirAccessResult access(Tag tag, CacheId cache,
                                   bool is_write) = 0;

    /** Private cache @p cache evicted block @p tag. */
    virtual void removeSharer(Tag tag, CacheId cache) = 0;

    /**
     * Side-effect-free lookup.
     * @param tag     block tag to find.
     * @param sharers if non-null and found, receives the (possibly
     *                imprecise) sharer targets.
     * @return true iff the tag is tracked.
     */
    virtual bool probe(Tag tag, DynamicBitset *sharers = nullptr) const = 0;

    /** Currently valid entries. */
    virtual std::size_t validEntries() const = 0;

    /** Total entry slots. */
    virtual std::size_t capacity() const = 0;

    /** Human-readable organization name for reports. */
    virtual std::string name() const = 0;

    /** Fraction of slots in use. */
    double
    occupancy() const
    {
        return capacity() == 0
                   ? 0.0
                   : double(validEntries()) / double(capacity());
    }

    /** Number of private caches tracked. */
    std::size_t numCaches() const { return caches; }

    /** Accumulated statistics. */
    const DirectoryStats &stats() const { return statistics; }

    /** Reset accumulated statistics (entries stay). */
    void resetStats() { statistics.reset(); }

  protected:
    std::size_t caches;
    DirectoryStats statistics;
};

/** Organization selector for the factory. */
enum class DirectoryKind
{
    Cuckoo,
    Sparse,
    Skewed,
    DuplicateTag,
    InCache,
    Tagless,
    /** Elbow cache organization [37,38]: skewed lookup with at most one
     *  displacement per insertion (§6 related work). */
    Elbow,
};

/** Configuration for building any directory organization. */
struct DirectoryParams
{
    DirectoryKind kind = DirectoryKind::Cuckoo;
    std::size_t numCaches = 16;
    unsigned ways = 4;            //!< associativity / cuckoo arity
    std::size_t sets = 512;       //!< sets (per way for Cuckoo/Skewed)
    SharerFormat format = SharerFormat::FullVector;
    HashKind hash = HashKind::Skewing;  //!< Cuckoo/Skewed indexing
    unsigned maxAttempts = 32;    //!< Cuckoo insertion bound (§4.2)
    /** Elements per Cuckoo bucket (Panigrahy [30]; 1 = paper design). */
    unsigned bucketSlots = 1;
    /** Overflow-stash entries (Kirsch et al. [22]; 0 = paper design,
     *  which discards overflow instead, §6). */
    unsigned stashEntries = 0;
    std::uint64_t hashSeed = 1;
    /** DuplicateTag/Tagless: associativity of each tracked cache. */
    unsigned trackedCacheAssoc = 2;
    /** Tagless: bits per Bloom-filter bucket row. */
    std::size_t taglessBucketBits = 64;

    /** Total entry capacity implied by the parameters. */
    std::size_t
    totalEntries() const
    {
        return std::size_t{ways} * sets *
               (kind == DirectoryKind::Cuckoo ? bucketSlots : 1);
    }
};

/** Build a directory slice for @p params. */
std::unique_ptr<Directory> makeDirectory(const DirectoryParams &params);

/** Printable name of a DirectoryKind. */
std::string directoryKindName(DirectoryKind kind);

} // namespace cdir

#endif // CDIR_DIRECTORY_DIRECTORY_HH
