/**
 * @file
 * Coherence-directory interface shared by every organization.
 *
 * A directory slice tracks which private caches hold which block tags.
 * The CMP simulator drives slices through three operations that mirror
 * §4.2 of the paper:
 *
 *  - access(request, context): a read or write miss from a private
 *    cache arrives at the home slice. If the tag is present the sharer
 *    set is updated (a write also yields an invalidation vector for the
 *    other sharers). If absent, a new entry is inserted — possibly
 *    conflicting, displacing, or forcing the eviction of other entries
 *    depending on the organization.
 *  - removeSharer(tag, cache): a private cache evicted the block; the
 *    entry empties and becomes reusable when the last sharer leaves.
 *  - probe(tag): lookup without side effects.
 *
 * Results are recorded into a caller-owned, reusable DirAccessContext
 * (see access_context.hh); accessBatch() drives a whole span of requests
 * through one context, which is what the CMP driver does per slice.
 * Call sites that want value semantics off the hot path take a
 * DirAccessResult snapshot via DirAccessContext::snapshot() (the
 * historical value-returning access() shim has been removed).
 *
 * Every organization reports the same statistics, so the Fig. 8-12
 * harnesses can iterate over organizations generically. Organizations
 * are constructed through the string-keyed DirectoryRegistry (see
 * registry.hh); each organization self-registers a builder over
 * DirectoryParams from its own translation unit.
 */

#ifndef CDIR_DIRECTORY_DIRECTORY_HH
#define CDIR_DIRECTORY_DIRECTORY_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bitset.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "directory/access_context.hh"
#include "hash/hash_family.hh"
#include "sharers/sharer_rep.hh"

namespace cdir {

/** Statistics common to all organizations. */
struct DirectoryStats
{
    std::uint64_t lookups = 0;          //!< access() calls
    std::uint64_t hits = 0;             //!< access() found the tag
    std::uint64_t insertions = 0;       //!< new entries allocated
    std::uint64_t sharerAdds = 0;       //!< sharer added to existing entry
    std::uint64_t writeUpgrades = 0;    //!< writes that invalidated sharers
    std::uint64_t sharerRemovals = 0;   //!< removeSharer() calls that hit
    std::uint64_t entryFrees = 0;       //!< entries emptied by last removal
    std::uint64_t forcedEvictions = 0;  //!< entries evicted by conflicts
    /** Cached blocks invalidated by forced evictions (sum of targets). */
    std::uint64_t forcedBlockInvalidations = 0;
    /** Insertions that exhausted the attempt budget (Cuckoo only). */
    std::uint64_t insertFailures = 0;
    RunningMean insertionAttempts;  //!< attempts per new-entry insertion
    Histogram attemptHistogram{32}; //!< Fig. 11 distribution

    /** Forced invalidation rate: forced evictions per insertion. */
    double
    forcedInvalidationRate() const
    {
        return insertions == 0
                   ? 0.0
                   : double(forcedEvictions) / double(insertions);
    }

    /**
     * Fold @p other into this accumulator — the deterministic merge the
     * CMP driver uses to aggregate per-slice (and per-shard) statistics:
     * integer counters sum, the attempt mean merges exactly, and the
     * histogram buckets accumulate. Merging in any fixed order yields
     * the same aggregate.
     */
    void
    merge(const DirectoryStats &other)
    {
        lookups += other.lookups;
        hits += other.hits;
        insertions += other.insertions;
        sharerAdds += other.sharerAdds;
        writeUpgrades += other.writeUpgrades;
        sharerRemovals += other.sharerRemovals;
        entryFrees += other.entryFrees;
        forcedEvictions += other.forcedEvictions;
        forcedBlockInvalidations += other.forcedBlockInvalidations;
        insertFailures += other.insertFailures;
        insertionAttempts.merge(other.insertionAttempts);
        attemptHistogram.merge(other.attemptHistogram);
    }

    void
    reset()
    {
        *this = DirectoryStats{};
    }
};

/** Abstract coherence-directory slice (see file comment). */
class Directory
{
  public:
    /** @param num_caches private caches this slice can name. */
    explicit Directory(std::size_t num_caches) : caches(num_caches) {}
    virtual ~Directory();

    /**
     * Handle one read or write miss; append exactly one outcome (plus
     * any claimed invalidation/eviction storage) to @p ctx. See the
     * file comment for semantics.
     */
    virtual void access(const DirRequest &request,
                        DirAccessContext &ctx) = 0;

    /**
     * Handle a span of requests in order, accumulating one outcome per
     * request into @p ctx. The default implementation walks the span in
     * order and software-prefetches the tag lanes of the request
     * prefetchDistance() slots ahead (see prefetchTag()); organizations
     * may override it to exploit batch locality further.
     */
    virtual void accessBatch(std::span<const DirRequest> requests,
                             DirAccessContext &ctx);

    /**
     * Hint the storage a probe of @p tag will touch into the cache.
     * Pure performance hint — must have no observable side effects.
     * The default is a no-op; organizations with SoA tag lanes override
     * it so accessBatch() can hide probe latency across the batch
     * window.
     */
    virtual void prefetchTag(Tag tag) const { (void)tag; }

    /**
     * Lookahead (in requests) accessBatch() prefetches by. Seeded once
     * from the CDIR_PREFETCH_DIST environment variable (default 8; 0
     * disables prefetching).
     */
    static unsigned prefetchDistance();

    /** Private cache @p cache evicted block @p tag. */
    virtual void removeSharer(Tag tag, CacheId cache) = 0;

    /**
     * Side-effect-free lookup.
     * @param tag     block tag to find.
     * @param sharers if non-null and found, receives the (possibly
     *                imprecise) sharer targets.
     * @return true iff the tag is tracked.
     */
    virtual bool probe(Tag tag, DynamicBitset *sharers = nullptr) const = 0;

    /** Currently valid entries. */
    virtual std::size_t validEntries() const = 0;

    /** Total entry slots. */
    virtual std::size_t capacity() const = 0;

    /** Human-readable organization name for reports. */
    virtual std::string name() const = 0;

    /**
     * Estimated host-process bytes this slice occupies: the slice
     * object, its table arrays (at vector capacity), every live sharer
     * representation, and the recycled-rep pool. This is *simulator*
     * footprint for RAM budgeting (ExperimentResult::estimatedBytes),
     * not the modelled hardware storage — that is storageBits()/the
     * analytical model. Deterministic for a given access history, so it
     * is safe to serialize in campaign results.
     */
    virtual std::size_t memoryBytes() const = 0;

    /** A context correctly bound for this slice. */
    DirAccessContext makeContext() const { return DirAccessContext(caches); }

    /** Fraction of slots in use. */
    double
    occupancy() const
    {
        return capacity() == 0
                   ? 0.0
                   : double(validEntries()) / double(capacity());
    }

    /** Number of private caches tracked. */
    std::size_t numCaches() const { return caches; }

    /** Accumulated statistics. */
    const DirectoryStats &stats() const { return statistics; }

    /** Reset accumulated statistics (entries stay). */
    void resetStats() { statistics.reset(); }

  protected:
    /**
     * Take a cleared sharer representation, recycling one returned via
     * recycleRep() when possible so steady-state insertion churn stays
     * allocation-free.
     */
    std::unique_ptr<SharerRep> acquireRep(SharerFormat format);

    /** Return a representation freed by an emptied entry to the pool. */
    void recycleRep(std::unique_ptr<SharerRep> rep);

    /**
     * Provision @p count representations up front (hardware reserves
     * sharer storage for every entry slot); with the pool prefilled to
     * capacity, acquireRep() never allocates after construction.
     */
    void prefillRepPool(SharerFormat format, std::size_t count);

    /**
     * Shared hit-path update: a write collects an invalidation vector
     * for the other sharers (claimed from @p ctx) and leaves the writer
     * as sole owner; a read adds a sharer.
     */
    void updateEntryOnHit(SharerRep &rep, const DirRequest &request,
                          DirAccessContext &ctx, DirAccessOutcome &out);

    /** Bytes held by the recycled-rep free list (for memoryBytes()). */
    std::size_t pooledRepBytes() const;

    std::size_t caches;
    DirectoryStats statistics;

  private:
    /**
     * Head of the intrusive rep free-list: recycled reps chain through
     * SharerRep::poolNext, so acquire/recycle are two pointer moves
     * with no separate free-list array (LIFO, like the historical
     * vector pool's push/pop — reuse order is unchanged). The pool owns
     * the chained reps; the destructor frees them.
     */
    SharerRep *repFree = nullptr;
};

/**
 * Organization selector for the deprecated enum factory.
 * @deprecated New organizations register with DirectoryRegistry by name
 * and never appear here; the enum survives only as a source-compatible
 * shim for existing call sites.
 */
enum class DirectoryKind
{
    Cuckoo,
    Sparse,
    Skewed,
    DuplicateTag,
    InCache,
    Tagless,
    /** Elbow cache organization [37,38]: skewed lookup with at most one
     *  displacement per insertion (§6 related work). */
    Elbow,
};

/** Configuration for building any directory organization. */
struct DirectoryParams
{
    /**
     * Registry name of the organization to build ("Cuckoo", "Sparse",
     * ...). When empty, falls back to the deprecated @ref kind enum.
     */
    std::string organization;
    /** @deprecated Enum shim; prefer @ref organization. */
    DirectoryKind kind = DirectoryKind::Cuckoo;
    std::size_t numCaches = 16;
    unsigned ways = 4;            //!< associativity / cuckoo arity
    std::size_t sets = 512;       //!< sets (per way for Cuckoo/Skewed)
    SharerFormat format = SharerFormat::FullVector;
    HashKind hash = HashKind::Skewing;  //!< Cuckoo/Skewed indexing
    unsigned maxAttempts = 32;    //!< Cuckoo insertion bound (§4.2)
    /** Elements per Cuckoo bucket (Panigrahy [30]; 1 = paper design). */
    unsigned bucketSlots = 1;
    /** Overflow-stash entries (Kirsch et al. [22]; 0 = paper design,
     *  which discards overflow instead, §6). */
    unsigned stashEntries = 0;
    std::uint64_t hashSeed = 1;
    /** DuplicateTag/Tagless: associativity of each tracked cache. */
    unsigned trackedCacheAssoc = 2;
    /** Tagless: bits per Bloom-filter bucket row. */
    std::size_t taglessBucketBits = 64;

    /** Organization name these params resolve to (see @ref organization). */
    std::string resolvedOrganization() const;

    /** Total entry capacity implied by the parameters. */
    std::size_t totalEntries() const;
};

/**
 * Build a directory slice for @p params through the DirectoryRegistry.
 * @throws std::invalid_argument for an unknown organization name.
 */
std::unique_ptr<Directory> makeDirectory(const DirectoryParams &params);

/** Printable name of a DirectoryKind (also its registry key). */
std::string directoryKindName(DirectoryKind kind);

} // namespace cdir

#endif // CDIR_DIRECTORY_DIRECTORY_HH
