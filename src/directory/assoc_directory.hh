/**
 * @file
 * Associative directory organizations that evict on conflict: the
 * traditional Sparse directory [17] and the skewed-associative
 * directory (Fig. 12's "Skewed 2x", adapted from Seznec's cache [33]).
 *
 * Both probe one candidate slot per way and, when every candidate is
 * occupied, evict the least-recently-used candidate — forcing the
 * invalidation of the cached blocks that entry tracked. They differ only
 * in indexing: Sparse uses the same low-order index bits for every way
 * (a conventional set), Skewed uses a different skewing function per
 * way, which breaks *direct* conflicts but not transitive ones (§4).
 */

#ifndef CDIR_DIRECTORY_ASSOC_DIRECTORY_HH
#define CDIR_DIRECTORY_ASSOC_DIRECTORY_HH

#include <memory>
#include <vector>

#include "directory/directory.hh"

namespace cdir {

/** Set-associative / skewed-associative directory (see file comment). */
class AssocDirectory : public Directory
{
  public:
    /**
     * @param num_caches private caches tracked.
     * @param ways       associativity.
     * @param sets       sets per way.
     * @param format     sharer-set representation.
     * @param hash       Modulo => Sparse; Skewing/Strong => Skewed.
     * @param hash_seed  seed for the Strong family.
     */
    AssocDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                   SharerFormat format, HashKind hash,
                   std::uint64_t hash_seed = 1);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override { return occupied; }
    std::size_t capacity() const override { return slots.size(); }
    std::string name() const override;

  private:
    struct Slot
    {
        Tag tag = 0;
        std::unique_ptr<SharerRep> rep;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Slot &slot(unsigned way, std::size_t index)
    {
        return slots[std::size_t{way} * sets + index];
    }
    const Slot &slot(unsigned way, std::size_t index) const
    {
        return slots[std::size_t{way} * sets + index];
    }

    Slot *findSlot(Tag tag);
    const Slot *findSlot(Tag tag) const;

    SharerFormat format;
    HashKind hashKind;
    std::unique_ptr<HashFamily> family;
    unsigned ways;
    std::size_t sets;
    std::vector<Slot> slots;
    std::size_t occupied = 0;
    std::uint64_t useClock = 0;
};

/** Convenience factory for the traditional Sparse organization. */
std::unique_ptr<AssocDirectory>
makeSparseDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format = SharerFormat::FullVector);

/** Convenience factory for the skewed-associative organization. */
std::unique_ptr<AssocDirectory>
makeSkewedDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format = SharerFormat::FullVector,
                    std::uint64_t hash_seed = 1);

} // namespace cdir

#endif // CDIR_DIRECTORY_ASSOC_DIRECTORY_HH
