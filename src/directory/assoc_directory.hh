/**
 * @file
 * Associative directory organizations that evict on conflict: the
 * traditional Sparse directory [17] and the skewed-associative
 * directory (Fig. 12's "Skewed 2x", adapted from Seznec's cache [33]).
 *
 * Both probe one candidate slot per way and, when every candidate is
 * occupied, evict the least-recently-used candidate — forcing the
 * invalidation of the cached blocks that entry tracked. They differ only
 * in indexing: Sparse uses the same low-order index bits for every way
 * (a conventional set), Skewed uses a different skewing function per
 * way, which breaks *direct* conflicts but not transitive ones (§4).
 *
 * Tags, valid bytes, LRU stamps, and sharer reps live in parallel SoA
 * arrays, with the stride chosen per hash kind: Modulo indexing means
 * every way probes the same set, so storage is set-major
 * (pos = idx*ways + w) and one probe's candidates are a single
 * contiguous run — eight 8B tags in one cache line instead of eight
 * lines 8*sets bytes apart. Skewing/Strong indexing disperses the ways,
 * so storage is way-major (pos = w*sets + idx) and probes gather the
 * candidates before reducing them with the match-mask kernel.
 */

#ifndef CDIR_DIRECTORY_ASSOC_DIRECTORY_HH
#define CDIR_DIRECTORY_ASSOC_DIRECTORY_HH

#include <memory>
#include <vector>

#include "directory/directory.hh"

namespace cdir {

/** Set-associative / skewed-associative directory (see file comment). */
class AssocDirectory : public Directory
{
  public:
    /**
     * @param num_caches private caches tracked.
     * @param ways       associativity.
     * @param sets       sets per way.
     * @param format     sharer-set representation.
     * @param hash       Modulo => Sparse; Skewing/Strong => Skewed.
     * @param hash_seed  seed for the Strong family.
     */
    AssocDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                   SharerFormat format, HashKind hash,
                   std::uint64_t hash_seed = 1);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    void prefetchTag(Tag tag) const override;
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override { return occupied; }
    std::size_t capacity() const override { return tags.size(); }
    std::string name() const override;

    std::size_t
    memoryBytes() const override
    {
        std::size_t total =
            sizeof(*this) + tags.capacity() * sizeof(Tag) +
            valids.capacity() * sizeof(std::uint8_t) +
            lastUses.capacity() * sizeof(std::uint64_t) +
            reps.capacity() * sizeof(std::unique_ptr<SharerRep>) +
            pooledRepBytes();
        for (const auto &rep : reps)
            if (rep)
                total += rep->memoryBytes();
        return total;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    /** Flat position of candidate (way, index) under the layout. */
    std::size_t
    pos(unsigned way, std::size_t index) const
    {
        return setMajor ? index * ways + way : std::size_t{way} * sets + index;
    }

    /** Position of @p tag, or npos. */
    std::size_t findPosOf(Tag tag) const;

    /** findPosOf with the way indices already computed. */
    std::size_t findPosWithIdx(Tag tag, const std::size_t *idx) const;

    SharerFormat format;
    HashKind hashKind;
    std::unique_ptr<HashFamily> family;
    unsigned ways;
    std::size_t sets;
    bool setMajor; //!< Modulo: candidates contiguous per set

    std::vector<Tag> tags;                         //!< SoA tag lane
    std::vector<std::uint8_t> valids;              //!< SoA valid lane
    std::vector<std::uint64_t> lastUses;           //!< SoA LRU lane
    std::vector<std::unique_ptr<SharerRep>> reps;  //!< SoA payload lane
    std::size_t occupied = 0;
    std::uint64_t useClock = 0;
};

/** Convenience factory for the traditional Sparse organization. */
std::unique_ptr<AssocDirectory>
makeSparseDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format = SharerFormat::FullVector);

/** Convenience factory for the skewed-associative organization. */
std::unique_ptr<AssocDirectory>
makeSkewedDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format = SharerFormat::FullVector,
                    std::uint64_t hash_seed = 1);

} // namespace cdir

#endif // CDIR_DIRECTORY_ASSOC_DIRECTORY_HH
