#include "directory/duplicate_tag_directory.hh"

#include <cassert>
#include <sstream>

#include "common/bit_util.hh"
#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(duplicate_tag, "DuplicateTag",
                        DirectoryTraits{.mirrorsTrackedCaches = true},
                        [](const DirectoryParams &p) {
                            return std::make_unique<DuplicateTagDirectory>(
                                p.numCaches, p.sets, p.trackedCacheAssoc);
                        });

DuplicateTagDirectory::DuplicateTagDirectory(std::size_t num_caches,
                                             std::size_t num_sets,
                                             unsigned cache_assoc)
    : Directory(num_caches),
      sets(num_sets),
      cacheAssoc(cache_assoc),
      scratchHolders(num_caches)
{
    assert(isPowerOfTwo(num_sets));
    assert(cache_assoc >= 1);
    indexMask = num_sets - 1;
    frames.resize(num_sets * num_caches * cache_assoc);
}

void
DuplicateTagDirectory::access(const DirRequest &request,
                              DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;
    const Tag tag = request.tag;
    const std::size_t set = setIndex(tag);

    // Wide associative compare: find every cache holding the tag.
    DynamicBitset &holders = scratchHolders;
    holders.clear();
    for (CacheId c = 0; c < caches; ++c) {
        const Frame *r = region(set, c);
        for (unsigned w = 0; w < cacheAssoc; ++w) {
            if (r[w].valid && r[w].tag == tag) {
                holders.set(c);
                break;
            }
        }
    }

    if (holders.any()) {
        out.hit = true;
        ++statistics.hits;
    }

    if (request.isWrite) {
        DynamicBitset &targets = ctx.sharerTargets(out);
        targets = holders;
        if (request.cache < targets.size() && targets.test(request.cache))
            targets.reset(request.cache);
        if (targets.any()) {
            out.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
            // The invalidated caches' mirrored tags are cleared: the
            // duplicate tags always reflect the private caches.
            for (std::size_t c = targets.findFirst(); c < targets.size();
                 c = targets.findNext(c)) {
                Frame *r = region(set, static_cast<CacheId>(c));
                for (unsigned w = 0; w < cacheAssoc; ++w) {
                    if (r[w].valid && r[w].tag == tag) {
                        r[w].valid = false;
                        --occupied;
                    }
                }
            }
        }
    }

    // Mirror the requester's allocation unless it already holds the tag
    // (a write upgrade of a Shared copy).
    if (!holders.test(request.cache)) {
        Frame *r = region(set, request.cache);
        Frame *dest = nullptr;
        for (unsigned w = 0; w < cacheAssoc; ++w) {
            if (!r[w].valid) {
                dest = &r[w];
                break;
            }
            if (dest == nullptr || r[w].lastUse < dest->lastUse)
                dest = &r[w];
        }
        assert(dest != nullptr);
        if (dest->valid) {
            // Only reachable if the caller failed to report the cache's
            // own eviction first; mirror the cache by evicting LRU.
            EvictedEntry &evicted = ctx.appendEviction(out);
            evicted.tag = dest->tag;
            evicted.targets.set(request.cache);
            ++statistics.forcedEvictions;
            ++statistics.forcedBlockInvalidations;
            --occupied;
        }
        dest->tag = tag;
        dest->valid = true;
        dest->lastUse = useClock;
        ++occupied;

        out.attempts = 1;
        if (!out.hit) {
            // A new tag entered the directory; mirroring an additional
            // cache's copy of an already-tracked tag is a sharer add.
            out.inserted = true;
            ++statistics.insertions;
            statistics.insertionAttempts.add(1);
            statistics.attemptHistogram.add(1);
        } else if (!request.isWrite) {
            ++statistics.sharerAdds;
        }
    }
}

void
DuplicateTagDirectory::removeSharer(Tag tag, CacheId cache)
{
    assert(cache < caches);
    Frame *r = region(setIndex(tag), cache);
    for (unsigned w = 0; w < cacheAssoc; ++w) {
        if (r[w].valid && r[w].tag == tag) {
            r[w].valid = false;
            --occupied;
            ++statistics.sharerRemovals;
            return;
        }
    }
}

bool
DuplicateTagDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const std::size_t set = setIndex(tag);
    bool found = false;
    if (sharers)
        sharers->reinit(caches);
    for (CacheId c = 0; c < caches; ++c) {
        const Frame *r = region(set, c);
        for (unsigned w = 0; w < cacheAssoc; ++w) {
            if (r[w].valid && r[w].tag == tag) {
                found = true;
                if (sharers)
                    sharers->set(c);
                break;
            }
        }
    }
    return found;
}

std::string
DuplicateTagDirectory::name() const
{
    std::ostringstream os;
    os << "DuplicateTag-" << lookupWidth() << "x" << sets;
    return os.str();
}

} // namespace cdir
