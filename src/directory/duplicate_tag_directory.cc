#include "directory/duplicate_tag_directory.hh"

#include <cassert>
#include <sstream>

#include "common/bit_util.hh"
#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(duplicate_tag, "DuplicateTag",
                        DirectoryTraits{.mirrorsTrackedCaches = true},
                        [](const DirectoryParams &p) {
                            return std::make_unique<DuplicateTagDirectory>(
                                p.numCaches, p.sets, p.trackedCacheAssoc);
                        });

DuplicateTagDirectory::DuplicateTagDirectory(std::size_t num_caches,
                                             std::size_t num_sets,
                                             unsigned cache_assoc)
    : Directory(num_caches),
      sets(num_sets),
      cacheAssoc(cache_assoc),
      scratchHolders(num_caches)
{
    assert(isPowerOfTwo(num_sets));
    assert(cache_assoc >= 1);
    indexMask = num_sets - 1;
    const std::size_t width = num_caches * cache_assoc;
    chunksPerSet = (width + kKernelWidth - 1) / kKernelWidth;
    const std::size_t total = num_sets * width;
    tags.assign(total, 0);
    valids.assign(total, 0);
    lastUses.assign(total, 0);
    chunkValid.assign(num_sets * chunksPerSet, 0);
}

void
DuplicateTagDirectory::collectHolders(std::size_t set, Tag tag,
                                      DynamicBitset &holders) const
{
    const std::size_t base = regionBase(set, 0);
    const std::size_t width = std::size_t{caches} * cacheAssoc;
    if (forceScalarKernels()) {
        // Scalar reference: per-cache early-exit walk, as the AoS code
        // did.
        for (CacheId c = 0; c < caches; ++c) {
            const std::size_t rb = regionBase(set, c);
            for (unsigned w = 0; w < cacheAssoc; ++w) {
                if (valids[rb + w] != 0 && tags[rb + w] == tag) {
                    holders.set(c);
                    break;
                }
            }
        }
        return;
    }
    // Kernel path: the whole set is one contiguous run; reduce it in
    // 64-frame chunks and map each match bit back to its cache id. A
    // chunk with no valid frames cannot match — the occupancy summary
    // lets sparse sets skip it without reading 64 tag lanes.
    for (std::size_t chunk = 0; chunk < width; chunk += kKernelWidth) {
        if (chunkValid[chunkIndex(set, chunk)] == 0)
            continue;
        const std::size_t n = std::min(kKernelWidth, width - chunk);
        std::uint64_t mask =
            tagMatchMask(&tags[base + chunk], &valids[base + chunk], n, tag);
        while (mask != 0) {
            const auto bit =
                static_cast<std::size_t>(std::countr_zero(mask));
            holders.set((chunk + bit) / cacheAssoc);
            mask &= mask - 1;
        }
    }
}

void
DuplicateTagDirectory::prefetchTag(Tag tag) const
{
    // Hint the whole set run (caches x assoc tags, 8B each), one cache
    // line per step.
    const std::size_t base = regionBase(setIndex(tag), 0);
    const std::size_t width = std::size_t{caches} * cacheAssoc;
    for (std::size_t i = 0; i < width; i += 8)
        prefetchRead(&tags[base + i]);
    prefetchRead(&valids[base]);
}

void
DuplicateTagDirectory::access(const DirRequest &request,
                              DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;
    const Tag tag = request.tag;
    const std::size_t set = setIndex(tag);

    // Wide associative compare: find every cache holding the tag.
    DynamicBitset &holders = scratchHolders;
    holders.clear();
    collectHolders(set, tag, holders);

    if (holders.any()) {
        out.hit = true;
        ++statistics.hits;
    }

    if (request.isWrite) {
        DynamicBitset &targets = ctx.sharerTargets(out);
        targets = holders;
        if (request.cache < targets.size() && targets.test(request.cache))
            targets.reset(request.cache);
        if (targets.any()) {
            out.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
            // The invalidated caches' mirrored tags are cleared: the
            // duplicate tags always reflect the private caches.
            targets.forEachSetBit([&](std::size_t c) {
                const std::size_t rb =
                    regionBase(set, static_cast<CacheId>(c));
                for (unsigned w = 0; w < cacheAssoc; ++w) {
                    if (valids[rb + w] != 0 && tags[rb + w] == tag) {
                        valids[rb + w] = 0;
                        noteValidChange(rb + w, false);
                        --occupied;
                    }
                }
            });
        }
    }

    // Mirror the requester's allocation unless it already holds the tag
    // (a write upgrade of a Shared copy).
    if (!holders.test(request.cache)) {
        const std::size_t rb = regionBase(set, request.cache);
        std::size_t dest = rb;
        bool destValid = valids[rb] != 0;
        for (unsigned w = 0; w < cacheAssoc; ++w) {
            if (valids[rb + w] == 0) {
                dest = rb + w;
                destValid = false;
                break;
            }
            if (lastUses[rb + w] < lastUses[dest]) {
                dest = rb + w;
                destValid = true;
            }
        }
        if (destValid) {
            // Only reachable if the caller failed to report the cache's
            // own eviction first; mirror the cache by evicting LRU.
            EvictedEntry &evicted = ctx.appendEviction(out);
            evicted.tag = tags[dest];
            evicted.targets.set(request.cache);
            ++statistics.forcedEvictions;
            ++statistics.forcedBlockInvalidations;
            --occupied;
        }
        tags[dest] = tag;
        valids[dest] = 1;
        // An eviction reuses a valid frame, so the chunk count only
        // moves when a vacant frame fills.
        if (!destValid)
            noteValidChange(dest, true);
        lastUses[dest] = useClock;
        ++occupied;

        out.attempts = 1;
        if (!out.hit) {
            // A new tag entered the directory; mirroring an additional
            // cache's copy of an already-tracked tag is a sharer add.
            out.inserted = true;
            ++statistics.insertions;
            statistics.insertionAttempts.add(1);
            statistics.attemptHistogram.add(1);
        } else if (!request.isWrite) {
            ++statistics.sharerAdds;
        }
    }
}

void
DuplicateTagDirectory::removeSharer(Tag tag, CacheId cache)
{
    assert(cache < caches);
    const std::size_t rb = regionBase(setIndex(tag), cache);
    const std::size_t w = findTag(&tags[rb], &valids[rb], cacheAssoc, tag);
    if (w != cacheAssoc) {
        valids[rb + w] = 0;
        noteValidChange(rb + w, false);
        --occupied;
        ++statistics.sharerRemovals;
    }
}

bool
DuplicateTagDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const std::size_t set = setIndex(tag);
    if (sharers) {
        sharers->reinit(caches);
        collectHolders(set, tag, *sharers);
        return sharers->any();
    }
    // Existence-only probe: scan the contiguous set run, stopping at the
    // first matching chunk. Chunks with no valid frames cannot match and
    // are skipped outright (outcome-invariant on both kernel and scalar
    // findTag paths — an all-invalid run returns "absent" either way).
    const std::size_t base = regionBase(set, 0);
    const std::size_t width = std::size_t{caches} * cacheAssoc;
    for (std::size_t chunk = 0; chunk < width; chunk += kKernelWidth) {
        if (chunkValid[chunkIndex(set, chunk)] == 0)
            continue;
        const std::size_t n = std::min(kKernelWidth, width - chunk);
        if (findTag(&tags[base + chunk], &valids[base + chunk], n, tag) != n)
            return true;
    }
    return false;
}

std::string
DuplicateTagDirectory::name() const
{
    std::ostringstream os;
    os << "DuplicateTag-" << lookupWidth() << "x" << sets;
    return os.str();
}

} // namespace cdir
