/**
 * @file
 * Generic d-ary Cuckoo hash table — the data structure at the heart of
 * the Cuckoo directory (§4).
 *
 * The table consists of `ways` direct-mapped arrays of `setsPerWay`
 * slots; way w is indexed through hash function w of a HashFamily.
 * Lookup probes all ways in parallel (constant time, like a
 * skewed-associative cache). Insertion follows §4.2 faithfully:
 *
 *  - A lookup always precedes insertion; if it reveals a vacant
 *    candidate slot the insertion succeeds with **1 attempt**.
 *  - Otherwise the new element displaces the occupant of its slot in the
 *    current start way; the displaced element is then re-inserted (its
 *    own candidates are checked for a vacancy first, then it displaces
 *    in the next way), and so on. Every slot write counts as one
 *    attempt.
 *  - A bound (default 32, the paper's choice) terminates pathological
 *    loops: the most recently displaced element is discarded and handed
 *    back to the caller, which must invalidate the private-cache blocks
 *    it tracked.
 *  - To keep the ways uniformly utilized, each insertion starts at the
 *    way at which the previous insertion stopped.
 *
 * Storage is structure-of-arrays: tags, valid bytes, and payloads live
 * in three parallel vectors so a probe touches only the dense 8B/entry
 * tag lane (plus 1B valid lane) instead of dragging payload bytes
 * through the cache. A probe computes all way indices with one
 * HashFamily::indexAll call, gathers the candidate tags, and reduces
 * them with the branchless match-mask kernel — the software analogue of
 * the parallel way comparators the paper's hardware fires.
 *
 * The payload type only needs to be movable.
 */

#ifndef CDIR_DIRECTORY_CUCKOO_TABLE_HH
#define CDIR_DIRECTORY_CUCKOO_TABLE_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bit_util.hh"
#include "common/types.hh"
#include "hash/hash_family.hh"

namespace cdir {

/** d-ary Cuckoo hash table (see file comment). */
template <typename Payload>
class CuckooTable
{
  public:
    /** Sentinel position for "not found". */
    static constexpr std::size_t npos = ~std::size_t{0};

    /** Result of an insert() call. */
    struct InsertResult
    {
        /** Slot writes performed (1 = immediate success). */
        unsigned attempts = 0;
        /** Set when the attempt bound was hit and an element dropped. */
        bool discarded = false;
        Tag discardedTag = 0;
        std::optional<Payload> discardedPayload;
    };

    /**
     * @param family       per-way hash family; must outlive the table.
     * @param max_attempts insertion bound (paper: 32).
     * @param bucket_slots elements per (way, set) bucket. 1 is the
     *        paper's design; >1 implements Panigrahy's bucketized
     *        variant [30], which §6 notes "may offer additional
     *        improvement ... at high directory occupancy".
     */
    CuckooTable(const HashFamily &family, unsigned max_attempts = 32,
                unsigned bucket_slots = 1)
        : hashes(family),
          ways(family.numWays()),
          sets(family.setsPerWay()),
          maxAttempts(max_attempts),
          bucketSlots(bucket_slots),
          tags(std::size_t{ways} * sets * bucket_slots, 0),
          valids(std::size_t{ways} * sets * bucket_slots, 0),
          payloads(std::size_t{ways} * sets * bucket_slots)
    {
        assert(ways >= 2 && "cuckoo displacement needs >= 2 ways");
        assert(ways <= kMaxProbeWays);
        assert(max_attempts >= 1);
        assert(bucket_slots >= 1 && bucket_slots <= kKernelWidth);
    }

    /**
     * Position of @p tag, or npos. One indexAll call, then the
     * match-mask kernel over the gathered candidate tags (probe order
     * way-major, bucket slots in order — identical to the scalar walk).
     */
    std::size_t
    findPos(Tag tag) const
    {
        std::size_t idx[kMaxProbeWays];
        hashes.indexAll(tag, idx);
        if (bucketSlots == 1) {
            // Common case (the paper's design): gather one candidate per
            // way into a dense run and reduce with a single kernel call.
            Tag cand[kMaxProbeWays];
            std::uint8_t cvalid[kMaxProbeWays];
            for (unsigned w = 0; w < ways; ++w) {
                const std::size_t p = std::size_t{w} * sets + idx[w];
                cand[w] = tags[p];
                cvalid[w] = valids[p];
            }
            const std::size_t hit = findTag(cand, cvalid, ways, tag);
            if (hit == ways)
                return npos;
            return std::size_t{hit} * sets + idx[hit];
        }
        // Bucketized variant: each (way, set) bucket is already a
        // contiguous run; kernel-probe the runs in way order.
        for (unsigned w = 0; w < ways; ++w) {
            const std::size_t base =
                (std::size_t{w} * sets + idx[w]) * bucketSlots;
            const std::size_t b =
                findTag(&tags[base], &valids[base], bucketSlots, tag);
            if (b != bucketSlots)
                return base + b;
        }
        return npos;
    }

    /** Find the payload for @p tag, or nullptr. */
    Payload *
    find(Tag tag)
    {
        const std::size_t pos = findPos(tag);
        return pos == npos ? nullptr : &payloads[pos];
    }

    /** @copydoc find */
    const Payload *
    find(Tag tag) const
    {
        return const_cast<CuckooTable *>(this)->find(tag);
    }

    /** Payload stored at a position returned by findPos(). */
    Payload &
    payloadAt(std::size_t pos)
    {
        assert(pos < tags.size() && valids[pos] != 0);
        return payloads[pos];
    }

    /** Tag stored at a position returned by findPos(). */
    Tag
    tagAt(std::size_t pos) const
    {
        assert(pos < tags.size() && valids[pos] != 0);
        return tags[pos];
    }

    /**
     * Insert @p tag with @p payload. The tag must not already be
     * present (callers look up first, as the hardware does).
     */
    InsertResult
    insert(Tag tag, Payload &&payload)
    {
        assert(find(tag) == nullptr && "duplicate insert");
        InsertResult result;

        Tag cur_tag = tag;
        Payload cur_payload = std::move(payload);
        unsigned way = nextWay;
        std::size_t idx[kMaxProbeWays];

        while (true) {
            ++result.attempts;
            hashes.indexAll(cur_tag, idx);

            // The lookup preceding each (re-)insertion reveals vacant
            // candidate slots; placing into one ends the procedure. The
            // scan starts at the round-robin way so that, at low
            // occupancy, placements rotate across the ways and keep
            // them uniformly utilized (§4.2).
            unsigned placed_way = 0;
            const std::size_t vacant = findVacantPos(idx, way, placed_way);
            if (vacant != npos) {
                tags[vacant] = cur_tag;
                payloads[vacant] = std::move(cur_payload);
                valids[vacant] = 1;
                ++occupied;
                nextWay = (placed_way + 1) % ways;
                return result;
            }

            if (result.attempts >= maxAttempts) {
                // Bound hit: discard the most recently displaced element
                // (§4.2) and report it so the caller can invalidate the
                // blocks it tracked.
                result.discarded = true;
                result.discardedTag = cur_tag;
                result.discardedPayload = std::move(cur_payload);
                nextWay = way;
                return result;
            }

            // Displace an occupant of the current way's bucket and
            // continue with it in the next way. The rotor spreads
            // victim choice across bucket slots.
            const std::size_t victim =
                (std::size_t{way} * sets + idx[way]) * bucketSlots +
                victimRotor % bucketSlots;
            ++victimRotor;
            assert(valids[victim] != 0);
            std::swap(cur_tag, tags[victim]);
            std::swap(cur_payload, payloads[victim]);
            way = (way + 1) % ways;
        }
    }

    /**
     * Remove the element at a position returned by findPos().
     * @return the payload that occupied the slot.
     */
    Payload
    eraseAt(std::size_t pos)
    {
        assert(pos < tags.size() && valids[pos] != 0);
        valids[pos] = 0;
        --occupied;
        return std::move(payloads[pos]);
    }

    /**
     * Remove @p tag.
     * @return the payload if the tag was present.
     */
    std::optional<Payload>
    erase(Tag tag)
    {
        const std::size_t pos = findPos(tag);
        if (pos == npos)
            return std::nullopt;
        return eraseAt(pos);
    }

    /**
     * Hint the candidate tag/valid lanes of @p tag into the cache ahead
     * of an upcoming probe (batch-window lookahead).
     */
    void
    prefetch(Tag tag) const
    {
        std::size_t idx[kMaxProbeWays];
        hashes.indexAll(tag, idx);
        for (unsigned w = 0; w < ways; ++w) {
            const std::size_t base =
                (std::size_t{w} * sets + idx[w]) * bucketSlots;
            prefetchRead(&tags[base]);
            prefetchRead(&valids[base]);
        }
    }

    /** Valid elements. */
    std::size_t size() const { return occupied; }

    /** Total slots. */
    std::size_t capacity() const { return tags.size(); }

    /** Fraction of slots in use. */
    double
    occupancy() const
    {
        return double(occupied) / double(capacity());
    }

    /** Number of ways (arity d). */
    unsigned numWays() const { return ways; }

    /** Sets per way. */
    std::size_t setsPerWay() const { return sets; }

    /** Elements per (way, set) bucket. */
    unsigned slotsPerBucket() const { return bucketSlots; }

    /**
     * Visit every valid element as (tag, payload&). @p visitor returns
     * void; iteration order is way-major.
     */
    template <typename Visitor>
    void
    forEach(Visitor &&visitor) const
    {
        const std::size_t n = tags.size();
        for (std::size_t i = 0; i < n; ++i)
            if (valids[i] != 0)
                visitor(tags[i], payloads[i]);
    }

    /**
     * Host bytes of the SoA lanes plus the payloads' owned storage:
     * @p payload_bytes maps a valid payload to the heap it owns (e.g. a
     * sharer rep's memoryBytes()). Feeds Directory::memoryBytes().
     */
    template <typename PayloadBytes>
    std::size_t
    memoryBytes(PayloadBytes &&payload_bytes) const
    {
        std::size_t total = tags.capacity() * sizeof(Tag) +
                            valids.capacity() * sizeof(std::uint8_t) +
                            payloads.capacity() * sizeof(Payload);
        const std::size_t n = tags.size();
        for (std::size_t i = 0; i < n; ++i)
            if (valids[i] != 0)
                total += payload_bytes(payloads[i]);
        return total;
    }

    /** Occupancy of one way (test support for uniform-way utilization). */
    double
    wayOccupancy(unsigned way) const
    {
        assert(way < ways);
        std::size_t used = 0;
        const std::size_t per_way = sets * bucketSlots;
        for (std::size_t i = 0; i < per_way; ++i)
            if (valids[std::size_t{way} * per_way + i] != 0)
                ++used;
        return double(used) / double(per_way);
    }

  private:
    /**
     * Position of the first vacant candidate slot given precomputed way
     * indices @p idx, scanning ways from @p start and wrapping;
     * @p found_way receives the way chosen. Returns npos if every
     * candidate is occupied.
     */
    std::size_t
    findVacantPos(const std::size_t *idx, unsigned start,
                  unsigned &found_way) const
    {
        for (unsigned i = 0; i < ways; ++i) {
            const unsigned w = (start + i) % ways;
            const std::size_t base =
                (std::size_t{w} * sets + idx[w]) * bucketSlots;
            const std::size_t b =
                cdir::findVacant(&valids[base], bucketSlots);
            if (b != bucketSlots) {
                found_way = w;
                return base + b;
            }
        }
        return npos;
    }

    const HashFamily &hashes;
    unsigned ways;
    std::size_t sets;
    unsigned maxAttempts;
    unsigned bucketSlots;
    std::vector<Tag> tags;           //!< SoA tag lane (8B/entry)
    std::vector<std::uint8_t> valids; //!< SoA valid lane (1B/entry)
    std::vector<Payload> payloads;   //!< SoA payload lane
    std::size_t occupied = 0;
    unsigned nextWay = 0;     //!< round-robin start way (§4.2)
    unsigned victimRotor = 0; //!< bucket-slot victim rotation
};

} // namespace cdir

#endif // CDIR_DIRECTORY_CUCKOO_TABLE_HH
