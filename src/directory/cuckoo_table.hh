/**
 * @file
 * Generic d-ary Cuckoo hash table — the data structure at the heart of
 * the Cuckoo directory (§4).
 *
 * The table consists of `ways` direct-mapped arrays of `setsPerWay`
 * slots; way w is indexed through hash function w of a HashFamily.
 * Lookup probes all ways in parallel (constant time, like a
 * skewed-associative cache). Insertion follows §4.2 faithfully:
 *
 *  - A lookup always precedes insertion; if it reveals a vacant
 *    candidate slot the insertion succeeds with **1 attempt**.
 *  - Otherwise the new element displaces the occupant of its slot in the
 *    current start way; the displaced element is then re-inserted (its
 *    own candidates are checked for a vacancy first, then it displaces
 *    in the next way), and so on. Every slot write counts as one
 *    attempt.
 *  - A bound (default 32, the paper's choice) terminates pathological
 *    loops: the most recently displaced element is discarded and handed
 *    back to the caller, which must invalidate the private-cache blocks
 *    it tracked.
 *  - To keep the ways uniformly utilized, each insertion starts at the
 *    way at which the previous insertion stopped.
 *
 * The payload type only needs to be movable.
 */

#ifndef CDIR_DIRECTORY_CUCKOO_TABLE_HH
#define CDIR_DIRECTORY_CUCKOO_TABLE_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "hash/hash_family.hh"

namespace cdir {

/** d-ary Cuckoo hash table (see file comment). */
template <typename Payload>
class CuckooTable
{
  public:
    /** Result of an insert() call. */
    struct InsertResult
    {
        /** Slot writes performed (1 = immediate success). */
        unsigned attempts = 0;
        /** Set when the attempt bound was hit and an element dropped. */
        bool discarded = false;
        Tag discardedTag = 0;
        std::optional<Payload> discardedPayload;
    };

    /**
     * @param family       per-way hash family; must outlive the table.
     * @param max_attempts insertion bound (paper: 32).
     * @param bucket_slots elements per (way, set) bucket. 1 is the
     *        paper's design; >1 implements Panigrahy's bucketized
     *        variant [30], which §6 notes "may offer additional
     *        improvement ... at high directory occupancy".
     */
    CuckooTable(const HashFamily &family, unsigned max_attempts = 32,
                unsigned bucket_slots = 1)
        : hashes(family),
          ways(family.numWays()),
          sets(family.setsPerWay()),
          maxAttempts(max_attempts),
          bucketSlots(bucket_slots),
          slots(std::size_t{ways} * sets * bucket_slots)
    {
        assert(ways >= 2 && "cuckoo displacement needs >= 2 ways");
        assert(max_attempts >= 1);
        assert(bucket_slots >= 1);
    }

    /** Find the payload for @p tag, or nullptr. */
    Payload *
    find(Tag tag)
    {
        for (unsigned w = 0; w < ways; ++w) {
            Slot *bucket = bucketAt(w, hashes.index(w, tag));
            for (unsigned b = 0; b < bucketSlots; ++b) {
                if (bucket[b].valid && bucket[b].tag == tag)
                    return &bucket[b].payload;
            }
        }
        return nullptr;
    }

    /** @copydoc find */
    const Payload *
    find(Tag tag) const
    {
        return const_cast<CuckooTable *>(this)->find(tag);
    }

    /**
     * Insert @p tag with @p payload. The tag must not already be
     * present (callers look up first, as the hardware does).
     */
    InsertResult
    insert(Tag tag, Payload &&payload)
    {
        assert(find(tag) == nullptr && "duplicate insert");
        InsertResult result;

        Tag cur_tag = tag;
        Payload cur_payload = std::move(payload);
        unsigned way = nextWay;

        while (true) {
            ++result.attempts;

            // The lookup preceding each (re-)insertion reveals vacant
            // candidate slots; placing into one ends the procedure. The
            // scan starts at the round-robin way so that, at low
            // occupancy, placements rotate across the ways and keep
            // them uniformly utilized (§4.2).
            unsigned placed_way = 0;
            if (Slot *vacant = findVacant(cur_tag, way, placed_way)) {
                vacant->tag = cur_tag;
                vacant->payload = std::move(cur_payload);
                vacant->valid = true;
                ++occupied;
                nextWay = (placed_way + 1) % ways;
                return result;
            }

            if (result.attempts >= maxAttempts) {
                // Bound hit: discard the most recently displaced element
                // (§4.2) and report it so the caller can invalidate the
                // blocks it tracked.
                result.discarded = true;
                result.discardedTag = cur_tag;
                result.discardedPayload = std::move(cur_payload);
                nextWay = way;
                return result;
            }

            // Displace an occupant of the current way's bucket and
            // continue with it in the next way. The rotor spreads
            // victim choice across bucket slots.
            Slot *bucket = bucketAt(way, hashes.index(way, cur_tag));
            Slot &victim = bucket[victimRotor % bucketSlots];
            ++victimRotor;
            std::swap(cur_tag, victim.tag);
            std::swap(cur_payload, victim.payload);
            assert(victim.valid);
            way = (way + 1) % ways;
        }
    }

    /**
     * Remove @p tag.
     * @return the payload if the tag was present.
     */
    std::optional<Payload>
    erase(Tag tag)
    {
        for (unsigned w = 0; w < ways; ++w) {
            Slot *bucket = bucketAt(w, hashes.index(w, tag));
            for (unsigned b = 0; b < bucketSlots; ++b) {
                if (bucket[b].valid && bucket[b].tag == tag) {
                    bucket[b].valid = false;
                    --occupied;
                    return std::move(bucket[b].payload);
                }
            }
        }
        return std::nullopt;
    }

    /** Valid elements. */
    std::size_t size() const { return occupied; }

    /** Total slots. */
    std::size_t capacity() const { return slots.size(); }

    /** Fraction of slots in use. */
    double
    occupancy() const
    {
        return double(occupied) / double(capacity());
    }

    /** Number of ways (arity d). */
    unsigned numWays() const { return ways; }

    /** Sets per way. */
    std::size_t setsPerWay() const { return sets; }

    /** Elements per (way, set) bucket. */
    unsigned slotsPerBucket() const { return bucketSlots; }

    /**
     * Visit every valid element as (tag, payload&). @p visitor returns
     * void; iteration order is way-major.
     */
    template <typename Visitor>
    void
    forEach(Visitor &&visitor) const
    {
        for (const Slot &s : slots)
            if (s.valid)
                visitor(s.tag, s.payload);
    }

    /** Occupancy of one way (test support for uniform-way utilization). */
    double
    wayOccupancy(unsigned way) const
    {
        assert(way < ways);
        std::size_t used = 0;
        const std::size_t per_way = sets * bucketSlots;
        for (std::size_t i = 0; i < per_way; ++i)
            if (slots[std::size_t{way} * per_way + i].valid)
                ++used;
        return double(used) / double(per_way);
    }

  private:
    struct Slot
    {
        Tag tag = 0;
        Payload payload{};
        bool valid = false;
    };

    /** First slot of bucket (way, index). */
    Slot *
    bucketAt(unsigned way, std::size_t index)
    {
        return &slots[(std::size_t{way} * sets + index) * bucketSlots];
    }

    /**
     * First vacant candidate slot of @p tag, scanning ways from
     * @p start and wrapping; @p found_way receives the way chosen.
     */
    Slot *
    findVacant(Tag tag, unsigned start, unsigned &found_way)
    {
        for (unsigned i = 0; i < ways; ++i) {
            const unsigned w = (start + i) % ways;
            Slot *bucket = bucketAt(w, hashes.index(w, tag));
            for (unsigned b = 0; b < bucketSlots; ++b) {
                if (!bucket[b].valid) {
                    found_way = w;
                    return &bucket[b];
                }
            }
        }
        return nullptr;
    }

    const HashFamily &hashes;
    unsigned ways;
    std::size_t sets;
    unsigned maxAttempts;
    unsigned bucketSlots;
    std::vector<Slot> slots;
    std::size_t occupied = 0;
    unsigned nextWay = 0;     //!< round-robin start way (§4.2)
    unsigned victimRotor = 0; //!< bucket-slot victim rotation
};

} // namespace cdir

#endif // CDIR_DIRECTORY_CUCKOO_TABLE_HH
