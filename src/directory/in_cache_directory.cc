#include "directory/in_cache_directory.hh"

#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(in_cache, "InCache", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<InCacheDirectory>(
                                p.numCaches, p.ways, p.sets);
                        });

} // namespace cdir
