/**
 * @file
 * Tagless coherence directory (Zebchuk et al., MICRO'09 [43]; §3.3).
 *
 * Organized like a Duplicate-Tag directory, but each (set, cache) pair
 * stores a Bloom-filter row instead of explicit tags: a lookup reads one
 * bit column across all caches and reports the caches whose filters
 * match — a *superset* of the true sharers, so writes can send spurious
 * invalidations but never miss a sharer. The per-operation bit width
 * still scales with the number of caches, which is why Fig. 4/13 show
 * the same energy slope as Duplicate-Tag at a lower constant.
 *
 * Modeling notes (documented substitutions):
 *  - We use counting buckets so eviction notifications can clear state;
 *    the hardware instead exactly mirrors each small L1 set (rebuilding
 *    rows on update). Behaviourally both keep rows consistent with the
 *    caches.
 *  - On a write, the directory learns the true holders from the
 *    invalidation acks; we model that with an exact shadow map used
 *    only to keep the counters consistent. Reported invalidation
 *    targets always come from the (imprecise) filters, and the spurious
 *    extra targets are counted in spuriousInvalidations().
 *  - The shadow map is open-addressed with backward-shift deletion so
 *    steady-state insert/erase churn reuses slot storage instead of
 *    allocating map nodes (the allocation-free protocol contract).
 */

#ifndef CDIR_DIRECTORY_TAGLESS_DIRECTORY_HH
#define CDIR_DIRECTORY_TAGLESS_DIRECTORY_HH

#include <vector>

#include "directory/directory.hh"

namespace cdir {

/**
 * Open-addressed Tag -> DynamicBitset map with linear probing and
 * backward-shift deletion (no tombstones). Erasing swaps bitset storage
 * instead of destroying it, so once the table has grown to its
 * high-water size, insert/erase churn performs no heap allocation.
 */
class TagSharerMap
{
  public:
    /**
     * @param num_caches       bit width of every stored sharer set.
     * @param initial_capacity starting slot count (rounded to a power
     *                         of two; the table grows at 70% load).
     */
    explicit TagSharerMap(std::size_t num_caches,
                          std::size_t initial_capacity = 64);

    /** Sharer set for @p tag, or nullptr if absent. */
    DynamicBitset *find(Tag tag);
    const DynamicBitset *find(Tag tag) const;

    /**
     * Insert @p tag (must be absent) and return its cleared sharer set,
     * sized to the cache count.
     */
    DynamicBitset &insert(Tag tag);

    /** Remove @p tag if present. */
    void erase(Tag tag);

    /** Tracked tags. */
    std::size_t size() const { return used; }

    /** True iff @p tag is tracked. */
    bool contains(Tag tag) const { return find(tag) != nullptr; }

    /** Host bytes of the slot array plus owned bitset storage. */
    std::size_t
    memoryBytes() const
    {
        std::size_t total = slots.capacity() * sizeof(Slot);
        for (const Slot &slot : slots)
            total += slot.sharers.heapBytes();
        return total;
    }

  private:
    struct Slot
    {
        Tag tag = 0;
        bool occupied = false;
        DynamicBitset sharers;
    };

    std::size_t home(Tag tag) const;
    void grow();

    std::size_t caches;
    std::size_t used = 0;
    std::size_t mask;
    std::vector<Slot> slots;
};

/** Tagless (Bloom-filter grid) directory slice (see file comment). */
class TaglessDirectory : public Directory
{
  public:
    /**
     * @param num_caches  private caches tracked.
     * @param sets        slice sets (cacheSets / numSlices).
     * @param bucket_bits bits per Bloom-filter row (power of two).
     * @param num_grids   independent hash grids (filter depth k).
     * @param seed        hash seed.
     */
    TaglessDirectory(std::size_t num_caches, std::size_t sets,
                     std::size_t bucket_bits = 64, unsigned num_grids = 2,
                     std::uint64_t seed = 1);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override { return shadow.size(); }
    std::size_t capacity() const override;
    std::string name() const override;

    /** Invalidations sent to caches that did not hold the block. */
    std::uint64_t spuriousInvalidations() const { return spurious; }

    std::size_t
    memoryBytes() const override
    {
        return sizeof(*this) +
               hashKeys.capacity() * sizeof(std::uint64_t) +
               counters.capacity() * sizeof(std::uint16_t) +
               shadow.memoryBytes() + scratchHolders.heapBytes() +
               pooledRepBytes();
    }

  private:
    std::size_t setIndex(Tag tag) const { return tag & indexMask; }
    std::size_t bucketIndex(unsigned grid, Tag tag) const;
    std::uint16_t &counter(unsigned grid, std::size_t set, CacheId cache,
                           std::size_t bucket);
    const std::uint16_t &counter(unsigned grid, std::size_t set,
                                 CacheId cache, std::size_t bucket) const;

    /** True iff @p cache's filters match @p tag (may be false positive). */
    bool filterMatch(Tag tag, CacheId cache) const;
    void filterAdd(Tag tag, CacheId cache);
    void filterRemove(Tag tag, CacheId cache);

    std::size_t sets;
    std::size_t bucketBits;
    unsigned grids;
    std::size_t indexMask;
    std::size_t bucketMask;
    std::vector<std::uint64_t> hashKeys;
    /** counters[grid][set][cache][bucket], flattened. */
    std::vector<std::uint16_t> counters;
    /** Exact sharers, modeling invalidation-ack knowledge. */
    TagSharerMap shadow;
    DynamicBitset scratchHolders; //!< per-access filter column read
    std::uint64_t spurious = 0;
};

} // namespace cdir

#endif // CDIR_DIRECTORY_TAGLESS_DIRECTORY_HH
