#include "directory/elbow_directory.hh"

#include <cassert>
#include <sstream>

#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(elbow, "Elbow", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<ElbowDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                p.hashSeed);
                        });

ElbowDirectory::ElbowDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      family(makeHashFamily(HashKind::Skewing, num_ways, num_sets,
                            hash_seed)),
      ways(num_ways),
      sets(num_sets),
      slots(std::size_t{num_ways} * num_sets)
{
    prefillRepPool(fmt, slots.size());
}

ElbowDirectory::Slot *
ElbowDirectory::findSlot(Tag tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (s.valid && s.tag == tag)
            return &s;
    }
    return nullptr;
}

const ElbowDirectory::Slot *
ElbowDirectory::findSlot(Tag tag) const
{
    return const_cast<ElbowDirectory *>(this)->findSlot(tag);
}

void
ElbowDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;

    if (Slot *s = findSlot(request.tag)) {
        out.hit = true;
        ++statistics.hits;
        s->lastUse = useClock;
        updateEntryOnHit(*s->rep, request, ctx, out);
        return;
    }

    // Miss: take a vacant candidate if one exists.
    Slot *dest = nullptr;
    unsigned attempts = 1;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, request.tag));
        if (!s.valid) {
            dest = &s;
            break;
        }
    }

    if (dest == nullptr) {
        // One elbow move: relocate the first candidate occupant whose
        // alternate slot in another way is vacant (requires the extra
        // candidate lookups the paper charges this design for).
        for (unsigned w = 0; w < ways && dest == nullptr; ++w) {
            Slot &occupant = slot(w, family->index(w, request.tag));
            for (unsigned alt = 0; alt < ways; ++alt) {
                if (alt == w)
                    continue;
                Slot &target =
                    slot(alt, family->index(alt, occupant.tag));
                if (!target.valid) {
                    target = std::move(occupant);
                    occupant.valid = false;
                    dest = &occupant;
                    ++relocated;
                    attempts = 2; // the relocation write
                    break;
                }
            }
        }
    }

    if (dest == nullptr) {
        // No single-hop relocation possible: evict the LRU candidate.
        Slot *victim = nullptr;
        for (unsigned w = 0; w < ways; ++w) {
            Slot &s = slot(w, family->index(w, request.tag));
            if (victim == nullptr || s.lastUse < victim->lastUse)
                victim = &s;
        }
        assert(victim != nullptr && victim->valid);
        EvictedEntry &evicted = ctx.appendEviction(out);
        evicted.tag = victim->tag;
        victim->rep->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        victim->valid = false;
        victim->rep->clear(); // reuse the evicted entry's rep in place
        --occupied;
        dest = victim;
    }

    dest->tag = request.tag;
    if (!dest->rep)
        dest->rep = acquireRep(format);
    dest->rep->add(request.cache);
    dest->valid = true;
    dest->lastUse = useClock;
    ++occupied;

    out.inserted = true;
    out.attempts = attempts;
    ++statistics.insertions;
    statistics.insertionAttempts.add(attempts);
    statistics.attemptHistogram.add(attempts);
}

void
ElbowDirectory::removeSharer(Tag tag, CacheId cache)
{
    if (Slot *s = findSlot(tag)) {
        ++statistics.sharerRemovals;
        if (s->rep->remove(cache)) {
            s->valid = false;
            recycleRep(std::move(s->rep));
            --occupied;
            ++statistics.entryFrees;
        }
    }
}

bool
ElbowDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const Slot *s = findSlot(tag);
    if (!s)
        return false;
    if (sharers)
        s->rep->invalidationTargets(*sharers);
    return true;
}

std::string
ElbowDirectory::name() const
{
    std::ostringstream os;
    os << "Elbow-" << ways << "x" << sets;
    return os.str();
}

} // namespace cdir
