#include "directory/elbow_directory.hh"

#include <cassert>
#include <sstream>

namespace cdir {

ElbowDirectory::ElbowDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      family(makeHashFamily(HashKind::Skewing, num_ways, num_sets,
                            hash_seed)),
      ways(num_ways),
      sets(num_sets),
      slots(std::size_t{num_ways} * num_sets)
{}

ElbowDirectory::Slot *
ElbowDirectory::findSlot(Tag tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (s.valid && s.tag == tag)
            return &s;
    }
    return nullptr;
}

const ElbowDirectory::Slot *
ElbowDirectory::findSlot(Tag tag) const
{
    return const_cast<ElbowDirectory *>(this)->findSlot(tag);
}

DirAccessResult
ElbowDirectory::access(Tag tag, CacheId cache, bool is_write)
{
    DirAccessResult result;
    ++statistics.lookups;
    ++useClock;

    if (Slot *s = findSlot(tag)) {
        result.hit = true;
        ++statistics.hits;
        s->lastUse = useClock;
        if (is_write) {
            DynamicBitset targets;
            s->rep->invalidationTargets(targets);
            if (cache < targets.size() && targets.test(cache))
                targets.reset(cache);
            if (targets.any()) {
                result.hadSharerInvalidations = true;
                result.sharerInvalidations = std::move(targets);
                ++statistics.writeUpgrades;
            }
            s->rep->clear();
            s->rep->add(cache);
        } else {
            s->rep->add(cache);
            ++statistics.sharerAdds;
        }
        return result;
    }

    // Miss: take a vacant candidate if one exists.
    Slot *dest = nullptr;
    unsigned attempts = 1;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (!s.valid) {
            dest = &s;
            break;
        }
    }

    if (dest == nullptr) {
        // One elbow move: relocate the first candidate occupant whose
        // alternate slot in another way is vacant (requires the extra
        // candidate lookups the paper charges this design for).
        for (unsigned w = 0; w < ways && dest == nullptr; ++w) {
            Slot &occupant = slot(w, family->index(w, tag));
            for (unsigned alt = 0; alt < ways; ++alt) {
                if (alt == w)
                    continue;
                Slot &target =
                    slot(alt, family->index(alt, occupant.tag));
                if (!target.valid) {
                    target = std::move(occupant);
                    occupant.valid = false;
                    occupant.rep.reset();
                    dest = &occupant;
                    ++relocated;
                    attempts = 2; // the relocation write
                    break;
                }
            }
        }
    }

    if (dest == nullptr) {
        // No single-hop relocation possible: evict the LRU candidate.
        Slot *victim = nullptr;
        for (unsigned w = 0; w < ways; ++w) {
            Slot &s = slot(w, family->index(w, tag));
            if (victim == nullptr || s.lastUse < victim->lastUse)
                victim = &s;
        }
        assert(victim != nullptr && victim->valid);
        EvictedEntry evicted;
        evicted.tag = victim->tag;
        victim->rep->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        result.forcedEvictions.push_back(std::move(evicted));
        victim->valid = false;
        victim->rep.reset();
        --occupied;
        dest = victim;
    }

    dest->tag = tag;
    dest->rep = makeSharerRep(format, caches);
    dest->rep->add(cache);
    dest->valid = true;
    dest->lastUse = useClock;
    ++occupied;

    result.inserted = true;
    result.attempts = attempts;
    ++statistics.insertions;
    statistics.insertionAttempts.add(attempts);
    statistics.attemptHistogram.add(attempts);
    return result;
}

void
ElbowDirectory::removeSharer(Tag tag, CacheId cache)
{
    if (Slot *s = findSlot(tag)) {
        ++statistics.sharerRemovals;
        if (s->rep->remove(cache)) {
            s->valid = false;
            s->rep.reset();
            --occupied;
            ++statistics.entryFrees;
        }
    }
}

bool
ElbowDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const Slot *s = findSlot(tag);
    if (!s)
        return false;
    if (sharers)
        s->rep->invalidationTargets(*sharers);
    return true;
}

std::string
ElbowDirectory::name() const
{
    std::ostringstream os;
    os << "Elbow-" << ways << "x" << sets;
    return os.str();
}

} // namespace cdir
