#include "directory/elbow_directory.hh"

#include <cassert>
#include <sstream>

#include "common/bit_util.hh"
#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(elbow, "Elbow", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<ElbowDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                p.hashSeed);
                        });

ElbowDirectory::ElbowDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      family(makeHashFamily(HashKind::Skewing, num_ways, num_sets,
                            hash_seed)),
      ways(num_ways),
      sets(num_sets),
      tags(std::size_t{num_ways} * num_sets, 0),
      valids(std::size_t{num_ways} * num_sets, 0),
      lastUses(std::size_t{num_ways} * num_sets, 0),
      reps(std::size_t{num_ways} * num_sets)
{
    assert(num_ways >= 1 && num_ways <= kMaxProbeWays);
    prefillRepPool(fmt, tags.size());
}

std::size_t
ElbowDirectory::findPosOf(Tag tag) const
{
    std::size_t idx[kMaxProbeWays];
    family->indexAll(tag, idx);
    Tag cand[kMaxProbeWays];
    std::uint8_t cvalid[kMaxProbeWays];
    for (unsigned w = 0; w < ways; ++w) {
        const std::size_t p = pos(w, idx[w]);
        cand[w] = tags[p];
        cvalid[w] = valids[p];
    }
    const std::size_t hit = findTag(cand, cvalid, ways, tag);
    return hit == ways ? npos : pos(static_cast<unsigned>(hit), idx[hit]);
}

void
ElbowDirectory::prefetchTag(Tag tag) const
{
    std::size_t idx[kMaxProbeWays];
    family->indexAll(tag, idx);
    for (unsigned w = 0; w < ways; ++w)
        prefetchRead(&tags[pos(w, idx[w])]);
}

void
ElbowDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;

    std::size_t idx[kMaxProbeWays];
    family->indexAll(request.tag, idx);

    {
        Tag cand[kMaxProbeWays];
        std::uint8_t cvalid[kMaxProbeWays];
        for (unsigned w = 0; w < ways; ++w) {
            const std::size_t p = pos(w, idx[w]);
            cand[w] = tags[p];
            cvalid[w] = valids[p];
        }
        const std::size_t hit = findTag(cand, cvalid, ways, request.tag);
        if (hit != ways) {
            const std::size_t p =
                pos(static_cast<unsigned>(hit), idx[hit]);
            out.hit = true;
            ++statistics.hits;
            lastUses[p] = useClock;
            updateEntryOnHit(*reps[p], request, ctx, out);
            return;
        }
    }

    // Miss: take a vacant candidate if one exists.
    std::size_t dest = npos;
    unsigned attempts = 1;
    for (unsigned w = 0; w < ways; ++w) {
        const std::size_t p = pos(w, idx[w]);
        if (valids[p] == 0) {
            dest = p;
            break;
        }
    }

    if (dest == npos) {
        // One elbow move: relocate the first candidate occupant whose
        // alternate slot in another way is vacant (requires the extra
        // candidate lookups the paper charges this design for).
        std::size_t altIdx[kMaxProbeWays];
        for (unsigned w = 0; w < ways && dest == npos; ++w) {
            const std::size_t occ = pos(w, idx[w]);
            family->indexAll(tags[occ], altIdx);
            for (unsigned alt = 0; alt < ways; ++alt) {
                if (alt == w)
                    continue;
                const std::size_t target = pos(alt, altIdx[alt]);
                if (valids[target] == 0) {
                    tags[target] = tags[occ];
                    reps[target] = std::move(reps[occ]);
                    lastUses[target] = lastUses[occ];
                    valids[target] = 1;
                    valids[occ] = 0;
                    dest = occ;
                    ++relocated;
                    attempts = 2; // the relocation write
                    break;
                }
            }
        }
    }

    if (dest == npos) {
        // No single-hop relocation possible: evict the LRU candidate.
        std::size_t victim = npos;
        for (unsigned w = 0; w < ways; ++w) {
            const std::size_t p = pos(w, idx[w]);
            if (victim == npos || lastUses[p] < lastUses[victim])
                victim = p;
        }
        assert(victim != npos && valids[victim] != 0);
        EvictedEntry &evicted = ctx.appendEviction(out);
        evicted.tag = tags[victim];
        reps[victim]->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        valids[victim] = 0;
        reps[victim]->clear(); // reuse the evicted entry's rep in place
        --occupied;
        dest = victim;
    }

    tags[dest] = request.tag;
    if (!reps[dest])
        reps[dest] = acquireRep(format);
    reps[dest]->add(request.cache);
    valids[dest] = 1;
    lastUses[dest] = useClock;
    ++occupied;

    out.inserted = true;
    out.attempts = attempts;
    ++statistics.insertions;
    statistics.insertionAttempts.add(attempts);
    statistics.attemptHistogram.add(attempts);
}

void
ElbowDirectory::removeSharer(Tag tag, CacheId cache)
{
    const std::size_t p = findPosOf(tag);
    if (p == npos)
        return;
    ++statistics.sharerRemovals;
    if (reps[p]->remove(cache)) {
        valids[p] = 0;
        recycleRep(std::move(reps[p]));
        --occupied;
        ++statistics.entryFrees;
    }
}

bool
ElbowDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const std::size_t p = findPosOf(tag);
    if (p == npos)
        return false;
    if (sharers)
        reps[p]->invalidationTargets(*sharers);
    return true;
}

std::string
ElbowDirectory::name() const
{
    std::ostringstream os;
    os << "Elbow-" << ways << "x" << sets;
    return os.str();
}

} // namespace cdir
