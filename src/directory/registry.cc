#include "directory/registry.hh"

#include <sstream>
#include <stdexcept>

namespace cdir {

DirectoryRegistry &
DirectoryRegistry::instance()
{
    // Meyers singleton: safe to use from other TUs' static initializers
    // (the registrars), which is how organizations self-register.
    static DirectoryRegistry registry;
    return registry;
}

void
DirectoryRegistry::registerOrganization(std::string name,
                                        DirectoryTraits traits,
                                        Builder builder)
{
    auto [it, inserted] = organizations.emplace(
        std::move(name), Entry{traits, std::move(builder)});
    if (!inserted) {
        throw std::logic_error("directory organization '" + it->first +
                               "' registered twice");
    }
}

const DirectoryRegistry::Entry &
DirectoryRegistry::lookup(std::string_view name) const
{
    auto it = organizations.find(name);
    if (it == organizations.end()) {
        std::ostringstream os;
        os << "unknown directory organization '" << name
           << "'; known organizations:";
        for (const auto &[known, entry] : organizations)
            os << " " << known;
        throw std::invalid_argument(os.str());
    }
    return it->second;
}

std::unique_ptr<Directory>
DirectoryRegistry::build(std::string_view name,
                         const DirectoryParams &params) const
{
    return lookup(name).builder(params);
}

const DirectoryTraits &
DirectoryRegistry::traits(std::string_view name) const
{
    return lookup(name).traits;
}

bool
DirectoryRegistry::contains(std::string_view name) const
{
    return organizations.find(name) != organizations.end();
}

std::vector<std::string>
DirectoryRegistry::names() const
{
    std::vector<std::string> result;
    result.reserve(organizations.size());
    for (const auto &[name, entry] : organizations)
        result.push_back(name);
    return result;
}

} // namespace cdir
