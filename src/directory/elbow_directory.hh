/**
 * @file
 * Elbow cache directory (Spjuth et al. [37,38]; §6 related work).
 *
 * A skewed-associative organization that, on a conflict, performs *at
 * most one displacement*: it scans the incoming tag's candidate slots
 * for an occupant whose alternate location in another way is vacant,
 * relocates that occupant there, and inserts into the freed slot. If no
 * candidate can be relocated in one hop, the LRU candidate is evicted
 * (a forced invalidation).
 *
 * The paper positions the Elbow cache between the skewed-associative
 * and Cuckoo organizations: the single displacement needs extra lookups
 * to choose its victim (energy), yet still experiences more forced
 * invalidations than the unbounded-displacement Cuckoo directory. The
 * ablation bench quantifies exactly that gap.
 *
 * Storage is structure-of-arrays, way-major (skewed indexing disperses
 * the ways, so there is no contiguous set run): probes compute every
 * way index with one indexAll call, gather the candidate tags, and
 * reduce them with the branchless match-mask kernel.
 */

#ifndef CDIR_DIRECTORY_ELBOW_DIRECTORY_HH
#define CDIR_DIRECTORY_ELBOW_DIRECTORY_HH

#include <memory>
#include <vector>

#include "directory/directory.hh"

namespace cdir {

/** Elbow-cache directory slice (see file comment). */
class ElbowDirectory : public Directory
{
  public:
    /**
     * @param num_caches private caches tracked.
     * @param ways       associativity (one skewing function per way).
     * @param sets       sets per way.
     * @param format     sharer-set representation.
     * @param hash_seed  seed for the hash family.
     */
    ElbowDirectory(std::size_t num_caches, unsigned ways,
                   std::size_t sets, SharerFormat format,
                   std::uint64_t hash_seed = 1);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    void prefetchTag(Tag tag) const override;
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override { return occupied; }
    std::size_t capacity() const override { return tags.size(); }
    std::string name() const override;

    /** Insertions resolved by a single relocation (no eviction). */
    std::uint64_t relocations() const { return relocated; }

    std::size_t
    memoryBytes() const override
    {
        std::size_t total =
            sizeof(*this) + tags.capacity() * sizeof(Tag) +
            valids.capacity() * sizeof(std::uint8_t) +
            lastUses.capacity() * sizeof(std::uint64_t) +
            reps.capacity() * sizeof(std::unique_ptr<SharerRep>) +
            pooledRepBytes();
        for (const auto &rep : reps)
            if (rep)
                total += rep->memoryBytes();
        return total;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    /** Flat position of candidate (way, index) — way-major. */
    std::size_t
    pos(unsigned way, std::size_t index) const
    {
        return std::size_t{way} * sets + index;
    }

    /** Position of @p tag, or npos. */
    std::size_t findPosOf(Tag tag) const;

    SharerFormat format;
    std::unique_ptr<HashFamily> family;
    unsigned ways;
    std::size_t sets;

    std::vector<Tag> tags;                         //!< SoA tag lane
    std::vector<std::uint8_t> valids;              //!< SoA valid lane
    std::vector<std::uint64_t> lastUses;           //!< SoA LRU lane
    std::vector<std::unique_ptr<SharerRep>> reps;  //!< SoA payload lane
    std::size_t occupied = 0;
    std::uint64_t useClock = 0;
    std::uint64_t relocated = 0;
};

} // namespace cdir

#endif // CDIR_DIRECTORY_ELBOW_DIRECTORY_HH
