/**
 * @file
 * String-keyed directory-organization registry.
 *
 * The original factory was a closed `switch` over `DirectoryKind`:
 * adding an organization meant editing the enum, the factory, and every
 * consumer that enumerated kinds. The registry inverts that: each
 * organization's translation unit self-registers a builder lambda over
 * `DirectoryParams` (plus traits the CMP driver needs), and consumers
 * enumerate `names()` generically. `makeDirectory()` remains as a thin
 * shim that resolves the deprecated enum to a registry name.
 *
 * Registering a new organization takes one macro invocation in its .cc:
 *
 *   CDIR_REGISTER_DIRECTORY(my_org, "MyOrg", DirectoryTraits{},
 *       [](const DirectoryParams &p) {
 *           return std::make_unique<MyOrgDirectory>(...);
 *       });
 *
 * Note for static linking: registration runs from each organization's
 * object file's static initializers, so the library must be linked
 * whole (the build uses a CMake OBJECT library for exactly this
 * reason).
 *
 * Thread safety: the registry map is only mutated during static
 * initialization (before main, single-threaded); after that every
 * operation is a const read, so concurrent build()/traits()/names()
 * calls from sweep workers are lock-free and race-free. Builders must
 * stay stateless (capture nothing mutable) — all current registrations
 * construct from their DirectoryParams argument alone. Registering at
 * runtime while sweeps are in flight is not supported.
 */

#ifndef CDIR_DIRECTORY_REGISTRY_HH
#define CDIR_DIRECTORY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "directory/directory.hh"

namespace cdir {

/** Structural properties consumers need before construction. */
struct DirectoryTraits
{
    /**
     * Slice geometry mirrors the tracked caches' sets (Fig. 3):
     * the driver derives `sets` from the private-cache geometry instead
     * of taking it from DirectoryParams (DuplicateTag, Tagless).
     */
    bool mirrorsTrackedCaches = false;
    /**
     * Capacity scales with DirectoryParams::bucketSlots (bucketized
     * Cuckoo tables); used by DirectoryParams::totalEntries().
     */
    bool usesBucketSlots = false;
};

/** Global name -> builder registry (see file comment). */
class DirectoryRegistry
{
  public:
    using Builder =
        std::function<std::unique_ptr<Directory>(const DirectoryParams &)>;

    /** The process-wide registry instance. */
    static DirectoryRegistry &instance();

    /**
     * Register @p name. Organizations call this through
     * CDIR_REGISTER_DIRECTORY at static-initialization time.
     * @throws std::logic_error if the name is already taken.
     */
    void registerOrganization(std::string name, DirectoryTraits traits,
                              Builder builder);

    /**
     * Build the organization registered as @p name.
     * @throws std::invalid_argument naming the known organizations if
     *         @p name is not registered.
     */
    std::unique_ptr<Directory> build(std::string_view name,
                                     const DirectoryParams &params) const;

    /** Traits of @p name. @throws std::invalid_argument if unknown. */
    const DirectoryTraits &traits(std::string_view name) const;

    /** True iff @p name is registered. */
    bool contains(std::string_view name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        DirectoryTraits traits;
        Builder builder;
    };

    const Entry &lookup(std::string_view name) const;

    std::map<std::string, Entry, std::less<>> organizations;
};

/** Performs one registration from a static initializer. */
class DirectoryRegistrar
{
  public:
    DirectoryRegistrar(const char *name, DirectoryTraits traits,
                       DirectoryRegistry::Builder builder)
    {
        DirectoryRegistry::instance().registerOrganization(
            name, traits, std::move(builder));
    }
};

/**
 * Self-register a directory organization from its translation unit.
 * @param ident unique C identifier for the registrar object.
 * Remaining arguments: name, DirectoryTraits, builder callable.
 */
#define CDIR_REGISTER_DIRECTORY(ident, ...)                                  \
    static const ::cdir::DirectoryRegistrar cdirDirectoryRegistrar_##ident{ \
        __VA_ARGS__}

} // namespace cdir

#endif // CDIR_DIRECTORY_REGISTRY_HH
