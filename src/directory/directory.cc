#include "directory/directory.hh"

#include "directory/assoc_directory.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/duplicate_tag_directory.hh"
#include "directory/elbow_directory.hh"
#include "directory/in_cache_directory.hh"
#include "directory/tagless_directory.hh"

namespace cdir {

std::unique_ptr<Directory>
makeDirectory(const DirectoryParams &p)
{
    switch (p.kind) {
      case DirectoryKind::Cuckoo:
        return std::make_unique<CuckooDirectory>(
            p.numCaches, p.ways, p.sets, p.format, p.hash, p.maxAttempts,
            p.hashSeed, p.bucketSlots, p.stashEntries);
      case DirectoryKind::Sparse:
        return std::make_unique<AssocDirectory>(p.numCaches, p.ways, p.sets,
                                                p.format, HashKind::Modulo);
      case DirectoryKind::Skewed:
        return std::make_unique<AssocDirectory>(
            p.numCaches, p.ways, p.sets, p.format,
            p.hash == HashKind::Modulo ? HashKind::Skewing : p.hash,
            p.hashSeed);
      case DirectoryKind::DuplicateTag:
        return std::make_unique<DuplicateTagDirectory>(
            p.numCaches, p.sets, p.trackedCacheAssoc);
      case DirectoryKind::InCache:
        return std::make_unique<InCacheDirectory>(p.numCaches, p.ways,
                                                  p.sets);
      case DirectoryKind::Tagless:
        return std::make_unique<TaglessDirectory>(
            p.numCaches, p.sets, p.taglessBucketBits, 2, p.hashSeed);
      case DirectoryKind::Elbow:
        return std::make_unique<ElbowDirectory>(p.numCaches, p.ways,
                                                p.sets, p.format,
                                                p.hashSeed);
    }
    return nullptr;
}

std::string
directoryKindName(DirectoryKind kind)
{
    switch (kind) {
      case DirectoryKind::Cuckoo:
        return "Cuckoo";
      case DirectoryKind::Sparse:
        return "Sparse";
      case DirectoryKind::Skewed:
        return "Skewed";
      case DirectoryKind::DuplicateTag:
        return "DuplicateTag";
      case DirectoryKind::InCache:
        return "InCache";
      case DirectoryKind::Tagless:
        return "Tagless";
      case DirectoryKind::Elbow:
        return "Elbow";
    }
    return "?";
}

} // namespace cdir
