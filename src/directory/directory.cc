#include "directory/directory.hh"

#include <cstdlib>

#include "directory/registry.hh"

namespace cdir {

unsigned
Directory::prefetchDistance()
{
    static const unsigned distance = [] {
        if (const char *env = std::getenv("CDIR_PREFETCH_DIST"))
            return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        return 8u;
    }();
    return distance;
}

void
Directory::accessBatch(std::span<const DirRequest> requests,
                       DirAccessContext &ctx)
{
    // Walk the span in order, hinting the tag lanes of the request
    // `dist` slots ahead so the probe's candidate lines are (likely)
    // resident by the time access() reaches them. prefetchTag() is
    // side-effect free, so outcomes are identical to the plain loop.
    const std::size_t dist = prefetchDistance();
    const std::size_t n = requests.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (dist != 0 && i + dist < n)
            prefetchTag(requests[i + dist].tag);
        access(requests[i], ctx);
    }
}

Directory::~Directory()
{
    while (repFree != nullptr) {
        SharerRep *next = repFree->poolNext;
        delete repFree;
        repFree = next;
    }
}

std::unique_ptr<SharerRep>
Directory::acquireRep(SharerFormat format)
{
    if (repFree != nullptr) {
        SharerRep *rep = repFree;
        repFree = rep->poolNext;
        rep->poolNext = nullptr;
        rep->clear();
        return std::unique_ptr<SharerRep>(rep);
    }
    return makeSharerRep(format, caches);
}

void
Directory::recycleRep(std::unique_ptr<SharerRep> rep)
{
    if (rep) {
        SharerRep *node = rep.release();
        node->poolNext = repFree;
        repFree = node;
    }
}

void
Directory::prefillRepPool(SharerFormat format, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        SharerRep *node = makeSharerRep(format, caches).release();
        node->poolNext = repFree;
        repFree = node;
    }
}

std::size_t
Directory::pooledRepBytes() const
{
    std::size_t total = 0;
    for (const SharerRep *rep = repFree; rep != nullptr;
         rep = rep->poolNext)
        total += rep->memoryBytes();
    return total;
}

void
Directory::updateEntryOnHit(SharerRep &rep, const DirRequest &request,
                            DirAccessContext &ctx, DirAccessOutcome &out)
{
    if (request.isWrite) {
        DynamicBitset &targets = ctx.sharerTargets(out);
        rep.invalidationTargets(targets);
        if (request.cache < targets.size() && targets.test(request.cache))
            targets.reset(request.cache);
        if (targets.any()) {
            out.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
        }
        rep.clear();
        rep.add(request.cache);
    } else {
        rep.add(request.cache);
        ++statistics.sharerAdds;
    }
}

std::string
DirectoryParams::resolvedOrganization() const
{
    return organization.empty() ? directoryKindName(kind) : organization;
}

std::size_t
DirectoryParams::totalEntries() const
{
    // traits() throws for an unknown organization, failing fast like
    // every other registry consumer (makeDirectory, CmpSystem).
    const bool bucketized = DirectoryRegistry::instance()
                                .traits(resolvedOrganization())
                                .usesBucketSlots;
    return std::size_t{ways} * sets * (bucketized ? bucketSlots : 1);
}

std::unique_ptr<Directory>
makeDirectory(const DirectoryParams &p)
{
    return DirectoryRegistry::instance().build(p.resolvedOrganization(), p);
}

std::string
directoryKindName(DirectoryKind kind)
{
    switch (kind) {
      case DirectoryKind::Cuckoo:
        return "Cuckoo";
      case DirectoryKind::Sparse:
        return "Sparse";
      case DirectoryKind::Skewed:
        return "Skewed";
      case DirectoryKind::DuplicateTag:
        return "DuplicateTag";
      case DirectoryKind::InCache:
        return "InCache";
      case DirectoryKind::Tagless:
        return "Tagless";
      case DirectoryKind::Elbow:
        return "Elbow";
    }
    return "?";
}

} // namespace cdir
