#include "directory/directory.hh"

#include "directory/registry.hh"

namespace cdir {

void
Directory::accessBatch(std::span<const DirRequest> requests,
                       DirAccessContext &ctx)
{
    // Scalar fallback: organizations that exploit batch locality
    // (sorting by set, software pipelining) override this.
    for (const DirRequest &request : requests)
        access(request, ctx);
}

std::unique_ptr<SharerRep>
Directory::acquireRep(SharerFormat format)
{
    if (!repPool.empty()) {
        std::unique_ptr<SharerRep> rep = std::move(repPool.back());
        repPool.pop_back();
        rep->clear();
        return rep;
    }
    return makeSharerRep(format, caches);
}

void
Directory::recycleRep(std::unique_ptr<SharerRep> rep)
{
    if (rep)
        repPool.push_back(std::move(rep));
}

void
Directory::prefillRepPool(SharerFormat format, std::size_t count)
{
    repPool.reserve(repPool.size() + count);
    for (std::size_t i = 0; i < count; ++i)
        repPool.push_back(makeSharerRep(format, caches));
}

void
Directory::updateEntryOnHit(SharerRep &rep, const DirRequest &request,
                            DirAccessContext &ctx, DirAccessOutcome &out)
{
    if (request.isWrite) {
        DynamicBitset &targets = ctx.sharerTargets(out);
        rep.invalidationTargets(targets);
        if (request.cache < targets.size() && targets.test(request.cache))
            targets.reset(request.cache);
        if (targets.any()) {
            out.hadSharerInvalidations = true;
            ++statistics.writeUpgrades;
        }
        rep.clear();
        rep.add(request.cache);
    } else {
        rep.add(request.cache);
        ++statistics.sharerAdds;
    }
}

std::string
DirectoryParams::resolvedOrganization() const
{
    return organization.empty() ? directoryKindName(kind) : organization;
}

std::size_t
DirectoryParams::totalEntries() const
{
    // traits() throws for an unknown organization, failing fast like
    // every other registry consumer (makeDirectory, CmpSystem).
    const bool bucketized = DirectoryRegistry::instance()
                                .traits(resolvedOrganization())
                                .usesBucketSlots;
    return std::size_t{ways} * sets * (bucketized ? bucketSlots : 1);
}

std::unique_ptr<Directory>
makeDirectory(const DirectoryParams &p)
{
    return DirectoryRegistry::instance().build(p.resolvedOrganization(), p);
}

std::string
directoryKindName(DirectoryKind kind)
{
    switch (kind) {
      case DirectoryKind::Cuckoo:
        return "Cuckoo";
      case DirectoryKind::Sparse:
        return "Sparse";
      case DirectoryKind::Skewed:
        return "Skewed";
      case DirectoryKind::DuplicateTag:
        return "DuplicateTag";
      case DirectoryKind::InCache:
        return "InCache";
      case DirectoryKind::Tagless:
        return "Tagless";
      case DirectoryKind::Elbow:
        return "Elbow";
    }
    return "?";
}

} // namespace cdir
