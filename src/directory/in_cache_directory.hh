/**
 * @file
 * In-Cache directory (§3.2): sharer vectors grafted onto the tags of the
 * inclusive shared cache.
 *
 * The tag array already names every L2-resident block, so the directory
 * adds only the sharer bits — but must provision them for *every* L2
 * tag, although privately cached blocks are a small subset ("grossly
 * over-provisioning the sharer storage", §3.2); the analytical model
 * charges exactly that. Behaviourally the structure is a set-associative
 * directory with the shared cache's geometry, and a forced eviction
 * corresponds to an inclusion victim. Only meaningful for the Shared-L2
 * configuration (private L2s cannot include each other, §5.6).
 */

#ifndef CDIR_DIRECTORY_IN_CACHE_DIRECTORY_HH
#define CDIR_DIRECTORY_IN_CACHE_DIRECTORY_HH

#include "directory/assoc_directory.hh"

namespace cdir {

/** In-Cache directory slice (see file comment). */
class InCacheDirectory : public AssocDirectory
{
  public:
    /**
     * @param num_caches private caches tracked.
     * @param l2_assoc   shared-cache associativity (Table 1: 16).
     * @param l2_sets    shared-cache sets covered by this slice.
     */
    InCacheDirectory(std::size_t num_caches, unsigned l2_assoc,
                     std::size_t l2_sets)
        : AssocDirectory(num_caches, l2_assoc, l2_sets,
                         SharerFormat::FullVector, HashKind::Modulo)
    {}

    std::string name() const override
    {
        return "InCache-" + AssocDirectory::name().substr(7);
    }
};

} // namespace cdir

#endif // CDIR_DIRECTORY_IN_CACHE_DIRECTORY_HH
