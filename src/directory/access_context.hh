/**
 * @file
 * Allocation-free batched directory access protocol.
 *
 * The simulation hot path performs millions of Directory accesses; the
 * original API returned a `DirAccessResult` that *owned* a
 * `std::vector<EvictedEntry>` and `DynamicBitset`s, heap-allocating on
 * every miss. This header replaces that with a caller-owned, reusable
 * `DirAccessContext`:
 *
 *  - the caller binds a context to the slice's cache count once, then
 *    `reset()`s it between batches — storage is reused, never freed;
 *  - an organization appends one `DirAccessOutcome` per request via
 *    `beginOutcome()` and claims invalidation bitsets / evicted-entry
 *    records from the context's pools;
 *  - the consumer walks outcomes in request order and reads the claimed
 *    storage back through the context.
 *
 * After a warmup period grows every pool to its high-water size, the
 * steady-state protocol performs zero heap allocations per access.
 *
 * `DirAccessResult` survives as an *owning snapshot* for convenience
 * call sites (tests, examples) that want value semantics; it is produced
 * from a context via `DirAccessContext::snapshot()` and is not used on
 * the hot path.
 */

#ifndef CDIR_DIRECTORY_ACCESS_CONTEXT_HH
#define CDIR_DIRECTORY_ACCESS_CONTEXT_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bitset.hh"
#include "common/types.hh"

namespace cdir {

/** One read- or write-miss reference presented to a directory slice. */
struct DirRequest
{
    Tag tag = 0;
    CacheId cache = 0;
    bool isWrite = false;
};

/** A directory entry evicted because of a conflict (forced eviction). */
struct EvictedEntry
{
    Tag tag = 0;
    /** Caches that must invalidate the block (superset of sharers). */
    DynamicBitset targets;
};

/**
 * Outcome of one directory access, recorded inside a DirAccessContext.
 * Plain flags plus indices into the context's pooled storage; copying it
 * never copies sharer vectors.
 */
struct DirAccessOutcome
{
    bool hit = false;          //!< tag was already tracked
    bool inserted = false;     //!< a new entry was allocated
    /**
     * The insertion procedure gave up (Cuckoo attempt bound) and
     * discarded an entry; the discarded entry is among the forced
     * evictions.
     */
    bool insertDiscarded = false;
    /** Write hit: caches (other than the requester) to invalidate. */
    bool hadSharerInvalidations = false;
    unsigned attempts = 0;     //!< insertion attempts (0 on hit)
    /** Position of this outcome in its context (== request index). */
    std::uint32_t index = 0;
    /** Range of this outcome's forced evictions in the context pool. */
    std::uint32_t evictionBegin = 0;
    std::uint32_t evictionCount = 0;
};

/**
 * Owning snapshot of one access outcome (legacy value-semantics API).
 * Convenient but allocating; not for the hot path.
 */
struct DirAccessResult
{
    bool hit = false;
    bool inserted = false;
    bool insertDiscarded = false;
    unsigned attempts = 0;
    bool hadSharerInvalidations = false;
    DynamicBitset sharerInvalidations;
    std::vector<EvictedEntry> forcedEvictions;
};

/** Reusable scratch + result storage for directory accesses. */
class DirAccessContext
{
  public:
    DirAccessContext() = default;

    /** Construct bound to slices tracking @p num_caches caches. */
    explicit DirAccessContext(std::size_t num_caches)
    {
        bind(num_caches);
    }

    /**
     * (Re-)bind to @p num_caches caches. Idempotent and cheap when the
     * count is unchanged; otherwise existing pooled bitsets are resized.
     */
    void
    bind(std::size_t num_caches)
    {
        if (caches == num_caches)
            return;
        caches = num_caches;
        for (auto &bits : invalidationPool)
            bits.reinit(caches);
        for (auto &entry : evictionPool)
            entry.targets.reinit(caches);
    }

    /** Caches the bound slice tracks. */
    std::size_t numCaches() const { return caches; }

    /**
     * Pre-grow every pool for @p outcome_count outcomes with up to
     * @p evictions_per_outcome forced evictions each, so a driver with
     * a known batch bound never allocates mid-run (all current
     * organizations evict at most one entry per insertion).
     */
    void
    reserve(std::size_t outcome_count, std::size_t evictions_per_outcome = 1)
    {
        outcomes.reserve(outcome_count);
        while (invalidationPool.size() < outcome_count)
            invalidationPool.emplace_back(caches);
        const std::size_t eviction_count =
            outcome_count * evictions_per_outcome;
        evictionPool.reserve(eviction_count);
        while (evictionPool.size() < eviction_count)
            evictionPool.push_back(EvictedEntry{0, DynamicBitset(caches)});
    }

    /** Drop all outcomes; every pool keeps its storage. */
    void
    reset()
    {
        outcomes.clear();
        evictionsUsed = 0;
    }

    // --- consumer side ---------------------------------------------------

    /** Outcomes recorded since the last reset(). */
    std::size_t size() const { return outcomes.size(); }
    bool empty() const { return outcomes.empty(); }

    /** The @p i-th outcome (request order). */
    const DirAccessOutcome &
    outcome(std::size_t i) const
    {
        assert(i < outcomes.size());
        return outcomes[i];
    }

    /** The most recent outcome. */
    const DirAccessOutcome &
    back() const
    {
        assert(!outcomes.empty());
        return outcomes.back();
    }

    /** Invalidation targets of @p o (valid iff hadSharerInvalidations). */
    const DynamicBitset &
    sharerInvalidations(const DirAccessOutcome &o) const
    {
        assert(o.index < invalidationPool.size());
        return invalidationPool[o.index];
    }

    /** The @p i-th forced eviction of outcome @p o. */
    const EvictedEntry &
    forcedEviction(const DirAccessOutcome &o, std::size_t i) const
    {
        assert(i < o.evictionCount);
        return evictionPool[o.evictionBegin + i];
    }

    /** Owning snapshot of outcome @p i (legacy value API; allocates). */
    DirAccessResult
    snapshot(std::size_t i) const
    {
        const DirAccessOutcome &o = outcome(i);
        DirAccessResult result;
        result.hit = o.hit;
        result.inserted = o.inserted;
        result.insertDiscarded = o.insertDiscarded;
        result.attempts = o.attempts;
        result.hadSharerInvalidations = o.hadSharerInvalidations;
        if (o.hadSharerInvalidations)
            result.sharerInvalidations = sharerInvalidations(o);
        result.forcedEvictions.reserve(o.evictionCount);
        for (std::size_t e = 0; e < o.evictionCount; ++e)
            result.forcedEvictions.push_back(forcedEviction(o, e));
        return result;
    }

    // --- producer side (directory organizations) -------------------------

    /**
     * Start the outcome for the next request. Every Directory::access
     * call appends exactly one outcome.
     */
    DirAccessOutcome &
    beginOutcome()
    {
        const auto index = static_cast<std::uint32_t>(outcomes.size());
        outcomes.emplace_back();
        DirAccessOutcome &out = outcomes.back();
        out.index = index;
        out.evictionBegin = static_cast<std::uint32_t>(evictionsUsed);
        return out;
    }

    /**
     * Invalidation-target bitset for @p o: cleared, sized to numCaches().
     * The caller sets o.hadSharerInvalidations if it ends up non-empty.
     */
    DynamicBitset &
    sharerTargets(DirAccessOutcome &o)
    {
        while (invalidationPool.size() <= o.index)
            invalidationPool.emplace_back(caches);
        DynamicBitset &bits = invalidationPool[o.index];
        if (bits.size() != caches)
            bits.reinit(caches);
        else
            bits.clear();
        return bits;
    }

    /**
     * Append a forced-eviction record to @p o (which must be the most
     * recent outcome). The record's targets come back cleared and sized
     * to numCaches().
     */
    EvictedEntry &
    appendEviction(DirAccessOutcome &o)
    {
        assert(!outcomes.empty() && &o == &outcomes.back() &&
               "evictions may only be appended to the current outcome");
        if (evictionsUsed == evictionPool.size())
            evictionPool.push_back(EvictedEntry{0, DynamicBitset(caches)});
        EvictedEntry &entry = evictionPool[evictionsUsed++];
        entry.tag = 0;
        if (entry.targets.size() != caches)
            entry.targets.reinit(caches);
        else
            entry.targets.clear();
        ++o.evictionCount;
        return entry;
    }

  private:
    std::size_t caches = 0;
    std::size_t evictionsUsed = 0;
    std::vector<DirAccessOutcome> outcomes;
    /** One invalidation bitset per outcome index (high-water storage). */
    std::vector<DynamicBitset> invalidationPool;
    /** Forced-eviction records shared by all outcomes (high-water). */
    std::vector<EvictedEntry> evictionPool;
};

} // namespace cdir

#endif // CDIR_DIRECTORY_ACCESS_CONTEXT_HH
