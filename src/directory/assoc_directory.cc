#include "directory/assoc_directory.hh"

#include <cassert>
#include <sstream>

#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(sparse, "Sparse", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<AssocDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                HashKind::Modulo);
                        });

CDIR_REGISTER_DIRECTORY(skewed, "Skewed", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<AssocDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                p.hash == HashKind::Modulo
                                    ? HashKind::Skewing
                                    : p.hash,
                                p.hashSeed);
                        });

AssocDirectory::AssocDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               HashKind hash, std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      hashKind(hash),
      family(makeHashFamily(hash, num_ways, num_sets, hash_seed)),
      ways(num_ways),
      sets(num_sets),
      slots(std::size_t{num_ways} * num_sets)
{
    prefillRepPool(fmt, slots.size());
}

AssocDirectory::Slot *
AssocDirectory::findSlot(Tag tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (s.valid && s.tag == tag)
            return &s;
    }
    return nullptr;
}

const AssocDirectory::Slot *
AssocDirectory::findSlot(Tag tag) const
{
    return const_cast<AssocDirectory *>(this)->findSlot(tag);
}

void
AssocDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;

    if (Slot *s = findSlot(request.tag)) {
        out.hit = true;
        ++statistics.hits;
        s->lastUse = useClock;
        updateEntryOnHit(*s->rep, request, ctx, out);
        return;
    }

    // Miss: pick a vacant candidate or evict the LRU candidate. This is
    // the set conflict the Cuckoo organization eliminates: the victim's
    // cached copies must be invalidated to keep the directory precise.
    Slot *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, request.tag));
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (victim == nullptr || s.lastUse < victim->lastUse)
            victim = &s;
    }
    assert(victim != nullptr);

    if (victim->valid) {
        EvictedEntry &evicted = ctx.appendEviction(out);
        evicted.tag = victim->tag;
        victim->rep->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        victim->rep->clear(); // reuse the evicted entry's rep in place
    } else {
        ++occupied;
        victim->rep = acquireRep(format);
    }

    victim->tag = request.tag;
    victim->rep->add(request.cache);
    victim->valid = true;
    victim->lastUse = useClock;

    out.inserted = true;
    out.attempts = 1;
    ++statistics.insertions;
    statistics.insertionAttempts.add(1);
    statistics.attemptHistogram.add(1);
}

void
AssocDirectory::removeSharer(Tag tag, CacheId cache)
{
    if (Slot *s = findSlot(tag)) {
        ++statistics.sharerRemovals;
        if (s->rep->remove(cache)) {
            s->valid = false;
            recycleRep(std::move(s->rep));
            --occupied;
            ++statistics.entryFrees;
        }
    }
}

bool
AssocDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const Slot *s = findSlot(tag);
    if (!s)
        return false;
    if (sharers)
        s->rep->invalidationTargets(*sharers);
    return true;
}

std::string
AssocDirectory::name() const
{
    std::ostringstream os;
    os << (hashKind == HashKind::Modulo ? "Sparse-" : "Skewed-") << ways
       << "x" << sets;
    return os.str();
}

std::unique_ptr<AssocDirectory>
makeSparseDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Modulo);
}

std::unique_ptr<AssocDirectory>
makeSkewedDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format, std::uint64_t hash_seed)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Skewing, hash_seed);
}

} // namespace cdir
