#include "directory/assoc_directory.hh"

#include <cassert>
#include <sstream>

namespace cdir {

AssocDirectory::AssocDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               HashKind hash, std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      hashKind(hash),
      family(makeHashFamily(hash, num_ways, num_sets, hash_seed)),
      ways(num_ways),
      sets(num_sets),
      slots(std::size_t{num_ways} * num_sets)
{}

AssocDirectory::Slot *
AssocDirectory::findSlot(Tag tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (s.valid && s.tag == tag)
            return &s;
    }
    return nullptr;
}

const AssocDirectory::Slot *
AssocDirectory::findSlot(Tag tag) const
{
    return const_cast<AssocDirectory *>(this)->findSlot(tag);
}

DirAccessResult
AssocDirectory::access(Tag tag, CacheId cache, bool is_write)
{
    DirAccessResult result;
    ++statistics.lookups;
    ++useClock;

    if (Slot *s = findSlot(tag)) {
        result.hit = true;
        ++statistics.hits;
        s->lastUse = useClock;
        if (is_write) {
            DynamicBitset targets;
            s->rep->invalidationTargets(targets);
            if (cache < targets.size() && targets.test(cache))
                targets.reset(cache);
            if (targets.any()) {
                result.hadSharerInvalidations = true;
                result.sharerInvalidations = std::move(targets);
                ++statistics.writeUpgrades;
            }
            s->rep->clear();
            s->rep->add(cache);
        } else {
            s->rep->add(cache);
            ++statistics.sharerAdds;
        }
        return result;
    }

    // Miss: pick a vacant candidate or evict the LRU candidate. This is
    // the set conflict the Cuckoo organization eliminates: the victim's
    // cached copies must be invalidated to keep the directory precise.
    Slot *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &s = slot(w, family->index(w, tag));
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (victim == nullptr || s.lastUse < victim->lastUse)
            victim = &s;
    }
    assert(victim != nullptr);

    if (victim->valid) {
        EvictedEntry evicted;
        evicted.tag = victim->tag;
        victim->rep->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        result.forcedEvictions.push_back(std::move(evicted));
    } else {
        ++occupied;
    }

    victim->tag = tag;
    victim->rep = makeSharerRep(format, caches);
    victim->rep->add(cache);
    victim->valid = true;
    victim->lastUse = useClock;

    result.inserted = true;
    result.attempts = 1;
    ++statistics.insertions;
    statistics.insertionAttempts.add(1);
    statistics.attemptHistogram.add(1);
    return result;
}

void
AssocDirectory::removeSharer(Tag tag, CacheId cache)
{
    if (Slot *s = findSlot(tag)) {
        ++statistics.sharerRemovals;
        if (s->rep->remove(cache)) {
            s->valid = false;
            s->rep.reset();
            --occupied;
            ++statistics.entryFrees;
        }
    }
}

bool
AssocDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const Slot *s = findSlot(tag);
    if (!s)
        return false;
    if (sharers)
        s->rep->invalidationTargets(*sharers);
    return true;
}

std::string
AssocDirectory::name() const
{
    std::ostringstream os;
    os << (hashKind == HashKind::Modulo ? "Sparse-" : "Skewed-") << ways
       << "x" << sets;
    return os.str();
}

std::unique_ptr<AssocDirectory>
makeSparseDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Modulo);
}

std::unique_ptr<AssocDirectory>
makeSkewedDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format, std::uint64_t hash_seed)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Skewing, hash_seed);
}

} // namespace cdir
