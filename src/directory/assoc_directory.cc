#include "directory/assoc_directory.hh"

#include <cassert>
#include <sstream>

#include "common/bit_util.hh"
#include "directory/registry.hh"

namespace cdir {

CDIR_REGISTER_DIRECTORY(sparse, "Sparse", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<AssocDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                HashKind::Modulo);
                        });

CDIR_REGISTER_DIRECTORY(skewed, "Skewed", DirectoryTraits{},
                        [](const DirectoryParams &p) {
                            return std::make_unique<AssocDirectory>(
                                p.numCaches, p.ways, p.sets, p.format,
                                p.hash == HashKind::Modulo
                                    ? HashKind::Skewing
                                    : p.hash,
                                p.hashSeed);
                        });

AssocDirectory::AssocDirectory(std::size_t num_caches, unsigned num_ways,
                               std::size_t num_sets, SharerFormat fmt,
                               HashKind hash, std::uint64_t hash_seed)
    : Directory(num_caches),
      format(fmt),
      hashKind(hash),
      family(makeHashFamily(hash, num_ways, num_sets, hash_seed)),
      ways(num_ways),
      sets(num_sets),
      setMajor(hash == HashKind::Modulo),
      tags(std::size_t{num_ways} * num_sets, 0),
      valids(std::size_t{num_ways} * num_sets, 0),
      lastUses(std::size_t{num_ways} * num_sets, 0),
      reps(std::size_t{num_ways} * num_sets)
{
    assert(num_ways >= 1 && num_ways <= kMaxProbeWays);
    prefillRepPool(fmt, tags.size());
}

std::size_t
AssocDirectory::findPosOf(Tag tag) const
{
    std::size_t idx[kMaxProbeWays];
    family->indexAll(tag, idx);
    return findPosWithIdx(tag, idx);
}

std::size_t
AssocDirectory::findPosWithIdx(Tag tag, const std::size_t *idx) const
{
    if (setMajor) {
        // All ways share the set: the candidates are one contiguous run,
        // reduced by a single kernel call with no gather.
        const std::size_t base = idx[0] * ways;
        const std::size_t hit =
            findTag(&tags[base], &valids[base], ways, tag);
        return hit == ways ? npos : base + hit;
    }
    // Skewed ways: gather the scattered candidates, then reduce.
    Tag cand[kMaxProbeWays];
    std::uint8_t cvalid[kMaxProbeWays];
    for (unsigned w = 0; w < ways; ++w) {
        const std::size_t p = pos(w, idx[w]);
        cand[w] = tags[p];
        cvalid[w] = valids[p];
    }
    const std::size_t hit = findTag(cand, cvalid, ways, tag);
    return hit == ways ? npos : pos(static_cast<unsigned>(hit), idx[hit]);
}

void
AssocDirectory::prefetchTag(Tag tag) const
{
    std::size_t idx[kMaxProbeWays];
    family->indexAll(tag, idx);
    if (setMajor) {
        const std::size_t base = idx[0] * ways;
        prefetchRead(&tags[base]);
        prefetchRead(&valids[base]);
        return;
    }
    for (unsigned w = 0; w < ways; ++w)
        prefetchRead(&tags[pos(w, idx[w])]);
}

void
AssocDirectory::access(const DirRequest &request, DirAccessContext &ctx)
{
    DirAccessOutcome &out = ctx.beginOutcome();
    ++statistics.lookups;
    ++useClock;

    std::size_t idx[kMaxProbeWays];
    family->indexAll(request.tag, idx);

    const std::size_t found = findPosWithIdx(request.tag, idx);
    if (found != npos) {
        out.hit = true;
        ++statistics.hits;
        lastUses[found] = useClock;
        updateEntryOnHit(*reps[found], request, ctx, out);
        return;
    }

    // Miss: pick a vacant candidate or evict the LRU candidate. This is
    // the set conflict the Cuckoo organization eliminates: the victim's
    // cached copies must be invalidated to keep the directory precise.
    // The first vacant way wins; otherwise the strictly-smallest lastUse
    // in way order — identical victim choice to the AoS walk.
    std::size_t victim = npos;
    if (setMajor) {
        const std::size_t base = idx[0] * ways;
        const std::size_t vacant = cdir::findVacant(&valids[base], ways);
        if (vacant != ways) {
            victim = base + vacant;
        } else {
            victim = base;
            for (unsigned w = 1; w < ways; ++w)
                if (lastUses[base + w] < lastUses[victim])
                    victim = base + w;
        }
    } else {
        for (unsigned w = 0; w < ways; ++w) {
            const std::size_t p = pos(w, idx[w]);
            if (valids[p] == 0) {
                victim = p;
                break;
            }
            if (victim == npos || lastUses[p] < lastUses[victim])
                victim = p;
        }
    }
    assert(victim != npos);

    if (valids[victim] != 0) {
        EvictedEntry &evicted = ctx.appendEviction(out);
        evicted.tag = tags[victim];
        reps[victim]->invalidationTargets(evicted.targets);
        ++statistics.forcedEvictions;
        statistics.forcedBlockInvalidations += evicted.targets.count();
        reps[victim]->clear(); // reuse the evicted entry's rep in place
    } else {
        ++occupied;
        reps[victim] = acquireRep(format);
    }

    tags[victim] = request.tag;
    reps[victim]->add(request.cache);
    valids[victim] = 1;
    lastUses[victim] = useClock;

    out.inserted = true;
    out.attempts = 1;
    ++statistics.insertions;
    statistics.insertionAttempts.add(1);
    statistics.attemptHistogram.add(1);
}

void
AssocDirectory::removeSharer(Tag tag, CacheId cache)
{
    const std::size_t p = findPosOf(tag);
    if (p == npos)
        return;
    ++statistics.sharerRemovals;
    if (reps[p]->remove(cache)) {
        valids[p] = 0;
        recycleRep(std::move(reps[p]));
        --occupied;
        ++statistics.entryFrees;
    }
}

bool
AssocDirectory::probe(Tag tag, DynamicBitset *sharers) const
{
    const std::size_t p = findPosOf(tag);
    if (p == npos)
        return false;
    if (sharers)
        reps[p]->invalidationTargets(*sharers);
    return true;
}

std::string
AssocDirectory::name() const
{
    std::ostringstream os;
    os << (hashKind == HashKind::Modulo ? "Sparse-" : "Skewed-") << ways
       << "x" << sets;
    return os.str();
}

std::unique_ptr<AssocDirectory>
makeSparseDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Modulo);
}

std::unique_ptr<AssocDirectory>
makeSkewedDirectory(std::size_t num_caches, unsigned ways, std::size_t sets,
                    SharerFormat format, std::uint64_t hash_seed)
{
    return std::make_unique<AssocDirectory>(num_caches, ways, sets, format,
                                            HashKind::Skewing, hash_seed);
}

} // namespace cdir
