/**
 * @file
 * Duplicate-Tag directory [7,16,43] (§3.1).
 *
 * Mirrors the tag arrays of every tracked private cache: a slice holds,
 * for each of its sets, one tag frame per (cache, cache-way). Because
 * the mirrored frame always exists, the organization never runs out of
 * space — but a lookup must compare *all* caches x assoc tags in the
 * set (332-wide in OpenSPARC T2), which is what makes its energy grow
 * linearly per slice and quadratically in aggregate (Fig. 4).
 *
 * A slice covers a subset of the private-cache sets (Fig. 3): with S
 * interleaved slices, slice tags are block addresses shifted right by
 * log2(S), and the slice's set count is cacheSets / S so the low tag
 * bits reproduce the cache set index exactly.
 *
 * Frames are stored structure-of-arrays: a set's caches x assoc tags
 * are one contiguous 8B-per-entry run, so the wide associative compare
 * reduces the whole set with the branchless match-mask kernel in
 * 64-frame chunks — the software analogue of the massively parallel
 * comparator bank the organization implies in hardware.
 */

#ifndef CDIR_DIRECTORY_DUPLICATE_TAG_DIRECTORY_HH
#define CDIR_DIRECTORY_DUPLICATE_TAG_DIRECTORY_HH

#include <vector>

#include "common/bit_util.hh"
#include "directory/directory.hh"

namespace cdir {

/** Duplicate-Tag directory slice (see file comment). */
class DuplicateTagDirectory : public Directory
{
  public:
    /**
     * @param num_caches  private caches mirrored.
     * @param sets        sets in this slice (cacheSets / numSlices).
     * @param cache_assoc associativity of each mirrored cache.
     */
    DuplicateTagDirectory(std::size_t num_caches, std::size_t sets,
                          unsigned cache_assoc);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    void prefetchTag(Tag tag) const override;
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override { return occupied; }
    std::size_t capacity() const override { return tags.size(); }
    std::string name() const override;

    /** Directory associativity: caches x cache ways (§3.1). */
    unsigned lookupWidth() const
    {
        return static_cast<unsigned>(caches) * cacheAssoc;
    }

    std::size_t
    memoryBytes() const override
    {
        return sizeof(*this) + tags.capacity() * sizeof(Tag) +
               valids.capacity() * sizeof(std::uint8_t) +
               lastUses.capacity() * sizeof(std::uint64_t) +
               chunkValid.capacity() * sizeof(std::uint32_t) +
               scratchHolders.heapBytes() + pooledRepBytes();
    }

  private:
    std::size_t setIndex(Tag tag) const { return tag & indexMask; }

    /** Flat index of the first frame of @p cache's region in @p set. */
    std::size_t regionBase(std::size_t set, CacheId cache) const
    {
        return (set * caches + cache) * cacheAssoc;
    }

    /**
     * Wide associative compare over one set: sets bit c of @p holders
     * for every cache with a valid frame matching @p tag.
     */
    void collectHolders(std::size_t set, Tag tag,
                        DynamicBitset &holders) const;

    /** Chunk summary slot of frame offset @p off within @p set. */
    std::size_t
    chunkIndex(std::size_t set, std::size_t off) const
    {
        return set * chunksPerSet + off / kKernelWidth;
    }

    /** Bookkeep a valid-bit transition of global frame @p index. */
    void
    noteValidChange(std::size_t index, bool now_valid)
    {
        const std::size_t width = std::size_t{caches} * cacheAssoc;
        const std::size_t set = index / width;
        std::uint32_t &count = chunkValid[chunkIndex(set, index % width)];
        if (now_valid)
            ++count;
        else
            --count;
    }

    std::size_t sets;
    unsigned cacheAssoc;
    std::size_t indexMask;
    std::size_t chunksPerSet;
    std::vector<Tag> tags;               //!< SoA tag lane
    std::vector<std::uint8_t> valids;    //!< SoA valid lane
    std::vector<std::uint64_t> lastUses; //!< SoA LRU lane
    /**
     * Per-set occupancy summary: valid-frame count of each 64-frame
     * kernel chunk, maintained at every valid-bit transition. The wide
     * compare and the existence probe skip zero-count chunks — an empty
     * region cannot match, so skipping is outcome-invariant (the
     * behavioural counters stay bit-identical; kernel_identity_test
     * pins this) while sparse sets stop paying for the full
     * caches x assoc walk.
     */
    std::vector<std::uint32_t> chunkValid;
    std::size_t occupied = 0;
    std::uint64_t useClock = 0;
    DynamicBitset scratchHolders; //!< per-access wide-compare result
};

} // namespace cdir

#endif // CDIR_DIRECTORY_DUPLICATE_TAG_DIRECTORY_HH
