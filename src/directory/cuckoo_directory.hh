/**
 * @file
 * The Cuckoo directory — the paper's primary contribution (§4).
 *
 * A directory slice organized as a d-ary Cuckoo hash table: d
 * direct-mapped ways indexed through d different hash functions
 * (skewing functions by default, §5.5). Lookup energy and latency match
 * a d-way set-associative structure, but insertion *displaces*
 * conflicting entries to their alternate ways instead of evicting them,
 * which breaks transitive set conflicts and drives forced invalidations
 * to near zero at a fraction of a Sparse directory's capacity
 * (Figs. 9 and 12).
 */

#ifndef CDIR_DIRECTORY_CUCKOO_DIRECTORY_HH
#define CDIR_DIRECTORY_CUCKOO_DIRECTORY_HH

#include <memory>
#include <vector>

#include "directory/cuckoo_table.hh"
#include "directory/directory.hh"

namespace cdir {

/** Cuckoo directory slice (see file comment). */
class CuckooDirectory : public Directory
{
  public:
    /**
     * @param num_caches   private caches tracked.
     * @param ways         cuckoo arity d (paper evaluates 3 and 4).
     * @param sets_per_way slots per way.
     * @param format       sharer-set representation per entry.
     * @param hash         indexing family (Skewing is the paper default).
     * @param max_attempts insertion bound (paper: 32).
     * @param hash_seed    seed for the Strong hash family.
     * @param bucket_slots entries per bucket (Panigrahy extension [30]).
     * @param stash_entries overflow-stash capacity (Kirsch extension
     *        [22]); 0 reproduces the paper, which discards overflow.
     */
    CuckooDirectory(std::size_t num_caches, unsigned ways,
                    std::size_t sets_per_way, SharerFormat format,
                    HashKind hash = HashKind::Skewing,
                    unsigned max_attempts = 32, std::uint64_t hash_seed = 1,
                    unsigned bucket_slots = 1, unsigned stash_entries = 0);

    void access(const DirRequest &request, DirAccessContext &ctx) override;
    void removeSharer(Tag tag, CacheId cache) override;
    void prefetchTag(Tag tag) const override { table.prefetch(tag); }
    bool probe(Tag tag, DynamicBitset *sharers = nullptr) const override;
    std::size_t validEntries() const override;
    std::size_t capacity() const override;
    std::string name() const override;

    /** Occupancy of one way (uniformity diagnostics). */
    double wayOccupancy(unsigned way) const
    {
        return table.wayOccupancy(way);
    }

    /** Entries currently parked in the overflow stash. */
    std::size_t stashSize() const { return stash.size(); }

    /** Discards absorbed by the stash instead of invalidating blocks. */
    std::uint64_t stashAbsorbed() const { return stashAbsorbs; }

    std::size_t
    memoryBytes() const override
    {
        std::size_t total =
            sizeof(*this) + pooledRepBytes() +
            table.memoryBytes([](const Rep &rep) {
                return rep ? rep->memoryBytes() : std::size_t{0};
            }) +
            stash.capacity() * sizeof(StashEntry);
        for (const auto &entry : stash)
            if (entry.rep)
                total += entry.rep->memoryBytes();
        return total;
    }

  private:
    using Rep = std::unique_ptr<SharerRep>;

    struct StashEntry
    {
        Tag tag;
        Rep rep;
    };

    /** Stash lookup; nullptr if absent. */
    StashEntry *findStash(Tag tag);

    /** Opportunistically drain one stash entry back into the table. */
    void drainStash();

    SharerFormat format;
    HashKind hashKind;
    std::unique_ptr<HashFamily> family;
    CuckooTable<Rep> table;
    unsigned stashCapacity;
    std::vector<StashEntry> stash;
    std::uint64_t stashAbsorbs = 0;
};

} // namespace cdir

#endif // CDIR_DIRECTORY_CUCKOO_DIRECTORY_HH
