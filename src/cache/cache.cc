#include "cache/cache.hh"

#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

SetAssocCache::SetAssocCache(const CacheConfig &config) : cfg(config)
{
    assert(isPowerOfTwo(cfg.numSets));
    assert(cfg.assoc >= 1 && cfg.assoc <= kKernelWidth);
    indexMask = cfg.numSets - 1;
    const std::size_t total = cfg.numSets * cfg.assoc;
    addrs.assign(total, 0);
    valids.assign(total, 0);
    dirtys.assign(total, 0);
    lastUses.assign(total, 0);
}

std::size_t
SetAssocCache::setIndex(BlockAddr addr) const
{
    return static_cast<std::size_t>(addr) & indexMask;
}

std::size_t
SetAssocCache::findFrame(BlockAddr addr) const
{
    const std::size_t base = setIndex(addr) * cfg.assoc;
    const std::size_t w =
        findTag(&addrs[base], &valids[base], cfg.assoc, addr);
    return w == cfg.assoc ? nframe : base + w;
}

CacheAccessResult
SetAssocCache::access(BlockAddr addr, bool is_write)
{
    CacheAccessResult result;
    ++useClock;

    const std::size_t f = findFrame(addr);
    if (f != nframe) {
        result.hit = true;
        if (is_write && dirtys[f] == 0) {
            result.writeHitClean = true;
            dirtys[f] = 1;
        }
        lastUses[f] = useClock;
        return result;
    }

    // Miss: pick an invalid frame or the LRU victim (first vacant way
    // wins, else the strictly-smallest lastUse in way order).
    const std::size_t base = setIndex(addr) * cfg.assoc;
    std::size_t victim = base;
    const std::size_t vacant = cdir::findVacant(&valids[base], cfg.assoc);
    if (vacant != cfg.assoc) {
        victim = base + vacant;
    } else {
        for (unsigned w = 1; w < cfg.assoc; ++w)
            if (lastUses[base + w] < lastUses[victim])
                victim = base + w;
    }

    if (valids[victim] != 0) {
        result.victim = addrs[victim];
        result.victimDirty = dirtys[victim] != 0;
    } else {
        ++resident;
    }

    addrs[victim] = addr;
    valids[victim] = 1;
    dirtys[victim] = is_write ? 1 : 0;
    lastUses[victim] = useClock;
    return result;
}

bool
SetAssocCache::contains(BlockAddr addr) const
{
    return findFrame(addr) != nframe;
}

bool
SetAssocCache::isDirty(BlockAddr addr) const
{
    const std::size_t f = findFrame(addr);
    return f != nframe && dirtys[f] != 0;
}

bool
SetAssocCache::invalidate(BlockAddr addr)
{
    const std::size_t f = findFrame(addr);
    if (f != nframe) {
        valids[f] = 0;
        dirtys[f] = 0;
        assert(resident > 0);
        --resident;
        return true;
    }
    return false;
}

void
SetAssocCache::cleanse(BlockAddr addr)
{
    const std::size_t f = findFrame(addr);
    if (f != nframe)
        dirtys[f] = 0;
}

std::vector<BlockAddr>
SetAssocCache::residentAddresses() const
{
    std::vector<BlockAddr> out;
    out.reserve(resident);
    for (std::size_t i = 0; i < addrs.size(); ++i)
        if (valids[i] != 0)
            out.push_back(addrs[i]);
    return out;
}

} // namespace cdir
