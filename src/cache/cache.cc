#include "cache/cache.hh"

#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

SetAssocCache::SetAssocCache(const CacheConfig &config) : cfg(config)
{
    assert(isPowerOfTwo(cfg.numSets));
    assert(cfg.assoc >= 1);
    indexMask = cfg.numSets - 1;
    frames.resize(cfg.numSets * cfg.assoc);
}

std::size_t
SetAssocCache::setIndex(BlockAddr addr) const
{
    return static_cast<std::size_t>(addr) & indexMask;
}

SetAssocCache::Frame *
SetAssocCache::find(BlockAddr addr)
{
    const std::size_t base = setIndex(addr) * cfg.assoc;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Frame &f = frames[base + w];
        if (f.valid && f.addr == addr)
            return &f;
    }
    return nullptr;
}

const SetAssocCache::Frame *
SetAssocCache::find(BlockAddr addr) const
{
    return const_cast<SetAssocCache *>(this)->find(addr);
}

CacheAccessResult
SetAssocCache::access(BlockAddr addr, bool is_write)
{
    CacheAccessResult result;
    ++useClock;

    if (Frame *f = find(addr)) {
        result.hit = true;
        if (is_write && !f->dirty) {
            result.writeHitClean = true;
            f->dirty = true;
        }
        f->lastUse = useClock;
        return result;
    }

    // Miss: pick an invalid frame or the LRU victim.
    const std::size_t base = setIndex(addr) * cfg.assoc;
    Frame *victim = &frames[base];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Frame &f = frames[base + w];
        if (!f.valid) {
            victim = &f;
            break;
        }
        if (f.lastUse < victim->lastUse)
            victim = &f;
    }

    if (victim->valid) {
        result.victim = victim->addr;
        result.victimDirty = victim->dirty;
    } else {
        ++resident;
    }

    victim->addr = addr;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lastUse = useClock;
    return result;
}

bool
SetAssocCache::contains(BlockAddr addr) const
{
    return find(addr) != nullptr;
}

bool
SetAssocCache::isDirty(BlockAddr addr) const
{
    const Frame *f = find(addr);
    return f != nullptr && f->dirty;
}

bool
SetAssocCache::invalidate(BlockAddr addr)
{
    if (Frame *f = find(addr)) {
        f->valid = false;
        f->dirty = false;
        assert(resident > 0);
        --resident;
        return true;
    }
    return false;
}

void
SetAssocCache::cleanse(BlockAddr addr)
{
    if (Frame *f = find(addr))
        f->dirty = false;
}

std::vector<BlockAddr>
SetAssocCache::residentAddresses() const
{
    std::vector<BlockAddr> out;
    out.reserve(resident);
    for (const Frame &f : frames)
        if (f.valid)
            out.push_back(f.addr);
    return out;
}

} // namespace cdir
