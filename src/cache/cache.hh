/**
 * @file
 * Set-associative write-back cache model.
 *
 * Functional (untimed) model used for the private L1/L2 caches and the
 * shared L2 of the CMP simulator. The directory experiments depend only
 * on which block addresses are resident in each private cache over time,
 * so the model tracks tags, coherence-relevant dirty bits, and LRU state,
 * and reports evictions so the directory can retire sharers (§5.2:
 * "dirty and clean evictions from the private caches are tracked by the
 * directory").
 */

#ifndef CDIR_CACHE_CACHE_HH
#define CDIR_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace cdir {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;                       //!< tag was resident
    bool writeHitClean = false;             //!< write upgraded a clean block
    std::optional<BlockAddr> victim;        //!< evicted block, if any
    bool victimDirty = false;               //!< eviction was a write-back
};

/** Configuration of one cache. */
struct CacheConfig
{
    std::size_t numSets = 64;     //!< must be a power of two
    unsigned assoc = 2;           //!< ways per set
    std::size_t capacityBlocks() const { return numSets * assoc; }
};

/**
 * Set-associative write-back cache with true-LRU replacement.
 *
 * Addresses are *block* addresses; the model is untimed and returns
 * hit/miss/eviction outcomes synchronously.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Perform a read or write access, allocating on miss.
     *
     * @param addr     block address.
     * @param is_write true for stores.
     * @return hit/victim outcome for the coherence layer.
     */
    CacheAccessResult access(BlockAddr addr, bool is_write);

    /** True iff @p addr is resident. */
    bool contains(BlockAddr addr) const;

    /** True iff @p addr is resident and dirty. */
    bool isDirty(BlockAddr addr) const;

    /**
     * Remove @p addr if resident (directory-forced or sharing-forced
     * invalidation).
     * @return true iff the block was resident.
     */
    bool invalidate(BlockAddr addr);

    /** Mark a resident block clean (downgrade on remote read). */
    void cleanse(BlockAddr addr);

    /** Number of resident blocks. */
    std::size_t residentBlocks() const { return resident; }

    /** Total frames. */
    std::size_t capacityBlocks() const { return cfg.capacityBlocks(); }

    /** Configuration this cache was built with. */
    const CacheConfig &config() const { return cfg; }

    /** Enumerate resident block addresses (testing/diagnostics). */
    std::vector<BlockAddr> residentAddresses() const;

    /** Estimated host bytes of the frame arrays (RAM budgeting). */
    std::size_t
    memoryBytes() const
    {
        return sizeof(*this) + addrs.capacity() * sizeof(BlockAddr) +
               valids.capacity() * sizeof(std::uint8_t) +
               dirtys.capacity() * sizeof(std::uint8_t) +
               lastUses.capacity() * sizeof(std::uint64_t);
    }

  private:
    static constexpr std::size_t nframe = ~std::size_t{0};

    std::size_t setIndex(BlockAddr addr) const;

    /** Flat frame index of @p addr, or nframe. */
    std::size_t findFrame(BlockAddr addr) const;

    CacheConfig cfg;
    std::size_t indexMask;
    // Structure-of-arrays frame storage, set-major: a set's assoc
    // candidate addresses are one contiguous run the probe kernel
    // reduces in a single pass (see common/bit_util.hh).
    std::vector<BlockAddr> addrs;        //!< SoA address lane
    std::vector<std::uint8_t> valids;    //!< SoA valid lane
    std::vector<std::uint8_t> dirtys;    //!< SoA dirty lane
    std::vector<std::uint64_t> lastUses; //!< SoA LRU lane
    std::uint64_t useClock = 0;
    std::size_t resident = 0;
};

} // namespace cdir

#endif // CDIR_CACHE_CACHE_HH
