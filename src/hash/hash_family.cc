#include "hash/hash_family.hh"

#include "hash/skewing_hash.hh"
#include "hash/strong_hash.hh"

namespace cdir {

std::unique_ptr<HashFamily>
makeHashFamily(HashKind kind, unsigned num_ways, std::size_t sets_per_way,
               std::uint64_t seed)
{
    switch (kind) {
      case HashKind::Skewing:
        return std::make_unique<SkewingHashFamily>(num_ways, sets_per_way);
      case HashKind::Strong:
        return std::make_unique<StrongHashFamily>(num_ways, sets_per_way,
                                                  seed);
      case HashKind::Modulo:
        return std::make_unique<ModuloHashFamily>(num_ways, sets_per_way);
    }
    return nullptr;
}

} // namespace cdir
