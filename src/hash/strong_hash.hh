/**
 * @file
 * Strong mixing hash family.
 *
 * §5.1 of the paper evaluates the fundamental d-ary Cuckoo behaviour with
 * "strong cryptographic functions" to avoid bias from hash selection, and
 * §5.5 compares them against the skewing family. True cryptographic
 * hashes are overkill for that purpose; a 64-bit finalizer-quality mixer
 * (SplitMix64 / MurmurHash3 finalizer) is statistically indistinguishable
 * for table indexing and is what we use, with an independent random key
 * per way.
 */

#ifndef CDIR_HASH_STRONG_HASH_HH
#define CDIR_HASH_STRONG_HASH_HH

#include <vector>

#include "hash/hash_family.hh"

namespace cdir {

/** Strong mixing hash family (see file comment). */
class StrongHashFamily : public HashFamily
{
  public:
    /**
     * @param num_ways     number of member functions.
     * @param sets_per_way codomain size; must be a power of two.
     * @param seed         seeds the per-way keys.
     */
    StrongHashFamily(unsigned num_ways, std::size_t sets_per_way,
                     std::uint64_t seed);

    unsigned numWays() const override { return ways; }
    std::size_t setsPerWay() const override { return sets; }
    std::size_t index(unsigned way, Tag tag) const override;
    void indexAll(Tag tag, std::size_t *out) const override;

    /** The shared 64-bit mixer (exposed for tests). */
    static std::uint64_t mix(std::uint64_t v);

  private:
    unsigned ways;
    std::size_t sets;
    std::uint64_t mask;
    std::vector<std::uint64_t> keys;
};

/** Modulo (low-order bits) family: every way uses the same index. */
class ModuloHashFamily : public HashFamily
{
  public:
    ModuloHashFamily(unsigned num_ways, std::size_t sets_per_way);

    unsigned numWays() const override { return ways; }
    std::size_t setsPerWay() const override { return sets; }
    std::size_t index(unsigned way, Tag tag) const override;
    void indexAll(Tag tag, std::size_t *out) const override;

  private:
    unsigned ways;
    std::size_t sets;
    std::uint64_t mask;
};

} // namespace cdir

#endif // CDIR_HASH_STRONG_HASH_HH
