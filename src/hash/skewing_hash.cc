#include "hash/skewing_hash.hh"

#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

namespace {

/**
 * Primitive-polynomial feedback masks for Galois LFSRs of width 2..24.
 * Using a primitive polynomial makes sigma a full-period bijection, the
 * property Seznec's dispersion analysis assumes. Widths beyond 24 are not
 * needed: 2^24 sets per way at 64B blocks would be a gigabyte-scale
 * directory slice.
 */
constexpr std::uint64_t feedbackTable[] = {
    0x0,      0x0,      0x3,      0x6,      0xc,       0x14,     0x30,
    0x60,     0xb8,     0x110,    0x240,    0x500,     0xe08,    0x1c80,
    0x3802,   0x6000,   0xd008,   0x12000,  0x20400,   0x72000,  0x90000,
    0x140000, 0x300000, 0x420000, 0xe10000,
};

} // namespace

SkewingHashFamily::SkewingHashFamily(unsigned num_ways,
                                     std::size_t sets_per_way)
    : ways(num_ways), sets(sets_per_way)
{
    assert(num_ways >= 1);
    assert(isPowerOfTwo(sets_per_way) && sets_per_way >= 4);
    indexBits = floorLog2(sets_per_way);
    assert(indexBits >= 2 && indexBits <= 24 &&
           "skewing family supports 4..16M sets per way");
    feedback = feedbackTable[indexBits];
}

std::uint64_t
SkewingHashFamily::sigma(std::uint64_t v) const
{
    const bool lsb = v & 1;
    v >>= 1;
    if (lsb)
        v ^= feedback;
    return v;
}

std::uint64_t
SkewingHashFamily::sigmaInv(std::uint64_t v) const
{
    // Forward step: v' = (v >> 1) ^ (v&1 ? F : 0). The feedback mask has
    // its top bit set, so the shifted-out bit is recoverable from the top
    // bit of v': set means the feedback was applied (lsb was 1).
    const std::uint64_t top = std::uint64_t{1} << (indexBits - 1);
    if (v & top)
        return (((v ^ feedback) << 1) | 1) & lowMask(indexBits);
    return (v << 1) & lowMask(indexBits);
}

std::size_t
SkewingHashFamily::index(unsigned way, Tag tag) const
{
    assert(way < ways);
    std::uint64_t a1 = extractBits(tag, 0, indexBits);
    std::uint64_t a2 = extractBits(tag, indexBits, indexBits);
    std::uint64_t a3 = extractBits(tag, 2 * indexBits, indexBits);
    // Apply way-distinct powers of the bijection to each chunk and fold.
    for (unsigned i = 0; i < way; ++i)
        a1 = sigma(a1);
    for (unsigned i = 0; i < way; ++i)
        a2 = sigmaInv(a2);
    return static_cast<std::size_t>((a1 ^ a2 ^ a3) & lowMask(indexBits));
}

void
SkewingHashFamily::indexAll(Tag tag, std::size_t *out) const
{
    // f_w = sigma^w(a1) ^ sigmaInv^w(a2) ^ a3: step the bijections once
    // per way instead of recomputing each power from scratch, so the
    // whole probe pays O(ways) LFSR steps and one virtual call.
    std::uint64_t a1 = extractBits(tag, 0, indexBits);
    std::uint64_t a2 = extractBits(tag, indexBits, indexBits);
    const std::uint64_t a3 = extractBits(tag, 2 * indexBits, indexBits);
    const std::uint64_t mask = lowMask(indexBits);
    out[0] = static_cast<std::size_t>((a1 ^ a2 ^ a3) & mask);
    for (unsigned w = 1; w < ways; ++w) {
        a1 = sigma(a1);
        a2 = sigmaInv(a2);
        out[w] = static_cast<std::size_t>((a1 ^ a2 ^ a3) & mask);
    }
}

} // namespace cdir
