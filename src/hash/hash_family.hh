/**
 * @file
 * Hash-function family interface used to index the ways of skewed and
 * Cuckoo structures.
 *
 * A d-ary Cuckoo directory indexes each of its d direct-mapped ways
 * through a *different* hash function over the block tag (§4 of the
 * paper). The family abstraction produces, for way w in [0, d), an index
 * in [0, setsPerWay).
 */

#ifndef CDIR_HASH_HASH_FAMILY_HH
#define CDIR_HASH_HASH_FAMILY_HH

#include <cstddef>
#include <memory>

#include "common/types.hh"

namespace cdir {

/**
 * Upper bound on ways a probe loop must handle; way-match masks fit in
 * one uint64_t and callers size their per-probe index scratch with it.
 */
inline constexpr unsigned kMaxProbeWays = 64;

/** Family of per-way hash functions over block tags. */
class HashFamily
{
  public:
    virtual ~HashFamily() = default;

    /** Number of member functions (ways). */
    virtual unsigned numWays() const = 0;

    /** Size of each function's codomain (sets per way). */
    virtual std::size_t setsPerWay() const = 0;

    /**
     * Index @p tag through member function @p way.
     *
     * @param way  function selector, must be < numWays().
     * @param tag  block tag to hash.
     * @return index in [0, setsPerWay()).
     */
    virtual std::size_t index(unsigned way, Tag tag) const = 0;

    /**
     * Index @p tag through *every* member function in one call:
     * out[w] = index(w, tag) for w in [0, numWays()).
     *
     * The directory probe loops call this once per lookup instead of
     * one virtual call per way; families override it to share work
     * across ways (the skewing family applies its LFSR step
     * incrementally, turning an O(ways^2) recomputation into O(ways)).
     * @p out must have room for numWays() entries.
     */
    virtual void
    indexAll(Tag tag, std::size_t *out) const
    {
        const unsigned n = numWays();
        for (unsigned w = 0; w < n; ++w)
            out[w] = index(w, tag);
    }
};

/** Which family implementation a directory should use. */
enum class HashKind
{
    /** Seznec–Bodin skewing functions (paper default, §5.5). */
    Skewing,
    /** Strong 64-bit mixing functions (paper's cryptographic stand-in). */
    Strong,
    /** Low-order index bits, identical for every way (set-associative). */
    Modulo,
};

/**
 * Create a hash family.
 *
 * @param kind         implementation to build.
 * @param num_ways     number of member functions.
 * @param sets_per_way codomain size; must be a power of two.
 * @param seed         seed for the Strong family (ignored otherwise).
 */
std::unique_ptr<HashFamily> makeHashFamily(HashKind kind, unsigned num_ways,
                                           std::size_t sets_per_way,
                                           std::uint64_t seed = 1);

} // namespace cdir

#endif // CDIR_HASH_HASH_FAMILY_HH
