#include "hash/strong_hash.hh"

#include <cassert>

#include "common/bit_util.hh"
#include "common/rng.hh"

namespace cdir {

StrongHashFamily::StrongHashFamily(unsigned num_ways,
                                   std::size_t sets_per_way,
                                   std::uint64_t seed)
    : ways(num_ways), sets(sets_per_way)
{
    assert(num_ways >= 1);
    assert(isPowerOfTwo(sets_per_way));
    mask = sets_per_way - 1;
    Rng rng(seed);
    keys.reserve(num_ways);
    for (unsigned w = 0; w < num_ways; ++w)
        keys.push_back(rng.next() | 1); // odd keys for good multiply mixing
}

std::uint64_t
StrongHashFamily::mix(std::uint64_t v)
{
    // MurmurHash3 fmix64 finalizer: full 64-bit avalanche.
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ull;
    v ^= v >> 33;
    return v;
}

std::size_t
StrongHashFamily::index(unsigned way, Tag tag) const
{
    assert(way < ways);
    return static_cast<std::size_t>(mix(tag * keys[way] + way) & mask);
}

void
StrongHashFamily::indexAll(Tag tag, std::size_t *out) const
{
    // One pass over the key table: the multiply/mix chain per way is
    // independent, so the compiler can pipeline (or vectorize) across
    // ways; one virtual call replaces numWays() of them.
    for (unsigned w = 0; w < ways; ++w)
        out[w] = static_cast<std::size_t>(mix(tag * keys[w] + w) & mask);
}

ModuloHashFamily::ModuloHashFamily(unsigned num_ways,
                                   std::size_t sets_per_way)
    : ways(num_ways), sets(sets_per_way)
{
    assert(isPowerOfTwo(sets_per_way));
    mask = sets_per_way - 1;
}

std::size_t
ModuloHashFamily::index(unsigned way, Tag tag) const
{
    assert(way < ways);
    (void)way;
    return static_cast<std::size_t>(tag & mask);
}

void
ModuloHashFamily::indexAll(Tag tag, std::size_t *out) const
{
    // Every way shares the set index: compute once, broadcast.
    const auto idx = static_cast<std::size_t>(tag & mask);
    for (unsigned w = 0; w < ways; ++w)
        out[w] = idx;
}

} // namespace cdir
