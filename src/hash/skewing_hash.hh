/**
 * @file
 * Seznec–Bodin skewing hash family.
 *
 * The paper (§5.5) uses the skewing functions of Seznec and Bodin
 * [PARLE'93], which need only a few levels of XOR logic in hardware.
 * The construction splits the tag into two n-bit chunks (n = log2(sets))
 * and combines them with powers of a bijective LFSR step sigma:
 *
 *     f_w(a1, a2) = sigma^w(a1) XOR sigma_inv^w(a2)
 *
 * sigma is one Galois-LFSR shift, a bijection on n-bit values, so each
 * f_w is a permutation-based XOR hash; distinct ways use distinct powers,
 * giving the inter-way dispersion property skewed caches rely on: two
 * tags that conflict in one way are unlikely to conflict in another.
 */

#ifndef CDIR_HASH_SKEWING_HASH_HH
#define CDIR_HASH_SKEWING_HASH_HH

#include "hash/hash_family.hh"

namespace cdir {

/** Skewing hash family (see file comment). */
class SkewingHashFamily : public HashFamily
{
  public:
    /**
     * @param num_ways     number of member functions.
     * @param sets_per_way codomain size; must be a power of two >= 2.
     */
    SkewingHashFamily(unsigned num_ways, std::size_t sets_per_way);

    unsigned numWays() const override { return ways; }
    std::size_t setsPerWay() const override { return sets; }
    std::size_t index(unsigned way, Tag tag) const override;
    void indexAll(Tag tag, std::size_t *out) const override;

  private:
    /** One Galois-LFSR step on an indexBits-wide value (bijective). */
    std::uint64_t sigma(std::uint64_t v) const;
    /** Inverse of sigma. */
    std::uint64_t sigmaInv(std::uint64_t v) const;

    unsigned ways;
    std::size_t sets;
    unsigned indexBits;
    std::uint64_t feedback; //!< LFSR feedback polynomial for this width.
};

} // namespace cdir

#endif // CDIR_HASH_SKEWING_HASH_HH
