/**
 * @file
 * Compressed word-packed sharer representation.
 *
 * Semantically a full presence-bit vector (precise, one bit per cache,
 * storageBits() == N like FullVectorRep — the hardware entry it models
 * is the same Censier & Feautrier vector [9]), but the *simulator*
 * stores only the non-zero 64-bit words of that vector as a sorted
 * (word index, word) pair list. Directory entries overwhelmingly track
 * a handful of sharers, so a 4096-cache cell pays a few pairs per entry
 * instead of 512 bytes — the RAM-budget lever that lets full-vector
 * semantics run at thousand-core scale (ROADMAP "thousand-core CMPs").
 *
 * Because precision, invalidation targets, and storage accounting all
 * match FullVectorRep exactly, every simulated statistic is
 * bit-identical between the two formats — pinned by the sharer-rep
 * equivalence suite. An empty rep owns no heap; clear() keeps the
 * high-water capacity (allocation-free protocol contract).
 */

#ifndef CDIR_SHARERS_COMPRESSED_VECTOR_HH
#define CDIR_SHARERS_COMPRESSED_VECTOR_HH

#include <cstdint>
#include <vector>

#include "sharers/sharer_rep.hh"

namespace cdir {

/** Word-packed sparse full-vector representation (see file comment). */
class CompressedVectorRep : public SharerRep
{
  public:
    explicit CompressedVectorRep(std::size_t num_caches);

    void add(CacheId cache) override;
    bool remove(CacheId cache) override;
    bool mightContain(CacheId cache) const override;
    void invalidationTargets(DynamicBitset &out) const override;
    std::size_t count() const override { return sharers; }
    bool precise() const override { return true; }
    unsigned storageBits() const override;
    std::size_t memoryBytes() const override;
    void clear() override;

    /** Number of non-zero 64-bit words currently materialized. */
    std::size_t packedWords() const { return wordIndexes.size(); }

  private:
    /** Position of @p word_index in the sorted pair list, or size(). */
    std::size_t find(std::uint32_t word_index) const;

    std::size_t numCaches;
    std::size_t sharers = 0;
    // Parallel sorted-by-index arrays (SoA, matching the directory's
    // layout idiom): wordIndexes[i] names the 64-cache span whose
    // presence bits live in words[i]. Words are never zero.
    std::vector<std::uint32_t> wordIndexes;
    std::vector<std::uint64_t> words;
};

} // namespace cdir

#endif // CDIR_SHARERS_COMPRESSED_VECTOR_HH
