/**
 * @file
 * Full bit-vector sharer representation: one presence bit per cache
 * (Censier & Feautrier [9]). Precise, but storage grows linearly with
 * the number of caches — the scalability problem §3.2 describes.
 */

#ifndef CDIR_SHARERS_FULL_VECTOR_HH
#define CDIR_SHARERS_FULL_VECTOR_HH

#include "sharers/sharer_rep.hh"

namespace cdir {

/** Full bit-vector representation (see file comment). */
class FullVectorRep : public SharerRep
{
  public:
    explicit FullVectorRep(std::size_t num_caches);

    void add(CacheId cache) override;
    bool remove(CacheId cache) override;
    bool mightContain(CacheId cache) const override;
    void invalidationTargets(DynamicBitset &out) const override;
    std::size_t count() const override { return sharers; }
    bool precise() const override { return true; }
    unsigned storageBits() const override;
    std::size_t memoryBytes() const override;
    void clear() override;

  private:
    DynamicBitset bits;
    std::size_t sharers = 0;
};

} // namespace cdir

#endif // CDIR_SHARERS_FULL_VECTOR_HH
