#include "sharers/compressed_vector.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace cdir {

CompressedVectorRep::CompressedVectorRep(std::size_t num_caches)
    : numCaches(num_caches)
{
    assert(num_caches >= 1);
}

std::size_t
CompressedVectorRep::find(std::uint32_t word_index) const
{
    const auto it = std::lower_bound(wordIndexes.begin(), wordIndexes.end(),
                                     word_index);
    if (it == wordIndexes.end() || *it != word_index)
        return wordIndexes.size();
    return static_cast<std::size_t>(it - wordIndexes.begin());
}

void
CompressedVectorRep::add(CacheId cache)
{
    assert(cache < numCaches);
    const auto wi = static_cast<std::uint32_t>(cache >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (cache & 63);
    const auto it =
        std::lower_bound(wordIndexes.begin(), wordIndexes.end(), wi);
    const auto pos = static_cast<std::size_t>(it - wordIndexes.begin());
    if (it == wordIndexes.end() || *it != wi) {
        wordIndexes.insert(it, wi);
        words.insert(words.begin() + static_cast<std::ptrdiff_t>(pos), bit);
        ++sharers;
        return;
    }
    if ((words[pos] & bit) == 0) {
        words[pos] |= bit;
        ++sharers;
    }
}

bool
CompressedVectorRep::remove(CacheId cache)
{
    assert(cache < numCaches);
    const std::size_t pos = find(static_cast<std::uint32_t>(cache >> 6));
    if (pos < words.size()) {
        const std::uint64_t bit = std::uint64_t{1} << (cache & 63);
        if ((words[pos] & bit) != 0) {
            words[pos] &= ~bit;
            --sharers;
            if (words[pos] == 0) {
                wordIndexes.erase(wordIndexes.begin() +
                                  static_cast<std::ptrdiff_t>(pos));
                words.erase(words.begin() +
                            static_cast<std::ptrdiff_t>(pos));
            }
        }
    }
    return sharers == 0;
}

bool
CompressedVectorRep::mightContain(CacheId cache) const
{
    if (cache >= numCaches)
        return false;
    const std::size_t pos = find(static_cast<std::uint32_t>(cache >> 6));
    if (pos >= words.size())
        return false;
    return (words[pos] >> (cache & 63)) & 1;
}

void
CompressedVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out.reinit(numCaches);
    for (std::size_t i = 0; i < words.size(); ++i) {
        const std::size_t base = static_cast<std::size_t>(wordIndexes[i])
                                 << 6;
        std::uint64_t word = words[i];
        while (word != 0) {
            out.set(base +
                    static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
        }
    }
}

unsigned
CompressedVectorRep::storageBits() const
{
    // The modelled hardware entry is the full presence vector; the
    // packing is purely a host-RAM optimization.
    return static_cast<unsigned>(numCaches);
}

std::size_t
CompressedVectorRep::memoryBytes() const
{
    return sizeof(*this) +
           wordIndexes.capacity() * sizeof(std::uint32_t) +
           words.capacity() * sizeof(std::uint64_t);
}

void
CompressedVectorRep::clear()
{
    wordIndexes.clear(); // keeps capacity: pooled reps stay alloc-free
    words.clear();
    sharers = 0;
}

} // namespace cdir
