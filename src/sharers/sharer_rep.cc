#include "sharers/sharer_rep.hh"

#include <cmath>

#include "common/bit_util.hh"
#include "sharers/coarse_vector.hh"
#include "sharers/full_vector.hh"
#include "sharers/hierarchical_vector.hh"

namespace cdir {

std::unique_ptr<SharerRep>
makeSharerRep(SharerFormat format, std::size_t num_caches)
{
    switch (format) {
      case SharerFormat::FullVector:
        return std::make_unique<FullVectorRep>(num_caches);
      case SharerFormat::CoarseVector:
        return std::make_unique<CoarseVectorRep>(num_caches);
      case SharerFormat::Hierarchical:
        return std::make_unique<HierarchicalVectorRep>(num_caches);
    }
    return nullptr;
}

unsigned
sharerStorageBits(SharerFormat format, std::size_t num_caches)
{
    switch (format) {
      case SharerFormat::FullVector:
        return static_cast<unsigned>(num_caches);
      case SharerFormat::CoarseVector:
        return 2 * bitsToName(num_caches);
      case SharerFormat::Hierarchical: {
        // Primary-entry cost: root vector sized one bit per cluster of
        // ~sqrt(N) caches (second-level entries live at secondary
        // locations and are charged separately by the model).
        const auto cluster = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(num_caches))));
        return static_cast<unsigned>((num_caches + cluster - 1) / cluster);
      }
    }
    return 0;
}

} // namespace cdir
