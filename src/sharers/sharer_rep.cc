#include "sharers/sharer_rep.hh"

#include "common/bit_util.hh"
#include "sharers/coarse_vector.hh"
#include "sharers/compressed_vector.hh"
#include "sharers/full_vector.hh"
#include "sharers/hierarchical_vector.hh"

namespace cdir {

std::unique_ptr<SharerRep>
makeSharerRep(SharerFormat format, std::size_t num_caches)
{
    switch (format) {
      case SharerFormat::FullVector:
        return std::make_unique<FullVectorRep>(num_caches);
      case SharerFormat::CoarseVector:
        return std::make_unique<CoarseVectorRep>(num_caches);
      case SharerFormat::Hierarchical:
        return std::make_unique<HierarchicalVectorRep>(num_caches);
      case SharerFormat::Compressed:
        return std::make_unique<CompressedVectorRep>(num_caches);
    }
    return nullptr;
}

unsigned
sharerStorageBits(SharerFormat format, std::size_t num_caches)
{
    switch (format) {
      case SharerFormat::FullVector:
      case SharerFormat::Compressed: // word-packed full vector
        return static_cast<unsigned>(num_caches);
      case SharerFormat::CoarseVector:
        return 2 * bitsToName(num_caches);
      case SharerFormat::Hierarchical: {
        // Primary-entry cost: root vector sized one bit per cluster of
        // isqrtCeil(N) caches (second-level entries live at secondary
        // locations and are charged separately by the model). Exact
        // integer math, matching HierarchicalVectorRep's geometry.
        const auto cluster =
            static_cast<std::size_t>(isqrtCeil(num_caches));
        return static_cast<unsigned>((num_caches + cluster - 1) / cluster);
      }
    }
    return 0;
}

} // namespace cdir
