#include "sharers/coarse_vector.hh"

#include <algorithm>
#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

CoarseVectorRep::CoarseVectorRep(std::size_t num_caches)
    : numCaches(num_caches)
{
    assert(num_caches >= 2);
    const unsigned ptr_bits = bitsToName(num_caches);
    budgetBits = 2 * ptr_bits;
    maxPointers = budgetBits / ptr_bits; // = 2 by construction
    numGroups = std::min<std::size_t>(budgetBits, num_caches);
    cachesPerGroup = (num_caches + numGroups - 1) / numGroups;
    groups = DynamicBitset(numGroups);
    pointers.reserve(maxPointers);
}

void
CoarseVectorRep::add(CacheId cache)
{
    assert(cache < numCaches);
    if (!coarse) {
        if (std::find(pointers.begin(), pointers.end(), cache) !=
            pointers.end()) {
            return; // already an exact sharer
        }
        if (pointers.size() < maxPointers) {
            pointers.push_back(cache);
            ++sharers;
            return;
        }
        // Overflow: reinterpret the bits as a coarse group vector.
        coarse = true;
        groups.clear();
        for (CacheId p : pointers)
            groups.set(group(p));
        pointers.clear();
    }
    if (!mightContain(cache))
        groups.set(group(cache));
    ++sharers;
}

bool
CoarseVectorRep::remove(CacheId cache)
{
    assert(cache < numCaches);
    if (!coarse) {
        auto it = std::find(pointers.begin(), pointers.end(), cache);
        if (it != pointers.end()) {
            pointers.erase(it);
            assert(sharers > 0);
            --sharers;
        }
        return sharers == 0;
    }
    // Coarse mode: the group bit must stay set (it may cover other
    // sharers), but the exact count still tracks emptiness.
    if (sharers > 0)
        --sharers;
    if (sharers == 0)
        clear();
    return sharers == 0;
}

bool
CoarseVectorRep::mightContain(CacheId cache) const
{
    if (cache >= numCaches)
        return false;
    if (!coarse) {
        return std::find(pointers.begin(), pointers.end(), cache) !=
               pointers.end();
    }
    return groups.test(group(cache));
}

void
CoarseVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out.reinit(numCaches);
    if (!coarse) {
        for (CacheId p : pointers)
            out.set(p);
        return;
    }
    groups.forEachSetBit([&](std::size_t g) {
        // Expand each coarse group with one word-masked range fill.
        const std::size_t lo = g * cachesPerGroup;
        const std::size_t hi = std::min(lo + cachesPerGroup, numCaches);
        out.setRange(lo, hi);
    });
}

void
CoarseVectorRep::clear()
{
    coarse = false;
    pointers.clear();
    groups.clear();
    sharers = 0;
}

} // namespace cdir
