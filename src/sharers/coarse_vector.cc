#include "sharers/coarse_vector.hh"

#include <algorithm>
#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

CoarseVectorRep::CoarseVectorRep(std::size_t num_caches)
    : numCaches(num_caches)
{
    assert(num_caches >= 2);
    const unsigned ptr_bits = bitsToName(num_caches);
    budgetBits = 2 * ptr_bits;
    maxPointers = budgetBits / ptr_bits; // = 2 by construction
    numGroups = std::min<std::size_t>(budgetBits, num_caches);
    cachesPerGroup = (num_caches + numGroups - 1) / numGroups;
    groups = DynamicBitset(numGroups);
    pointers.reserve(maxPointers);
}

void
CoarseVectorRep::add(CacheId cache)
{
    assert(cache < numCaches);
    // Membership check first, in *both* modes: a coarse group bit is not
    // evidence of membership (it may cover a different sharer), so the
    // exact count must come from the bookkeeping list. Without this, a
    // re-add of a cache already covered by its group bit double-counted
    // and remove() never saw the entry empty.
    if (std::find(pointers.begin(), pointers.end(), cache) !=
        pointers.end()) {
        return; // already a tracked sharer
    }
    if (!coarse && pointers.size() == maxPointers) {
        // Overflow: reinterpret the budgeted bits as a coarse group
        // vector. The pointer list lives on as exact-membership
        // bookkeeping (see the header comment; it is not charged
        // against storageBits()).
        coarse = true;
        groups.clear();
        for (CacheId p : pointers)
            groups.set(group(p));
    }
    pointers.push_back(cache);
    ++sharers;
    if (coarse)
        groups.set(group(cache));
}

bool
CoarseVectorRep::remove(CacheId cache)
{
    assert(cache < numCaches);
    auto it = std::find(pointers.begin(), pointers.end(), cache);
    if (it != pointers.end()) {
        pointers.erase(it);
        assert(sharers > 0);
        --sharers;
    }
    // Coarse mode: group bits must stay set on removal (each may cover
    // other sharers); the representation resets only when it empties.
    if (coarse && sharers == 0)
        clear();
    return sharers == 0;
}

bool
CoarseVectorRep::mightContain(CacheId cache) const
{
    if (cache >= numCaches)
        return false;
    if (!coarse) {
        return std::find(pointers.begin(), pointers.end(), cache) !=
               pointers.end();
    }
    return groups.test(group(cache));
}

void
CoarseVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out.reinit(numCaches);
    if (!coarse) {
        for (CacheId p : pointers)
            out.set(p);
        return;
    }
    groups.forEachSetBit([&](std::size_t g) {
        // Expand each coarse group with one word-masked range fill.
        const std::size_t lo = g * cachesPerGroup;
        const std::size_t hi = std::min(lo + cachesPerGroup, numCaches);
        out.setRange(lo, hi);
    });
}

std::size_t
CoarseVectorRep::memoryBytes() const
{
    return sizeof(*this) + pointers.capacity() * sizeof(CacheId) +
           groups.heapBytes();
}

void
CoarseVectorRep::clear()
{
    coarse = false;
    pointers.clear();
    groups.clear();
    sharers = 0;
}

} // namespace cdir
