#include "sharers/hierarchical_vector.hh"

#include <cassert>
#include <cmath>

namespace cdir {

HierarchicalVectorRep::HierarchicalVectorRep(std::size_t num_caches,
                                             std::size_t cluster_size)
    : numCaches(num_caches)
{
    assert(num_caches >= 1);
    if (cluster_size == 0) {
        cluster_size = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(num_caches))));
    }
    cachesPerCluster = cluster_size;
    numClusters = (num_caches + cluster_size - 1) / cluster_size;
    root = DynamicBitset(numClusters);
    // Sub-vector storage is provisioned up front and only *logically*
    // allocated/freed via the root bits: the storage-bit accounting in
    // storageBits() still charges only live sub-vectors, but add/remove
    // never touch the heap (allocation-free protocol contract).
    leaves.assign(numClusters, DynamicBitset(cachesPerCluster));
    leafCounts.assign(numClusters, 0);
}

void
HierarchicalVectorRep::add(CacheId cache)
{
    assert(cache < numCaches);
    const std::size_t cl = cluster(cache);
    root.set(cl);
    const std::size_t within = cache % cachesPerCluster;
    if (!leaves[cl].test(within)) {
        leaves[cl].set(within);
        ++leafCounts[cl];
        ++sharers;
    }
}

bool
HierarchicalVectorRep::remove(CacheId cache)
{
    assert(cache < numCaches);
    const std::size_t cl = cluster(cache);
    const std::size_t within = cache % cachesPerCluster;
    if (root.test(cl) && leaves[cl].test(within)) {
        leaves[cl].reset(within);
        --leafCounts[cl];
        --sharers;
        if (leafCounts[cl] == 0)
            root.reset(cl); // the sub-vector is logically freed
    }
    return sharers == 0;
}

bool
HierarchicalVectorRep::mightContain(CacheId cache) const
{
    if (cache >= numCaches)
        return false;
    const std::size_t cl = cluster(cache);
    return root.test(cl) && leaves[cl].test(cache % cachesPerCluster);
}

void
HierarchicalVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out.reinit(numCaches);
    root.forEachSetBit([&](std::size_t cl) {
        const std::size_t base = cl * cachesPerCluster;
        leaves[cl].forEachSetBit([&](std::size_t w) {
            const std::size_t cache = base + w;
            if (cache < numCaches)
                out.set(cache);
        });
    });
}

unsigned
HierarchicalVectorRep::storageBits() const
{
    // Root vector plus currently allocated sub-vectors. The *static*
    // provisioning cost (how many sub-vector slots a hardware directory
    // reserves) is charged by the analytical model; behaviourally we
    // report the live footprint.
    return static_cast<unsigned>(numClusters +
                                 allocatedLeaves() * cachesPerCluster);
}

void
HierarchicalVectorRep::clear()
{
    root.clear();
    for (auto &leaf : leaves)
        leaf.clear();
    leafCounts.assign(numClusters, 0);
    sharers = 0;
}

std::size_t
HierarchicalVectorRep::allocatedLeaves() const
{
    return root.count();
}

} // namespace cdir
