#include "sharers/hierarchical_vector.hh"

#include <bit>
#include <cassert>

#include "common/bit_util.hh"

namespace cdir {

HierarchicalVectorRep::HierarchicalVectorRep(std::size_t num_caches,
                                             std::size_t cluster_size)
    : numCaches(num_caches)
{
    assert(num_caches >= 1);
    if (cluster_size == 0)
        cluster_size = static_cast<std::size_t>(isqrtCeil(num_caches));
    cachesPerCluster = cluster_size;
    numClusters = (num_caches + cluster_size - 1) / cluster_size;
    wordsPerLeaf = (cachesPerCluster + 63) / 64;
    root = DynamicBitset(numClusters);
    // Leaf words are allocated lazily at first touch of a cluster and
    // packed in root-rank order (see header); an empty rep owns only
    // the root vector.
}

void
HierarchicalVectorRep::add(CacheId cache)
{
    assert(cache < numCaches);
    const std::size_t cl = cluster(cache);
    const std::size_t off = leafOffset(cl);
    if (!root.test(cl)) {
        root.set(cl);
        leafWords.insert(leafWords.begin() +
                             static_cast<std::ptrdiff_t>(off),
                         wordsPerLeaf, 0);
    }
    const std::size_t within = cache % cachesPerCluster;
    std::uint64_t &word = leafWords[off + (within >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (within & 63);
    if ((word & bit) == 0) {
        word |= bit;
        ++sharers;
    }
}

bool
HierarchicalVectorRep::remove(CacheId cache)
{
    assert(cache < numCaches);
    const std::size_t cl = cluster(cache);
    if (!root.test(cl))
        return sharers == 0;
    const std::size_t off = leafOffset(cl);
    const std::size_t within = cache % cachesPerCluster;
    std::uint64_t &word = leafWords[off + (within >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (within & 63);
    if ((word & bit) != 0) {
        word &= ~bit;
        --sharers;
        bool leaf_empty = true;
        for (std::size_t w = 0; w < wordsPerLeaf && leaf_empty; ++w)
            leaf_empty = leafWords[off + w] == 0;
        if (leaf_empty) {
            // The sub-vector is freed: unpack it from the rank order.
            const auto first = leafWords.begin() +
                               static_cast<std::ptrdiff_t>(off);
            leafWords.erase(first,
                            first + static_cast<std::ptrdiff_t>(
                                        wordsPerLeaf));
            root.reset(cl);
        }
    }
    return sharers == 0;
}

bool
HierarchicalVectorRep::mightContain(CacheId cache) const
{
    if (cache >= numCaches)
        return false;
    const std::size_t cl = cluster(cache);
    if (!root.test(cl))
        return false;
    const std::size_t off = leafOffset(cl);
    const std::size_t within = cache % cachesPerCluster;
    return (leafWords[off + (within >> 6)] >>
            (within & 63)) & 1;
}

void
HierarchicalVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out.reinit(numCaches);
    // Live leaves are stored in root-rank order, so one ascending pass
    // over the root bits walks leafWords front to back.
    std::size_t off = 0;
    root.forEachSetBit([&](std::size_t cl) {
        const std::size_t base = cl * cachesPerCluster;
        for (std::size_t w = 0; w < wordsPerLeaf; ++w) {
            std::uint64_t word = leafWords[off++];
            while (word != 0) {
                const std::size_t cache =
                    base + (w << 6) +
                    static_cast<std::size_t>(std::countr_zero(word));
                if (cache < numCaches)
                    out.set(cache);
                word &= word - 1;
            }
        }
    });
}

unsigned
HierarchicalVectorRep::storageBits() const
{
    // Root vector plus currently allocated sub-vectors. The *static*
    // provisioning cost (how many sub-vector slots a hardware directory
    // reserves) is charged by the analytical model; behaviourally we
    // report the live footprint.
    return static_cast<unsigned>(numClusters +
                                 allocatedLeaves() * cachesPerCluster);
}

std::size_t
HierarchicalVectorRep::memoryBytes() const
{
    return sizeof(*this) + root.heapBytes() +
           leafWords.capacity() * sizeof(std::uint64_t);
}

void
HierarchicalVectorRep::clear()
{
    root.clear();
    leafWords.clear(); // keeps capacity: pooled reps stay alloc-free
    sharers = 0;
}

std::size_t
HierarchicalVectorRep::allocatedLeaves() const
{
    return root.count();
}

} // namespace cdir
