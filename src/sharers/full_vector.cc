#include "sharers/full_vector.hh"

#include <cassert>

namespace cdir {

FullVectorRep::FullVectorRep(std::size_t num_caches) : bits(num_caches) {}

void
FullVectorRep::add(CacheId cache)
{
    assert(cache < bits.size());
    if (!bits.test(cache)) {
        bits.set(cache);
        ++sharers;
    }
}

bool
FullVectorRep::remove(CacheId cache)
{
    assert(cache < bits.size());
    if (bits.test(cache)) {
        bits.reset(cache);
        --sharers;
    }
    return sharers == 0;
}

bool
FullVectorRep::mightContain(CacheId cache) const
{
    return cache < bits.size() && bits.test(cache);
}

void
FullVectorRep::invalidationTargets(DynamicBitset &out) const
{
    out = bits;
}

unsigned
FullVectorRep::storageBits() const
{
    return static_cast<unsigned>(bits.size());
}

std::size_t
FullVectorRep::memoryBytes() const
{
    return sizeof(*this) + bits.heapBytes();
}

void
FullVectorRep::clear()
{
    bits.clear();
    sharers = 0;
}

} // namespace cdir
