/**
 * @file
 * Coarse / limited-pointer sharer representation.
 *
 * Matches the paper's "Sparse Coarse" entry format (§3.3): the entry
 * budgets 2*log2(#caches) bits. While the sharer count fits, the bits
 * hold exact cache pointers (log2(N) bits each, so two pointers). On
 * overflow the same bits are reinterpreted as a coarse vector (Gupta et
 * al. [17]; SGI Origin [24]) in which each bit stands for a *group* of
 * ceil(N / 2log2(N)) caches; an invalidation then targets every cache in
 * every marked group.
 *
 * Once coarse, individual removals cannot clear a group bit (another
 * sharer may map to the same group); the representation shrinks back to
 * pointer mode only when the exact count drops to the pointer capacity
 * *and* the remaining sharers are re-learnable — which hardware cannot
 * do, so we conservatively stay coarse until the entry empties.
 *
 * The pointer list doubles as exact-membership bookkeeping in coarse
 * mode (hardware keeps the exact count the paper's occupancy accounting
 * assumes — see sharer_rep.hh): membership, not the conservative group
 * bit, decides whether add()/remove() move the count, so re-adding a
 * cache already covered by its group is idempotent. The list is
 * simulator bookkeeping and is not charged against storageBits().
 */

#ifndef CDIR_SHARERS_COARSE_VECTOR_HH
#define CDIR_SHARERS_COARSE_VECTOR_HH

#include <vector>

#include "sharers/sharer_rep.hh"

namespace cdir {

/** Limited-pointer-with-coarse-fallback representation. */
class CoarseVectorRep : public SharerRep
{
  public:
    explicit CoarseVectorRep(std::size_t num_caches);

    void add(CacheId cache) override;
    bool remove(CacheId cache) override;
    bool mightContain(CacheId cache) const override;
    void invalidationTargets(DynamicBitset &out) const override;
    std::size_t count() const override { return sharers; }
    bool precise() const override { return !coarse; }
    unsigned storageBits() const override { return budgetBits; }
    std::size_t memoryBytes() const override;
    void clear() override;

    /** True iff currently in coarse (overflowed) mode. */
    bool isCoarse() const { return coarse; }

    /** Number of exact pointers the bit budget can hold. */
    unsigned pointerCapacity() const { return maxPointers; }

    /** Caches represented by one coarse-vector bit. */
    std::size_t groupSize() const { return cachesPerGroup; }

  private:
    std::size_t group(CacheId cache) const { return cache / cachesPerGroup; }

    std::size_t numCaches;
    unsigned budgetBits;     //!< 2 * log2(numCaches)
    unsigned maxPointers;    //!< exact pointers fitting in the budget
    std::size_t numGroups;   //!< coarse-vector width
    std::size_t cachesPerGroup;

    bool coarse = false;
    std::vector<CacheId> pointers;  //!< exact members (both modes)
    DynamicBitset groups;           //!< coarse mode contents
    std::size_t sharers = 0;        //!< exact count (see sharer_rep.hh)
};

} // namespace cdir

#endif // CDIR_SHARERS_COARSE_VECTOR_HH
