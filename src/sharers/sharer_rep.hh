/**
 * @file
 * Sharer-set representations stored inside directory entries.
 *
 * The paper composes the Cuckoo *organization* with existing entry
 * formats (§6: "the Cuckoo organization dictates only the organization of
 * the directory itself, not the contents of each entry"): full bit
 * vectors [9], coarse/limited-pointer vectors [17,24], and hierarchical
 * two-level vectors [44,45]. Each representation here is behavioural —
 * it answers "which caches must be invalidated" — and self-describing —
 * it reports the storage bits the analytical model charges for it.
 *
 * Imprecise representations (coarse) may return a superset of the true
 * sharers; the extra invalidations they cause are visible to the
 * simulator. All representations additionally maintain an exact sharer
 * count, mirroring hardware that frees an entry when the last sharer
 * evicts its block (§5.2); real coarse designs either keep such a count
 * or tolerate stale entries, and the paper's occupancy accounting assumes
 * the count exists.
 */

#ifndef CDIR_SHARERS_SHARER_REP_HH
#define CDIR_SHARERS_SHARER_REP_HH

#include <cstdint>
#include <memory>

#include "common/bitset.hh"
#include "common/types.hh"

namespace cdir {

class Directory;

/** Abstract sharer-set representation (see file comment). */
class SharerRep
{
  public:
    virtual ~SharerRep() = default;

    /** Record that cache @p cache holds the block. */
    virtual void add(CacheId cache) = 0;

    /**
     * Record that cache @p cache evicted the block.
     * @return true iff the entry is now empty (last sharer left).
     */
    virtual bool remove(CacheId cache) = 0;

    /** May cache @p cache hold the block? (never a false negative). */
    virtual bool mightContain(CacheId cache) const = 0;

    /**
     * Caches that must receive an invalidation: a superset of the true
     * sharers for imprecise representations.
     * @param out bitset sized to the number of caches; overwritten.
     */
    virtual void invalidationTargets(DynamicBitset &out) const = 0;

    /** Exact number of sharers (bookkeeping; see file comment). */
    virtual std::size_t count() const = 0;

    /** True iff invalidationTargets() is always exact. */
    virtual bool precise() const = 0;

    /** Storage bits this representation occupies in one entry. */
    virtual unsigned storageBits() const = 0;

    /**
     * Host-process bytes this rep object occupies (object plus owned
     * heap, counting vector *capacity* — the pools keep high-water
     * storage). This is simulator footprint accounting for the RAM
     * budgeting report, distinct from the modelled storageBits().
     */
    virtual std::size_t memoryBytes() const = 0;

    /** Drop all sharers. */
    virtual void clear() = 0;

    /** True iff no sharers. */
    bool empty() const { return count() == 0; }

  private:
    /**
     * Intrusive free-list link for Directory's per-slice rep pool: a
     * recycled rep *is* its own free-list node, so acquire/recycle are
     * two pointer moves with no side array to chase (the PR 7 profiling
     * hot spot the std::vector pool showed). Only meaningful while the
     * rep sits in the pool; always null while an entry owns the rep.
     */
    SharerRep *poolNext = nullptr;

    friend class Directory;
};

/** Available representation formats. */
enum class SharerFormat
{
    FullVector,    //!< one bit per cache (precise)
    CoarseVector,  //!< 2*log2(N) bits: limited pointers, coarse fallback
    Hierarchical,  //!< two-level bit vector (precise, cheaper storage)
    Compressed,    //!< word-packed sparse full vector (precise; lean RAM)
};

/**
 * Create a representation instance.
 *
 * @param format    which format to build.
 * @param num_caches number of private caches tracked.
 */
std::unique_ptr<SharerRep> makeSharerRep(SharerFormat format,
                                         std::size_t num_caches);

/** Storage bits per entry for @p format over @p num_caches caches. */
unsigned sharerStorageBits(SharerFormat format, std::size_t num_caches);

} // namespace cdir

#endif // CDIR_SHARERS_SHARER_REP_HH
