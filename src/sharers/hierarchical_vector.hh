/**
 * @file
 * Hierarchical two-level sharer representation.
 *
 * Models the paper's "Sparse Hierarchical" entry format [44,45]: a root
 * bit vector with one bit per *cluster* of caches, plus second-level
 * sub-vectors — one bit per cache within a cluster — allocated only for
 * clusters that actually contain sharers. The representation is precise;
 * its benefit is storage (and the cost of tag replication plus a second
 * serialized lookup, which the analytical model charges in src/model).
 *
 * The cluster size defaults to isqrtCeil(N), the square-root split that
 * minimizes root + single-leaf storage (exact integer math, so the
 * cluster geometry — and with it storageBits() and golden stats — is
 * identical on every platform and FP mode).
 *
 * Leaf storage is lazy: live leaves are packed contiguously in root-rank
 * order inside one flat word vector, so an entry with s sharers holds
 * O(root + s) words instead of numClusters x cachesPerCluster bits. At
 * 4096 caches that is the difference between 64 root bits + a few
 * 64-bit leaf words and an eagerly materialized 4096-bit matrix per
 * entry — the property that lets thousand-core cells fit in RAM.
 * clear() keeps the vector's high-water capacity, so pooled reps stay
 * allocation-free in steady state (the batched-protocol contract).
 */

#ifndef CDIR_SHARERS_HIERARCHICAL_VECTOR_HH
#define CDIR_SHARERS_HIERARCHICAL_VECTOR_HH

#include <cstdint>
#include <vector>

#include "sharers/sharer_rep.hh"

namespace cdir {

/** Two-level hierarchical bit-vector representation. */
class HierarchicalVectorRep : public SharerRep
{
  public:
    /**
     * @param num_caches   number of private caches tracked.
     * @param cluster_size caches per second-level vector; 0 selects
     *                     isqrtCeil(num_caches).
     */
    explicit HierarchicalVectorRep(std::size_t num_caches,
                                   std::size_t cluster_size = 0);

    void add(CacheId cache) override;
    bool remove(CacheId cache) override;
    bool mightContain(CacheId cache) const override;
    void invalidationTargets(DynamicBitset &out) const override;
    std::size_t count() const override { return sharers; }
    bool precise() const override { return true; }
    unsigned storageBits() const override;
    std::size_t memoryBytes() const override;
    void clear() override;

    /** Number of second-level vectors currently allocated. */
    std::size_t allocatedLeaves() const;

    /** Caches per cluster. */
    std::size_t clusterSize() const { return cachesPerCluster; }

  private:
    std::size_t cluster(CacheId cache) const
    {
        return cache / cachesPerCluster;
    }

    /** Word offset of cluster @p cl's leaf inside leafWords (rank). */
    std::size_t leafOffset(std::size_t cl) const
    {
        return root.popcountRange(0, cl) * wordsPerLeaf;
    }

    std::size_t numCaches;
    std::size_t cachesPerCluster;
    std::size_t numClusters;
    std::size_t wordsPerLeaf;

    DynamicBitset root;                    //!< one bit per cluster
    std::vector<std::uint64_t> leafWords;  //!< live leaves, root-rank order
    std::size_t sharers = 0;
};

} // namespace cdir

#endif // CDIR_SHARERS_HIERARCHICAL_VECTOR_HH
