/**
 * @file
 * Hierarchical two-level sharer representation.
 *
 * Models the paper's "Sparse Hierarchical" entry format [44,45]: a root
 * bit vector with one bit per *cluster* of caches, plus second-level
 * sub-vectors — one bit per cache within a cluster — allocated only for
 * clusters that actually contain sharers. The representation is precise;
 * its benefit is storage (and the cost of tag replication plus a second
 * serialized lookup, which the analytical model charges in src/model).
 *
 * The cluster size defaults to ceil(sqrt(N)), the square-root split that
 * minimizes root + single-leaf storage.
 */

#ifndef CDIR_SHARERS_HIERARCHICAL_VECTOR_HH
#define CDIR_SHARERS_HIERARCHICAL_VECTOR_HH

#include <vector>

#include "sharers/sharer_rep.hh"

namespace cdir {

/** Two-level hierarchical bit-vector representation. */
class HierarchicalVectorRep : public SharerRep
{
  public:
    /**
     * @param num_caches   number of private caches tracked.
     * @param cluster_size caches per second-level vector; 0 selects
     *                     ceil(sqrt(num_caches)).
     */
    explicit HierarchicalVectorRep(std::size_t num_caches,
                                   std::size_t cluster_size = 0);

    void add(CacheId cache) override;
    bool remove(CacheId cache) override;
    bool mightContain(CacheId cache) const override;
    void invalidationTargets(DynamicBitset &out) const override;
    std::size_t count() const override { return sharers; }
    bool precise() const override { return true; }
    unsigned storageBits() const override;
    void clear() override;

    /** Number of second-level vectors currently allocated. */
    std::size_t allocatedLeaves() const;

    /** Caches per cluster. */
    std::size_t clusterSize() const { return cachesPerCluster; }

  private:
    std::size_t cluster(CacheId cache) const
    {
        return cache / cachesPerCluster;
    }

    std::size_t numCaches;
    std::size_t cachesPerCluster;
    std::size_t numClusters;

    DynamicBitset root;                    //!< one bit per cluster
    std::vector<DynamicBitset> leaves;     //!< per-cluster sub-vectors
    std::vector<std::size_t> leafCounts;   //!< sharers per cluster
    std::size_t sharers = 0;
};

} // namespace cdir

#endif // CDIR_SHARERS_HIERARCHICAL_VECTOR_HH
