/**
 * @file
 * Example: directory capacity planning with the Cuckoo sizing rule and
 * the analytical cost model.
 *
 * Given a CMP geometry (cores, caches per core, cache capacity), applies
 * the paper's provisioning guidance — 50% steady-state occupancy is
 * conflict-free for 3-ary and wider tables (§5.1), achieved by 1x-2x
 * capacity depending on sharing (§5.2) — and reports the resulting
 * per-core energy/area next to a traditionally over-provisioned Sparse
 * 8x design.
 *
 *   $ ./capacity_planner [cores] [caches_per_core] [cache_kib]
 */

#include <cstdio>
#include <cstdlib>

#include "common/bit_util.hh"
#include "common/types.hh"
#include "model/directory_model.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    const std::size_t cores =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    const unsigned caches_per_core =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr,
                                                      10))
                 : 2;
    const std::size_t cache_kib =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;

    const std::size_t frames = cache_kib * 1024 / blockBytes;
    const std::size_t frames_per_slice =
        frames * caches_per_core; // one slice per core

    std::printf("CMP: %zu cores x %u caches (%zu KiB, %zu blocks each)\n",
                cores, caches_per_core, cache_kib, frames);
    std::printf("worst-case tracked blocks per slice: %zu\n\n",
                frames_per_slice);

    // Sizing rule: pick the cuckoo arity by target occupancy. 1x is safe
    // when instruction/data sharing compresses distinct tags (Fig. 8);
    // private-heavy hierarchies want 1.5x (§5.2). We plan for the
    // conservative 1.5x unless the hierarchy shares a cache per core.
    const bool shared_hierarchy = caches_per_core >= 2;
    const double provisioning = shared_hierarchy ? 1.0 : 1.5;
    const unsigned ways = shared_hierarchy ? 4 : 3;
    const auto capacity = static_cast<std::size_t>(
        provisioning * double(frames_per_slice));
    const std::size_t sets_per_way =
        std::size_t{1} << ceilLog2(capacity / ways);

    std::printf("recommended Cuckoo slice: %u ways x %zu sets "
                "(%.1fx provisioning, steady-state occupancy <= ~50%%)\n",
                ways, sets_per_way, provisioning);

    DirSystemParams params;
    params.numCores = cores;
    params.cachesPerCore = caches_per_core;
    params.framesPerCache = frames;
    params.cacheAssoc = 2;
    params.cuckooProvisioning = provisioning;
    params.cuckooWays = ways;

    const char *labels[3] = {"Cuckoo Coarse", "Sparse 8x Coarse",
                             "Duplicate-Tag"};
    const OrgModel orgs[3] = {OrgModel::CuckooCoarse,
                              OrgModel::SparseCoarse,
                              OrgModel::DuplicateTag};
    std::printf("\n%-18s %20s %22s\n", "organization",
                "energy/op (vs L2 tag)", "area/core (vs 1MB L2)");
    for (int i = 0; i < 3; ++i) {
        const auto cost = directoryCost(orgs[i], params);
        std::printf("%-18s %19.1f%% %21.2f%%\n", labels[i],
                    100.0 * cost.energyRelative,
                    100.0 * cost.areaRelative);
    }
    std::printf("\nCuckoo keeps both columns nearly flat as the core "
                "count grows (Fig. 13).\n");
    return 0;
}
