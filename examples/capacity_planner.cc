/**
 * @file
 * Example: directory capacity planning with the Cuckoo sizing rule and
 * the analytical cost model.
 *
 * Given a CMP geometry (cores, caches per core, cache capacity), applies
 * the paper's provisioning guidance — 50% steady-state occupancy is
 * conflict-free for 3-ary and wider tables (§5.1), achieved by 1x-2x
 * capacity depending on sharing (§5.2) — and reports the resulting
 * per-core energy/area next to a traditionally over-provisioned Sparse
 * 8x design. The three candidate organizations are one generic sweep
 * grid; output honours the shared --format= flag.
 *
 *   $ ./capacity_planner [cores] [caches_per_core] [cache_kib]
 */

#include <cstdio>
#include <cstdlib>

#include "common/bit_util.hh"
#include "common/types.hh"
#include "model/directory_model.hh"
#include "sim/sweep.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const std::size_t cores =
        argc > 1 && argv[1][0] != '-'
            ? std::strtoull(argv[1], nullptr, 10)
            : 64;
    const unsigned caches_per_core =
        argc > 2 && argv[2][0] != '-'
            ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
            : 2;
    const std::size_t cache_kib =
        argc > 3 && argv[3][0] != '-'
            ? std::strtoull(argv[3], nullptr, 10)
            : 64;

    const std::size_t frames = cache_kib * 1024 / blockBytes;
    const std::size_t frames_per_slice =
        frames * caches_per_core; // one slice per core

    // Sizing rule: pick the cuckoo arity by target occupancy. 1x is safe
    // when instruction/data sharing compresses distinct tags (Fig. 8);
    // private-heavy hierarchies want 1.5x (§5.2). We plan for the
    // conservative 1.5x unless the hierarchy shares a cache per core.
    const bool shared_hierarchy = caches_per_core >= 2;
    const double provisioning = shared_hierarchy ? 1.0 : 1.5;
    const unsigned ways = shared_hierarchy ? 4 : 3;
    const auto capacity = static_cast<std::size_t>(
        provisioning * double(frames_per_slice));
    const std::size_t sets_per_way =
        std::size_t{1} << ceilLog2(capacity / ways);

    Reporter report(cli.format);
    {
        char note[256];
        std::snprintf(note, sizeof note,
                      "CMP: %zu cores x %u caches (%zu KiB, %zu blocks "
                      "each); worst-case tracked blocks per slice: %zu",
                      cores, caches_per_core, cache_kib, frames,
                      frames_per_slice);
        report.note(note);
        std::snprintf(note, sizeof note,
                      "recommended Cuckoo slice: %u ways x %zu sets "
                      "(%.1fx provisioning, steady-state occupancy <= "
                      "~50%%)",
                      ways, sets_per_way, provisioning);
        report.note(note);
    }

    DirSystemParams params;
    params.numCores = cores;
    params.cachesPerCore = caches_per_core;
    params.framesPerCache = frames;
    params.cacheAssoc = 2;
    params.cuckooProvisioning = provisioning;
    params.cuckooWays = ways;

    const struct
    {
        const char *label;
        OrgModel org;
    } candidates[] = {
        {"Cuckoo Coarse", OrgModel::CuckooCoarse},
        {"Sparse 8x Coarse", OrgModel::SparseCoarse},
        {"Duplicate-Tag", OrgModel::DuplicateTag},
    };

    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());
    const auto costs = runner.map<DirCost>(
        std::size(candidates), [&](std::size_t i) {
            return directoryCost(candidates[i].org, params);
        });

    ReportTable table("capacity plan: per-core cost of the candidates",
                      {"organization", "energy/op (vs L2 tag)",
                       "area/core (vs 1MB L2)"});
    for (std::size_t i = 0; i < std::size(candidates); ++i) {
        table.addRow({cellText(candidates[i].label),
                      cellNum(100.0 * costs[i].energyRelative, "%.1f%%"),
                      cellNum(100.0 * costs[i].areaRelative, "%.2f%%")});
    }
    report.table(table);
    report.note("Cuckoo keeps both columns nearly flat as the core "
                "count grows (Fig. 13).");
    return 0;
}
