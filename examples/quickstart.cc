/**
 * @file
 * Quickstart: the Cuckoo directory public API in ~40 lines.
 *
 * Builds a 4-way, 512-set Cuckoo directory slice for a 16-cache CMP,
 * drives the three protocol operations (read miss, write upgrade,
 * eviction), and prints the statistics the paper's evaluation is built
 * on.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "directory/cuckoo_directory.hh"

using namespace cdir;

int
main()
{
    // One slice of the paper's Shared-L2 configuration: 4 ways x 512
    // sets (1x provisioning for 16 cores x 2 L1s), full bit-vector
    // sharer entries, Seznec-Bodin skewing hash functions.
    CuckooDirectory directory(/*num_caches=*/32, /*ways=*/4,
                              /*sets_per_way=*/512,
                              SharerFormat::FullVector);

    // Cache 3 read-misses on block 0x1000: a directory entry is
    // allocated and tracks the new sharer.
    auto read = directory.access(0x1000, /*cache=*/3, /*is_write=*/false);
    std::printf("read miss:  inserted=%d attempts=%u\n", read.inserted,
                read.attempts);

    // Cache 7 also reads the block: the entry gains a second sharer.
    directory.access(0x1000, 7, false);

    // Cache 3 writes the block: the directory answers with the set of
    // caches whose copies must be invalidated.
    auto write = directory.access(0x1000, 3, true);
    if (write.hadSharerInvalidations) {
        std::printf("write hit:  invalidate caches:");
        const auto &targets = write.sharerInvalidations;
        for (std::size_t c = targets.findFirst(); c < targets.size();
             c = targets.findNext(c))
            std::printf(" %zu", c);
        std::printf("\n");
    }

    // Cache 3 eventually evicts the block: the last sharer leaving
    // frees the entry for reuse.
    directory.removeSharer(0x1000, 3);
    std::printf("after evict: tracked=%s\n",
                directory.probe(0x1000) ? "yes" : "no");

    const DirectoryStats &stats = directory.stats();
    std::printf("\nstats: lookups=%llu insertions=%llu "
                "avg attempts=%.2f forced evictions=%llu\n",
                static_cast<unsigned long long>(stats.lookups),
                static_cast<unsigned long long>(stats.insertions),
                stats.insertionAttempts.mean(),
                static_cast<unsigned long long>(stats.forcedEvictions));
    std::printf("occupancy: %.4f (capacity %zu entries)\n",
                directory.occupancy(), directory.capacity());
    return 0;
}
