/**
 * @file
 * Quickstart: the Cuckoo directory public API in ~50 lines.
 *
 * Builds a 4-way, 512-set Cuckoo directory slice through the
 * DirectoryRegistry, drives the three protocol operations (read miss,
 * write upgrade, eviction) through a reusable DirAccessContext — the
 * allocation-free hot-path API — and prints the statistics the paper's
 * evaluation is built on.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "directory/registry.hh"

using namespace cdir;

int
main()
{
    // One slice of the paper's Shared-L2 configuration: 4 ways x 512
    // sets (1x provisioning for 16 cores x 2 L1s), full bit-vector
    // sharer entries, Seznec-Bodin skewing hash functions. Every
    // organization is built by name through the registry.
    DirectoryParams params;
    params.organization = "Cuckoo";
    params.numCaches = 32;
    params.ways = 4;
    params.sets = 512;
    auto directory = makeDirectory(params);

    // The caller owns the context; it is reset (not reallocated)
    // between calls, so the steady-state loop never touches the heap.
    DirAccessContext ctx = directory->makeContext();

    // Cache 3 read-misses on block 0x1000: a directory entry is
    // allocated and tracks the new sharer.
    ctx.reset();
    directory->access(DirRequest{0x1000, /*cache=*/3, /*isWrite=*/false},
                      ctx);
    std::printf("read miss:  inserted=%d attempts=%u\n",
                ctx.back().inserted, ctx.back().attempts);

    // Cache 7 also reads the block: the entry gains a second sharer.
    ctx.reset();
    directory->access(DirRequest{0x1000, 7, false}, ctx);

    // Cache 3 writes the block: the directory answers with the set of
    // caches whose copies must be invalidated.
    ctx.reset();
    directory->access(DirRequest{0x1000, 3, true}, ctx);
    const DirAccessOutcome &write = ctx.back();
    if (write.hadSharerInvalidations) {
        std::printf("write hit:  invalidate caches:");
        const DynamicBitset &targets = ctx.sharerInvalidations(write);
        for (std::size_t c = targets.findFirst(); c < targets.size();
             c = targets.findNext(c))
            std::printf(" %zu", c);
        std::printf("\n");
    }

    // Cache 3 eventually evicts the block: the last sharer leaving
    // frees the entry for reuse.
    directory->removeSharer(0x1000, 3);
    std::printf("after evict: tracked=%s\n",
                directory->probe(0x1000) ? "yes" : "no");

    const DirectoryStats &stats = directory->stats();
    std::printf("\nstats: lookups=%llu insertions=%llu "
                "avg attempts=%.2f forced evictions=%llu\n",
                static_cast<unsigned long long>(stats.lookups),
                static_cast<unsigned long long>(stats.insertions),
                stats.insertionAttempts.mean(),
                static_cast<unsigned long long>(stats.forcedEvictions));
    std::printf("occupancy: %.4f (capacity %zu entries)\n",
                directory->occupancy(), directory->capacity());
    return 0;
}
