/**
 * @file
 * Example: head-to-head comparison of directory organizations on one
 * workload — a single-workload slice of Fig. 12 plus occupancy and
 * capacity context, useful for exploring the design space. The six
 * contenders are one sweep grid run on the thread pool.
 *
 *   $ ./directory_comparison [workload] [--jobs=N] [--format=csv] ...
 */

#include <cstdio>
#include <vector>

#include "sim/sweep.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    PaperWorkload chosen = PaperWorkload::WebApache;
    if (argc > 1 && argv[1][0] != '-') {
        bool found = false;
        for (PaperWorkload w : allPaperWorkloads()) {
            if (paperWorkloadName(w) == argv[1]) {
                chosen = w;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
            return 1;
        }
    }
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"trace", "scenario", "probe-every"});

    struct Contender
    {
        const char *label;
        DirectoryParams params;
    };

    // Shared-L2 frame baseline per slice is 2048; capacities annotated.
    std::vector<Contender> contenders;
    contenders.push_back({"Sparse 8w (2x)", sparseSliceParams(8, 512)});
    contenders.push_back({"Sparse 8w (8x)", sparseSliceParams(8, 2048)});
    contenders.push_back({"Skewed 4w (2x)", skewedSliceParams(4, 1024)});
    contenders.push_back({"Cuckoo 4w (1x)", cuckooSliceParams(4, 512)});
    {
        DirectoryParams dup;
        dup.organization = "DuplicateTag";
        contenders.push_back({"Duplicate-Tag", dup});
    }
    {
        DirectoryParams tagless;
        tagless.organization = "Tagless";
        tagless.taglessBucketBits = 64;
        contenders.push_back({"Tagless", tagless});
    }

    ExperimentOptions opts;
    opts.warmupAccesses = 500'000;
    opts.measureAccesses = 500'000;

    SweepSpec spec;
    spec.options("", cli.applyOverrides(opts));
    spec.workload(paperWorkloadName(chosen),
                  paperWorkloadParams(chosen, false));
    for (const Contender &c : contenders) {
        CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
        cfg.directory = c.params;
        spec.config(c.label, cfg);
    }

    const SweepRunner runner(cli.sweep());
    const std::vector<SweepRecord> records = runner.run(spec);

    Reporter report(cli.format);
    report.note(std::string("workload: ") + paperWorkloadName(chosen) +
                ", Shared-L2 16-core CMP (Table 1)");
    ReportTable table("directory organization comparison",
                      {"organization", "entries", "occupancy",
                       "avg attempts", "forced invals"});
    for (const SweepRecord &rec : records) {
        table.addRow(
            {cellText(rec.configLabel),
             cellNum(double(rec.result.directoryCapacity), "%.0f"),
             cellNum(100.0 * rec.result.avgOccupancy, "%.1f%%"),
             cellNum(rec.result.avgInsertionAttempts),
             cellNum(100.0 * rec.result.forcedInvalidationRate,
                     "%.5f%%")});
    }
    report.table(table);
    report.note("The Cuckoo organization matches the big Sparse 8x "
                "directory's invalidation behaviour at a quarter of its "
                "capacity (Fig. 12).");
    return 0;
}
