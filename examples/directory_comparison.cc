/**
 * @file
 * Example: head-to-head comparison of directory organizations on one
 * workload — a single-workload slice of Fig. 12 plus occupancy and
 * lookup-width context, useful for exploring the design space.
 *
 *   $ ./directory_comparison [workload]   # default: Apache
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    PaperWorkload chosen = PaperWorkload::WebApache;
    if (argc > 1) {
        bool found = false;
        for (PaperWorkload w : allPaperWorkloads()) {
            if (paperWorkloadName(w) == argv[1]) {
                chosen = w;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
            return 1;
        }
    }

    struct Contender
    {
        const char *label;
        DirectoryParams params;
    };

    // Shared-L2 frame baseline per slice is 2048; capacities annotated.
    std::vector<Contender> contenders;
    contenders.push_back({"Sparse 8w (2x)", sparseSliceParams(8, 512)});
    contenders.push_back({"Sparse 8w (8x)", sparseSliceParams(8, 2048)});
    contenders.push_back({"Skewed 4w (2x)", skewedSliceParams(4, 1024)});
    contenders.push_back({"Cuckoo 4w (1x)", cuckooSliceParams(4, 512)});
    {
        DirectoryParams dup;
        dup.organization = "DuplicateTag";
        contenders.push_back({"Duplicate-Tag", dup});
    }
    {
        DirectoryParams tagless;
        tagless.organization = "Tagless";
        tagless.taglessBucketBits = 64;
        contenders.push_back({"Tagless", tagless});
    }

    const WorkloadParams workload = paperWorkloadParams(chosen, false);
    std::printf("workload: %s, Shared-L2 16-core CMP (Table 1)\n\n",
                workload.name.c_str());
    std::printf("%-16s %10s %12s %12s %14s\n", "organization", "entries",
                "occupancy", "avg attempts", "forced invals");

    for (const Contender &c : contenders) {
        CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
        cfg.directory = c.params;
        ExperimentOptions opts;
        opts.warmupAccesses = 500'000;
        opts.measureAccesses = 500'000;
        const auto res = runExperiment(cfg, workload, opts);
        std::printf("%-16s %10zu %11.1f%% %12.3f %13.5f%%\n", c.label,
                    res.directoryCapacity, 100.0 * res.avgOccupancy,
                    res.avgInsertionAttempts,
                    100.0 * res.forcedInvalidationRate);
    }
    std::printf("\nThe Cuckoo organization matches the big Sparse 8x "
                "directory's invalidation behaviour at a quarter of its "
                "capacity (Fig. 12).\n");
    return 0;
}
