/**
 * @file
 * Example: building a phased scenario programmatically and watching the
 * directory respond over time.
 *
 * Constructs a three-act schedule — steady OLTP, a migration that moves
 * half the threads across the CMP, then a producer-consumer burst —
 * runs it through a Cuckoo-directory CMP with interval telemetry on,
 * and prints the occupancy/invalidation time series. Also shows that a
 * ScenarioWorkload is an ordinary AccessSource: the same scenario is
 * recorded to a trace file and replayed bit-identically.
 *
 *   $ ./phased_scenario [--format=csv] [--shards=N]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/scenario.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    // This example runs its one hard-coded scenario (that is the
    // point); grid-flavoured flags have nothing to apply to.
    warnFlagUnused(cli, {"filter", "trace", "scenario", "probe-every"});

    // --- 1. declare the schedule ------------------------------------
    const std::size_t cores = 8;
    Scenario scenario;
    scenario.name = "example";
    scenario.numCores = cores;
    scenario.loop = false; // one pass: runs out instead of wrapping

    const WorkloadParams oltp =
        paperWorkloadParams(PaperWorkload::OltpDb2, false, cores);

    ScenarioPhase steady;
    steady.label = "steady";
    steady.accesses = 120'000;
    steady.workload = oltp;
    scenario.phases.push_back(steady);

    // Threads 0..3 migrate onto cores 4..7: their private regions are
    // re-fetched by the new cores while the directory still carries
    // entries naming the old ones.
    ScenarioPhase migrated;
    migrated.label = "migrated";
    migrated.startAccess = 120'000;
    migrated.accesses = 120'000;
    migrated.workload = oltp;
    migrated.workload.seed += 1;
    for (CoreId t = 0; t < 4; ++t)
        migrated.events.push_back(
            {ScenarioEvent::Kind::Migrate, t,
             static_cast<CoreId>(t + 4)});
    scenario.phases.push_back(migrated);

    // Core 0 produces a 256-block ring; every other core consumes it.
    ScenarioPhase burst;
    burst.label = "burst";
    burst.startAccess = 240'000;
    burst.accesses = 120'000;
    burst.workload = oltp;
    burst.workload.seed += 2;
    burst.burst.fraction = 0.5;
    burst.burst.ringBlocks = 256;
    burst.burst.producer = 0;
    scenario.phases.push_back(burst);

    scenario.validate();

    // --- 2. run it with interval telemetry --------------------------
    CmpConfig config = CmpConfig::paperConfig(CmpConfigKind::SharedL2, cores);
    config.directory = cuckooSliceParams(4, 512);

    // An experiment cell resolves scenarioSpec by preset name or file;
    // a programmatic scenario drives the system directly instead.
    CmpSystem system(config);
    system.setShards(clampedShards(1, cli.shardsRequested,
                                   ThreadPool::hardwareWorkers()));
    ScenarioWorkload source(scenario);

    const std::uint64_t interval = 30'000;
    Reporter report(cli.format);
    ReportTable table("phased scenario on " +
                          system.slice(0).name() + " (8-core Shared-L2)",
                      {"access", "phase", "occupancy", "forced invals",
                       "sharing invals"});
    std::uint64_t executed_total = 0;
    std::uint64_t prev_forced = 0, prev_sharing = 0;
    while (!source.exhausted()) {
        const std::string phase = source.currentPhaseLabel();
        const std::uint64_t executed = system.run(source, interval);
        if (executed == 0)
            break;
        executed_total += executed;
        const CmpStats &stats = system.stats();
        table.addRow(
            {cellNum(double(executed_total), "%.0f"), cellText(phase),
             cellNum(system.currentOccupancy(), "%.4f"),
             cellNum(double(stats.forcedInvalidations - prev_forced),
                     "%.0f"),
             cellNum(double(stats.sharingInvalidations - prev_sharing),
                     "%.0f")});
        prev_forced = stats.forcedInvalidations;
        prev_sharing = stats.sharingInvalidations;
    }
    report.table(table);

    // --- 3. scenarios compose with the trace pipeline ---------------
    // Record the same scenario to a compact binary trace and replay it:
    // the replayed run is bit-identical to the live one.
    const std::string trace_path = "/tmp/phased_scenario_example.ctr";
    {
        ScenarioWorkload live(scenario);
        const auto sink = makeTraceSink(trace_path, /*binary=*/true);
        TraceRecorder recorder(live, *sink);
        CmpSystem recorded(config);
        recorded.run(recorder, ~std::uint64_t{0});
        sink->close();

        CmpSystem replayed(config);
        const auto reader =
            makeTraceReader(trace_path, TraceReadOptions{cores, true});
        replayed.run(*reader, ~std::uint64_t{0});
        report.note(
            recorded.stats().cacheMisses == replayed.stats().cacheMisses &&
                    recorded.stats().forcedInvalidations ==
                        replayed.stats().forcedInvalidations
                ? "record -> replay through " + trace_path +
                      " reproduced the live run exactly"
                : "record -> replay MISMATCH (this is a bug)");
    }

    // The named presets cover the common dynamic patterns.
    std::string presets;
    for (const std::string &name : scenarioPresetNames())
        presets += (presets.empty() ? "" : ", ") + name;
    report.note("presets for --scenario= on any simulation harness: " +
                presets);
    return 0;
}
