/**
 * @file
 * Full-system example: the paper's Table 1 CMP running a Table 2
 * workload with a Cuckoo directory.
 *
 * Simulates the 16-core Shared-L2 configuration (split 64KB I/D L1s, 16
 * address-interleaved directory slices, 4x512 Cuckoo slices) executing
 * the OLTP-DB2 sharing profile, then prints a full coherence report:
 * cache behaviour, directory traffic, occupancy, insertion attempts,
 * and invalidations.
 *
 *   $ ./cmp_simulation [workload]   # DB2 Oracle Qry2 ... ocean
 */

#include <cstdio>
#include <cstring>

#include "sim/experiment.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    // Pick a workload preset by name (default: DB2).
    PaperWorkload chosen = PaperWorkload::OltpDb2;
    if (argc > 1) {
        bool found = false;
        for (PaperWorkload w : allPaperWorkloads()) {
            if (paperWorkloadName(w) == argv[1]) {
                chosen = w;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
            return 1;
        }
    }

    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.directory = cuckooSliceParams(4, 512); // §5.2 selection

    const WorkloadParams workload =
        paperWorkloadParams(chosen, /*private_l2=*/false);

    std::printf("CMP: %zu cores, %u caches/core, %zu-entry Cuckoo "
                "slices x %zu\n",
                cfg.numCores, cfg.cachesPerCore(),
                cfg.directory.totalEntries(), cfg.numSlices);
    std::printf("workload: %s (code %zu blocks, shared %zu, private "
                "%zu/core)\n\n",
                workload.name.c_str(), workload.codeBlocks,
                workload.sharedBlocks, workload.privateBlocksPerCore);

    ExperimentOptions opts;
    opts.warmupAccesses = 1'000'000;
    opts.measureAccesses = 1'000'000;
    const ExperimentResult res = runExperiment(cfg, workload, opts);

    const CmpStats &sys = res.system;
    std::printf("memory accesses : %llu\n",
                static_cast<unsigned long long>(sys.accesses));
    std::printf("L1 hit rate     : %.2f%%\n",
                100.0 * double(sys.cacheHits) / double(sys.accesses));
    std::printf("write upgrades  : %llu\n",
                static_cast<unsigned long long>(sys.writeUpgrades));
    std::printf("\ndirectory (%s, aggregated over %zu slices)\n",
                res.organization.c_str(), cfg.numSlices);
    std::printf("  lookups            : %llu\n",
                static_cast<unsigned long long>(res.directory.lookups));
    std::printf("  entry insertions   : %llu\n",
                static_cast<unsigned long long>(
                    res.directory.insertions));
    std::printf("  avg insert attempts: %.3f\n", res.avgInsertionAttempts);
    std::printf("  occupancy          : %.1f%%\n",
                100.0 * res.avgOccupancy);
    std::printf("  sharing invals     : %llu blocks\n",
                static_cast<unsigned long long>(
                    sys.sharingInvalidations));
    std::printf("  forced invals      : %llu blocks (rate %.5f%% of "
                "insertions)\n",
                static_cast<unsigned long long>(sys.forcedInvalidations),
                100.0 * res.forcedInvalidationRate);
    std::printf("\nattempt histogram (insertions needing k attempts):\n");
    for (std::size_t k = 1; k <= 8; ++k) {
        std::printf("  %zu: %6.2f%%\n", k,
                    100.0 * res.attemptHistogram.fraction(k));
    }
    return 0;
}
