/**
 * @file
 * Full-system example: the paper's Table 1 CMP running a Table 2
 * workload with a Cuckoo directory.
 *
 * Simulates the 16-core Shared-L2 configuration (split 64KB I/D L1s, 16
 * address-interleaved directory slices, 4x512 Cuckoo slices) executing
 * the OLTP-DB2 sharing profile, then prints a full coherence report:
 * cache behaviour, directory traffic, occupancy, insertion attempts,
 * and invalidations.
 *
 *   $ ./cmp_simulation [workload] [--shards=N]  # DB2 Oracle ... ocean
 *
 * --shards=N partitions the 16 directory slices across N parallel
 * execution lanes (sim/sweep.hh shared CLI); the printed report is
 * bit-identical at any value.
 */

#include <cstdio>
#include <cstring>

#include "sim/sweep.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);

    // Pick a workload preset by name (default: DB2); the positional
    // argument may appear before or after the shared flags.
    PaperWorkload chosen = PaperWorkload::OltpDb2;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0)
            continue;
        bool found = false;
        for (PaperWorkload w : allPaperWorkloads()) {
            if (paperWorkloadName(w) == argv[i]) {
                chosen = w;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[i]);
            return 1;
        }
    }

    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.directory = cuckooSliceParams(4, 512); // §5.2 selection

    const WorkloadParams workload =
        paperWorkloadParams(chosen, /*private_l2=*/false);

    // One experiment, no sweep cells: the whole thread budget belongs
    // to the shards (jobs = 1), not the sweep-level clamp.
    const unsigned lanes = clampedShards(
        1, cli.shardsRequested, ThreadPool::hardwareWorkers());

    std::printf("CMP: %zu cores, %u caches/core, %zu-entry Cuckoo "
                "slices x %zu (%u execution lane%s)\n",
                cfg.numCores, cfg.cachesPerCore(),
                cfg.directory.totalEntries(), cfg.numSlices, lanes,
                lanes == 1 ? "" : "s");
    std::printf("workload: %s (code %zu blocks, shared %zu, private "
                "%zu/core)\n\n",
                workload.name.c_str(), workload.codeBlocks,
                workload.sharedBlocks, workload.privateBlocksPerCore);

    ExperimentOptions opts;
    opts.warmupAccesses = 1'000'000;
    opts.measureAccesses = 1'000'000;
    opts.shards = lanes;
    const ExperimentResult res = runExperiment(cfg, workload, opts);

    const CmpStats &sys = res.system;
    std::printf("memory accesses : %llu\n",
                static_cast<unsigned long long>(sys.accesses));
    std::printf("L1 hit rate     : %.2f%%\n",
                100.0 * double(sys.cacheHits) / double(sys.accesses));
    std::printf("write upgrades  : %llu\n",
                static_cast<unsigned long long>(sys.writeUpgrades));
    std::printf("\ndirectory (%s, aggregated over %zu slices)\n",
                res.organization.c_str(), cfg.numSlices);
    std::printf("  lookups            : %llu\n",
                static_cast<unsigned long long>(res.directory.lookups));
    std::printf("  entry insertions   : %llu\n",
                static_cast<unsigned long long>(
                    res.directory.insertions));
    std::printf("  avg insert attempts: %.3f\n", res.avgInsertionAttempts);
    std::printf("  occupancy          : %.1f%%\n",
                100.0 * res.avgOccupancy);
    std::printf("  sharing invals     : %llu blocks\n",
                static_cast<unsigned long long>(
                    sys.sharingInvalidations));
    std::printf("  forced invals      : %llu blocks (rate %.5f%% of "
                "insertions)\n",
                static_cast<unsigned long long>(sys.forcedInvalidations),
                100.0 * res.forcedInvalidationRate);
    std::printf("\nattempt histogram (insertions needing k attempts):\n");
    for (std::size_t k = 1; k <= 8; ++k) {
        std::printf("  %zu: %6.2f%%\n", k,
                    100.0 * res.attemptHistogram.fraction(k));
    }
    return 0;
}
