/**
 * @file
 * Example: recording and replaying memory traces.
 *
 * Records a synthetic workload to a portable text trace, then replays
 * the file through a fresh CMP and verifies the two systems agree —
 * the workflow for feeding *external* traces (gem5, champsim, custom
 * pintools) into the directory experiments: convert to
 * `<core> <block-addr-hex> <r|w|i>` lines and point TraceReader at the
 * file.
 *
 *   $ ./trace_replay [path] [accesses]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/cmp_system.hh"
#include "workload/trace.hh"

using namespace cdir;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/cuckoo_directory_example.trace";
    const std::uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    // 1. Record: a DSS-like workload streamed to disk.
    const WorkloadParams params =
        paperWorkloadParams(PaperWorkload::DssQry2, false);
    {
        SyntheticWorkload generator(params);
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < accesses; ++i)
            writer.write(generator.next());
        std::printf("recorded %llu accesses of '%s' to %s\n",
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    params.name.c_str(), path.c_str());
    }

    // 2. Replay into a 16-core Shared-L2 CMP with a Cuckoo directory.
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.directory.organization = "Cuckoo";
    cfg.directory.ways = 4;
    cfg.directory.sets = 512;
    // Batched driver: per-slice accessBatch over 64-reference windows.
    // Invalidation feedback lands at batch boundaries, so counts can
    // differ slightly from batchWindow = 1 (the exact serial protocol);
    // both systems below use the same window, so they stay comparable.
    cfg.batchWindow = 64;
    std::printf("driver: batchWindow=%zu (batched accessBatch protocol; "
                "set to 1 for the exact serial driver)\n",
                cfg.batchWindow);

    CmpSystem replayed(cfg);
    TraceReader reader(path);
    const std::uint64_t executed = replayed.run(reader, accesses);

    // 3. Cross-check against driving the generator directly.
    CmpSystem direct(cfg);
    SyntheticWorkload generator(params);
    direct.run(generator, accesses);

    const auto rep = replayed.aggregateDirectoryStats();
    const auto dir = direct.aggregateDirectoryStats();
    std::printf("replayed %llu accesses: %llu directory insertions "
                "(direct run: %llu) -> %s\n",
                static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(rep.insertions),
                static_cast<unsigned long long>(dir.insertions),
                rep.insertions == dir.insertions ? "identical"
                                                 : "MISMATCH");
    std::printf("occupancy: replay %.4f vs direct %.4f\n",
                replayed.currentOccupancy(), direct.currentOccupancy());
    std::printf("malformed lines skipped: %llu\n",
                static_cast<unsigned long long>(
                    reader.malformedLines()));
    return rep.insertions == dir.insertions ? 0 : 1;
}
