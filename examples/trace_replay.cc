/**
 * @file
 * Example: the record/replay pipeline.
 *
 * Records a synthetic workload to disk in both trace formats through a
 * TraceRecorder, replays each file through a fresh CMP, and verifies
 * all three systems agree — the workflow for feeding *external* traces
 * (gem5, champsim, custom pintools) into the directory experiments:
 * convert to `<core> <block-addr-hex> <r|w|i>` lines (or the compact
 * CDTR binary format) and replay with --trace.
 *
 *   $ ./trace_replay [--trace=FILE] [path-prefix] [accesses]
 *
 * With --trace=FILE the recording step is skipped and FILE (either
 * format, sniffed) is replayed instead.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "sim/cmp_system.hh"
#include "workload/trace.hh"

using namespace cdir;

namespace {

/** CMP the example replays into (16-core Shared-L2, Cuckoo 4x512). */
CmpConfig
exampleConfig()
{
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.directory.organization = "Cuckoo";
    cfg.directory.ways = 4;
    cfg.directory.sets = 512;
    // Batched driver: per-slice accessBatch over 64-reference windows.
    // Invalidation feedback lands at batch boundaries, so counts can
    // differ slightly from batchWindow = 1 (the exact serial protocol);
    // every system in this example uses the same window, so they stay
    // comparable.
    cfg.batchWindow = 64;
    return cfg;
}

DirectoryStats
replayFile(const CmpConfig &cfg, const std::string &path,
           std::uint64_t limit)
{
    CmpSystem system(cfg);
    const std::unique_ptr<AccessSource> reader = makeTraceReader(
        path, TraceReadOptions{cfg.numCores, /*strict=*/true});
    const std::uint64_t executed = system.run(*reader, limit);
    const DirectoryStats stats = system.aggregateDirectoryStats();
    std::printf("  %-44s %llu accesses, %llu insertions\n", path.c_str(),
                static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(stats.insertions));
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string external;
    std::string prefix = "/tmp/cuckoo_directory_example";
    std::uint64_t accesses = 200000;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            external = argv[i] + 8;
        else if (positional++ == 0)
            prefix = argv[i];
        else
            accesses = std::strtoull(argv[i], nullptr, 10);
    }

    const CmpConfig cfg = exampleConfig();
    std::printf("driver: batchWindow=%zu (batched accessBatch protocol; "
                "set to 1 for the exact serial driver)\n",
                cfg.batchWindow);

    if (!external.empty()) {
        // Replay an externally recorded trace (either format).
        std::printf("replaying external trace:\n");
        replayFile(cfg, external, ~std::uint64_t{0});
        return 0;
    }

    // 1. Record: a DSS-like workload teed to disk in both formats while
    //    it drives the "live" system.
    const std::string text_path = prefix + ".trace";
    const std::string binary_path = prefix + ".ctr";
    const WorkloadParams params =
        paperWorkloadParams(PaperWorkload::DssQry2, false);
    CmpSystem live(cfg);
    {
        SyntheticSource source(params);
        const std::unique_ptr<TraceSink> text_sink =
            makeTraceSink(text_path, /*binary=*/false);
        const std::unique_ptr<TraceSink> binary_sink =
            makeTraceSink(binary_path, /*binary=*/true);
        // Recorders stack: source -> binary tee -> text tee -> system.
        TraceRecorder binary_tee(source, *binary_sink);
        TraceRecorder text_tee(binary_tee, *text_sink);
        live.run(text_tee, accesses);
        // Explicit close() surfaces buffered write failures (ENOSPC)
        // here, instead of as a baffling replay mismatch below.
        text_sink->close();
        binary_sink->close();
        std::printf("recorded %llu accesses of '%s' to %s and %s\n",
                    static_cast<unsigned long long>(
                        text_sink->recordsWritten()),
                    params.name.c_str(), text_path.c_str(),
                    binary_path.c_str());
    }

    // 2. Replay both files into fresh systems; all stats must agree
    //    with the live run exactly.
    std::printf("replaying:\n");
    const DirectoryStats from_text = replayFile(cfg, text_path, accesses);
    const DirectoryStats from_binary =
        replayFile(cfg, binary_path, accesses);
    const DirectoryStats direct = live.aggregateDirectoryStats();

    const bool identical =
        from_text.insertions == direct.insertions &&
        from_binary.insertions == direct.insertions &&
        from_text.forcedEvictions == direct.forcedEvictions &&
        from_binary.forcedEvictions == direct.forcedEvictions &&
        from_text.hits == direct.hits &&
        from_binary.hits == direct.hits;
    std::printf("live run: %llu insertions -> %s\n",
                static_cast<unsigned long long>(direct.insertions),
                identical ? "all replays identical" : "MISMATCH");
    return identical ? 0 : 1;
}
