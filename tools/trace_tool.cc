/**
 * @file
 * trace_tool — generate, inspect, replay, and convert memory traces.
 *
 *   trace_tool record <preset> <out> [options]   generate a trace from
 *                                                a Table 2 synthetic
 *                                                preset, a fleet: spec,
 *                                                or a scenario
 *   trace_tool replay <trace> [options]          run a trace through a
 *                                                CMP experiment and
 *                                                report directory stats
 *   trace_tool info <trace>                      header + record census
 *   trace_tool convert <in> <out> [--text]      re-encode text <->
 *              [--from=champsim]                 binary losslessly, or
 *                                                import external
 *                                                address-first text
 *
 * `record` writes the compact binary format by default (--text for the
 * line format); `replay` reproduces runExperiment's warmup-then-measure
 * methodology, so `record` followed by `replay` is bit-identical to the
 * live synthetic run of the same preset — the property pinned by
 * tests/trace_test.cc and the CI trace smoke step.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>

#include "model/cost_model.hh"
#include "sim/sweep.hh"
#include "workload/feedback.hh"
#include "workload/fleet.hh"
#include "workload/trace.hh"

using namespace cdir;

namespace {

int
usage(const char *error = nullptr)
{
    if (error)
        std::fprintf(stderr, "trace_tool: %s\n\n", error);
    std::fprintf(
        stderr,
        "usage:\n"
        "  trace_tool record <preset> <out> [--accesses=N] [--cores=N]\n"
        "             [--seed=N] [--private-l2] [--text]\n"
        "             [--code-blocks=N] [--shared-blocks=N]\n"
        "             [--private-blocks=N]\n"
        "      preset: a Table 2 label (DB2, Oracle, Qry2, Qry16, Qry17,\n"
        "      Apache, Zeus, em3d, ocean), 'synthetic' (defaults), a\n"
        "      'fleet:...' multi-tenant spec, a scenario preset, or a\n"
        "      scenario file. Closed-loop specs (slo-ramp:, scenarios\n"
        "      with 'until' triggers) are rejected: record runs no\n"
        "      system, so there is no feedback to steer on.\n"
        "      The --*-blocks flags shrink footprints for tiny fixture\n"
        "      traces. Default format is binary; --text writes lines.\n"
        "  trace_tool replay <trace> [--cores=N] [--private-l2]\n"
        "             [--org=NAME] [--ways=N] [--sets=N] [--warmup=N]\n"
        "             [--measure=N] [--shards=N] [--cost-model=NAME]\n"
        "             [--format=table|csv|json]\n"
        "      runExperiment over the trace: warmup (stats discarded),\n"
        "      then measure; reports the directory metrics. Defaults\n"
        "      warmup=2000000 measure=2000000 (--warmup=0 = none); a\n"
        "      trace shorter than warmup+measure simply ends early.\n"
        "      --shards partitions the directory slices across parallel\n"
        "      lanes (bit-identical results at any count).\n"
        "      --cost-model=fixed|mesh times every directory access and\n"
        "      adds latency percentile rows (p50/p99/p99.9, in cycles).\n"
        "  trace_tool info <trace>\n"
        "      format, record count, per-op and per-core census.\n"
        "  trace_tool convert <in> <out> [--text] [--from=champsim]\n"
        "             [--cores=N]\n"
        "      lossless re-encode; output is binary unless --text.\n"
        "      --from=champsim imports ChampSim-style external text\n"
        "      (one '<block-addr-hex> <core> <r|w|i>' per line; 0x\n"
        "      prefixes accepted); --cores=N rejects out-of-range core\n"
        "      ids at conversion time. Strict: a malformed input record\n"
        "      aborts the conversion with its line number.\n");
    return 2;
}

bool
parseU64(const char *value, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(value, &end, 10);
    return end != value && *end == '\0';
}

/** Sentinel for "flag not given" where 0 is a meaningful value. */
constexpr std::uint64_t kUnset = ~std::uint64_t{0};

struct CommonFlags
{
    std::uint64_t accesses = 1'000'000;
    std::uint64_t cores = 16;
    std::uint64_t seed = 0;           // 0 = preset default
    std::uint64_t warmup = kUnset;    // unset = ExperimentOptions default
    std::uint64_t measure = kUnset;
    std::uint64_t shards = 1;         // intra-experiment lanes
    std::uint64_t ways = 0;           // 0 = organization default
    std::uint64_t sets = 0;
    std::uint64_t codeBlocks = 0;     // 0 = preset footprint
    std::uint64_t sharedBlocks = 0;
    std::uint64_t privateBlocks = 0;
    bool privateL2 = false;
    bool text = false;
    std::string from;                 // convert input dialect ("" = native)
    std::string costModel;            // "" = untimed
    std::string organization = "Cuckoo";
    ReportFormat format = ReportFormat::Table;
    bool coresGiven = false;          // --cores= was on the command line
};

/**
 * Parse the subcommand's flags; @return false on a malformed value, an
 * unknown flag, or a flag that exists but does not apply to this
 * subcommand (silently swallowing e.g. `record --warmup=` would let the
 * user believe it had an effect).
 */
bool
parseFlags(int argc, char **argv, int first,
           std::initializer_list<const char *> allowed, CommonFlags &flags)
{
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        const char *name = nullptr; //!< which known flag matched
        const char *v = nullptr;
        bool ok = true;
        if ((v = cliFlagValue(arg, name = "accesses"))) {
            ok = parseU64(v, flags.accesses) && flags.accesses != 0;
        } else if ((v = cliFlagValue(arg, name = "cores"))) {
            ok = parseU64(v, flags.cores) && flags.cores != 0;
            flags.coresGiven = true;
        } else if ((v = cliFlagValue(arg, name = "seed"))) {
            ok = parseU64(v, flags.seed);
        } else if ((v = cliFlagValue(arg, name = "warmup"))) {
            ok = parseU64(v, flags.warmup);
        } else if ((v = cliFlagValue(arg, name = "measure"))) {
            ok = parseU64(v, flags.measure);
        } else if ((v = cliFlagValue(arg, name = "shards"))) {
            ok = parseU64(v, flags.shards) && flags.shards != 0;
        } else if ((v = cliFlagValue(arg, name = "ways"))) {
            ok = parseU64(v, flags.ways) && flags.ways != 0;
        } else if ((v = cliFlagValue(arg, name = "sets"))) {
            ok = parseU64(v, flags.sets) && flags.sets != 0;
        } else if ((v = cliFlagValue(arg, name = "code-blocks"))) {
            ok = parseU64(v, flags.codeBlocks) && flags.codeBlocks != 0;
        } else if ((v = cliFlagValue(arg, name = "shared-blocks"))) {
            ok = parseU64(v, flags.sharedBlocks) &&
                 flags.sharedBlocks != 0;
        } else if ((v = cliFlagValue(arg, name = "private-blocks"))) {
            ok = parseU64(v, flags.privateBlocks) &&
                 flags.privateBlocks != 0;
        } else if ((v = cliFlagValue(arg, name = "org"))) {
            flags.organization = v;
        } else if ((v = cliFlagValue(arg, name = "cost-model"))) {
            flags.costModel = v;
            ok = isCostModelName(flags.costModel);
        } else if ((v = cliFlagValue(arg, name = "from"))) {
            flags.from = v;
            ok = flags.from == "champsim" || flags.from == "native";
        } else if ((v = cliFlagValue(arg, name = "format"))) {
            if (std::strcmp(v, "table") == 0)
                flags.format = ReportFormat::Table;
            else if (std::strcmp(v, "csv") == 0)
                flags.format = ReportFormat::Csv;
            else if (std::strcmp(v, "json") == 0)
                flags.format = ReportFormat::Json;
            else
                ok = false;
        } else if (std::strcmp(arg, "--private-l2") == 0) {
            name = "private-l2";
            flags.privateL2 = true;
        } else if (std::strcmp(arg, "--text") == 0) {
            name = "text";
            flags.text = true;
        } else {
            std::fprintf(stderr, "trace_tool: unknown flag '%s'\n", arg);
            return false;
        }
        if (!ok) {
            std::fprintf(stderr, "trace_tool: bad value in '%s'\n", arg);
            return false;
        }
        const bool applies =
            std::find_if(allowed.begin(), allowed.end(),
                         [&](const char *a) {
                             return std::strcmp(a, name) == 0;
                         }) != allowed.end();
        if (!applies) {
            std::fprintf(stderr,
                         "trace_tool: --%s does not apply to the '%s' "
                         "subcommand\n",
                         name, argv[1]);
            return false;
        }
    }
    return true;
}

/** Resolve a preset label to WorkloadParams; @return false if unknown. */
bool
presetParams(const std::string &preset, const CommonFlags &flags,
             WorkloadParams &params)
{
    PaperWorkload workload{};
    if (preset == "synthetic") {
        params = WorkloadParams{};
        params.numCores = flags.cores;
    } else if (paperWorkloadByName(preset, workload)) {
        params = paperWorkloadParams(workload, flags.privateL2,
                                     flags.cores);
    } else {
        return false;
    }
    if (flags.seed != 0)
        params.seed = flags.seed;
    if (flags.codeBlocks != 0)
        params.codeBlocks = flags.codeBlocks;
    if (flags.sharedBlocks != 0)
        params.sharedBlocks = flags.sharedBlocks;
    if (flags.privateBlocks != 0)
        params.privateBlocksPerCore = flags.privateBlocks;
    return true;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4)
        return usage("record needs <preset> and <out>");
    CommonFlags flags;
    if (!parseFlags(argc, argv, 4,
                    {"accesses", "cores", "seed", "private-l2", "text",
                     "code-blocks", "shared-blocks", "private-blocks"},
                    flags))
        return usage();
    WorkloadParams params;
    std::unique_ptr<AccessSource> dynamic;
    if (!presetParams(argv[2], flags, params)) {
        // Not a Table 2 preset: try the dynamic-workload grammar
        // (fleet:/slo-ramp: specs, scenario presets, scenario files).
        try {
            dynamic = makeDynamicSource(argv[2], flags.cores);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "trace_tool: %s\n", e.what());
            return usage(
                "unknown preset (try DB2, ocean, ..., synthetic, a "
                "fleet:/slo-ramp: spec, or a scenario)");
        }
        // A closed-loop source steers on live system metrics; recording
        // runs no system, so there is nothing to feed back from and the
        // result would silently be the never-triggered schedule.
        const auto *consumer =
            dynamic_cast<const FeedbackConsumer *>(dynamic.get());
        if (consumer != nullptr && consumer->wantsFeedback()) {
            std::fprintf(
                stderr,
                "trace_tool: '%s' is a closed-loop workload — it steers "
                "on feedback probed from a live system, and record runs "
                "no system, so every trigger would silently never fire. "
                "Record the equivalent open-loop spec (e.g. 'fleet:...' "
                "without the ramp), or capture the closed-loop run "
                "in-process with TraceRecorder while a CmpSystem drives "
                "it (see tests/feedback_test.cc)\n",
                argv[2]);
            return 2;
        }
        params.name = argv[2];
        params.numCores = flags.cores;
    }

    SyntheticSource synthetic(params);
    AccessSource &source = dynamic ? *dynamic : synthetic;
    const std::unique_ptr<TraceSink> sink =
        makeTraceSink(argv[3], !flags.text);
    TraceRecorder recorder(source, *sink);
    for (std::uint64_t i = 0;
         i < flags.accesses && !recorder.exhausted(); ++i)
        recorder.next();
    sink->close();
    std::printf("recorded %llu accesses of '%s' (%zu cores, seed %llu) "
                "to %s [%s]\n",
                static_cast<unsigned long long>(sink->recordsWritten()),
                params.name.c_str(), params.numCores,
                static_cast<unsigned long long>(params.seed), argv[3],
                flags.text ? "text" : "binary");
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage("replay needs a trace file");
    CommonFlags flags;
    if (!parseFlags(argc, argv, 3,
                    {"cores", "private-l2", "org", "ways", "sets",
                     "warmup", "measure", "shards", "cost-model",
                     "format"},
                    flags))
        return usage();

    CmpConfig config = CmpConfig::paperConfig(
        flags.privateL2 ? CmpConfigKind::PrivateL2
                        : CmpConfigKind::SharedL2,
        flags.cores);
    config.directory.organization = flags.organization;
    if (flags.ways != 0)
        config.directory.ways = static_cast<unsigned>(flags.ways);
    if (flags.sets != 0)
        config.directory.sets = flags.sets;

    ExperimentOptions options;
    if (flags.warmup != kUnset)
        options.warmupAccesses = flags.warmup; // --warmup=0 is honoured
    if (flags.measure != kUnset)
        options.measureAccesses = flags.measure;
    options.shards = static_cast<unsigned>(flags.shards);
    options.costModel = flags.costModel;

    const ExperimentResult result = runExperiment(
        config, traceWorkloadParams(argv[2]), options);
    if (result.system.accesses == 0)
        std::fprintf(stderr,
                     "trace_tool: warning: the trace was exhausted "
                     "during the %llu-access warmup — nothing was "
                     "measured (shrink --warmup= or record a longer "
                     "trace)\n",
                     static_cast<unsigned long long>(
                         options.warmupAccesses));

    Reporter report(flags.format);
    ReportTable table("trace replay: " + result.workload + " through " +
                          result.organization,
                      {"metric", "value"});
    table.addRow({cellText("measured accesses"),
                  cellNum(double(result.system.accesses), "%.0f")});
    table.addRow({cellText("cache misses"),
                  cellNum(double(result.system.cacheMisses), "%.0f")});
    table.addRow({cellText("directory insertions"),
                  cellNum(double(result.directory.insertions), "%.0f")});
    table.addRow({cellText("avg insertion attempts"),
                  cellNum(result.avgInsertionAttempts, "%.3f")});
    table.addRow({cellText("forced evictions"),
                  cellNum(double(result.directory.forcedEvictions),
                          "%.0f")});
    table.addRow({cellText("forced-invalidation rate"),
                  cellPct(result.forcedInvalidationRate)});
    table.addRow({cellText("sharing invalidations"),
                  cellNum(double(result.system.sharingInvalidations),
                          "%.0f")});
    table.addRow(
        {cellText("avg occupancy"), cellNum(result.avgOccupancy, "%.4f")});
    table.addRow({cellText("directory capacity"),
                  cellNum(double(result.directoryCapacity), "%.0f")});
    if (!result.costModel.empty()) {
        const LatencyHistogram &lat = result.system.latency;
        table.addRow({cellText("latency samples (" + result.costModel +
                               " model)"),
                      cellNum(double(lat.count()), "%.0f")});
        table.addRow(
            {cellText("latency mean"), cellNum(lat.mean(), "%.2f")});
        table.addRow({cellText("latency p50"),
                      cellNum(double(result.latencyP50), "%.0f")});
        table.addRow({cellText("latency p99"),
                      cellNum(double(result.latencyP99), "%.0f")});
        table.addRow({cellText("latency p99.9"),
                      cellNum(double(result.latencyP999), "%.0f")});
        table.addRow({cellText("latency max"),
                      cellNum(double(lat.maxLatency()), "%.0f")});
    }
    report.table(table);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage("info needs a trace file");
    CommonFlags flags;
    if (!parseFlags(argc, argv, 3, {}, flags))
        return usage();
    const std::string path = argv[2];
    const bool binary = traceFileIsBinary(path);

    std::uint64_t reads = 0, writes = 0, ifetches = 0;
    CoreId max_core = 0;
    BlockAddr min_addr = ~BlockAddr{0}, max_addr = 0;
    // Concrete readers (not makeTraceReader) so the malformed-record
    // census and last error can be reported below.
    std::unique_ptr<TextTraceReader> text_reader;
    std::unique_ptr<BinaryTraceReader> binary_reader;
    AccessSource *reader = nullptr;
    if (binary) {
        binary_reader = std::make_unique<BinaryTraceReader>(path);
        reader = binary_reader.get();
    } else {
        text_reader = std::make_unique<TextTraceReader>(path);
        reader = text_reader.get();
    }
    std::uint64_t records = 0;
    while (!reader->exhausted()) {
        const MemAccess access = reader->next();
        ++records;
        if (access.instruction)
            ++ifetches;
        else if (access.write)
            ++writes;
        else
            ++reads;
        max_core = std::max(max_core, access.core);
        min_addr = std::min(min_addr, access.addr);
        max_addr = std::max(max_addr, access.addr);
    }
    const std::uint64_t malformed = binary
                                        ? binary_reader->malformedRecords()
                                        : text_reader->malformedRecords();
    const std::string &last_error =
        binary ? binary_reader->lastError() : text_reader->lastError();

    std::printf("%s: %s trace, %llu records\n", path.c_str(),
                binary ? "binary" : "text",
                static_cast<unsigned long long>(records));
    if (malformed != 0)
        std::printf("  MALFORMED %llu records skipped (last: %s)\n",
                    static_cast<unsigned long long>(malformed),
                    last_error.c_str());
    if (records == 0)
        return 0;
    std::printf("  reads    %10llu (%.1f%%)\n",
                static_cast<unsigned long long>(reads),
                100.0 * double(reads) / double(records));
    std::printf("  writes   %10llu (%.1f%%)\n",
                static_cast<unsigned long long>(writes),
                100.0 * double(writes) / double(records));
    std::printf("  ifetches %10llu (%.1f%%)\n",
                static_cast<unsigned long long>(ifetches),
                100.0 * double(ifetches) / double(records));
    std::printf("  cores    0..%u\n", max_core);
    std::printf("  blocks   %#llx..%#llx\n",
                static_cast<unsigned long long>(min_addr),
                static_cast<unsigned long long>(max_addr));
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        return usage("convert needs <in> and <out>");
    CommonFlags flags;
    if (!parseFlags(argc, argv, 4, {"text", "from", "cores"}, flags))
        return usage();

    // Strict: a malformed input record aborts the conversion instead
    // of being silently dropped from a "lossless" re-encode. Errors
    // carry the line number (text dialects) / byte offset (binary).
    const TraceReadOptions read_opts{
        flags.coresGiven ? flags.cores : 0, /*strict=*/true};
    std::unique_ptr<AccessSource> reader;
    if (flags.from == "champsim")
        reader = std::make_unique<ChampSimTraceReader>(argv[2], read_opts);
    else
        reader = makeTraceReader(argv[2], read_opts);
    const std::unique_ptr<TraceSink> sink =
        makeTraceSink(argv[3], !flags.text);
    std::uint64_t records = 0;
    while (!reader->exhausted()) {
        sink->write(reader->next());
        ++records;
    }
    sink->close();
    std::printf("converted %llu records: %s -> %s [%s]\n",
                static_cast<unsigned long long>(records), argv[2],
                argv[3], flags.text ? "text" : "binary");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "record")
            return cmdRecord(argc, argv);
        if (command == "replay")
            return cmdReplay(argc, argv);
        if (command == "info")
            return cmdInfo(argc, argv);
        if (command == "convert")
            return cmdConvert(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "trace_tool: %s\n", e.what());
        return 1;
    }
    return usage("unknown subcommand");
}
