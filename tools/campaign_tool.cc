/**
 * @file
 * Campaign CLI: run / resume / status / merge / local over a campaign
 * manifest (sim/campaign.hh).
 *
 *     campaign_tool run    --manifest=M [--shard-dir=D] [--range=A..B]
 *                          [--jobs=N] [--workers=W]
 *     campaign_tool resume ... (alias of run — runs are idempotent)
 *     campaign_tool status --manifest=M [--shard-dir=D]
 *     campaign_tool merge  --manifest=M [--shard-dir=D] [--out=FILE]
 *     campaign_tool local  --manifest=M [--jobs=N] [--out=FILE]
 *
 * `run` executes the manifest's cells in [A, B) (default: all), skipping
 * cells whose shard already exists — killing a worker and re-running the
 * same command recomputes only what is missing. `--workers=W` splits the
 * range into W contiguous chunks and forks one child process per chunk
 * (children are forked before any thread pool exists, then parallelize
 * internally with --jobs). `merge` folds the completed shards into the
 * canonical results document; `local` computes the same document
 * in-process through SweepRunner as the byte-identity reference.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/campaign.hh"

using namespace cdir;

namespace {

[[noreturn]] void
usage(const char *why)
{
    if (why != nullptr && *why != '\0')
        std::fprintf(stderr, "campaign_tool: %s\n", why);
    std::fprintf(
        stderr,
        "usage:\n"
        "  campaign_tool run    --manifest=M [--shard-dir=D] "
        "[--range=A..B] [--jobs=N] [--workers=W]\n"
        "  campaign_tool resume (alias of run)\n"
        "  campaign_tool status --manifest=M [--shard-dir=D]\n"
        "  campaign_tool merge  --manifest=M [--shard-dir=D] "
        "[--out=FILE]\n"
        "  campaign_tool local  --manifest=M [--jobs=N] [--out=FILE]\n"
        "\n"
        "  --manifest=M   campaign manifest written by a harness's\n"
        "                 --campaign-manifest= flag (required)\n"
        "  --shard-dir=D  result shard directory (default: M.shards)\n"
        "  --range=A..B   run cells [A, B) of the manifest (default: "
        "all)\n"
        "  --jobs=N       worker threads per process (0 = hardware; "
        "default 1)\n"
        "  --workers=W    fork W child processes over disjoint "
        "sub-ranges\n"
        "  --out=FILE     write the results document to FILE "
        "atomically\n"
        "                 (default: stdout)\n");
    std::exit(2);
}

std::uint64_t
parseU64(const char *value, const char *arg)
{
    char *end = nullptr;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        usage(arg);
    return parsed;
}

struct Cli
{
    std::string command;
    std::string manifestPath;
    std::string shardDir;
    std::string outPath;
    std::size_t rangeBegin = 0;
    std::size_t rangeEnd = 0; //!< 0 with rangeBegin==0 means "all"
    bool rangeSet = false;
    unsigned jobs = 1;
    unsigned workers = 0;
};

Cli
parseCli(int argc, char **argv)
{
    if (argc < 2)
        usage("missing subcommand");
    Cli cli;
    cli.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        if (const char *v = cliFlagValue(argv[i], "manifest")) {
            cli.manifestPath = v;
        } else if (const char *v = cliFlagValue(argv[i], "shard-dir")) {
            cli.shardDir = v;
        } else if (const char *v = cliFlagValue(argv[i], "out")) {
            cli.outPath = v;
        } else if (const char *v = cliFlagValue(argv[i], "jobs")) {
            cli.jobs = static_cast<unsigned>(parseU64(v, argv[i]));
        } else if (const char *v = cliFlagValue(argv[i], "workers")) {
            cli.workers = static_cast<unsigned>(parseU64(v, argv[i]));
        } else if (const char *v = cliFlagValue(argv[i], "range")) {
            const char *dots = std::strstr(v, "..");
            if (dots == nullptr)
                usage(argv[i]);
            const std::string a(v, dots);
            cli.rangeBegin = parseU64(a.c_str(), argv[i]);
            cli.rangeEnd = parseU64(dots + 2, argv[i]);
            if (cli.rangeEnd < cli.rangeBegin)
                usage(argv[i]);
            cli.rangeSet = true;
        } else {
            usage(argv[i]);
        }
    }
    if (cli.manifestPath.empty())
        usage("--manifest= is required");
    if (cli.shardDir.empty())
        cli.shardDir = campaignShardDir(cli.manifestPath);
    return cli;
}

void
emitResults(const Cli &cli, const std::string &doc)
{
    if (cli.outPath.empty()) {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return;
    }
    // Reuse the shard discipline for the merged document: no reader
    // ever sees a torn results file.
    const std::string tmp =
        cli.outPath + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
        std::fclose(f) != 0 ||
        std::rename(tmp.c_str(), cli.outPath.c_str()) != 0) {
        if (f != nullptr)
            std::remove(tmp.c_str());
        std::fprintf(stderr, "campaign_tool: cannot write %s\n",
                     cli.outPath.c_str());
        std::exit(1);
    }
}

int
runRange(const CampaignManifest &manifest, const Cli &cli,
         std::size_t begin, std::size_t end)
{
    const CampaignRunReport report =
        runCampaignCells(manifest, cli.shardDir, begin, end, cli.jobs);
    std::fprintf(stderr,
                 "campaign_tool: cells %zu..%zu: %zu ran, %zu already "
                 "done, %zu failed\n",
                 begin, end, report.ran, report.skipped, report.failed);
    return report.failed == 0 ? 0 : 1;
}

int
cmdRun(const CampaignManifest &manifest, const Cli &cli)
{
    const std::size_t begin = cli.rangeSet ? cli.rangeBegin : 0;
    const std::size_t end =
        cli.rangeSet ? std::min(cli.rangeEnd, manifest.cells.size())
                     : manifest.cells.size();
    if (begin > manifest.cells.size())
        usage("--range begins past the end of the manifest");

    if (cli.workers <= 1)
        return runRange(manifest, cli, begin, end);

    // Fork the workers *before* any thread pool exists in this
    // process (nothing above spins one up), so every child starts with
    // clean single-threaded state; each child then parallelizes
    // internally with --jobs. Contiguous chunks keep each worker's
    // shard writes clustered, and runCampaignCells's stale-tmp sweep
    // only ever touches its own range's cells.
    const std::size_t count = end - begin;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(cli.workers, std::max<std::size_t>(count, 1)));
    std::vector<pid_t> children;
    for (unsigned wk = 0; wk < workers; ++wk) {
        const std::size_t wbegin = begin + count * wk / workers;
        const std::size_t wend = begin + count * (wk + 1) / workers;
        if (wbegin == wend)
            continue;
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "campaign_tool: fork failed\n");
            return 1;
        }
        if (pid == 0) {
            int status = 1;
            try {
                status = runRange(manifest, cli, wbegin, wend);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "campaign_tool: %s\n", e.what());
            }
            ::_exit(status);
        }
        children.push_back(pid);
    }

    int exit_code = 0;
    for (const pid_t pid : children) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0)
            exit_code = 1;
    }
    const CampaignStatus status =
        campaignStatus(manifest, cli.shardDir);
    std::fprintf(stderr, "campaign_tool: %zu/%zu cells complete\n",
                 status.done, status.total);
    return exit_code;
}

int
cmdStatus(const CampaignManifest &manifest, const Cli &cli)
{
    const CampaignStatus status =
        campaignStatus(manifest, cli.shardDir);
    std::printf("campaign: %s\ncells: %zu\ndone: %zu\nmissing: %zu\n",
                manifest.tool.c_str(), status.total, status.done,
                status.missing.size());
    // Compress the missing list into ranges so a 10k-cell campaign
    // with one hole prints one line, ready to paste into --range=.
    std::size_t i = 0;
    while (i < status.missing.size()) {
        std::size_t j = i;
        while (j + 1 < status.missing.size() &&
               status.missing[j + 1] == status.missing[j] + 1)
            ++j;
        std::printf("  missing range: %zu..%zu\n", status.missing[i],
                    status.missing[j] + 1);
        i = j + 1;
    }
    return status.missing.empty() ? 0 : 1;
}

int
cmdMerge(const CampaignManifest &manifest, const Cli &cli)
{
    const std::vector<std::vector<SweepRecord>> groups =
        mergeCampaignShards(manifest, cli.shardDir);
    emitResults(cli, campaignResultsToJson(manifest, groups));
    return 0;
}

int
cmdLocal(const CampaignManifest &manifest, const Cli &cli)
{
    const SweepRunner runner(SweepOptions{cli.jobs, ""});
    const std::vector<std::vector<SweepRecord>> groups =
        runCampaignInProcess(manifest, runner);
    emitResults(cli, campaignResultsToJson(manifest, groups));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli = parseCli(argc, argv);
    try {
        const CampaignManifest manifest =
            readCampaignManifest(cli.manifestPath);
        if (cli.command == "run" || cli.command == "resume")
            return cmdRun(manifest, cli);
        if (cli.command == "status")
            return cmdStatus(manifest, cli);
        if (cli.command == "merge")
            return cmdMerge(manifest, cli);
        if (cli.command == "local")
            return cmdLocal(manifest, cli);
        usage(("unknown subcommand '" + cli.command + "'").c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "campaign_tool: %s\n", e.what());
        return 1;
    }
}
