#!/bin/sh
# Perf-trajectory snapshot: one JSON file per PR recording both the
# micro (directory-operation) and end-to-end (accesses/sec) throughput
# of this commit, so performance regressions are visible as a series
# across the repository's history instead of anecdotes.
#
#   tools/perf_trajectory.sh <build-dir> <output.json> [label]
#
# e.g.  tools/perf_trajectory.sh build BENCH_6.json pr6
#
# The micro side runs a narrow, fast google-benchmark filter (the
# allocation-free churn paths for the headline organizations); the
# end-to-end side runs bench/end_to_end_rate, whose legs include the
# multi-tenant fleet generator (Cuckoo/fleet), so generator-side
# regressions are part of the committed series. Output is assembled with
# plain shell so the script has no dependencies beyond the build tree.
# Wall-clock numbers are runner-dependent: compare files produced on
# the same machine class (the CI step pins one runner type).
set -eu

build=${1:?usage: perf_trajectory.sh <build-dir> <output.json> [label]}
out=${2:?usage: perf_trajectory.sh <build-dir> <output.json> [label]}
label=${3:-dev}

for bin in micro_directory_ops end_to_end_rate ext_scalability_sim; do
    if [ ! -x "$build/$bin" ]; then
        echo "perf_trajectory.sh: $build/$bin not built" >&2
        exit 1
    fi
done

micro_json=$(mktemp)
e2e_json=$(mktemp)
scal_json=$(mktemp)
trap 'rm -f "$micro_json" "$e2e_json" "$scal_json"' EXIT

"$build/micro_directory_ops" \
    --benchmark_filter='BM_ContextAccessChurn/(Cuckoo|Sparse)|BM_AccessBatch/Cuckoo' \
    --benchmark_format=json >"$micro_json"

"$build/end_to_end_rate" --accesses=500000 >"$e2e_json"

# Thousand-core leg: the 256-core tier of the empirical Fig. 4
# companion, Cuckoo + Sparse rows only (a few seconds). The wall_s /
# peak_rss_mb tail columns make per-commit simulation cost at scale a
# visible series, not just the small-CMP end-to-end rate above.
"$build/ext_scalability_sim" --max-cores=256 --filter=Cuckoo,Sparse \
    --format=json >"$scal_json"

{
    printf '{\n"label": "%s",\n"micro": ' "$label"
    cat "$micro_json"
    printf ',\n"end_to_end": '
    cat "$e2e_json"
    printf ',\n"scalability_256": '
    cat "$scal_json"
    printf '}\n'
} >"$out"

echo "perf_trajectory.sh: wrote $out" >&2
