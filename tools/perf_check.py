#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh perf-trajectory JSON against the
committed baseline.

    tools/perf_check.py <baseline.json> <fresh.json> [--max-regression=0.25]

Both files are tools/perf_trajectory.sh outputs. Every end-to-end run
present in both files is compared on accesses_per_sec; the check fails
if any run's fresh rate falls below (1 - max_regression) x baseline.
Only the end-to-end rates gate: the micro benchmarks are too narrow and
too noisy on shared runners to be a hard threshold, and the end-to-end
figure is the number the paper reproduction actually advertises.

Wall-clock rates are runner-dependent; the threshold is deliberately
loose (25% by default) so it catches real regressions — an accidental
scalar fallback, a layout revert — without flaking on runner noise.
"""

import json
import sys


def endToEndRates(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        run["name"]: float(run["accesses_per_sec"])
        for run in doc["end_to_end"]["runs"]
    }


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regression = 0.25
    for a in argv[1:]:
        if not a.startswith("--"):
            continue
        if a.startswith("--max-regression="):
            max_regression = float(a.split("=", 1)[1])
        else:
            # A typo like --max-regresion=0.1 must not silently run the
            # gate at the default threshold and report success.
            print(f"perf_check: unknown flag: {a}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline = endToEndRates(args[0])
    fresh = endToEndRates(args[1])
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("perf_check: no common end-to-end runs", file=sys.stderr)
        return 2

    floor = 1.0 - max_regression
    failed = False
    for name in shared:
        ratio = fresh[name] / baseline[name]
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"perf_check: {name}: baseline {baseline[name]:,.0f} "
            f"fresh {fresh[name]:,.0f} acc/s ({ratio:.2f}x) {verdict}"
        )
        failed = failed or ratio < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
