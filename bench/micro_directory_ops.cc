/**
 * @file
 * google-benchmark microbenchmarks: lookup/insert/remove throughput of
 * every registered directory organization at a realistic steady-state
 * occupancy, plus the allocation story of the access protocol.
 *
 * Not a paper figure — a software-performance sanity check that the
 * constant-time claims of the Cuckoo organization hold in this
 * implementation, and the proof of the allocation-free redesign:
 *
 *  - BM_SnapshotAccessChurn reproduces the removed value-returning
 *    access() shim's cost — an owning DirAccessResult snapshot taken
 *    after every request ("before");
 *  - BM_ContextAccessChurn drives the same stream through a reusable
 *    DirAccessContext ("after");
 *  - BM_AccessBatch drives whole DirRequest spans through accessBatch.
 *
 * Each reports an `allocs/op` counter from a global operator-new hook;
 * after warmup the context/batch paths must report 0.00 while the
 * snapshot path pays for its owning copy on every call.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/alloc_counter.hh"
#include "common/rng.hh"
#include "directory/registry.hh"

namespace {

using namespace cdir;

constexpr std::size_t kCaches = 32;

std::unique_ptr<Directory>
build(const std::string &organization)
{
    DirectoryParams p;
    p.organization = organization;
    p.numCaches = kCaches;
    if (organization == "Cuckoo" || organization == "Skewed" ||
        organization == "Elbow") {
        p.ways = 4;
        p.sets = 2048;
    } else if (organization == "Sparse") {
        p.ways = 8;
        p.sets = 1024;
    } else if (organization == "InCache") {
        p.ways = 16;
        p.sets = 512;
    } else {
        // DuplicateTag / Tagless mirror small cache sets.
        p.sets = 128;
        p.trackedCacheAssoc = 2;
        p.taglessBucketBits = 64;
    }
    return makeDirectory(p);
}

void
warm(Directory &dir, DirAccessContext &ctx, std::vector<Tag> &live,
     std::size_t count)
{
    Rng rng(5);
    while (live.size() < count) {
        const Tag tag = rng.next() >> 8;
        if (dir.probe(tag))
            continue;
        ctx.reset();
        dir.access(DirRequest{tag, static_cast<CacheId>(live.size() %
                                                        kCaches),
                              false},
                   ctx);
        live.push_back(tag);
    }
}

void
BM_Probe(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir->probe(live[i++ % live.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/** Before: every access pays for an owning DirAccessResult snapshot —
 *  the exact cost profile of the removed value-returning shim (reused
 *  scratch context, owning copy of each outcome). */
void
BM_SnapshotAccessChurn(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    auto access_snapshot = [&](Tag tag, CacheId cache, bool is_write) {
        ctx.reset();
        dir->access(DirRequest{tag, cache, is_write}, ctx);
        return ctx.snapshot(0);
    };
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        // retire one, insert one with a sharer and a write upgrade:
        // steady-state occupancy with invalidation traffic.
        const std::size_t k = i++ % live.size();
        const auto cache = static_cast<CacheId>(k % kCaches);
        const auto peer = static_cast<CacheId>((k + 1) % kCaches);
        dir->removeSharer(live[k], cache);
        const Tag fresh = rng.next() >> 8;
        benchmark::DoNotOptimize(access_snapshot(fresh, cache, false));
        benchmark::DoNotOptimize(access_snapshot(fresh, peer, false));
        benchmark::DoNotOptimize(access_snapshot(fresh, cache, true));
        live[k] = fresh;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 3));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/** After: the same churn through a reusable DirAccessContext. */
void
BM_ContextAccessChurn(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        // Identical operation stream to BM_SnapshotAccessChurn.
        const std::size_t k = i++ % live.size();
        const auto cache = static_cast<CacheId>(k % kCaches);
        const auto peer = static_cast<CacheId>((k + 1) % kCaches);
        dir->removeSharer(live[k], cache);
        const Tag fresh = rng.next() >> 8;
        ctx.reset();
        dir->access(DirRequest{fresh, cache, false}, ctx);
        dir->access(DirRequest{fresh, peer, false}, ctx);
        dir->access(DirRequest{fresh, cache, true}, ctx);
        benchmark::DoNotOptimize(ctx.size());
        live[k] = fresh;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 3));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/** Whole spans of requests through accessBatch with one context. */
void
BM_AccessBatch(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);

    constexpr std::size_t kBatch = 64;
    ctx.reserve(kBatch);
    std::vector<DirRequest> requests(kBatch);
    Rng rng(9);
    std::size_t i = 0;
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        for (std::size_t b = 0; b < kBatch; ++b) {
            const std::size_t k = i++ % live.size();
            // Re-reference mostly tracked tags; refresh a few.
            if (b % 8 == 0) {
                dir->removeSharer(live[k],
                                  static_cast<CacheId>(k % kCaches));
                live[k] = rng.next() >> 8;
            }
            requests[b] = DirRequest{live[k],
                                     static_cast<CacheId>(k % kCaches),
                                     (b & 3) == 3};
        }
        ctx.reset();
        dir->accessBatch(requests, ctx);
        benchmark::DoNotOptimize(ctx.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/**
 * Register one instance of each benchmark per organization.
 * Registration must happen from main(), after every organization's
 * static registrar has populated the DirectoryRegistry (static-init
 * order across translation units is unspecified).
 */
void
registerBenchmarks()
{
    struct Family
    {
        const char *name;
        void (*fn)(benchmark::State &, const std::string &);
    };
    const Family families[] = {
        {"BM_Probe", BM_Probe},
        {"BM_SnapshotAccessChurn", BM_SnapshotAccessChurn},
        {"BM_ContextAccessChurn", BM_ContextAccessChurn},
        {"BM_AccessBatch", BM_AccessBatch},
    };
    for (const Family &family : families) {
        for (const std::string &org :
             DirectoryRegistry::instance().names()) {
            const std::string name =
                std::string(family.name) + "/" + org;
            auto *fn = family.fn;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [fn, org](benchmark::State &state) { fn(state, org); });
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
