/**
 * @file
 * google-benchmark microbenchmarks: lookup/insert/remove throughput of
 * every registered directory organization at a realistic steady-state
 * occupancy, plus the allocation story of the access protocol.
 *
 * Not a paper figure — a software-performance sanity check that the
 * constant-time claims of the Cuckoo organization hold in this
 * implementation, and the proof of the allocation-free redesign:
 *
 *  - BM_SnapshotAccessChurn reproduces the removed value-returning
 *    access() shim's cost — an owning DirAccessResult snapshot taken
 *    after every request ("before");
 *  - BM_ContextAccessChurn drives the same stream through a reusable
 *    DirAccessContext ("after");
 *  - BM_AccessBatch drives whole DirRequest spans through accessBatch.
 *
 * Each reports an `allocs/op` counter from a global operator-new hook;
 * after warmup the context/batch paths must report 0.00 while the
 * snapshot path pays for its owning copy on every call.
 *
 * The A/B families quantify the SoA/kernel work directly:
 *
 *  - BM_ProbeAB/<org>/{kernel,scalar} runs one probe-churn stream with
 *    the way-compare kernels on vs forced to their scalar reference
 *    twins (setForceScalarKernels) — the pair is the per-organization
 *    lookup-path speedup;
 *  - BM_Sharer{Union,FanOut,PopcountRange}/{word,loop} compare the
 *    word-parallel DynamicBitset kernels against per-bit loops.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/alloc_counter.hh"
#include "common/bit_util.hh"
#include "common/bitset.hh"
#include "common/rng.hh"
#include "directory/registry.hh"

namespace {

using namespace cdir;

constexpr std::size_t kCaches = 32;

std::unique_ptr<Directory>
build(const std::string &organization)
{
    DirectoryParams p;
    p.organization = organization;
    p.numCaches = kCaches;
    if (organization == "Cuckoo" || organization == "Skewed" ||
        organization == "Elbow") {
        p.ways = 4;
        p.sets = 2048;
    } else if (organization == "Sparse") {
        p.ways = 8;
        p.sets = 1024;
    } else if (organization == "InCache") {
        p.ways = 16;
        p.sets = 512;
    } else {
        // DuplicateTag / Tagless mirror small cache sets.
        p.sets = 128;
        p.trackedCacheAssoc = 2;
        p.taglessBucketBits = 64;
    }
    return makeDirectory(p);
}

void
warm(Directory &dir, DirAccessContext &ctx, std::vector<Tag> &live,
     std::size_t count)
{
    Rng rng(5);
    while (live.size() < count) {
        const Tag tag = rng.next() >> 8;
        if (dir.probe(tag))
            continue;
        ctx.reset();
        dir.access(DirRequest{tag, static_cast<CacheId>(live.size() %
                                                        kCaches),
                              false},
                   ctx);
        live.push_back(tag);
    }
}

void
BM_Probe(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir->probe(live[i++ % live.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// --- A/B: probe kernel vs scalar reference -----------------------------------

/**
 * The probe-churn stream of BM_ContextAccessChurn with the way-compare
 * path pinned to either the word-parallel kernels ("kernel") or their
 * branchy scalar reference twins ("scalar"). Both variants run the
 * identical operation stream — the delta between them is exactly the
 * SoA kernel win on that organization's lookup path.
 */
void
BM_ProbeKernelAB(benchmark::State &state, const std::string &org,
                 bool force_scalar)
{
    const bool saved = forceScalarKernels();
    setForceScalarKernels(force_scalar);
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        const std::size_t k = i++ % live.size();
        const auto cache = static_cast<CacheId>(k % kCaches);
        dir->removeSharer(live[k], cache);
        const Tag fresh = rng.next() >> 8;
        ctx.reset();
        dir->access(DirRequest{fresh, cache, false}, ctx);
        benchmark::DoNotOptimize(dir->probe(fresh));
        live[k] = fresh;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 2));
    setForceScalarKernels(saved);
}

// --- A/B: word-parallel sharer-set ops vs per-bit loops ----------------------

constexpr std::size_t kSharerBits = 1024;

/** A ~12%-dense sharer set plus a disjoint-ish second operand. */
struct SharerFixture
{
    DynamicBitset a{kSharerBits};
    DynamicBitset b{kSharerBits};
    SharerFixture()
    {
        Rng rng(11);
        for (std::size_t i = 0; i < kSharerBits / 8; ++i) {
            a.set(rng.below(kSharerBits));
            b.set(rng.below(kSharerBits));
        }
    }
};

void
BM_SharerUnion(benchmark::State &state, bool word_parallel)
{
    const SharerFixture fx;
    DynamicBitset out(kSharerBits);
    for (auto _ : state) {
        out.reinit(kSharerBits);
        out.orWith(fx.a);
        if (word_parallel) {
            out.orWith(fx.b);
        } else {
            for (std::size_t i = 0; i < kSharerBits; ++i)
                if (fx.b.test(i))
                    out.set(i);
        }
        benchmark::DoNotOptimize(out.count());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kSharerBits));
}

void
BM_SharerFanOut(benchmark::State &state, bool word_parallel)
{
    const SharerFixture fx;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        if (word_parallel) {
            fx.a.forEachSetBit([&](std::size_t i) { sum += i; });
        } else {
            for (std::size_t i = 0; i < kSharerBits; ++i)
                if (fx.a.test(i))
                    sum += i;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kSharerBits));
}

void
BM_SharerPopcountRange(benchmark::State &state, bool word_parallel)
{
    const SharerFixture fx;
    const std::size_t lo = 13, hi = kSharerBits - 9;
    for (auto _ : state) {
        std::size_t n = 0;
        if (word_parallel) {
            n = fx.a.popcountRange(lo, hi);
        } else {
            for (std::size_t i = lo; i < hi; ++i)
                n += fx.a.test(i) ? 1 : 0;
        }
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * (hi - lo)));
}

/** Before: every access pays for an owning DirAccessResult snapshot —
 *  the exact cost profile of the removed value-returning shim (reused
 *  scratch context, owning copy of each outcome). */
void
BM_SnapshotAccessChurn(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    auto access_snapshot = [&](Tag tag, CacheId cache, bool is_write) {
        ctx.reset();
        dir->access(DirRequest{tag, cache, is_write}, ctx);
        return ctx.snapshot(0);
    };
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        // retire one, insert one with a sharer and a write upgrade:
        // steady-state occupancy with invalidation traffic.
        const std::size_t k = i++ % live.size();
        const auto cache = static_cast<CacheId>(k % kCaches);
        const auto peer = static_cast<CacheId>((k + 1) % kCaches);
        dir->removeSharer(live[k], cache);
        const Tag fresh = rng.next() >> 8;
        benchmark::DoNotOptimize(access_snapshot(fresh, cache, false));
        benchmark::DoNotOptimize(access_snapshot(fresh, peer, false));
        benchmark::DoNotOptimize(access_snapshot(fresh, cache, true));
        live[k] = fresh;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 3));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/** After: the same churn through a reusable DirAccessContext. */
void
BM_ContextAccessChurn(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        // Identical operation stream to BM_SnapshotAccessChurn.
        const std::size_t k = i++ % live.size();
        const auto cache = static_cast<CacheId>(k % kCaches);
        const auto peer = static_cast<CacheId>((k + 1) % kCaches);
        dir->removeSharer(live[k], cache);
        const Tag fresh = rng.next() >> 8;
        ctx.reset();
        dir->access(DirRequest{fresh, cache, false}, ctx);
        dir->access(DirRequest{fresh, peer, false}, ctx);
        dir->access(DirRequest{fresh, cache, true}, ctx);
        benchmark::DoNotOptimize(ctx.size());
        live[k] = fresh;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 3));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/** Whole spans of requests through accessBatch with one context. */
void
BM_AccessBatch(benchmark::State &state, const std::string &org)
{
    auto dir = build(org);
    DirAccessContext ctx = dir->makeContext();
    std::vector<Tag> live;
    warm(*dir, ctx, live, 2048);

    constexpr std::size_t kBatch = 64;
    ctx.reserve(kBatch);
    std::vector<DirRequest> requests(kBatch);
    Rng rng(9);
    std::size_t i = 0;
    const std::size_t allocs_before = allocationCount();
    for (auto _ : state) {
        for (std::size_t b = 0; b < kBatch; ++b) {
            const std::size_t k = i++ % live.size();
            // Re-reference mostly tracked tags; refresh a few.
            if (b % 8 == 0) {
                dir->removeSharer(live[k],
                                  static_cast<CacheId>(k % kCaches));
                live[k] = rng.next() >> 8;
            }
            requests[b] = DirRequest{live[k],
                                     static_cast<CacheId>(k % kCaches),
                                     (b & 3) == 3};
        }
        ctx.reset();
        dir->accessBatch(requests, ctx);
        benchmark::DoNotOptimize(ctx.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocationCount() - allocs_before),
        benchmark::Counter::kAvgIterations);
}

/**
 * Register one instance of each benchmark per organization.
 * Registration must happen from main(), after every organization's
 * static registrar has populated the DirectoryRegistry (static-init
 * order across translation units is unspecified).
 */
void
registerBenchmarks()
{
    struct Family
    {
        const char *name;
        void (*fn)(benchmark::State &, const std::string &);
    };
    const Family families[] = {
        {"BM_Probe", BM_Probe},
        {"BM_SnapshotAccessChurn", BM_SnapshotAccessChurn},
        {"BM_ContextAccessChurn", BM_ContextAccessChurn},
        {"BM_AccessBatch", BM_AccessBatch},
    };
    for (const Family &family : families) {
        for (const std::string &org :
             DirectoryRegistry::instance().names()) {
            const std::string name =
                std::string(family.name) + "/" + org;
            auto *fn = family.fn;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [fn, org](benchmark::State &state) { fn(state, org); });
        }
    }

    // A/B pairs: same stream, kernel path vs scalar reference path.
    for (const std::string &org : DirectoryRegistry::instance().names()) {
        for (const bool scalar : {false, true}) {
            const std::string name = std::string("BM_ProbeAB/") + org +
                                     (scalar ? "/scalar" : "/kernel");
            benchmark::RegisterBenchmark(
                name.c_str(), [org, scalar](benchmark::State &state) {
                    BM_ProbeKernelAB(state, org, scalar);
                });
        }
    }
    struct SharerFamily
    {
        const char *name;
        void (*fn)(benchmark::State &, bool);
    };
    const SharerFamily sharer_families[] = {
        {"BM_SharerUnion", BM_SharerUnion},
        {"BM_SharerFanOut", BM_SharerFanOut},
        {"BM_SharerPopcountRange", BM_SharerPopcountRange},
    };
    for (const SharerFamily &family : sharer_families) {
        for (const bool word : {true, false}) {
            const std::string name = std::string(family.name) +
                                     (word ? "/word" : "/loop");
            auto *fn = family.fn;
            benchmark::RegisterBenchmark(
                name.c_str(), [fn, word](benchmark::State &state) {
                    fn(state, word);
                });
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
