/**
 * @file
 * google-benchmark microbenchmarks: lookup/insert/remove throughput of
 * each directory organization at a realistic steady-state occupancy.
 * Not a paper figure — a software-performance sanity check that the
 * constant-time claims of the Cuckoo organization hold in this
 * implementation.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "directory/directory.hh"

namespace {

using namespace cdir;

std::unique_ptr<Directory>
build(DirectoryKind kind)
{
    DirectoryParams p;
    p.kind = kind;
    p.numCaches = 32;
    switch (kind) {
      case DirectoryKind::Cuckoo:
        p.ways = 4;
        p.sets = 2048;
        break;
      case DirectoryKind::Sparse:
        p.ways = 8;
        p.sets = 1024;
        break;
      case DirectoryKind::Skewed:
        p.ways = 4;
        p.sets = 2048;
        break;
      case DirectoryKind::DuplicateTag:
        p.sets = 128;
        p.trackedCacheAssoc = 2;
        break;
      case DirectoryKind::InCache:
        p.ways = 16;
        p.sets = 512;
        break;
      case DirectoryKind::Tagless:
        p.sets = 128;
        p.taglessBucketBits = 64;
        break;
      case DirectoryKind::Elbow:
        p.ways = 4;
        p.sets = 2048;
        break;
    }
    return makeDirectory(p);
}

void
warm(Directory &dir, std::vector<Tag> &live, std::size_t count)
{
    Rng rng(5);
    while (live.size() < count) {
        const Tag tag = rng.next() >> 8;
        if (dir.probe(tag))
            continue;
        dir.access(tag, static_cast<CacheId>(live.size() % 32), false);
        live.push_back(tag);
    }
}

void
BM_Probe(benchmark::State &state)
{
    const auto kind = static_cast<DirectoryKind>(state.range(0));
    state.SetLabel(directoryKindName(kind));
    auto dir = build(kind);
    std::vector<Tag> live;
    warm(*dir, live, 2048);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir->probe(live[i++ % live.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_InsertRemoveChurn(benchmark::State &state)
{
    const auto kind = static_cast<DirectoryKind>(state.range(0));
    state.SetLabel(directoryKindName(kind));
    auto dir = build(kind);
    std::vector<Tag> live;
    warm(*dir, live, 2048);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        // retire one, insert one: steady state occupancy
        const std::size_t k = i++ % live.size();
        dir->removeSharer(live[k], static_cast<CacheId>(k % 32));
        const Tag fresh = rng.next() >> 8;
        dir->access(fresh, static_cast<CacheId>(k % 32), false);
        live[k] = fresh;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
OrgArgs(benchmark::internal::Benchmark *b)
{
    for (int kind = 0; kind <= 5; ++kind)
        b->Arg(kind);
}

} // namespace

BENCHMARK(BM_Probe)->Apply(OrgArgs);
BENCHMARK(BM_InsertRemoveChurn)->Apply(OrgArgs);

BENCHMARK_MAIN();
