/**
 * @file
 * Fig. 10 — average insertion attempts per workload at the §5.2
 * selected Cuckoo sizes (4x512 Shared-L2, 3x8192 Private-L2), declared
 * as one sweep spec per configuration and run on the shared pool.
 *
 * Paper shape: typically under two attempts (a vacant slot is usually
 * found at the initial lookup), larger values for the private-footprint
 * heavy workloads (DSS, em3d, ocean) in the Private-L2 system.
 */

#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const SweepRunner runner(cli.sweep());

    const CmpConfigKind kinds[] = {CmpConfigKind::SharedL2,
                                   CmpConfigKind::PrivateL2};
    std::vector<SweepSpec> specs;
    for (CmpConfigKind kind : kinds) {
        SweepSpec spec = paperSweep(kind, cli);
        spec.config(configName(kind),
                    paperConfigWith(kind, selectedCuckoo(kind)));
        specs.push_back(std::move(spec));
    }
    // One flattened cell pool across both configurations' grids, so
    // --jobs parallelism spans the Shared-L2 and Private-L2 sweeps.
    const std::vector<std::vector<SweepRecord>> byKind =
        runner.runMany(specs);
    std::vector<RecordGrid> grids;
    const std::size_t workloads = specs[0].workloads().size();
    for (const auto &records : byKind)
        grids.emplace_back(records, 1, workloads);

    ReportTable table(
        "Fig. 10: Cuckoo directory average insertion attempts",
        {"workload", "Shared L2", "Private L2"});
    for (std::size_t w = 0; w < workloads; ++w) {
        std::vector<ReportCell> row;
        row.push_back(cellText(specs[0].workloads()[w].label));
        for (std::size_t k = 0; k < 2; ++k) {
            const SweepRecord *rec = grids[k].at(0, w);
            row.push_back(rec ? cellNum(rec->result.avgInsertionAttempts)
                              : cellMissing());
        }
        table.addRow(std::move(row));
    }

    Reporter report(cli.format);
    report.table(table);
    return 0;
}
