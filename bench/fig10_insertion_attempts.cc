/**
 * @file
 * Fig. 10 — average insertion attempts per workload at the §5.2
 * selected Cuckoo sizes (4x512 Shared-L2, 3x8192 Private-L2).
 *
 * Paper shape: typically under two attempts (a vacant slot is usually
 * found at the initial lookup), larger values for the private-footprint
 * heavy workloads (DSS, em3d, ocean) in the Private-L2 system.
 */

#include <cstdio>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    banner("Fig. 10: Cuckoo directory average insertion attempts");
    std::printf("%-8s  %12s  %12s\n", "workload", "Shared L2",
                "Private L2");
    for (PaperWorkload w : allPaperWorkloads()) {
        double attempts[2] = {0, 0};
        int i = 0;
        for (CmpConfigKind kind :
             {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
            attempts[i++] =
                runPaperWorkload(kind, w, selectedCuckoo(kind), scale)
                    .avgInsertionAttempts;
        }
        std::printf("%-8s  %12.3f  %12.3f\n",
                    paperWorkloadName(w).c_str(), attempts[0],
                    attempts[1]);
    }
    return 0;
}
