/**
 * @file
 * End-to-end simulation throughput: accesses/second of the full
 * warmup-then-measure pipeline, emitted as JSON for the perf-trajectory
 * record (tools/perf_trajectory.sh -> BENCH_<n>.json).
 *
 * The google-benchmark microbenchmarks (micro_directory_ops) time
 * directory operations in isolation; this binary times what a figure
 * harness actually pays — stage/flush batching, the apply phase, cache
 * maintenance, statistics — so a regression anywhere in the pipeline
 * shows up even when every micro number is flat. Three runs:
 *
 *  - Cuckoo, untimed: the repository's headline path;
 *  - Sparse, untimed: a conventional-organization baseline;
 *  - Cuckoo + mesh cost model: the same run timed, so the trajectory
 *    tracks the cost-model overhead (expected small: one virtual call
 *    and a histogram add per directory outcome, only when enabled);
 *  - Cuckoo + batch64: the batched-staging driver shape;
 *  - Cuckoo + fleet generator: the multi-tenant workload's
 *    generator-side cost (Zipf draws, per-tenant scatter, churn).
 *
 * Wall-clock throughput is machine-dependent by nature; the trajectory
 * compares like with like across commits on the same runner. Results
 * (counters, histograms) remain bit-identical regardless — timing
 * never feeds back into the simulation.
 *
 *   $ ./end_to_end_rate                 # JSON on stdout
 *   $ ./end_to_end_rate --accesses=500000 --shards=2
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim_common.hh"
#include "workload/fleet.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

struct RateRun
{
    const char *name;
    const char *organization;
    const char *costModel;        //!< "" = untimed
    std::size_t batchWindow = 1;  //!< CmpConfig::batchWindow
    const char *scenario = nullptr; //!< dynamic workload spec; null = DB2
};

constexpr RateRun kRuns[] = {
    {"Cuckoo/untimed", "Cuckoo", ""},
    {"Sparse/untimed", "Sparse", ""},
    {"Cuckoo/mesh", "Cuckoo", "mesh"},
    // Batched staging leg: batchWindow >> 1 is the driver shape that
    // exercises the batch-window software prefetch (CDIR_PREFETCH_DIST)
    // and per-slice run batching — at window 1 that machinery is idle,
    // so regressions in it were invisible to the committed numbers.
    {"Cuckoo/batch64", "Cuckoo", "", 64},
    // Fleet-generator leg: the multi-tenant workload pays for Zipf
    // sampling, per-tenant scatter, and churn/storm bookkeeping per
    // access — a different generator-side profile than the Table 2
    // synthetics, so generator regressions show up here first.
    {"Cuckoo/fleet", "Cuckoo", "", 1,
     "fleet:tenants=16:blocks=8192:churn=200000:storm=500000"},
};

DirectoryParams
organizationParams(const std::string &name)
{
    if (name == "Cuckoo")
        return cuckooSliceParams(4, 512);
    if (name == "Sparse")
        return sparseSliceParams(8, 512);
    DirectoryParams params;
    params.organization = name;
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"filter", "trace", "scenario", "cost-model",
                         "probe-every"});

    std::uint64_t accesses = 1'000'000;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = cliFlagValue(argv[i], "accesses")) {
            char *end = nullptr;
            accesses = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || accesses == 0) {
                std::fprintf(stderr,
                             "end_to_end_rate: bad --accesses value "
                             "'%s'\n",
                             v);
                return 2;
            }
        }
    }
    accesses *= cli.scale;

    // Single experiment at a time (wall-clock timing would be
    // meaningless with concurrent cells), so the full shard budget is
    // available to it.
    const unsigned shards = clampedShards(1, cli.shardsRequested,
                                          ThreadPool::hardwareWorkers());

    std::printf("{\"benchmark\": \"end_to_end_rate\", "
                "\"accesses\": %llu, \"shards\": %u, \"runs\": [",
                static_cast<unsigned long long>(accesses), shards);
    bool first = true;
    for (const RateRun &run : kRuns) {
        CmpConfig config = paperConfigWith(
            CmpConfigKind::SharedL2, organizationParams(run.organization));
        config.batchWindow = run.batchWindow;
        WorkloadParams workload =
            run.scenario != nullptr
                ? dynamicWorkloadParams(run.scenario)
                : paperWorkloadParams(PaperWorkload::OltpDb2, false,
                                      config.numCores);

        ExperimentOptions opts;
        opts.warmupAccesses = accesses / 4;
        opts.measureAccesses = accesses;
        opts.occupancySampleEvery = 10'000;
        opts.shards = shards;
        opts.costModel = run.costModel;

        const auto start = std::chrono::steady_clock::now();
        const ExperimentResult result =
            runExperiment(config, workload, opts);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        const double total =
            double(opts.warmupAccesses) + double(result.system.accesses);
        const double rate =
            elapsed.count() > 0.0 ? total / elapsed.count() : 0.0;
        std::printf("%s\n  {\"name\": \"%s\", \"seconds\": %.6f, "
                    "\"accesses_per_sec\": %.1f}",
                    first ? "" : ",", run.name, elapsed.count(), rate);
        first = false;
    }
    std::printf("\n]}\n");
    return 0;
}
