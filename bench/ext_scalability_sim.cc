/**
 * @file
 * Beyond-the-paper extension: an *empirical* companion to Fig. 4 —
 * thousand-core scalability measured by simulation instead of the
 * analytical area/energy model.
 *
 * Fig. 4 argues scalability from closed-form storage and energy
 * expressions. This harness builds the actual CMPs — 256, 1024, and
 * 4096 cores, one directory slice per core — runs the DB2 sharing
 * profile through them, and reports what the model cannot: measured
 * occupancy, insertion attempts, invalidation rates, per-cell host
 * memory (deterministic estimate + peak RSS), and wall-clock.
 *
 * Grid:
 *  - 256 cores: every registered organization, full-vector sharer
 *    format (the paper-faithful row; mirroring organizations fit
 *    because the private cache has >= numSlices sets).
 *  - 1024 / 4096 cores: the memory-lean subset — Cuckoo with the
 *    compressed (sparse-word) format, Sparse with the hierarchical and
 *    coarse formats. Full-vector state at 4096 caches would cost
 *    4096 bits x entry x 4096 slices (~2 GB of vectors alone); the
 *    lean formats keep a 4096-core cell under ~1 GB of host RAM.
 *
 * One measured effect the analytical model cannot see: the workload
 * reproduces the Solaris page-coloring address structure (§5.1,
 * Fig. 3), and the DB2 per-core private footprint spans only 8 page
 * colors. Slice interleaving uses the low address bits, so at 4096
 * slices private blocks can reach only 1024 distinct slices — those
 * slices run at ~4x demand, and even the Cuckoo directory saturates
 * (insertion attempts hit the §4.2 bound) while aggregate occupancy
 * reads low. At 256 and 1024 slices the same system is conflict-free.
 * The conventional Sparse design additionally thrashes at *every*
 * tier, exactly the Fig. 3 set-conflict story.
 *
 * RAM budget: the largest cell (4096c Sparse, 2x provisioned) stays
 * under ~1.5 GB; run the 4096-core rows with --jobs=1 or 2 on small
 * machines. CSV columns are ordered determinism-first: every column
 * except the trailing wall_s / peak_rss_mb pair is bit-identical at
 * any --jobs x --shards setting (the CI smoke diffs the CSV with the
 * environmental tail cut off).
 *
 *   $ ./ext_scalability_sim                        # full grid
 *   $ ./ext_scalability_sim --max-cores=256 --format=csv
 *   $ ./ext_scalability_sim --campaign-manifest=grid.json
 *
 * Shared flags apply (--jobs/--shards/--format/--filter/--scale/
 * --warmup/--measure/--campaign-manifest/--campaign-results);
 * --max-cores=N drops the rows above N cores before the grid is built,
 * so a bounded run (or campaign manifest) contains only the cells it
 * will execute.
 */

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sharers/sharer_rep.hh"
#include "sim/campaign.hh"
#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

/** One organization row of a core-count tier. */
struct OrgPoint
{
    const char *label;       //!< row label ("Sparse (hier)")
    const char *organization; //!< registry name
    SharerFormat format = SharerFormat::FullVector;
    unsigned ways = 4;
    std::size_t sets = 512;
};

/**
 * Per-slice sizings against the 1x baseline of 1024 tracked frames per
 * slice (numSlices == numCores, one 1024-frame cache per core): Cuckoo
 * at 1x as the paper selects it, conventional tagged designs at 2x.
 * Mirroring organizations (Duplicate-Tag, Tagless) size themselves
 * from the mirrored cache geometry; In-Cache models the shared-cache
 * tag array, sized 2x here like the other conventional designs.
 */
std::vector<OrgPoint>
tierOrganizations(std::size_t cores)
{
    if (cores <= 256) {
        return {
            {"Cuckoo", "Cuckoo", SharerFormat::FullVector, 4, 256},
            {"Sparse", "Sparse", SharerFormat::FullVector, 8, 256},
            {"Skewed", "Skewed", SharerFormat::FullVector, 4, 512},
            {"Elbow", "Elbow", SharerFormat::FullVector, 4, 512},
            {"InCache", "InCache", SharerFormat::FullVector, 8, 256},
            {"DuplicateTag", "DuplicateTag"},
            {"Tagless", "Tagless"},
        };
    }
    return {
        {"Cuckoo (compressed)", "Cuckoo", SharerFormat::Compressed, 4,
         256},
        {"Sparse (hier)", "Sparse", SharerFormat::Hierarchical, 8, 256},
        {"Sparse (coarse)", "Sparse", SharerFormat::CoarseVector, 8,
         256},
    };
}

/** The CMP of one (cores, organization) cell: one slice per core, one
 *  64KB private cache per core. */
CmpConfig
tierConfig(std::size_t cores, const OrgPoint &org)
{
    CmpConfig cfg;
    cfg.kind = CmpConfigKind::PrivateL2;
    cfg.numCores = cores;
    cfg.numSlices = cores;
    cfg.privateCache = CacheConfig{512, 2}; // 1024 frames per core
    cfg.directory.organization = org.organization;
    cfg.directory.format = org.format;
    cfg.directory.ways = org.ways;
    cfg.directory.sets = org.sets;
    return cfg;
}

/** Run lengths scaled so warmup touches the aggregate frame pool at
 *  every tier (4x the frames in accesses) and measurement stays
 *  proportional. */
ExperimentOptions
tierOptions(std::size_t cores, const HarnessOptions &cli)
{
    ExperimentOptions opts;
    opts.warmupAccesses = cores * 4096 * cli.scale;
    opts.measureAccesses = cores * 2048 * cli.scale;
    opts.occupancySampleEvery = 10'000;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"trace", "scenario", "cost-model", "probe-every"});
    const std::uint64_t maxCores =
        flagU64(argc, argv, "max-cores", 4096);

    std::vector<std::size_t> tiers;
    for (const std::size_t cores : {256, 1024, 4096})
        if (cores <= maxCores)
            tiers.push_back(cores);
    if (tiers.empty()) {
        std::fprintf(stderr,
                     "ext_scalability_sim: --max-cores=%llu leaves no "
                     "core-count tier (smallest is 256)\n",
                     static_cast<unsigned long long>(maxCores));
        return 2;
    }

    // One sweep spec per core count (the configs differ per tier), all
    // flattened into one cell pool / one campaign grid.
    std::vector<SweepSpec> specs;
    for (const std::size_t cores : tiers) {
        SweepSpec spec;
        spec.options("", cli.applyOverrides(tierOptions(cores, cli)));
        for (const OrgPoint &org : tierOrganizations(cores))
            spec.config(std::to_string(cores) + "c " + org.label,
                        tierConfig(cores, org));
        spec.workload("DB2", paperWorkloadParams(PaperWorkload::OltpDb2,
                                                 false, cores));
        specs.push_back(std::move(spec));
    }

    const SweepRunner runner(cli.sweep());
    const std::vector<std::vector<SweepRecord>> byTier =
        campaignRunMany(cli, runner, std::span<const SweepSpec>(specs),
                        "ext_scalability_sim");

    Reporter report(cli.format);
    report.note(
        "empirical Fig. 4 companion: measured thousand-core scaling "
        "(one slice per core; DB2 profile). All columns except the "
        "trailing wall_s / peak_rss_mb pair are bit-identical at any "
        "--jobs x --shards setting; est_mem_mb is the deterministic "
        "host-byte estimate of the simulated caches + directory "
        "slices, peak_rss_mb the process high-water mark (0 when the "
        "row was loaded from a campaign checkpoint).");

    ReportTable table("measured scalability by core count",
                      {"organization", "cores", "entries/slice",
                       "sharer bits", "occupancy", "avg attempts",
                       "forced inv/1k", "sharing inv/1k", "est_mem_mb",
                       "wall_s", "peak_rss_mb"});
    for (std::size_t t = 0; t < byTier.size(); ++t) {
        const std::size_t cores = tiers[t];
        const auto orgs = tierOrganizations(cores);
        for (const SweepRecord &rec : byTier[t]) {
            const ExperimentResult &r = rec.result;
            const double perK =
                r.system.accesses
                    ? 1000.0 / double(r.system.accesses)
                    : 0.0;
            const OrgPoint &org = orgs[rec.configIndex];
            // PrivateL2: one cache per core, so caches == cores.
            const unsigned sharerBits =
                sharerStorageBits(org.format, cores);
            table.addRow(
                {cellText(rec.configLabel),
                 cellNum(double(cores), "%.0f"),
                 cellNum(double(r.directoryCapacity / cores), "%.0f"),
                 cellNum(double(sharerBits), "%.0f"),
                 cellPct(r.avgOccupancy),
                 cellNum(r.avgInsertionAttempts, "%.3f"),
                 cellNum(double(r.system.forcedInvalidations) * perK,
                         "%.3f"),
                 cellNum(double(r.system.sharingInvalidations) * perK,
                         "%.3f"),
                 cellNum(double(r.estimatedBytes) / (1024.0 * 1024.0),
                         "%.1f"),
                 cellNum(r.wallSeconds, "%.2f"),
                 cellNum(double(r.peakRssBytes) / (1024.0 * 1024.0),
                         "%.1f")});
        }
    }
    report.table(table);
    return 0;
}
