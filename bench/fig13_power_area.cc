/**
 * @file
 * Fig. 13 — power and area comparison of directory organizations,
 * including the Cuckoo directory, 16 to 1024 cores (§5.6).
 *
 * Two systems:
 *   Shared-L2  — split I/D 64KB L1s tracked (Cuckoo at 1x, 4 ways);
 *   Private-L2 — 1MB 16-way private L2s tracked (Cuckoo at 1.5x, 3
 *                ways), where In-Cache is not applicable (§5.6).
 *
 * Organizations: Duplicate-Tag, Tagless, Sparse 8x (full vector),
 * In-Cache, Sparse 8x Hierarchical, Sparse 8x Coarse, Cuckoo
 * Hierarchical, Cuckoo Coarse. Axes as in the paper (energy relative to
 * an L2 tag lookup, area relative to a 1MB data array, per core).
 *
 * Paper headlines: Cuckoo Coarse/Hier stay flat in both energy and
 * area; >=7x area advantage over Sparse 8x Coarse/Hier; Tagless and
 * Duplicate-Tag energy become prohibitive at high core counts; the
 * Shared-L2 Cuckoo directory is under 3% of L2 area at 1024 cores.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "model/directory_model.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

DirSystemParams
sharedSystem(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 2;
    p.framesPerCache = 1024; // 64KB L1
    p.cacheAssoc = 2;
    p.cuckooProvisioning = 1.0; // §5.2
    p.cuckooWays = 4;
    p.cuckooAvgAttempts = 1.2;  // measured, Fig. 10 Shared-L2
    return p;
}

DirSystemParams
privateSystem(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 1;
    p.framesPerCache = 16384; // 1MB L2
    p.cacheAssoc = 16;
    p.cuckooProvisioning = 1.5; // §5.2
    p.cuckooWays = 3;
    p.cuckooAvgAttempts = 1.4;  // measured, Fig. 10 Private-L2
    return p;
}

const std::size_t kCores[] = {16, 32, 64, 128, 256, 512, 1024};

void
table(const char *title, bool energy, bool is_private,
      DirSystemParams (*system)(std::size_t))
{
    std::vector<std::pair<OrgModel, const char *>> orgs = {
        {OrgModel::DuplicateTag, "Duplicate-Tag"},
        {OrgModel::Tagless, "Tagless"},
        {OrgModel::SparseFull, "Sparse 8x"},
        {OrgModel::InCache, "In-Cache"},
        {OrgModel::SparseHier, "Sparse 8x Hier."},
        {OrgModel::SparseCoarse, "Sparse 8x Coarse"},
        {OrgModel::CuckooHier, "Cuckoo Hier."},
        {OrgModel::CuckooCoarse, "Cuckoo Coarse"},
    };
    banner(title);
    std::printf("%-18s", "organization");
    for (std::size_t c : kCores)
        std::printf("  %8zu", c);
    std::printf("\n");
    for (const auto &[org, label] : orgs) {
        if (is_private && org == OrgModel::InCache) {
            // Private L2s cannot include one another (§5.6).
            std::printf("%-18s  %s\n", label, "n/a (no inclusive LLC)");
            continue;
        }
        std::printf("%-18s", label);
        for (std::size_t c : kCores) {
            const auto cost = directoryCost(org, system(c));
            if (energy)
                std::printf("  %7.0f%%", cost.energyRelative * 100.0);
            else
                std::printf("  %7.2f%%", cost.areaRelative * 100.0);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    table("Fig. 13: energy, Shared L2 (% of L2 tag lookup, per core)",
          true, false, sharedSystem);
    table("Fig. 13: energy, Private L2 (% of L2 tag lookup, per core)",
          true, true, privateSystem);
    table("Fig. 13: area, Shared L2 (% of 1MB L2 data array, per core)",
          false, false, sharedSystem);
    table("Fig. 13: area, Private L2 (% of 1MB L2 data array, per core)",
          false, true, privateSystem);

    // Headline ratios quoted in §1/§7.
    banner("Headline ratios at 16 and 1024 cores");
    for (std::size_t c : {std::size_t{16}, std::size_t{1024}}) {
        const auto sys = sharedSystem(c);
        const double dup =
            directoryCost(OrgModel::DuplicateTag, sys).energyPerOp;
        const double tagless =
            directoryCost(OrgModel::Tagless, sys).energyPerOp;
        const double sparse_area =
            directoryCost(OrgModel::SparseCoarse, sys).areaBitsPerCore;
        const auto cuckoo = directoryCost(OrgModel::CuckooCoarse, sys);
        std::printf(
            "%4zu cores (Shared L2): DupTag/Cuckoo energy = %5.1fx, "
            "Tagless/Cuckoo energy = %5.1fx, Sparse8x/Cuckoo area = "
            "%4.1fx, Cuckoo area = %.2f%% of L2\n",
            c, dup / cuckoo.energyPerOp, tagless / cuckoo.energyPerOp,
            sparse_area / cuckoo.areaBitsPerCore,
            cuckoo.areaRelative * 100.0);
    }
    return 0;
}
