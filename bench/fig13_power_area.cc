/**
 * @file
 * Fig. 13 — power and area comparison of directory organizations,
 * including the Cuckoo directory, 16 to 1024 cores (§5.6).
 *
 * Two systems:
 *   Shared-L2  — split I/D 64KB L1s tracked (Cuckoo at 1x, 4 ways);
 *   Private-L2 — 1MB 16-way private L2s tracked (Cuckoo at 1.5x, 3
 *                ways), where In-Cache is not applicable (§5.6).
 *
 * Organizations: Duplicate-Tag, Tagless, Sparse 8x (full vector),
 * In-Cache, Sparse 8x Hierarchical, Sparse 8x Coarse, Cuckoo
 * Hierarchical, Cuckoo Coarse. The (system, organization, core-count)
 * grid runs through the sweep runner's generic map. Axes as in the
 * paper (energy relative to an L2 tag lookup, area relative to a 1MB
 * data array, per core).
 *
 * Paper headlines: Cuckoo Coarse/Hier stay flat in both energy and
 * area; >=7x area advantage over Sparse 8x Coarse/Hier; Tagless and
 * Duplicate-Tag energy become prohibitive at high core counts; the
 * Shared-L2 Cuckoo directory is under 3% of L2 area at 1024 cores.
 */

#include <cstdio>
#include <vector>

#include "model/directory_model.hh"
#include "sim/sweep.hh"

using namespace cdir;

namespace {

DirSystemParams
sharedSystem(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 2;
    p.framesPerCache = 1024; // 64KB L1
    p.cacheAssoc = 2;
    p.cuckooProvisioning = 1.0; // §5.2
    p.cuckooWays = 4;
    p.cuckooAvgAttempts = 1.2;  // measured, Fig. 10 Shared-L2
    return p;
}

DirSystemParams
privateSystem(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 1;
    p.framesPerCache = 16384; // 1MB L2
    p.cacheAssoc = 16;
    p.cuckooProvisioning = 1.5; // §5.2
    p.cuckooWays = 3;
    p.cuckooAvgAttempts = 1.4;  // measured, Fig. 10 Private-L2
    return p;
}

const std::vector<std::pair<OrgModel, const char *>> kOrgs = {
    {OrgModel::DuplicateTag, "Duplicate-Tag"},
    {OrgModel::Tagless, "Tagless"},
    {OrgModel::SparseFull, "Sparse 8x"},
    {OrgModel::InCache, "In-Cache"},
    {OrgModel::SparseHier, "Sparse 8x Hier."},
    {OrgModel::SparseCoarse, "Sparse 8x Coarse"},
    {OrgModel::CuckooHier, "Cuckoo Hier."},
    {OrgModel::CuckooCoarse, "Cuckoo Coarse"},
};

const std::size_t kCores[] = {16, 32, 64, 128, 256, 512, 1024};
constexpr std::size_t kCorePoints = std::size(kCores);

struct System
{
    const char *label;
    bool isPrivate;
    DirSystemParams (*params)(std::size_t);
};

const System kSystems[] = {
    {"Shared L2", false, sharedSystem},
    {"Private L2", true, privateSystem},
};

bool
applicable(const System &sys, OrgModel org)
{
    // Private L2s cannot include one another (§5.6).
    return !(sys.isPrivate && org == OrgModel::InCache);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());

    // Grid: system-major, then organization, then core count.
    const std::size_t cells = 2 * kOrgs.size() * kCorePoints;
    const auto costs = runner.map<DirCost>(cells, [](std::size_t i) {
        const System &sys = kSystems[i / (kOrgs.size() * kCorePoints)];
        const std::size_t rem = i % (kOrgs.size() * kCorePoints);
        const OrgModel org = kOrgs[rem / kCorePoints].first;
        if (!applicable(sys, org))
            return DirCost{};
        return directoryCost(org, sys.params(kCores[rem % kCorePoints]));
    });
    const auto costAt = [&](std::size_t sys, std::size_t org,
                            std::size_t core) -> const DirCost & {
        return costs[(sys * kOrgs.size() + org) * kCorePoints + core];
    };

    std::vector<std::string> columns{"organization"};
    for (std::size_t c : kCores)
        columns.push_back(std::to_string(c));

    Reporter report(cli.format);
    for (const bool energy : {true, false}) {
        for (std::size_t s = 0; s < 2; ++s) {
            std::string title = "Fig. 13: ";
            title += energy ? "energy, " : "area, ";
            title += kSystems[s].label;
            title += energy ? " (% of L2 tag lookup, per core)"
                            : " (% of 1MB L2 data array, per core)";
            ReportTable table(std::move(title), columns);
            for (std::size_t o = 0; o < kOrgs.size(); ++o) {
                std::vector<ReportCell> row{cellText(kOrgs[o].second)};
                if (!applicable(kSystems[s], kOrgs[o].first)) {
                    for (std::size_t c = 0; c < kCorePoints; ++c)
                        row.push_back(cellText("n/a"));
                } else {
                    for (std::size_t c = 0; c < kCorePoints; ++c) {
                        const DirCost &cost = costAt(s, o, c);
                        row.push_back(
                            cellNum((energy ? cost.energyRelative
                                            : cost.areaRelative) *
                                        100.0,
                                    energy ? "%.0f%%" : "%.2f%%"));
                    }
                }
                table.addRow(std::move(row));
            }
            report.table(table);
        }
    }

    // Headline ratios quoted in §1/§7.
    ReportTable headlines(
        "Headline ratios, Shared L2 (DupTag & Tagless vs Cuckoo energy; "
        "Sparse 8x vs Cuckoo area)",
        {"cores", "DupTag/Cuckoo energy", "Tagless/Cuckoo energy",
         "Sparse8x/Cuckoo area", "Cuckoo area % of L2"});
    for (std::size_t c : {std::size_t{0}, kCorePoints - 1}) {
        const auto sys = sharedSystem(kCores[c]);
        const double dup =
            directoryCost(OrgModel::DuplicateTag, sys).energyPerOp;
        const double tagless =
            directoryCost(OrgModel::Tagless, sys).energyPerOp;
        const double sparse_area =
            directoryCost(OrgModel::SparseCoarse, sys).areaBitsPerCore;
        const auto cuckoo = directoryCost(OrgModel::CuckooCoarse, sys);
        headlines.addRow(
            {cellNum(double(kCores[c]), "%.0f"),
             cellNum(dup / cuckoo.energyPerOp, "%.1fx"),
             cellNum(tagless / cuckoo.energyPerOp, "%.1fx"),
             cellNum(sparse_area / cuckoo.areaBitsPerCore, "%.1fx"),
             cellNum(cuckoo.areaRelative * 100.0, "%.2f%%")});
    }
    report.table(headlines);
    return 0;
}
