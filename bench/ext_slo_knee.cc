/**
 * @file
 * Beyond-the-paper extension: maximum sustainable load at an SLO, per
 * directory organization.
 *
 * The tail-latency harness (ext_tail_latency) asks "what tail does a
 * fixed load produce?"; operators ask the inverse: "how much load can I
 * add before the tail breaks my SLO?" This harness answers it with the
 * closed-loop SLO-ramp controller (workload/fleet.hh): a multi-tenant
 * fleet workload whose active-tenant count steps up one level per probe
 * window while the windowed p99 directory latency stays within target,
 * then backs off and holds at the *knee* — the last level sustained
 * within SLO. Comparing knees across organizations turns the paper's
 * event-count argument into a capacity headline: an organization whose
 * conflicts inflate the tail saturates at a lower knee.
 *
 * The ramp is deterministic end to end — probes capture at exact access
 * counts after the serial apply phase — so every number here (knee
 * level, metric values, transition digest) is bit-identical at any
 * --jobs x --shards setting, survives record→replay, and merges
 * byte-identically through campaign checkpoints.
 *
 *   $ ./ext_slo_knee                              # default grid
 *   $ ./ext_slo_knee --target=120 --step=50000
 *   $ ./ext_slo_knee --format=csv --jobs=4 --shards=2
 *
 * Harness-specific flags (shared flags also apply):
 *   --target=CYCLES   windowed p99 SLO target     (default 260: just
 *                     above the mesh model's unloaded p99 of ~232, so
 *                     the knee separates conflict-prone organizations
 *                     from conflict-free ones instead of tripping on
 *                     baseline network latency)
 *   --step=N          accesses per ramp level     (default 25000)
 *   --max=N           top ramp level = tenants    (default 16)
 *   --blocks=N        per-tenant footprint blocks (default 8192)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "directory/registry.hh"
#include "model/cost_model.hh"
#include "sim/campaign.hh"
#include "sim_common.hh"
#include "workload/fleet.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

/** Same comparison sizings as ext_tail_latency (16-core Shared-L2:
 *  selected Cuckoo 1x vs 2x-provisioned conventional designs). */
DirectoryParams
organizationParams(const std::string &name)
{
    if (name == "Cuckoo")
        return cuckooSliceParams(4, 512);
    if (name == "Sparse")
        return sparseSliceParams(8, 512);
    if (name == "Skewed")
        return skewedSliceParams(4, 1024);
    DirectoryParams params;
    params.organization = name;
    if (name == "Elbow") {
        params.ways = 4;
        params.sets = 1024;
    }
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"trace", "scenario"});
    if (cli.costModels.empty())
        cli.costModels = {"mesh"}; // p99 needs timing; mesh is realistic

    std::uint64_t target = 260;
    std::uint64_t step = 25'000;
    std::uint64_t maxLevel = 16;
    std::uint64_t blocks = 8'192;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = cliFlagValue(argv[i], "target"))
            target = std::strtoull(v, nullptr, 10);
        else if (const char *v = cliFlagValue(argv[i], "step"))
            step = std::strtoull(v, nullptr, 10);
        else if (const char *v = cliFlagValue(argv[i], "max"))
            maxLevel = std::strtoull(v, nullptr, 10);
        else if (const char *v = cliFlagValue(argv[i], "blocks"))
            blocks = std::strtoull(v, nullptr, 10);
    }
    if (target == 0 || step == 0 || maxLevel == 0 || blocks == 0) {
        std::fprintf(stderr, "ext_slo_knee: --target/--step/--max/"
                             "--blocks must be >= 1\n");
        return 2;
    }

    // One spec string is the whole workload axis: the ramp escalates
    // one level per step-sized window, so the measure run needs room
    // for every level plus hold windows past the knee.
    const std::string rampSpec =
        "slo-ramp:metric=p99:target=" + std::to_string(target) +
        ":step=" + std::to_string(step) +
        ":max=" + std::to_string(maxLevel) +
        ":tenants=" + std::to_string(maxLevel) +
        ":blocks=" + std::to_string(blocks);

    ExperimentOptions opts;
    opts.warmupAccesses = 2 * step * cli.scale;
    opts.measureAccesses = (maxLevel + 8) * step * cli.scale;
    opts.occupancySampleEvery = 10'000;

    SweepSpec spec;
    appendCostModelOptions(spec, "", cli.applyOverrides(opts), cli);
    for (const std::string &org : DirectoryRegistry::instance().names())
        spec.config(org, paperConfigWith(CmpConfigKind::SharedL2,
                                         organizationParams(org)));
    try {
        appendScenarioWorkloads(spec, rampSpec, 16);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ext_slo_knee: %s\n", e.what());
        return 2;
    }

    const SweepRunner runner(cli.sweep());
    const std::vector<SweepRecord> records = std::move(
        campaignRunMany(cli, runner, std::span<const SweepSpec>(&spec, 1),
                        "ext_slo_knee")
            .front());

    Reporter report(cli.format);
    report.note("SLO knee: max sustainable load (active fleet tenants) "
                "with windowed p99 directory latency <= " +
                std::to_string(target) +
                " cycles; ramp steps one level per " +
                std::to_string(step) +
                "-access probe window (deterministic at any "
                "--jobs/--shards)");

    for (const std::string &model : cli.costModels) {
        ReportTable table(
            "SLO knee by organization, '" + model + "' cost model",
            {"organization", "knee level", "final level", "knee p99",
             "cross p99", "transitions", "digest"});
        for (const SweepRecord &rec : records) {
            if (rec.result.costModel != model)
                continue;
            char digest[20];
            std::snprintf(digest, sizeof digest, "%016llx",
                          static_cast<unsigned long long>(
                              rec.result.feedbackDigest));
            table.addRow(
                {cellText(rec.configLabel),
                 cellNum(double(rec.result.rampKneeLevel), "%.0f"),
                 cellNum(double(rec.result.rampFinalLevel), "%.0f"),
                 cellNum(rec.result.rampKneeMetric, "%.0f"),
                 cellNum(rec.result.rampCrossMetric, "%.0f"),
                 cellNum(double(rec.result.feedbackEvents), "%.0f"),
                 cellText(digest)});
        }
        report.table(table);
    }
    return 0;
}
