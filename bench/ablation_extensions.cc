/**
 * @file
 * Ablation of the §6 design alternatives around the Cuckoo directory:
 *
 *  - **Elbow** (Spjuth [37,38]): skewed lookup, at most one
 *    displacement. The paper argues it needs extra lookups yet still
 *    forces more invalidations than the Cuckoo organization.
 *  - **Bucketized cuckoo** (Panigrahy [30]): multiple entries per
 *    bucket; §6 suggests it could let a cheaper 3-ary design replace
 *    the 4-ary at high occupancy.
 *  - **Stash** (Kirsch et al. [22]): a small CAM absorbing overflow.
 *    §6 argues the directory can simply invalidate on rare overflow and
 *    "does not benefit from a stash".
 *
 * All variants churn random tags at fixed steady-state occupancies and
 * report forced-invalidation rates, plus average attempts for the
 * displacement-based designs. The variant x occupancy grid runs once
 * through the sweep runner's generic map (each cell owns its directory
 * and RNG) and feeds both tables.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/elbow_directory.hh"
#include "sim/sweep.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

constexpr std::size_t kCaches = 16;
constexpr std::size_t kEntries = 4096;

const double kOccupancies[] = {0.50, 0.65, 0.80, 0.90};
constexpr std::size_t kOccPoints = std::size(kOccupancies);

struct Outcome
{
    double attempts = 0.0;
    double invalRate = 0.0;
};

Outcome
churn(Directory &dir, double occupancy, std::uint64_t ops,
      std::uint64_t seed)
{
    Rng rng(seed);
    DirAccessContext ctx = dir.makeContext();
    std::vector<Tag> live;
    const auto target =
        static_cast<std::size_t>(occupancy * double(dir.capacity()));
    for (std::uint64_t op = 0; op < ops; ++op) {
        if (live.size() >= target) {
            const std::size_t k = rng.below(live.size());
            dir.removeSharer(live[k], 0);
            live[k] = live.back();
            live.pop_back();
            continue;
        }
        const Tag tag = rng.next() >> 4;
        if (dir.probe(tag))
            continue;
        ctx.reset();
        dir.access(DirRequest{tag, 0, false}, ctx);
        if (!ctx.back().insertDiscarded)
            live.push_back(tag);
    }
    return {dir.stats().insertionAttempts.mean(),
            dir.stats().forcedInvalidationRate()};
}

struct Variant
{
    const char *label;
    std::unique_ptr<Directory> (*make)();
};

const Variant kVariants[] = {
    {"Skewed 4w (no displace)",
     [] {
         DirectoryParams p;
         p.organization = "Skewed";
         p.numCaches = kCaches;
         p.ways = 4;
         p.sets = kEntries / 4;
         return makeDirectory(p);
     }},
    {"Elbow 4w (1 displace)",
     []() -> std::unique_ptr<Directory> {
         return std::make_unique<ElbowDirectory>(
             kCaches, 4, kEntries / 4, SharerFormat::FullVector);
     }},
    {"Cuckoo 4w",
     []() -> std::unique_ptr<Directory> {
         return std::make_unique<CuckooDirectory>(
             kCaches, 4, kEntries / 4, SharerFormat::FullVector);
     }},
    {"Cuckoo 3w",
     []() -> std::unique_ptr<Directory> {
         return std::make_unique<CuckooDirectory>(
             kCaches, 3, kEntries / 4, SharerFormat::FullVector,
             HashKind::Skewing, 32, 1, 1, 0);
     }},
    {"Cuckoo 3w, 2-slot buckets",
     []() -> std::unique_ptr<Directory> {
         return std::make_unique<CuckooDirectory>(
             kCaches, 3, kEntries / 8, SharerFormat::FullVector,
             HashKind::Skewing, 32, 1, 2, 0);
     }},
    {"Cuckoo 4w + 16-entry stash",
     []() -> std::unique_ptr<Directory> {
         return std::make_unique<CuckooDirectory>(
             kCaches, 4, kEntries / 4, SharerFormat::FullVector,
             HashKind::Skewing, 32, 1, 1, 16);
     }},
};
constexpr std::size_t kVariantCount = std::size(kVariants);

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const std::uint64_t ops = flagU64(argc, argv, "ops", 400000);
    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());

    // One cell per (variant, occupancy); both tables read the same run.
    const auto outcomes = runner.map<Outcome>(
        kVariantCount * kOccPoints, [ops](std::size_t i) {
            auto dir = kVariants[i / kOccPoints].make();
            return churn(*dir, kOccupancies[i % kOccPoints], ops, 77);
        });

    std::vector<std::string> columns{"organization"};
    for (double occ : kOccupancies) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.0f%%", occ * 100.0);
        columns.push_back(buf);
    }

    Reporter report(cli.format);
    const struct
    {
        const char *title;
        bool attempts;
    } tables[] = {
        {"Extension ablation: forced-invalidation rate vs occupancy "
         "(occupancy-normalized)",
         false},
        {"Average insertion attempts at the same points", true},
    };
    for (const auto &spec : tables) {
        ReportTable table(spec.title, columns);
        for (std::size_t v = 0; v < kVariantCount; ++v) {
            std::vector<ReportCell> row{cellText(kVariants[v].label)};
            for (std::size_t o = 0; o < kOccPoints; ++o) {
                const Outcome &out = outcomes[v * kOccPoints + o];
                row.push_back(spec.attempts ? cellNum(out.attempts)
                                            : cellPct(out.invalRate));
            }
            table.addRow(std::move(row));
        }
        report.table(table);
    }

    report.note("Paper (§6): Elbow's single displacement lands between "
                "plain skewed and Cuckoo; buckets help 3-ary at high "
                "occupancy; the stash only matters where the paper "
                "would simply (and harmlessly) invalidate.");
    return 0;
}
