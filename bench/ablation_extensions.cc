/**
 * @file
 * Ablation of the §6 design alternatives around the Cuckoo directory:
 *
 *  - **Elbow** (Spjuth [37,38]): skewed lookup, at most one
 *    displacement. The paper argues it needs extra lookups yet still
 *    forces more invalidations than the Cuckoo organization.
 *  - **Bucketized cuckoo** (Panigrahy [30]): multiple entries per
 *    bucket; §6 suggests it could let a cheaper 3-ary design replace
 *    the 4-ary at high occupancy.
 *  - **Stash** (Kirsch et al. [22]): a small CAM absorbing overflow.
 *    §6 argues the directory can simply invalidate on rare overflow and
 *    "does not benefit from a stash".
 *
 * All variants churn random tags at fixed steady-state occupancies and
 * report forced-invalidation rates, plus average attempts for the
 * displacement-based designs.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/elbow_directory.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

constexpr std::size_t kCaches = 16;
constexpr std::size_t kEntries = 4096;

struct Outcome
{
    double attempts = 0.0;
    double invalRate = 0.0;
};

Outcome
churn(Directory &dir, double occupancy, std::uint64_t ops,
      std::uint64_t seed)
{
    Rng rng(seed);
    DirAccessContext ctx = dir.makeContext();
    std::vector<Tag> live;
    const auto target =
        static_cast<std::size_t>(occupancy * double(dir.capacity()));
    for (std::uint64_t op = 0; op < ops; ++op) {
        if (live.size() >= target) {
            const std::size_t k = rng.below(live.size());
            dir.removeSharer(live[k], 0);
            live[k] = live.back();
            live.pop_back();
            continue;
        }
        const Tag tag = rng.next() >> 4;
        if (dir.probe(tag))
            continue;
        ctx.reset();
        dir.access(DirRequest{tag, 0, false}, ctx);
        if (!ctx.back().insertDiscarded)
            live.push_back(tag);
    }
    return {dir.stats().insertionAttempts.mean(),
            dir.stats().forcedInvalidationRate()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops = flagU64(argc, argv, "ops", 400000);

    banner("Extension ablation: forced-invalidation rate vs occupancy "
           "(occupancy-normalized)");
    std::printf("%-26s", "organization");
    const double occupancies[] = {0.50, 0.65, 0.80, 0.90};
    for (double occ : occupancies)
        std::printf("  %9.0f%%", occ * 100.0);
    std::printf("\n");

    struct Variant
    {
        const char *label;
        std::unique_ptr<Directory> (*make)();
    };
    const Variant variants[] = {
        {"Skewed 4w (no displace)",
         [] {
             DirectoryParams p;
             p.organization = "Skewed";
             p.numCaches = kCaches;
             p.ways = 4;
             p.sets = kEntries / 4;
             return makeDirectory(p);
         }},
        {"Elbow 4w (1 displace)",
         []() -> std::unique_ptr<Directory> {
             return std::make_unique<ElbowDirectory>(
                 kCaches, 4, kEntries / 4, SharerFormat::FullVector);
         }},
        {"Cuckoo 4w",
         []() -> std::unique_ptr<Directory> {
             return std::make_unique<CuckooDirectory>(
                 kCaches, 4, kEntries / 4, SharerFormat::FullVector);
         }},
        {"Cuckoo 3w",
         []() -> std::unique_ptr<Directory> {
             return std::make_unique<CuckooDirectory>(
                 kCaches, 3, kEntries / 4, SharerFormat::FullVector,
                 HashKind::Skewing, 32, 1, 1, 0);
         }},
        {"Cuckoo 3w, 2-slot buckets",
         []() -> std::unique_ptr<Directory> {
             return std::make_unique<CuckooDirectory>(
                 kCaches, 3, kEntries / 8, SharerFormat::FullVector,
                 HashKind::Skewing, 32, 1, 2, 0);
         }},
        {"Cuckoo 4w + 16-entry stash",
         []() -> std::unique_ptr<Directory> {
             return std::make_unique<CuckooDirectory>(
                 kCaches, 4, kEntries / 4, SharerFormat::FullVector,
                 HashKind::Skewing, 32, 1, 1, 16);
         }},
    };

    for (const Variant &v : variants) {
        std::printf("%-26s", v.label);
        for (double occ : occupancies) {
            auto dir = v.make();
            const auto out = churn(*dir, occ, ops, 77);
            std::printf("  %10s", pct(out.invalRate).c_str());
        }
        std::printf("\n");
    }

    banner("Average insertion attempts at the same points");
    for (const Variant &v : variants) {
        std::printf("%-26s", v.label);
        for (double occ : occupancies) {
            auto dir = v.make();
            const auto out = churn(*dir, occ, ops, 77);
            std::printf("  %10.3f", out.attempts);
        }
        std::printf("\n");
    }

    std::printf("\nPaper (§6): Elbow's single displacement lands between "
                "plain skewed and Cuckoo; buckets help 3-ary at high "
                "occupancy; the stash only matters where the paper "
                "would simply (and harmlessly) invalidate.\n");
    return 0;
}
