/**
 * @file
 * Beyond-the-paper extension: time-resolved directory dynamics under
 * phased scenarios.
 *
 * The paper's figures are end-of-run aggregates over stationary
 * workloads; its *arguments*, however, are about behaviour over time —
 * gradual frame-by-frame eviction, stale entries accumulating until
 * conflicts purge them, invalidation pressure when sharing patterns
 * change (§3.2, §5.4). This harness drives every registered directory
 * organization through phased scenarios (workload/scenario.hh) with
 * interval telemetry on, and prints per-window time series of
 * occupancy and forced-invalidation rate — directly probing, e.g., how
 * a Cuckoo directory's occupancy decays after a thread migration
 * strands stale entries versus how Tagless's imprecise filters and
 * Duplicate-Tag's exact mirroring respond to the same storm.
 *
 *   $ ./ext_phase_dynamics                       # 3 default scenarios
 *   $ ./ext_phase_dynamics --scenario=all --format=csv
 *   $ ./ext_phase_dynamics --scenario=diurnal --interval=25000
 *   $ ./ext_phase_dynamics --series-json=series.json --cost-model=mesh
 *
 * Shared flags apply (--jobs/--shards/--format/--filter/--scale/
 * --warmup/--measure/--cost-model); --interval=N sets the telemetry
 * window (in accesses); --series-json=PATH additionally exports the
 * raw per-window series as structured JSON ('-' = stdout), for
 * plotting pipelines that should not scrape the report tables. Besides
 * the time series, each scenario gets a per-phase aggregate table —
 * the windows folded along the schedule (sim/interval_export.hh) with
 * exact integer sums. Everything is bit-identical at any
 * --jobs/--shards value (pinned by tests/scenario_test.cc and the CI
 * scenario smoke).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "directory/registry.hh"
#include "sim/interval_export.hh"
#include "sim_common.hh"
#include "workload/scenario.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

/**
 * Comparison sizing per organization on the 16-core Shared-L2 CMP
 * (2048 frames per slice): the paper's selected Cuckoo (1x) against
 * 2x-provisioned Sparse/Skewed/Elbow, the §2 exact designs, and
 * Tagless. Unknown (future) organizations run on their defaults.
 */
DirectoryParams
organizationParams(const std::string &name)
{
    if (name == "Cuckoo")
        return cuckooSliceParams(4, 512);
    if (name == "Sparse")
        return sparseSliceParams(8, 512);
    if (name == "Skewed")
        return skewedSliceParams(4, 1024);
    DirectoryParams params;
    params.organization = name;
    if (name == "Elbow") {
        params.ways = 4;
        params.sets = 1024;
    }
    return params;
}

void
emitSeries(Reporter &report, const std::string &title,
           const Scenario &scenario, std::uint64_t first_access,
           std::uint64_t interval,
           const std::vector<SweepRecord> &records,
           double (*metric)(const IntervalRecord &))
{
    std::size_t num_windows = 0;
    for (const SweepRecord &rec : records)
        num_windows =
            std::max(num_windows, rec.result.intervals.windows.size());

    std::vector<std::string> columns{"access", "phase"};
    for (const SweepRecord &rec : records)
        columns.push_back(rec.configLabel);
    ReportTable table(title, std::move(columns));
    for (std::size_t w = 0; w < num_windows; ++w) {
        const std::uint64_t start = first_access + w * interval;
        std::vector<ReportCell> row;
        row.push_back(cellNum(double(start), "%.0f"));
        row.push_back(cellText(scenario.phaseAt(start).label));
        for (const SweepRecord &rec : records) {
            const auto &windows = rec.result.intervals.windows;
            row.push_back(w < windows.size()
                              ? cellNum(metric(windows[w]), "%.4f")
                              : cellMissing());
        }
        table.addRow(std::move(row));
    }
    report.table(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"trace"});

    std::uint64_t interval = 50'000;
    std::string series_json;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = cliFlagValue(argv[i], "interval")) {
            char *end = nullptr;
            interval = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || interval == 0) {
                std::fprintf(stderr,
                             "ext_phase_dynamics: bad --interval value "
                             "'%s'\n",
                             v);
                return 2;
            }
        } else if (const char *v = cliFlagValue(argv[i], "series-json")) {
            if (*v == '\0') {
                std::fprintf(stderr, "ext_phase_dynamics: --series-json "
                                     "needs a path (or '-')\n");
                return 2;
            }
            series_json = v;
        }
    }

    const std::string scenario_arg = cli.scenario.empty()
                                         ? "migration-storm,"
                                           "phase-oltp-dss,consolidation"
                                         : cli.scenario;
    const std::vector<std::string> scenarios =
        splitScenarioSpecs(scenario_arg);
    if (scenarios.empty()) {
        std::fprintf(stderr, "ext_phase_dynamics: --scenario= names no "
                             "scenarios\n");
        return 2;
    }

    const CmpConfig base = CmpConfig::paperConfig(CmpConfigKind::SharedL2);

    // No warmup by default: the directory filling from empty *is* the
    // signal. The default measure length covers one 6-phase preset pass.
    ExperimentOptions opts;
    opts.warmupAccesses = 0;
    opts.measureAccesses = 1'500'000 * cli.scale;
    opts.occupancySampleEvery = 10'000;
    opts = cli.applyOverrides(opts);
    opts.intervalAccesses = interval;

    // One spec per scenario, each carrying the full organization axis;
    // runMany flattens them into a single cell pool (7 orgs x N
    // scenarios in flight together).
    std::vector<SweepSpec> specs;
    std::vector<Scenario> resolved;
    for (const std::string &item : scenarios) {
        try {
            resolved.push_back(resolveScenario(item, base.numCores));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--scenario: %s\n", e.what());
            return 2;
        }
        SweepSpec spec;
        spec.options("", opts);
        spec.workload(resolved.back().name, scenarioWorkloadParams(item));
        for (const std::string &org :
             DirectoryRegistry::instance().names())
            spec.config(org, paperConfigWith(CmpConfigKind::SharedL2,
                                             organizationParams(org)));
        specs.push_back(std::move(spec));
    }

    const SweepRunner runner(cli.sweep());
    const std::vector<std::vector<SweepRecord>> results =
        runner.runMany(specs);

    Reporter report(cli.format);
    report.note("phase dynamics: " + std::to_string(interval) +
                "-access windows, 16-core Shared-L2 CMP; occupancy is "
                "the window-end fraction of directory entries in use, "
                "invalidation rate is forced evictions per insertion "
                "within the window");
    for (std::size_t s = 0; s < specs.size(); ++s) {
        const Scenario &scenario = resolved[s];
        emitSeries(report,
                   "occupancy over time: " + scenario.name, scenario,
                   opts.warmupAccesses, interval, results[s],
                   [](const IntervalRecord &rec) {
                       return rec.occupancy();
                   });
        emitSeries(report,
                   "forced-invalidation rate over time: " + scenario.name,
                   scenario, opts.warmupAccesses, interval, results[s],
                   [](const IntervalRecord &rec) {
                       return rec.invalidationRate();
                   });

        // Per-phase aggregates: the series folded along the schedule —
        // exact integer sums per phase occurrence, one block per
        // organization. Latency columns appear when --cost-model timed
        // the run.
        bool timed = false;
        for (const SweepRecord &rec : results[s])
            timed = timed || !rec.result.system.latency.empty();
        std::vector<std::string> columns{
            "organization", "phase",      "start",
            "windows",      "accesses",   "misses",
            "insertions",   "inval rate", "occupancy"};
        if (timed) {
            columns.push_back("lat p50");
            columns.push_back("lat p99");
        }
        ReportTable aggregates("per-phase aggregates: " + scenario.name,
                               std::move(columns));
        for (const SweepRecord &rec : results[s]) {
            const std::vector<PhaseAggregate> phases = aggregateByPhase(
                scenario, opts.warmupAccesses, rec.result.intervals);
            for (const PhaseAggregate &agg : phases) {
                std::vector<ReportCell> row{
                    cellText(rec.configLabel),
                    cellText(agg.label),
                    cellNum(double(agg.firstAccess), "%.0f"),
                    cellNum(double(agg.windows), "%.0f"),
                    cellNum(double(agg.total.accesses), "%.0f"),
                    cellNum(double(agg.total.cacheMisses), "%.0f"),
                    cellNum(double(agg.total.insertions), "%.0f"),
                    cellNum(agg.total.invalidationRate(), "%.4f"),
                    cellNum(agg.total.occupancy(), "%.4f")};
                if (timed) {
                    row.push_back(cellNum(
                        double(agg.total.latency.percentile(500)),
                        "%.0f"));
                    row.push_back(cellNum(
                        double(agg.total.latency.percentile(990)),
                        "%.0f"));
                }
                aggregates.addRow(std::move(row));
            }
        }
        report.table(aggregates);
    }

    if (!series_json.empty()) {
        // Raw per-window export for plotting pipelines: one group per
        // scenario, one labelled series per organization.
        std::vector<IntervalSeriesGroup> groups;
        for (std::size_t s = 0; s < specs.size(); ++s) {
            IntervalSeriesGroup group;
            group.name = resolved[s].name;
            group.firstAccess = opts.warmupAccesses;
            for (const SweepRecord &rec : results[s])
                group.series.push_back(LabelledIntervalSeries{
                    rec.configLabel, &rec.result.intervals});
            groups.push_back(std::move(group));
        }
        try {
            writeIntervalSeriesJsonFile(series_json, groups);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--series-json: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
