/**
 * @file
 * Fig. 4 — per-core area and energy scalability of prior directory
 * organizations, 16 to 1024 cores (§3).
 *
 * System per the figure caption: 16-way private L2 caches, two caches
 * per core [I+D]. Organizations: Duplicate-Tag, Tagless, Sparse 8x
 * (full vector), In-Cache, Sparse 8x Hierarchical, Sparse 8x Coarse.
 *
 * Axes as in the paper: energy relative to a 1MB 16-way L2 tag lookup,
 * area relative to a 1MB L2 data array; both per core (per slice).
 *
 * Paper shape: Duplicate-Tag and Tagless energy grow linearly per core
 * (quadratic aggregate); full-vector and in-cache area grow linearly
 * per core; Coarse/Hierarchical are flat but sit high due to the 8x
 * capacity over-provisioning.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "model/directory_model.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

DirSystemParams
fig4System(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 2;      // I+D (figure caption)
    p.framesPerCache = 16384; // 1MB 16-way private L2
    p.cacheAssoc = 16;
    return p;
}

const std::vector<std::pair<OrgModel, const char *>> kOrgs = {
    {OrgModel::DuplicateTag, "Duplicate-Tag"},
    {OrgModel::Tagless, "Tagless"},
    {OrgModel::SparseFull, "Sparse 8x"},
    {OrgModel::InCache, "In-Cache"},
    {OrgModel::SparseHier, "Sparse 8x Hier."},
    {OrgModel::SparseCoarse, "Sparse 8x Coarse"},
};

const std::size_t kCores[] = {16, 32, 64, 128, 256, 512, 1024};

} // namespace

int
main()
{
    banner("Fig. 4 (top): per-core directory area, % of 1MB L2 data array");
    std::printf("%-18s", "organization");
    for (std::size_t c : kCores)
        std::printf("  %8zu", c);
    std::printf("\n");
    for (const auto &[org, label] : kOrgs) {
        std::printf("%-18s", label);
        for (std::size_t c : kCores) {
            const auto cost = directoryCost(org, fig4System(c));
            std::printf("  %7.2f%%", cost.areaRelative * 100.0);
        }
        std::printf("\n");
    }

    banner("Fig. 4 (bottom): per-core directory energy, % of 1MB L2 tag "
           "lookup");
    std::printf("%-18s", "organization");
    for (std::size_t c : kCores)
        std::printf("  %8zu", c);
    std::printf("\n");
    for (const auto &[org, label] : kOrgs) {
        std::printf("%-18s", label);
        for (std::size_t c : kCores) {
            const auto cost = directoryCost(org, fig4System(c));
            std::printf("  %7.0f%%", cost.energyRelative * 100.0);
        }
        std::printf("\n");
    }
    return 0;
}
