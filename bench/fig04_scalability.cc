/**
 * @file
 * Fig. 4 — per-core area and energy scalability of prior directory
 * organizations, 16 to 1024 cores (§3).
 *
 * System per the figure caption: 16-way private L2 caches, two caches
 * per core [I+D]. Organizations: Duplicate-Tag, Tagless, Sparse 8x
 * (full vector), In-Cache, Sparse 8x Hierarchical, Sparse 8x Coarse.
 * The organization x core-count grid runs through the sweep runner's
 * generic map (the cost model is analytical — no simulation).
 *
 * Axes as in the paper: energy relative to a 1MB 16-way L2 tag lookup,
 * area relative to a 1MB L2 data array; both per core (per slice).
 *
 * Paper shape: Duplicate-Tag and Tagless energy grow linearly per core
 * (quadratic aggregate); full-vector and in-cache area grow linearly
 * per core; Coarse/Hierarchical are flat but sit high due to the 8x
 * capacity over-provisioning.
 */

#include <cstdio>
#include <vector>

#include "model/directory_model.hh"
#include "sharers/sharer_rep.hh"
#include "sim/sweep.hh"

using namespace cdir;

namespace {

DirSystemParams
fig4System(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 2;      // I+D (figure caption)
    p.framesPerCache = 16384; // 1MB 16-way private L2
    p.cacheAssoc = 16;
    return p;
}

const std::vector<std::pair<OrgModel, const char *>> kOrgs = {
    {OrgModel::DuplicateTag, "Duplicate-Tag"},
    {OrgModel::Tagless, "Tagless"},
    {OrgModel::SparseFull, "Sparse 8x"},
    {OrgModel::InCache, "In-Cache"},
    {OrgModel::SparseHier, "Sparse 8x Hier."},
    {OrgModel::SparseCoarse, "Sparse 8x Coarse"},
};

const std::size_t kCores[] = {16,  32,   64,   128,  256,
                              512, 1024, 2048, 4096};
constexpr std::size_t kCorePoints = std::size(kCores);

/**
 * Cross-check the analytical sharer-field widths against the
 * simulator's sharerStorageBits() at every grid point — the model and
 * the executable directories must charge the same bits per entry, or
 * the Fig. 4 curves describe a different machine than the one
 * ext_scalability_sim measures. @return mismatch count (0 = consistent).
 */
std::size_t
crossCheckSharerBits()
{
    const std::pair<OrgModel, SharerFormat> pairs[] = {
        {OrgModel::SparseFull, SharerFormat::FullVector},
        {OrgModel::SparseCoarse, SharerFormat::CoarseVector},
        {OrgModel::SparseHier, SharerFormat::Hierarchical},
    };
    std::size_t mismatches = 0;
    for (const std::size_t cores : kCores) {
        const std::size_t caches = fig4System(cores).numCaches();
        for (const auto &[org, format] : pairs) {
            const double model = modelSharerFieldBits(org, caches);
            const unsigned sim = sharerStorageBits(format, caches);
            if (model != double(sim)) {
                std::fprintf(stderr,
                             "fig04: sharer-bits mismatch at %zu "
                             "caches: model(%s) = %.1f, "
                             "sharerStorageBits = %u\n",
                             caches, orgModelName(org).c_str(), model,
                             sim);
                ++mismatches;
            }
        }
    }
    return mismatches;
}

std::vector<std::string>
coreColumns()
{
    std::vector<std::string> columns{"organization"};
    for (std::size_t c : kCores)
        columns.push_back(std::to_string(c));
    return columns;
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());

    // One grid cell per (organization, core count).
    const std::size_t cells = kOrgs.size() * kCorePoints;
    const auto costs = runner.map<DirCost>(cells, [](std::size_t i) {
        const auto &[org, label] = kOrgs[i / kCorePoints];
        return directoryCost(org, fig4System(kCores[i % kCorePoints]));
    });

    Reporter report(cli.format);
    const struct
    {
        const char *title;
        bool energy;
        const char *fmt;
    } tables[] = {
        {"Fig. 4 (top): per-core directory area, % of 1MB L2 data array",
         false, "%.2f%%"},
        {"Fig. 4 (bottom): per-core directory energy, % of 1MB L2 tag "
         "lookup",
         true, "%.0f%%"},
    };
    for (const auto &spec : tables) {
        ReportTable table(spec.title, coreColumns());
        for (std::size_t o = 0; o < kOrgs.size(); ++o) {
            std::vector<ReportCell> row{cellText(kOrgs[o].second)};
            for (std::size_t c = 0; c < kCorePoints; ++c) {
                const DirCost &cost = costs[o * kCorePoints + c];
                const double rel = spec.energy ? cost.energyRelative
                                               : cost.areaRelative;
                row.push_back(cellNum(rel * 100.0, spec.fmt));
            }
            table.addRow(std::move(row));
        }
        report.table(table);
    }

    // Analytical-vs-simulator storage consistency (also exercised at
    // 2048/4096 cores, beyond the paper's 1024-core axis).
    if (const std::size_t mismatches = crossCheckSharerBits()) {
        std::fprintf(stderr,
                     "fig04: %zu sharer-bits mismatch(es) between the "
                     "analytical model and the simulator\n",
                     mismatches);
        return 1;
    }
    return 0;
}
