/**
 * @file
 * Footnote 1 — the directory operation mix.
 *
 * The paper's energy model weighs operation energies by frequencies
 * measured across its workload suite: insert 23.5%, add sharer 26.9%,
 * remove sharer 24.9%, remove tag 23.5%, invalidate-all 1.2%. This
 * harness measures the same mix from our simulation (both
 * configurations, all nine workloads — one sweep spec per
 * configuration, run on the shared pool) and prints it next to the
 * paper's numbers — the cross-check that ties the simulator to the
 * analytical model's inputs.
 */

#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const SweepRunner runner(cli.sweep());

    std::uint64_t inserts = 0, adds = 0, removes = 0, frees = 0,
                  invals = 0;
    for (CmpConfigKind kind :
         {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
        SweepSpec spec = paperSweep(kind, cli);
        spec.config(configName(kind),
                    paperConfigWith(kind, selectedCuckoo(kind)));
        for (const SweepRecord &rec : runner.run(spec)) {
            inserts += rec.result.directory.insertions;
            adds += rec.result.directory.sharerAdds;
            frees += rec.result.directory.entryFrees;
            removes += rec.result.directory.sharerRemovals -
                       rec.result.directory.entryFrees;
            invals += rec.result.directory.writeUpgrades;
        }
    }
    const double total =
        double(inserts + adds + removes + frees + invals);

    ReportTable table("Directory operation mix (footnote 1)",
                      {"operation", "measured", "paper"});
    const struct
    {
        const char *label;
        std::uint64_t count;
        const char *paper;
    } rows[] = {
        {"insert new tag", inserts, "23.5%"},
        {"add sharer to entry", adds, "26.9%"},
        {"remove sharer from entry", removes, "24.9%"},
        {"remove tag (last sharer)", frees, "23.5%"},
        {"invalidate all sharers", invals, "1.2%"},
    };
    for (const auto &r : rows) {
        table.addRow({cellText(r.label),
                      total == 0.0
                          ? cellMissing()
                          : cellNum(100.0 * double(r.count) / total,
                                    "%.1f%%"),
                      cellText(r.paper)});
    }

    Reporter report(cli.format);
    report.table(table);
    return 0;
}
