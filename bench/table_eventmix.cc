/**
 * @file
 * Footnote 1 — the directory operation mix.
 *
 * The paper's energy model weighs operation energies by frequencies
 * measured across its workload suite: insert 23.5%, add sharer 26.9%,
 * remove sharer 24.9%, remove tag 23.5%, invalidate-all 1.2%. This
 * harness measures the same mix from our simulation (both
 * configurations, all nine workloads) and prints it next to the
 * paper's numbers — the cross-check that ties the simulator to the
 * analytical model's inputs.
 */

#include <cstdio>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    std::uint64_t inserts = 0, adds = 0, removes = 0, frees = 0,
                  invals = 0;
    for (CmpConfigKind kind :
         {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
        for (PaperWorkload w : allPaperWorkloads()) {
            const auto res =
                runPaperWorkload(kind, w, selectedCuckoo(kind), scale);
            inserts += res.directory.insertions;
            adds += res.directory.sharerAdds;
            frees += res.directory.entryFrees;
            removes += res.directory.sharerRemovals -
                       res.directory.entryFrees;
            invals += res.directory.writeUpgrades;
        }
    }
    const double total =
        double(inserts + adds + removes + frees + invals);

    banner("Directory operation mix (footnote 1)");
    std::printf("%-28s  %10s  %8s\n", "operation", "measured", "paper");
    std::printf("%-28s  %9.1f%%  %8s\n", "insert new tag",
                100.0 * double(inserts) / total, "23.5%");
    std::printf("%-28s  %9.1f%%  %8s\n", "add sharer to entry",
                100.0 * double(adds) / total, "26.9%");
    std::printf("%-28s  %9.1f%%  %8s\n", "remove sharer from entry",
                100.0 * double(removes) / total, "24.9%");
    std::printf("%-28s  %9.1f%%  %8s\n", "remove tag (last sharer)",
                100.0 * double(frees) / total, "23.5%");
    std::printf("%-28s  %9.1f%%  %8s\n", "invalidate all sharers",
                100.0 * double(invals) / total, "1.2%");
    return 0;
}
