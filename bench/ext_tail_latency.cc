/**
 * @file
 * Beyond-the-paper extension: tail latency of directory accesses under
 * pluggable timing cost models.
 *
 * The paper argues the Cuckoo directory wins on *events* — fewer forced
 * evictions and bounded insertion attempts (Figs. 9-12) — but events
 * only matter because they cost time on a real interconnect: a cuckoo
 * relocation chain serialises directory writes, every forced eviction
 * multicasts invalidations across the NoC, and an off-chip miss dwarfs
 * both. This harness attaches the timing subsystem (model/cost_model.hh
 * + model/latency_histogram.hh) to the simulator and reports the
 * latency *distribution* — p50/p99/p99.9, mean, max — per organization:
 * a mean-equivalent organization with a longer relocation tail shows up
 * here and nowhere else in the repository.
 *
 * The default grid sweeps every registered organization x a synthetic
 * load ladder (the DB2 profile with its data footprint scaled 1x..6x,
 * driving directory pressure from comfortable to thrashing) x one
 * phased scenario preset, under both shipped cost models:
 *
 *   $ ./ext_tail_latency                          # full default grid
 *   $ ./ext_tail_latency --cost-model=mesh --format=csv
 *   $ ./ext_tail_latency --scenario=all           # presets as the axis
 *   $ ./ext_tail_latency --trace=traces/          # recorded traces
 *
 * Shared flags apply (--jobs/--shards/--format/--filter/--scale/
 * --warmup/--measure/--trace/--scenario/--cost-model). Histograms are
 * integer-bucketed with exact merge, so every number printed here is
 * bit-identical at any --jobs x --shards setting (pinned by
 * tests/cost_model_test.cc and the CI tail-latency smoke).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "directory/registry.hh"
#include "model/cost_model.hh"
#include "sim/campaign.hh"
#include "sim_common.hh"
#include "workload/scenario.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

/** Same comparison sizings as ext_phase_dynamics (16-core Shared-L2:
 *  selected Cuckoo 1x vs 2x-provisioned conventional designs). */
DirectoryParams
organizationParams(const std::string &name)
{
    if (name == "Cuckoo")
        return cuckooSliceParams(4, 512);
    if (name == "Sparse")
        return sparseSliceParams(8, 512);
    if (name == "Skewed")
        return skewedSliceParams(4, 1024);
    DirectoryParams params;
    params.organization = name;
    if (name == "Elbow") {
        params.ways = 4;
        params.sets = 1024;
    }
    return params;
}

/** DB2 sharing profile with footprints scaled by @p mult — the load
 *  ladder's rungs (directory pressure grows with footprint). */
WorkloadParams
loadPoint(std::size_t num_cores, unsigned mult)
{
    WorkloadParams params =
        paperWorkloadParams(PaperWorkload::OltpDb2, false, num_cores);
    params.name = "DB2 x" + std::to_string(mult);
    params.sharedBlocks *= mult;
    params.privateBlocksPerCore *= mult;
    return params;
}

/** Label of the model a record ran under ("" never happens here: every
 *  options point carries a cost model). */
const std::string &
recordModel(const SweepRecord &rec)
{
    return rec.result.costModel;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessOptions cli = parseHarnessOptions(argc, argv);
    if (cli.costModels.empty())
        cli.costModels = costModelNames(); // default: every model

    const CmpConfig base = CmpConfig::paperConfig(CmpConfigKind::SharedL2);

    // Directory pressure (not cache warmth) sets the tail, and the
    // ladder's upper rungs exceed the directory's capacity by design,
    // so a modest warmup reaches steady conflict state.
    ExperimentOptions opts;
    opts.warmupAccesses = 500'000 * cli.scale;
    opts.measureAccesses = 1'000'000 * cli.scale;
    opts.occupancySampleEvery = 10'000;

    SweepSpec spec;
    appendCostModelOptions(spec, "", cli.applyOverrides(opts), cli);
    for (const std::string &org : DirectoryRegistry::instance().names())
        spec.config(org, paperConfigWith(CmpConfigKind::SharedL2,
                                         organizationParams(org)));

    if (!cli.trace.empty() && !cli.scenario.empty()) {
        std::fprintf(stderr, "--trace and --scenario are mutually "
                             "exclusive workload axes\n");
        return 2;
    }
    try {
        if (!cli.trace.empty()) {
            appendTraceWorkloads(spec, cli.trace);
        } else if (!cli.scenario.empty()) {
            appendScenarioWorkloads(spec, cli.scenario, base.numCores);
        } else {
            // Default axis: the load ladder plus one phased preset, so
            // both stationary pressure and dynamic churn shape the tail.
            for (const unsigned mult : {1u, 2u, 4u, 6u})
                spec.workload(loadPoint(base.numCores, mult).name,
                              loadPoint(base.numCores, mult));
            spec.workload("migration-storm",
                          scenarioWorkloadParams("migration-storm"));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ext_tail_latency: %s\n", e.what());
        return 2;
    }

    const SweepRunner runner(cli.sweep());
    // campaignRunMany honours --campaign-manifest / --campaign-results
    // so this grid can run as a checkpointed multi-process campaign.
    const std::vector<SweepRecord> records = std::move(
        campaignRunMany(cli, runner,
                        std::span<const SweepSpec>(&spec, 1),
                        "ext_tail_latency")
            .front());

    Reporter report(cli.format);
    report.note("tail latency: directory-access latency in cycles on "
                "the 16-core Shared-L2 CMP; percentiles are "
                "nearest-rank over exact integer histogram buckets "
                "(bit-identical at any --jobs/--shards)");

    // One distribution table per cost model: organization x load rows
    // with the percentile spread.
    for (const std::string &model : cli.costModels) {
        ReportTable table(
            "latency distribution, '" + model + "' cost model",
            {"organization", "workload", "accesses", "mean", "p50",
             "p99", "p99.9", "max"});
        for (const SweepRecord &rec : records) {
            if (recordModel(rec) != model)
                continue;
            const LatencyHistogram &lat = rec.result.system.latency;
            table.addRow({cellText(rec.configLabel),
                          cellText(rec.workloadLabel),
                          cellNum(double(lat.count()), "%.0f"),
                          cellNum(lat.mean(), "%.2f"),
                          cellNum(double(rec.result.latencyP50), "%.0f"),
                          cellNum(double(rec.result.latencyP99), "%.0f"),
                          cellNum(double(rec.result.latencyP999), "%.0f"),
                          cellNum(double(lat.maxLatency()), "%.0f")});
        }
        report.table(table);
    }

    // Pivot: p99 per organization (columns) as load grows (rows), the
    // harness's headline "who holds the tail under pressure" view.
    const auto &orgs = DirectoryRegistry::instance().names();
    for (const std::string &model : cli.costModels) {
        std::vector<std::string> columns{"workload"};
        columns.insert(columns.end(), orgs.begin(), orgs.end());
        ReportTable pivot("p99 latency by organization, '" + model +
                              "' cost model",
                          std::move(columns));
        for (std::size_t w = 0; w < spec.workloads().size(); ++w) {
            std::vector<ReportCell> row;
            row.push_back(cellText(spec.workloads()[w].label));
            for (std::size_t c = 0; c < orgs.size(); ++c) {
                ReportCell cell = cellMissing();
                for (const SweepRecord &rec : records) {
                    if (rec.configIndex == c && rec.workloadIndex == w &&
                        recordModel(rec) == model) {
                        cell = cellNum(double(rec.result.latencyP99),
                                       "%.0f");
                        break;
                    }
                }
                row.push_back(std::move(cell));
            }
            pivot.addRow(std::move(row));
        }
        report.table(pivot);
    }
    return 0;
}
