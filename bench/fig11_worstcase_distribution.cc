/**
 * @file
 * Fig. 11 — worst-case insertion-attempt distributions (§5.3).
 *
 * Reproduces the paper's two longest-tail cases: OLTP Oracle on the
 * Shared-L2 configuration and ocean on the Private-L2 configuration,
 * plotting the percentage of insert operations per attempt count
 * (1..32). The paper reports the 1-attempt mass separately (85% Oracle,
 * 73% ocean) and emphasizes the geometric decay of the tail with no
 * peak at 32 (no loops).
 */

#include <cstdio>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    const auto oracle =
        runPaperWorkload(CmpConfigKind::SharedL2, PaperWorkload::OltpOracle,
                         selectedCuckoo(CmpConfigKind::SharedL2), scale);
    const auto ocean =
        runPaperWorkload(CmpConfigKind::PrivateL2, PaperWorkload::SciOcean,
                         selectedCuckoo(CmpConfigKind::PrivateL2), scale);

    banner("Fig. 11: worst-case insertion attempt distributions");
    std::printf("(values at 1 attempt, reported separately in the paper: "
                "Oracle %.1f%%, ocean %.1f%%)\n",
                oracle.attemptHistogram.fraction(1) * 100.0,
                ocean.attemptHistogram.fraction(1) * 100.0);
    std::printf("%-9s  %22s  %22s\n", "attempts",
                "OLTP Oracle (Shared L2)", "ocean (Private L2)");
    for (std::size_t a = 2; a <= 32; ++a) {
        std::printf("%8zu   %21.3f%%  %21.3f%%\n", a,
                    oracle.attemptHistogram.fraction(a) * 100.0,
                    ocean.attemptHistogram.fraction(a) * 100.0);
    }

    // Tail sanity per the paper: geometric decay, no peak at the bound.
    const double tail_oracle = oracle.attemptHistogram.fraction(32);
    const double tail_ocean = ocean.attemptHistogram.fraction(32);
    std::printf("\nmass at 32 attempts: Oracle %s, ocean %s "
                "(paper: nearly zero, no loop peak)\n",
                pct(tail_oracle).c_str(), pct(tail_ocean).c_str());
    return 0;
}
