/**
 * @file
 * Fig. 11 — worst-case insertion-attempt distributions (§5.3).
 *
 * Reproduces the paper's two longest-tail cases: OLTP Oracle on the
 * Shared-L2 configuration and ocean on the Private-L2 configuration
 * (two single-cell sweep specs, run concurrently with --jobs=2),
 * plotting the percentage of insert operations per attempt count
 * (1..32). The paper reports the 1-attempt mass separately (85% Oracle,
 * 73% ocean) and emphasizes the geometric decay of the tail with no
 * peak at 32 (no loops).
 */

#include <cstdio>
#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

SweepSpec
worstCase(CmpConfigKind kind, PaperWorkload workload,
          const HarnessOptions &cli)
{
    SweepSpec spec;
    spec.options("", cli.applyOverrides(optionsFor(kind, cli.scale)));
    spec.workload(paperWorkloadName(workload),
                  paperWorkloadParams(workload,
                                      kind == CmpConfigKind::PrivateL2));
    spec.config(configName(kind),
                paperConfigWith(kind, selectedCuckoo(kind)));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    warnFlagUnused(cli, {"trace", "scenario", "probe-every"});
    const SweepRunner runner(cli.sweep());

    // Both worst cases form one two-cell grid; map() runs the two
    // single-cell specs concurrently when --jobs >= 2 (each inner
    // runner is serial but keeps the CLI filter).
    const SweepSpec specs[] = {
        worstCase(CmpConfigKind::SharedL2, PaperWorkload::OltpOracle, cli),
        worstCase(CmpConfigKind::PrivateL2, PaperWorkload::SciOcean, cli),
    };
    const SweepRunner cellRunner(SweepOptions{1, cli.filter});
    const auto results = runner.map<std::vector<SweepRecord>>(
        2, [&](std::size_t i) { return cellRunner.run(specs[i]); });
    const auto &oracle = results[0];
    const auto &ocean = results[1];
    if (oracle.empty() || ocean.empty()) {
        std::fprintf(stderr, "fig11 needs both worst-case cells\n");
        return 1;
    }
    const Histogram &oracleHist = oracle[0].result.attemptHistogram;
    const Histogram &oceanHist = ocean[0].result.attemptHistogram;

    Reporter report(cli.format);
    char note[160];
    std::snprintf(note, sizeof note,
                  "values at 1 attempt, reported separately in the "
                  "paper: Oracle %.1f%%, ocean %.1f%%",
                  oracleHist.fraction(1) * 100.0,
                  oceanHist.fraction(1) * 100.0);
    report.note(note);

    ReportTable table("Fig. 11: worst-case insertion attempt distributions",
                      {"attempts", "OLTP Oracle (Shared L2)",
                       "ocean (Private L2)"});
    for (std::size_t a = 2; a <= 32; ++a) {
        table.addRow({cellNum(double(a), "%.0f"),
                      cellNum(oracleHist.fraction(a) * 100.0, "%.3f%%"),
                      cellNum(oceanHist.fraction(a) * 100.0, "%.3f%%")});
    }
    report.table(table);

    // Tail sanity per the paper: geometric decay, no peak at the bound.
    std::snprintf(note, sizeof note,
                  "mass at 32 attempts: Oracle %g%%, ocean %g%% "
                  "(paper: nearly zero, no loop peak)",
                  oracleHist.fraction(32) * 100.0,
                  oceanHist.fraction(32) * 100.0);
    report.note(note);
    return 0;
}
