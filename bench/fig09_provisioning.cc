/**
 * @file
 * Fig. 9 — Cuckoo directory sizing sweep (§5.2).
 *
 * Evaluates the paper's exact per-slice organizations, from 2x
 * over-provisioned down to 3/8x under-provisioned, reporting the
 * suite-wide average insertion attempts (bars) and forced-invalidation
 * rate (line). Each configuration's grid — 6 sizings x 9 workloads — is
 * one sweep spec run on the shared thread pool.
 *
 * Paper shape: under-provisioning (<1x) explodes attempts and forced
 * invalidations exponentially; Shared-L2 needs no over-provisioning and
 * Private-L2 is clean at 1.5x.
 */

#include <cstdio>
#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

struct Sizing
{
    unsigned ways;
    std::size_t sets;
    const char *label;
};

void
sweep(Reporter &report, const SweepRunner &runner, const HarnessOptions &cli,
      CmpConfigKind kind, const std::vector<Sizing> &sizings)
{
    SweepSpec spec = paperSweep(kind, cli);
    for (const Sizing &s : sizings) {
        char label[64];
        std::snprintf(label, sizeof label, "%ux%zu %s", s.ways, s.sets,
                      s.label);
        spec.config(label,
                    paperConfigWith(
                        kind, cuckooSliceParams(s.ways, s.sets)));
    }
    const std::vector<SweepRecord> records = runner.run(spec);

    // Suite-wide aggregation per sizing: insertion-weighted attempt
    // mean and total forced-invalidation rate across the workloads.
    struct Totals
    {
        RunningMean attempts;
        std::uint64_t inserts = 0;
        std::uint64_t forced = 0;
        bool any = false;
    };
    std::vector<Totals> totals(sizings.size());
    for (const SweepRecord &rec : records) {
        Totals &t = totals[rec.configIndex];
        t.attempts.addWeighted(rec.result.avgInsertionAttempts,
                               rec.result.directory.insertions);
        t.inserts += rec.result.directory.insertions;
        t.forced += rec.result.directory.forcedEvictions;
        t.any = true;
    }

    ReportTable table(std::string("Fig. 9 (") + configName(kind) +
                          "): attempts and failure rates vs provisioning",
                      {"organization", "avg attempts",
                       "forced-inval rate"});
    for (std::size_t i = 0; i < sizings.size(); ++i) {
        const Totals &t = totals[i];
        table.addRow(
            {cellText(spec.configs()[i].label),
             t.any ? cellNum(t.attempts.mean(), "%.2f") : cellMissing(),
             t.any ? cellPct(t.inserts == 0 ? 0.0
                                            : double(t.forced) /
                                                  double(t.inserts))
                   : cellMissing()});
    }
    report.table(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const SweepRunner runner(cli.sweep());
    Reporter report(cli.format);

    sweep(report, runner, cli, CmpConfigKind::SharedL2,
          {{4, 1024, "(2x)"},
           {3, 1024, "(1.5x)"},
           {4, 512, "(1x)"},
           {3, 512, "(3/4x)"},
           {4, 256, "(1/2x)"},
           {3, 256, "(3/8x)"}});

    sweep(report, runner, cli, CmpConfigKind::PrivateL2,
          {{4, 8192, "(2x)"},
           {3, 8192, "(1.5x)"},
           {8, 2048, "(1x)"},
           {3, 4096, "(3/4x)"},
           {8, 1024, "(1/2x)"},
           {3, 2048, "(3/8x)"}});
    return 0;
}
