/**
 * @file
 * Fig. 9 — Cuckoo directory sizing sweep (§5.2).
 *
 * Evaluates the paper's exact per-slice organizations, from 2x
 * over-provisioned down to 3/8x under-provisioned, reporting the
 * suite-wide average insertion attempts (bars) and forced-invalidation
 * rate (line):
 *
 *   Shared-L2:  4x1024 (2x), 3x1024 (1.5x), 4x512 (1x), 3x512 (3/4x),
 *               4x256 (1/2x), 3x256 (3/8x)
 *   Private-L2: 4x8192 (2x), 3x8192 (1.5x), 8x2048 (1x), 3x4096 (3/4x),
 *               8x1024 (1/2x), 3x2048 (3/8x)
 *
 * Paper shape: under-provisioning (<1x) explodes attempts and forced
 * invalidations exponentially; Shared-L2 needs no over-provisioning and
 * Private-L2 is clean at 1.5x.
 */

#include <cstdio>
#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

struct Sizing
{
    unsigned ways;
    std::size_t sets;
    const char *label;
};

void
sweep(CmpConfigKind kind, const std::vector<Sizing> &sizings,
      std::uint64_t scale)
{
    std::printf("\n%s\n", configName(kind));
    std::printf("%-18s  %12s  %18s\n", "organization", "avg attempts",
                "forced-inval rate");
    for (const Sizing &s : sizings) {
        RunningMean attempts;
        std::uint64_t inserts = 0, forced = 0;
        for (PaperWorkload w : allPaperWorkloads()) {
            const auto res = runPaperWorkload(
                kind, w, cuckooSliceParams(s.ways, s.sets), scale);
            attempts.addWeighted(res.avgInsertionAttempts,
                                 res.directory.insertions);
            inserts += res.directory.insertions;
            forced += res.directory.forcedEvictions;
        }
        const double rate =
            inserts == 0 ? 0.0 : double(forced) / double(inserts);
        std::printf("%u x %-6zu %-6s  %12.2f  %17s\n", s.ways, s.sets,
                    s.label, attempts.mean(), pct(rate).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    banner("Fig. 9: insertion attempts and failure rates vs provisioning");

    sweep(CmpConfigKind::SharedL2,
          {{4, 1024, "(2x)"},
           {3, 1024, "(1.5x)"},
           {4, 512, "(1x)"},
           {3, 512, "(3/4x)"},
           {4, 256, "(1/2x)"},
           {3, 256, "(3/8x)"}},
          scale);

    sweep(CmpConfigKind::PrivateL2,
          {{4, 8192, "(2x)"},
           {3, 8192, "(1.5x)"},
           {8, 2048, "(1x)"},
           {3, 4096, "(3/4x)"},
           {8, 1024, "(1/2x)"},
           {3, 2048, "(3/8x)"}},
          scale);
    return 0;
}
