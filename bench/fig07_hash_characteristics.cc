/**
 * @file
 * Fig. 7 — Cuckoo hash characteristics (§5.1).
 *
 * Inserts random values into 2/3/4/8-ary Cuckoo tables with strong hash
 * functions (the paper uses cryptographic functions to avoid selection
 * bias) and reports, as a function of occupancy:
 *   left graph  — average insertion attempts until a successful
 *                 insertion without a victim;
 *   right graph — frequency of not finding a vacant location within 32
 *                 attempts (insertion failure probability).
 *
 * The four arities form a grid run through the sweep runner's generic
 * map — each cell owns its table and RNG, so results are identical at
 * any --jobs value.
 *
 * The paper's headline properties: below 50% occupancy, 3-ary and wider
 * tables need <= ~2 attempts on average; up to ~65% occupancy they never
 * fail.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_table.hh"
#include "hash/hash_family.hh"
#include "sim/sweep.hh"

using namespace cdir;

namespace {

constexpr double kBucketWidth = 0.05;
constexpr std::size_t kBuckets = 20; // occupancy 0..1 in 5% buckets

const unsigned kArities[] = {2, 3, 4, 8};

struct AritySeries
{
    unsigned ways = 0;
    std::vector<RunningMean> attempts{kBuckets};
    std::vector<RunningMean> failures{kBuckets};
};

AritySeries
runArity(unsigned ways, std::uint64_t values, std::uint64_t seed)
{
    AritySeries series;
    series.ways = ways;
    // Size each table near the paper's 100,000-element experiment; the
    // curves depend only on occupancy (§5.1), which the bucketing
    // normalizes out.
    const std::size_t sets = 32768;
    auto family = makeHashFamily(HashKind::Strong, ways, sets, seed);
    CuckooTable<char> table(*family, 32);
    Rng rng(seed * 7919 + 1);

    for (std::uint64_t i = 0; i < values; ++i) {
        const Tag tag = rng.next();
        if (table.find(tag))
            continue;
        const double occ_before = table.occupancy();
        auto bucket = static_cast<std::size_t>(occ_before / kBucketWidth);
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
        auto res = table.insert(tag, 0);
        series.attempts[bucket].add(res.attempts);
        series.failures[bucket].add(res.discarded ? 1.0 : 0.0);
        if (res.discarded && table.occupancy() > 0.99)
            break; // saturated
    }
    return series;
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const std::uint64_t values =
        bench::flagU64(argc, argv, "values", 400000);
    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());

    const auto series = runner.map<AritySeries>(
        std::size(kArities), [values](std::size_t i) {
            return runArity(kArities[i], values, 100 + kArities[i]);
        });

    std::vector<std::string> columns{"occupancy"};
    for (const auto &s : series)
        columns.push_back(std::to_string(s.ways) + "-ary");

    Reporter report(cli.format);
    const struct
    {
        const char *title;
        bool failures;
    } tables[] = {
        {"Fig. 7 (left): average insertion attempts vs occupancy", false},
        {"Fig. 7 (right): insertion failure probability vs occupancy",
         true},
    };
    for (const auto &spec : tables) {
        ReportTable table(spec.title, columns);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            std::vector<ReportCell> row{
                cellNum((b + 0.5) * kBucketWidth, "%.2f")};
            for (const auto &s : series) {
                const RunningMean &m =
                    spec.failures ? s.failures[b] : s.attempts[b];
                if (m.count() == 0)
                    row.push_back(cellMissing());
                else if (spec.failures)
                    row.push_back(cellNum(m.mean() * 100.0, "%.2f%%"));
                else
                    row.push_back(cellNum(m.mean()));
            }
            table.addRow(std::move(row));
        }
        report.table(table);
    }

    // Paper check: 3-ary and wider never fail below 65% occupancy, and
    // below 50% occupancy insert in under two attempts on average.
    ReportTable checks("Checks vs paper (§5.1)",
                       {"arity", "max failure prob <= 65% occ",
                        "max avg attempts <= 50% occ", "verdict"});
    for (const auto &s : series) {
        if (s.ways < 3)
            continue;
        double worst_fail_below_65 = 0.0;
        double worst_attempts_below_50 = 0.0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const double occ = (b + 1.0) * kBucketWidth;
            if (occ <= 0.65)
                worst_fail_below_65 =
                    std::max(worst_fail_below_65, s.failures[b].mean());
            if (occ <= 0.50)
                worst_attempts_below_50 = std::max(
                    worst_attempts_below_50, s.attempts[b].mean());
        }
        checks.addRow({cellNum(double(s.ways), "%.0f"),
                       cellPct(worst_fail_below_65),
                       cellNum(worst_attempts_below_50),
                       cellText((worst_fail_below_65 == 0.0 &&
                                 worst_attempts_below_50 < 2.0)
                                    ? "OK"
                                    : "MISMATCH")});
    }
    report.table(checks);
    return 0;
}
