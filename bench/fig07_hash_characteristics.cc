/**
 * @file
 * Fig. 7 — Cuckoo hash characteristics (§5.1).
 *
 * Inserts random values into 2/3/4/8-ary Cuckoo tables with strong hash
 * functions (the paper uses cryptographic functions to avoid selection
 * bias) and reports, as a function of occupancy:
 *   left graph  — average insertion attempts until a successful
 *                 insertion without a victim;
 *   right graph — frequency of not finding a vacant location within 32
 *                 attempts (insertion failure probability).
 *
 * The paper's headline properties: below 50% occupancy, 3-ary and wider
 * tables need <= ~2 attempts on average; up to ~65% occupancy they never
 * fail.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_table.hh"
#include "hash/hash_family.hh"

using namespace cdir;

namespace {

constexpr double kBucketWidth = 0.05;
constexpr std::size_t kBuckets = 20; // occupancy 0..1 in 5% buckets

struct AritySeries
{
    unsigned ways;
    std::vector<RunningMean> attempts{kBuckets};
    std::vector<RunningMean> failures{kBuckets};
};

void
runArity(AritySeries &series, std::uint64_t values, std::uint64_t seed)
{
    // Size each table near the paper's 100,000-element experiment; the
    // curves depend only on occupancy (§5.1), which the bucketing
    // normalizes out.
    const std::size_t sets = 32768;
    auto family =
        makeHashFamily(HashKind::Strong, series.ways, sets, seed);
    CuckooTable<char> table(*family, 32);
    Rng rng(seed * 7919 + 1);

    for (std::uint64_t i = 0; i < values; ++i) {
        const Tag tag = rng.next();
        if (table.find(tag))
            continue;
        const double occ_before = table.occupancy();
        auto bucket = static_cast<std::size_t>(occ_before / kBucketWidth);
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
        auto res = table.insert(tag, 0);
        series.attempts[bucket].add(res.attempts);
        series.failures[bucket].add(res.discarded ? 1.0 : 0.0);
        if (res.discarded && table.occupancy() > 0.99)
            break; // saturated
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t values =
        bench::flagU64(argc, argv, "values", 400000);

    std::vector<AritySeries> series;
    for (unsigned ways : {2u, 3u, 4u, 8u}) {
        series.push_back(AritySeries{ways});
        runArity(series.back(), values, 100 + ways);
    }

    bench::banner("Fig. 7 (left): average insertion attempts vs occupancy");
    std::printf("%-10s", "occupancy");
    for (const auto &s : series)
        std::printf("  %6u-ary", s.ways);
    std::printf("\n");
    for (std::size_t b = 0; b < kBuckets; ++b) {
        std::printf("%8.2f  ", (b + 0.5) * kBucketWidth);
        for (const auto &s : series) {
            if (s.attempts[b].count() == 0)
                std::printf("  %9s", "-");
            else
                std::printf("  %9.3f", s.attempts[b].mean());
        }
        std::printf("\n");
    }

    bench::banner(
        "Fig. 7 (right): insertion failure probability vs occupancy");
    std::printf("%-10s", "occupancy");
    for (const auto &s : series)
        std::printf("  %6u-ary", s.ways);
    std::printf("\n");
    for (std::size_t b = 0; b < kBuckets; ++b) {
        std::printf("%8.2f  ", (b + 0.5) * kBucketWidth);
        for (const auto &s : series) {
            if (s.failures[b].count() == 0)
                std::printf("  %9s", "-");
            else
                std::printf("  %8.2f%%", s.failures[b].mean() * 100.0);
        }
        std::printf("\n");
    }

    // Paper check: 3-ary and wider never fail below 65% occupancy, and
    // below 50% occupancy insert in under two attempts on average.
    bench::banner("Checks vs paper (§5.1)");
    for (const auto &s : series) {
        if (s.ways < 3)
            continue;
        double worst_fail_below_65 = 0.0;
        double worst_attempts_below_50 = 0.0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            const double occ = (b + 1.0) * kBucketWidth;
            if (occ <= 0.65)
                worst_fail_below_65 =
                    std::max(worst_fail_below_65, s.failures[b].mean());
            if (occ <= 0.50)
                worst_attempts_below_50 = std::max(
                    worst_attempts_below_50, s.attempts[b].mean());
        }
        std::printf("%u-ary: max failure prob below 65%% occupancy = %s; "
                    "max avg attempts below 50%% = %.3f  [%s]\n",
                    s.ways, bench::pct(worst_fail_below_65).c_str(),
                    worst_attempts_below_50,
                    (worst_fail_below_65 == 0.0 &&
                     worst_attempts_below_50 < 2.0)
                        ? "OK"
                        : "MISMATCH");
    }
    return 0;
}
