/**
 * @file
 * §5.5 ablation — hash function selection.
 *
 * Compares the Seznec–Bodin skewing family (trivial hardware, a few XOR
 * levels) against strong mixing functions across provisioning factors,
 * measuring average insertion attempts and insertion failures on a
 * random-tag stream with steady-state occupancy pinned by the
 * provisioning factor. The hash-kind x occupancy grid runs through the
 * sweep runner's generic map.
 *
 * Paper findings to reproduce: at 2x provisioning the strong functions
 * offer no measurable benefit; at aggressive (under-provisioned) sizes
 * they reduce attempts marginally and cut failure rates by orders of
 * magnitude — but such configurations are impractical anyway because of
 * the insertion-energy blow-up.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_table.hh"
#include "hash/hash_family.hh"
#include "sim/sweep.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

const double kOccupancies[] = {0.25, 0.50, 0.65, 0.80, 0.90, 0.95};
constexpr std::size_t kOccPoints = std::size(kOccupancies);
const HashKind kKinds[] = {HashKind::Skewing, HashKind::Strong};

struct Outcome
{
    double avgAttempts = 0.0;
    double failureRate = 0.0;
};

/**
 * Steady-state churn at a target occupancy: keep `live = occupancy *
 * capacity` tags resident, repeatedly retiring one and inserting a
 * fresh one, as a directory slice does once caches are warm.
 */
Outcome
churn(HashKind kind, double occupancy, std::uint64_t ops,
      std::uint64_t seed)
{
    const unsigned ways = 4;
    const std::size_t sets = 2048;
    auto family = makeHashFamily(kind, ways, sets, seed);
    CuckooTable<char> table(*family, 32);
    Rng rng(seed ^ 0xabcdef);

    std::vector<Tag> live;
    const auto target = static_cast<std::size_t>(
        occupancy * double(table.capacity()));
    RunningMean attempts;
    std::uint64_t failures = 0, inserts = 0;

    for (std::uint64_t op = 0; op < ops; ++op) {
        if (live.size() >= target) {
            const std::size_t k = rng.below(live.size());
            table.erase(live[k]);
            live[k] = live.back();
            live.pop_back();
        }
        const Tag tag = rng.next();
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        ++inserts;
        attempts.add(res.attempts);
        if (res.discarded)
            ++failures;
        else
            live.push_back(tag);
    }
    return {attempts.mean(),
            inserts == 0 ? 0.0 : double(failures) / double(inserts)};
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const std::uint64_t ops = flagU64(argc, argv, "ops", 300000);
    warnFlagUnused(cli,
                   {"filter", "trace", "scenario", "shards", "cost-model",
                    "probe-every"});
    const SweepRunner runner(cli.sweep());

    // One cell per (hash kind, occupancy).
    const auto outcomes = runner.map<Outcome>(
        2 * kOccPoints, [ops](std::size_t i) {
            return churn(kKinds[i / kOccPoints],
                         kOccupancies[i % kOccPoints], ops, 11);
        });

    ReportTable table(
        "Hash-function ablation (4-way Cuckoo, steady-state churn)",
        {"occupancy", "skewing attempts", "skewing failures",
         "strong attempts", "strong failures"});
    for (std::size_t o = 0; o < kOccPoints; ++o) {
        const Outcome &skew = outcomes[o];
        const Outcome &strong = outcomes[kOccPoints + o];
        table.addRow({cellNum(kOccupancies[o] * 100.0, "%.0f%%"),
                      cellNum(skew.avgAttempts),
                      cellPct(skew.failureRate),
                      cellNum(strong.avgAttempts),
                      cellPct(strong.failureRate)});
    }

    Reporter report(cli.format);
    report.table(table);
    report.note("Paper (§5.5): no benefit from strong functions at "
                "practical provisioning; large failure-rate reduction "
                "only in impractically under-provisioned tables.");
    return 0;
}
