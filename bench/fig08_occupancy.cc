/**
 * @file
 * Fig. 8 — average directory occupancy per workload (§5.2).
 *
 * Runs every Table 2 workload on the Table 1 16-core CMP in both the
 * Shared-L2 and Private-L2 configurations with the §5.2-selected Cuckoo
 * directories, sampling aggregate occupancy during measurement.
 *
 * Paper shape to reproduce: occupancy well below 1 everywhere in the
 * Shared-L2 system (shared instructions/data compress the distinct-tag
 * count, so no over-provisioning is needed), and large private
 * footprints pushing DSS/scientific workloads high in the Private-L2
 * system, with ocean the extreme (~100% unique blocks).
 */

#include <cstdio>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    // The paper's occupancy axis is relative to the worst-case number
    // of simultaneously tracked blocks (the aggregate cache frames) —
    // that is why ocean can read ~100% even on a 1.5x-provisioned
    // directory. We report that metric, plus the raw fraction of
    // directory slots in use for context.
    banner("Fig. 8: average directory occupancy "
           "(% of worst-case tracked blocks)");
    std::printf("%-8s  %12s  %12s      %s\n", "workload", "Shared L2",
                "Private L2", "(raw slot utilization S/P)");
    for (PaperWorkload w : allPaperWorkloads()) {
        double occ[2] = {0, 0};
        double norm[2] = {0, 0};
        int i = 0;
        for (CmpConfigKind kind :
             {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
            const DirectoryParams dir = selectedCuckoo(kind);
            const auto res = runPaperWorkload(kind, w, dir, scale);
            const double provisioning =
                provisioningFactor(CmpConfig::paperConfig(kind), dir);
            occ[i] = res.avgOccupancy;
            norm[i] = res.avgOccupancy * provisioning;
            ++i;
        }
        std::printf("%-8s  %11.1f%%  %11.1f%%      (%.1f%% / %.1f%%)\n",
                    paperWorkloadName(w).c_str(), norm[0] * 100.0,
                    norm[1] * 100.0, occ[0] * 100.0, occ[1] * 100.0);
    }
    return 0;
}
