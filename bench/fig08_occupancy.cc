/**
 * @file
 * Fig. 8 — average directory occupancy per workload (§5.2).
 *
 * Runs every Table 2 workload on the Table 1 16-core CMP in both the
 * Shared-L2 and Private-L2 configurations with the §5.2-selected Cuckoo
 * directories, sampling aggregate occupancy during measurement. The two
 * per-configuration grids are declared as sweep specs and run on the
 * shared thread pool (--jobs=).
 *
 * Paper shape to reproduce: occupancy well below 1 everywhere in the
 * Shared-L2 system (shared instructions/data compress the distinct-tag
 * count, so no over-provisioning is needed), and large private
 * footprints pushing DSS/scientific workloads high in the Private-L2
 * system, with ocean the extreme (~100% unique blocks).
 */

#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const SweepRunner runner(cli.sweep());

    const CmpConfigKind kinds[] = {CmpConfigKind::SharedL2,
                                   CmpConfigKind::PrivateL2};
    std::vector<SweepSpec> specs;
    for (CmpConfigKind kind : kinds) {
        SweepSpec spec = paperSweep(kind, cli);
        spec.config(configName(kind),
                    paperConfigWith(kind, selectedCuckoo(kind)));
        specs.push_back(std::move(spec));
    }
    // One flattened cell pool across both configurations' grids, so
    // --jobs parallelism spans the Shared-L2 and Private-L2 sweeps.
    const std::vector<std::vector<SweepRecord>> byKind =
        runner.runMany(specs);

    // The paper's occupancy axis is relative to the worst-case number
    // of simultaneously tracked blocks (the aggregate cache frames) —
    // that is why ocean can read ~100% even on a 1.5x-provisioned
    // directory. We report that metric, plus the raw fraction of
    // directory slots in use for context.
    ReportTable table("Fig. 8: average directory occupancy "
                      "(% of worst-case tracked blocks)",
                      {"workload", "Shared L2", "Private L2", "raw S",
                       "raw P"});
    const std::size_t workloads = specs[0].workloads().size();
    std::vector<RecordGrid> grids;
    for (const auto &records : byKind)
        grids.emplace_back(records, 1, workloads);
    for (std::size_t w = 0; w < workloads; ++w) {
        std::vector<ReportCell> row;
        row.push_back(cellText(specs[0].workloads()[w].label));
        for (int raw = 0; raw < 2; ++raw) {
            for (std::size_t k = 0; k < 2; ++k) {
                const SweepRecord *rec = grids[k].at(0, w);
                if (rec == nullptr) {
                    row.push_back(cellMissing());
                    continue;
                }
                const double provisioning = provisioningFactor(
                    CmpConfig::paperConfig(kinds[k]),
                    selectedCuckoo(kinds[k]));
                const double occ = rec->result.avgOccupancy *
                                   (raw ? 1.0 : provisioning);
                row.push_back(cellNum(occ * 100.0, "%.1f%%"));
            }
        }
        table.addRow(std::move(row));
    }

    Reporter report(cli.format);
    report.table(table);
    return 0;
}
