/**
 * @file
 * Fig. 12 — forced-invalidation-rate comparison (§5.4).
 *
 * For every Table 2 workload and both system configurations, compares
 * the invalidation rate (forced directory evictions as a fraction of
 * directory entry insertions) of:
 *   a) Sparse 2x  — 8-way set-associative, 2x capacity;
 *   b) Sparse 8x  — 8-way set-associative, 8x capacity;
 *   c) Skewed 2x  — 4-way skewed-associative, 2x capacity;
 *   d) Cuckoo     — 4x512 (1x) Shared-L2 / 3x8192 (1.5x) Private-L2.
 *
 * Paper shape: Sparse 2x conflicts on nearly every workload; Skewed 2x
 * helps on server workloads but not scientific ones; Sparse 8x is
 * better but still significant; the Cuckoo directory — with *less*
 * capacity and associativity — is near zero everywhere (ocean worst
 * case 0.08% at 1.5x).
 */

#include <cstdio>
#include <vector>

#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

struct Org
{
    const char *label;
    DirectoryParams params;
};

void
compare(CmpConfigKind kind, const std::vector<Org> &orgs,
        std::uint64_t scale)
{
    std::printf("\n%s\n%-8s", configName(kind), "workload");
    for (const Org &o : orgs)
        std::printf("  %12s", o.label);
    std::printf("\n");
    for (PaperWorkload w : allPaperWorkloads()) {
        std::printf("%-8s", paperWorkloadName(w).c_str());
        for (const Org &o : orgs) {
            const auto res = runPaperWorkload(kind, w, o.params, scale);
            std::printf("  %12s",
                        pct(res.forcedInvalidationRate).c_str());
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t scale = flagU64(argc, argv, "scale", 1);

    banner("Fig. 12: directory invalidation rates "
           "(% of directory insertions)");

    // Per-slice frame baseline: 2048 (Shared-L2), 16384 (Private-L2).
    compare(CmpConfigKind::SharedL2,
            {{"Sparse 2x", sparseSliceParams(8, 512)},
             {"Sparse 8x", sparseSliceParams(8, 2048)},
             {"Skewed 2x", skewedSliceParams(4, 1024)},
             {"Cuckoo 1x", cuckooSliceParams(4, 512)}},
            scale);

    compare(CmpConfigKind::PrivateL2,
            {{"Sparse 2x", sparseSliceParams(8, 4096)},
             {"Sparse 8x", sparseSliceParams(8, 16384)},
             {"Skewed 2x", skewedSliceParams(4, 8192)},
             {"Cuckoo 1.5x", cuckooSliceParams(3, 8192)}},
            scale);
    return 0;
}
