/**
 * @file
 * Fig. 12 — forced-invalidation-rate comparison (§5.4).
 *
 * For every Table 2 workload and both system configurations, compares
 * the invalidation rate (forced directory evictions as a fraction of
 * directory entry insertions) of:
 *   a) Sparse 2x  — 8-way set-associative, 2x capacity;
 *   b) Sparse 8x  — 8-way set-associative, 8x capacity;
 *   c) Skewed 2x  — 4-way skewed-associative, 2x capacity;
 *   d) Cuckoo     — 4x512 (1x) Shared-L2 / 3x8192 (1.5x) Private-L2.
 *
 * Each configuration is one 4-organization x 9-workload sweep spec run
 * on the shared pool — the largest grid in the suite (72 cells total).
 *
 * Paper shape: Sparse 2x conflicts on nearly every workload; Skewed 2x
 * helps on server workloads but not scientific ones; Sparse 8x is
 * better but still significant; the Cuckoo directory — with *less*
 * capacity and associativity — is near zero everywhere (ocean worst
 * case 0.08% at 1.5x).
 */

#include <vector>

#include "sim/campaign.hh"
#include "sim_common.hh"

using namespace cdir;
using namespace cdir::bench;

namespace {

struct Org
{
    const char *label;
    DirectoryParams params;
};

SweepSpec
compareSpec(const HarnessOptions &cli, CmpConfigKind kind,
            const std::vector<Org> &orgs)
{
    SweepSpec spec = paperSweep(kind, cli);
    for (const Org &o : orgs)
        spec.config(o.label, paperConfigWith(kind, o.params));
    return spec;
}

void
emitComparison(Reporter &report, const SweepSpec &spec,
               const std::vector<SweepRecord> &records,
               CmpConfigKind kind, const std::vector<Org> &orgs)
{
    const std::size_t workloads = spec.workloads().size();
    const RecordGrid grid(records, orgs.size(), workloads);

    std::vector<std::string> columns{"workload"};
    for (const Org &o : orgs)
        columns.push_back(o.label);
    ReportTable table(std::string("Fig. 12 (") + configName(kind) +
                          "): invalidation rates "
                          "(% of directory insertions)",
                      std::move(columns));
    for (std::size_t w = 0; w < workloads; ++w) {
        std::vector<ReportCell> row;
        row.push_back(cellText(spec.workloads()[w].label));
        for (std::size_t c = 0; c < orgs.size(); ++c) {
            const SweepRecord *rec = grid.at(c, w);
            row.push_back(
                rec ? cellPct(rec->result.forcedInvalidationRate)
                    : cellMissing());
        }
        table.addRow(std::move(row));
    }
    report.table(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions cli = parseHarnessOptions(argc, argv);
    const SweepRunner runner(cli.sweep());

    // Per-slice frame baseline: 2048 (Shared-L2), 16384 (Private-L2).
    const CmpConfigKind kinds[] = {CmpConfigKind::SharedL2,
                                   CmpConfigKind::PrivateL2};
    const std::vector<Org> orgsByKind[] = {
        {{"Sparse 2x", sparseSliceParams(8, 512)},
         {"Sparse 8x", sparseSliceParams(8, 2048)},
         {"Skewed 2x", skewedSliceParams(4, 1024)},
         {"Cuckoo 1x", cuckooSliceParams(4, 512)}},
        {{"Sparse 2x", sparseSliceParams(8, 4096)},
         {"Sparse 8x", sparseSliceParams(8, 16384)},
         {"Skewed 2x", skewedSliceParams(4, 8192)},
         {"Cuckoo 1.5x", cuckooSliceParams(3, 8192)}},
    };

    // Both configurations' grids (the suite's largest: 72 cells) run as
    // one flattened cell pool, so --jobs parallelism never drains while
    // the second grid waits. campaignRunMany additionally honours
    // --campaign-manifest / --campaign-results, making this grid a
    // multi-process campaign.
    std::vector<SweepSpec> specs;
    for (std::size_t k = 0; k < 2; ++k)
        specs.push_back(compareSpec(cli, kinds[k], orgsByKind[k]));
    const std::vector<std::vector<SweepRecord>> byKind =
        campaignRunMany(cli, runner, specs, "fig12");

    Reporter report(cli.format);
    for (std::size_t k = 0; k < 2; ++k)
        emitComparison(report, specs[k], byKind[k], kinds[k],
                       orgsByKind[k]);
    return 0;
}
