/**
 * @file
 * Harness-specific CLI flag parsing for the figure harnesses.
 *
 * The shared experiment CLI (--jobs/--format/--filter/--scale/
 * --warmup/--measure) and all table/CSV/JSON emission live in
 * src/sim/sweep.hh; this header only keeps the parser for the
 * harness-specific numeric knobs (--ops=, --values=, ...), which
 * `parseHarnessOptions` deliberately ignores.
 */

#ifndef CDIR_BENCH_BENCH_UTIL_HH
#define CDIR_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cdir::bench {

/** Value of --name=value (or fallback) from argv. */
inline std::uint64_t
flagU64(int argc, char **argv, const char *name, std::uint64_t fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
    return fallback;
}

} // namespace cdir::bench

#endif // CDIR_BENCH_BENCH_UTIL_HH
