/**
 * @file
 * Shared helpers for the figure-regeneration harnesses: simple CLI flag
 * parsing and fixed-width table printing.
 */

#ifndef CDIR_BENCH_BENCH_UTIL_HH
#define CDIR_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cdir::bench {

/** Value of --name=value (or fallback) from argv. */
inline std::uint64_t
flagU64(int argc, char **argv, const char *name, std::uint64_t fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
    return fallback;
}

/** Section banner. */
inline void
banner(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

/** Percentage with sensible precision for log-scale figures. */
inline std::string
pct(double fraction)
{
    char buf[32];
    if (fraction == 0.0)
        std::snprintf(buf, sizeof buf, "0");
    else if (fraction < 0.0001)
        std::snprintf(buf, sizeof buf, "%.4f%%", fraction * 100.0);
    else
        std::snprintf(buf, sizeof buf, "%.3f%%", fraction * 100.0);
    return buf;
}

} // namespace cdir::bench

#endif // CDIR_BENCH_BENCH_UTIL_HH
