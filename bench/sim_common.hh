/**
 * @file
 * Shared setup for the simulation-driven figure harnesses (Figs. 8-12):
 * the Table 1 system configurations, the §5.2 directory sizings, and
 * sweep-spec builders over the Table 2 workload suite.
 *
 * A harness declares its grid by taking `paperSweep(kind, cli)` — the
 * nine-workload axis with the per-configuration run lengths — and
 * appending one config axis point per directory sizing it evaluates;
 * `SweepRunner` (src/sim/sweep.hh) runs the cells in parallel.
 */

#ifndef CDIR_BENCH_SIM_COMMON_HH
#define CDIR_BENCH_SIM_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/sweep.hh"

namespace cdir::bench {

/** Experiment lengths tuned per configuration (caches warm slower in
 *  the Private-L2 system, whose aggregate footprint is 8x larger). */
inline ExperimentOptions
optionsFor(CmpConfigKind kind, std::uint64_t scale)
{
    ExperimentOptions opts;
    if (kind == CmpConfigKind::SharedL2) {
        opts.warmupAccesses = 1'000'000 * scale;
        opts.measureAccesses = 1'000'000 * scale;
    } else {
        opts.warmupAccesses = 3'000'000 * scale;
        opts.measureAccesses = 2'000'000 * scale;
    }
    opts.occupancySampleEvery = 10'000;
    return opts;
}

/** Table 1 configuration for @p kind with @p dir as its directory. */
inline CmpConfig
paperConfigWith(CmpConfigKind kind, const DirectoryParams &dir)
{
    CmpConfig cfg = CmpConfig::paperConfig(kind);
    cfg.directory = dir;
    return cfg;
}

/**
 * Sweep spec over the workload axis for @p kind, with the tuned run
 * lengths (respecting the CLI --scale/--warmup/--measure). The axis is
 * the full Table 2 suite — or, with --trace=<file|dir>, one point per
 * recorded trace file replayed through the grid; or, with
 * --scenario=<name|file>[,...], one point per phased scenario. With
 * --cost-model= the options axis carries one point per selected model
 * (timing never changes the behavioural counters, so figure pivots
 * stay well-defined); untimed by default. The caller appends its
 * config axis points.
 */
inline SweepSpec
paperSweep(CmpConfigKind kind, const HarnessOptions &cli)
{
    SweepSpec spec;
    appendCostModelOptions(
        spec, "", cli.applyOverrides(optionsFor(kind, cli.scale)), cli);
    if (!cli.trace.empty() && !cli.scenario.empty()) {
        std::fprintf(stderr, "--trace and --scenario are mutually "
                             "exclusive workload axes\n");
        std::exit(2);
    }
    if (!cli.trace.empty()) {
        try {
            appendTraceWorkloads(spec, cli.trace);
        } catch (const std::runtime_error &e) {
            // A bad --trace path is an operator error, not a bug:
            // exit cleanly instead of aborting through an uncaught
            // exception in the harness main.
            std::fprintf(stderr, "--trace: %s\n", e.what());
            std::exit(2);
        }
        return spec;
    }
    if (!cli.scenario.empty()) {
        try {
            // The paper grids all run Table 1 CMPs, so an over-wide
            // scenario file is rejected up front instead of emptying
            // the table one thrown cell at a time.
            appendScenarioWorkloads(
                spec, cli.scenario,
                CmpConfig::paperConfig(kind).numCores);
        } catch (const std::runtime_error &e) {
            std::fprintf(stderr, "--scenario: %s\n", e.what());
            std::exit(2);
        }
        return spec;
    }
    const bool private_l2 = kind == CmpConfigKind::PrivateL2;
    for (PaperWorkload w : allPaperWorkloads())
        spec.workload(paperWorkloadName(w),
                      paperWorkloadParams(w, private_l2));
    return spec;
}

/** The §5.2 selected Cuckoo sizings. */
inline DirectoryParams
selectedCuckoo(CmpConfigKind kind)
{
    // Shared-L2: 4x512 per slice (1x); Private-L2: 3x8192 (1.5x).
    return kind == CmpConfigKind::SharedL2 ? cuckooSliceParams(4, 512)
                                           : cuckooSliceParams(3, 8192);
}

inline const char *
configName(CmpConfigKind kind)
{
    return kind == CmpConfigKind::SharedL2 ? "Shared L2" : "Private L2";
}

/**
 * Pivot helper: records of one sweep indexed by (configIndex,
 * workloadIndex), so harnesses can lay out workload-rows x config-
 * columns tables with '-' for filtered-out cells.
 */
class RecordGrid
{
  public:
    RecordGrid(const std::vector<SweepRecord> &records,
               std::size_t num_configs, std::size_t num_workloads)
        : configs(num_configs), cells(num_configs * num_workloads, nullptr)
    {
        for (const SweepRecord &rec : records)
            cells[rec.workloadIndex * configs + rec.configIndex] = &rec;
    }

    /** Record at (config, workload), or nullptr if filtered out. */
    const SweepRecord *
    at(std::size_t config, std::size_t workload) const
    {
        return cells[workload * configs + config];
    }

  private:
    std::size_t configs;
    std::vector<const SweepRecord *> cells;
};

} // namespace cdir::bench

#endif // CDIR_BENCH_SIM_COMMON_HH
