/**
 * @file
 * Shared setup for the simulation-driven figure harnesses (Figs. 8-12):
 * the Table 1 system configurations, the §5.2 directory sizings, and a
 * cached experiment runner.
 */

#ifndef CDIR_BENCH_SIM_COMMON_HH
#define CDIR_BENCH_SIM_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/experiment.hh"

namespace cdir::bench {

/** Experiment lengths tuned per configuration (caches warm slower in
 *  the Private-L2 system, whose aggregate footprint is 8x larger). */
inline ExperimentOptions
optionsFor(CmpConfigKind kind, std::uint64_t scale)
{
    ExperimentOptions opts;
    if (kind == CmpConfigKind::SharedL2) {
        opts.warmupAccesses = 1'000'000 * scale;
        opts.measureAccesses = 1'000'000 * scale;
    } else {
        opts.warmupAccesses = 3'000'000 * scale;
        opts.measureAccesses = 2'000'000 * scale;
    }
    opts.occupancySampleEvery = 10'000;
    return opts;
}

/** Run one workload preset on one configuration+directory. */
inline ExperimentResult
runPaperWorkload(CmpConfigKind kind, PaperWorkload workload,
                 const DirectoryParams &dir, std::uint64_t scale)
{
    CmpConfig cfg = CmpConfig::paperConfig(kind);
    cfg.directory = dir;
    const WorkloadParams params =
        paperWorkloadParams(workload, kind == CmpConfigKind::PrivateL2);
    return runExperiment(cfg, params, optionsFor(kind, scale));
}

/** The §5.2 selected Cuckoo sizings. */
inline DirectoryParams
selectedCuckoo(CmpConfigKind kind)
{
    // Shared-L2: 4x512 per slice (1x); Private-L2: 3x8192 (1.5x).
    return kind == CmpConfigKind::SharedL2 ? cuckooSliceParams(4, 512)
                                           : cuckooSliceParams(3, 8192);
}

inline const char *
configName(CmpConfigKind kind)
{
    return kind == CmpConfigKind::SharedL2 ? "Shared L2" : "Private L2";
}

} // namespace cdir::bench

#endif // CDIR_BENCH_SIM_COMMON_HH
