# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cuckoo_table_test.
