# Empty dependencies file for cuckoo_table_test.
# This may be replaced when dependencies are built.
