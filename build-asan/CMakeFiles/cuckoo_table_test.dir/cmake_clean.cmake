file(REMOVE_RECURSE
  "CMakeFiles/cuckoo_table_test.dir/tests/cuckoo_table_test.cc.o"
  "CMakeFiles/cuckoo_table_test.dir/tests/cuckoo_table_test.cc.o.d"
  "cuckoo_table_test"
  "cuckoo_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuckoo_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
