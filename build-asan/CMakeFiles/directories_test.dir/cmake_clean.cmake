file(REMOVE_RECURSE
  "CMakeFiles/directories_test.dir/tests/directories_test.cc.o"
  "CMakeFiles/directories_test.dir/tests/directories_test.cc.o.d"
  "directories_test"
  "directories_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
