# Empty dependencies file for directories_test.
# This may be replaced when dependencies are built.
