file(REMOVE_RECURSE
  "CMakeFiles/paper_claims_test.dir/tests/paper_claims_test.cc.o"
  "CMakeFiles/paper_claims_test.dir/tests/paper_claims_test.cc.o.d"
  "paper_claims_test"
  "paper_claims_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
