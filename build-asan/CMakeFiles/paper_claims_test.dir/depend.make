# Empty dependencies file for paper_claims_test.
# This may be replaced when dependencies are built.
