
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "CMakeFiles/cdir.dir/src/cache/cache.cc.o" "gcc" "CMakeFiles/cdir.dir/src/cache/cache.cc.o.d"
  "/root/repo/src/directory/assoc_directory.cc" "CMakeFiles/cdir.dir/src/directory/assoc_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/assoc_directory.cc.o.d"
  "/root/repo/src/directory/cuckoo_directory.cc" "CMakeFiles/cdir.dir/src/directory/cuckoo_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/cuckoo_directory.cc.o.d"
  "/root/repo/src/directory/directory.cc" "CMakeFiles/cdir.dir/src/directory/directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/directory.cc.o.d"
  "/root/repo/src/directory/duplicate_tag_directory.cc" "CMakeFiles/cdir.dir/src/directory/duplicate_tag_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/duplicate_tag_directory.cc.o.d"
  "/root/repo/src/directory/elbow_directory.cc" "CMakeFiles/cdir.dir/src/directory/elbow_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/elbow_directory.cc.o.d"
  "/root/repo/src/directory/in_cache_directory.cc" "CMakeFiles/cdir.dir/src/directory/in_cache_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/in_cache_directory.cc.o.d"
  "/root/repo/src/directory/registry.cc" "CMakeFiles/cdir.dir/src/directory/registry.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/registry.cc.o.d"
  "/root/repo/src/directory/tagless_directory.cc" "CMakeFiles/cdir.dir/src/directory/tagless_directory.cc.o" "gcc" "CMakeFiles/cdir.dir/src/directory/tagless_directory.cc.o.d"
  "/root/repo/src/hash/hash_family.cc" "CMakeFiles/cdir.dir/src/hash/hash_family.cc.o" "gcc" "CMakeFiles/cdir.dir/src/hash/hash_family.cc.o.d"
  "/root/repo/src/hash/skewing_hash.cc" "CMakeFiles/cdir.dir/src/hash/skewing_hash.cc.o" "gcc" "CMakeFiles/cdir.dir/src/hash/skewing_hash.cc.o.d"
  "/root/repo/src/hash/strong_hash.cc" "CMakeFiles/cdir.dir/src/hash/strong_hash.cc.o" "gcc" "CMakeFiles/cdir.dir/src/hash/strong_hash.cc.o.d"
  "/root/repo/src/model/directory_model.cc" "CMakeFiles/cdir.dir/src/model/directory_model.cc.o" "gcc" "CMakeFiles/cdir.dir/src/model/directory_model.cc.o.d"
  "/root/repo/src/model/sram.cc" "CMakeFiles/cdir.dir/src/model/sram.cc.o" "gcc" "CMakeFiles/cdir.dir/src/model/sram.cc.o.d"
  "/root/repo/src/sharers/coarse_vector.cc" "CMakeFiles/cdir.dir/src/sharers/coarse_vector.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sharers/coarse_vector.cc.o.d"
  "/root/repo/src/sharers/full_vector.cc" "CMakeFiles/cdir.dir/src/sharers/full_vector.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sharers/full_vector.cc.o.d"
  "/root/repo/src/sharers/hierarchical_vector.cc" "CMakeFiles/cdir.dir/src/sharers/hierarchical_vector.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sharers/hierarchical_vector.cc.o.d"
  "/root/repo/src/sharers/sharer_rep.cc" "CMakeFiles/cdir.dir/src/sharers/sharer_rep.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sharers/sharer_rep.cc.o.d"
  "/root/repo/src/sim/cmp_system.cc" "CMakeFiles/cdir.dir/src/sim/cmp_system.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sim/cmp_system.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "CMakeFiles/cdir.dir/src/sim/experiment.cc.o" "gcc" "CMakeFiles/cdir.dir/src/sim/experiment.cc.o.d"
  "/root/repo/src/workload/trace.cc" "CMakeFiles/cdir.dir/src/workload/trace.cc.o" "gcc" "CMakeFiles/cdir.dir/src/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload.cc" "CMakeFiles/cdir.dir/src/workload/workload.cc.o" "gcc" "CMakeFiles/cdir.dir/src/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
