# Empty dependencies file for cdir.
# This may be replaced when dependencies are built.
