file(REMOVE_RECURSE
  "CMakeFiles/sharers_test.dir/tests/sharers_test.cc.o"
  "CMakeFiles/sharers_test.dir/tests/sharers_test.cc.o.d"
  "sharers_test"
  "sharers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
