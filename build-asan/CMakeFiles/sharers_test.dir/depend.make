# Empty dependencies file for sharers_test.
# This may be replaced when dependencies are built.
