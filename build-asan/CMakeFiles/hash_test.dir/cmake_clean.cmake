file(REMOVE_RECURSE
  "CMakeFiles/hash_test.dir/tests/hash_test.cc.o"
  "CMakeFiles/hash_test.dir/tests/hash_test.cc.o.d"
  "hash_test"
  "hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
