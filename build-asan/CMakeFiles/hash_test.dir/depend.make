# Empty dependencies file for hash_test.
# This may be replaced when dependencies are built.
