# Empty dependencies file for cache_test.
# This may be replaced when dependencies are built.
