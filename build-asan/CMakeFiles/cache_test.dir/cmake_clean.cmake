file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/tests/cache_test.cc.o"
  "CMakeFiles/cache_test.dir/tests/cache_test.cc.o.d"
  "cache_test"
  "cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
