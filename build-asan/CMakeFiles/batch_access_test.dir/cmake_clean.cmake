file(REMOVE_RECURSE
  "CMakeFiles/batch_access_test.dir/src/common/alloc_counter.cc.o"
  "CMakeFiles/batch_access_test.dir/src/common/alloc_counter.cc.o.d"
  "CMakeFiles/batch_access_test.dir/tests/batch_access_test.cc.o"
  "CMakeFiles/batch_access_test.dir/tests/batch_access_test.cc.o.d"
  "batch_access_test"
  "batch_access_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
