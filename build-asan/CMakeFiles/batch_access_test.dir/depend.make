# Empty dependencies file for batch_access_test.
# This may be replaced when dependencies are built.
