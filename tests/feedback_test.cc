/**
 * @file
 * Tests for the closed-loop feedback subsystem:
 *
 *  - trigger grammar units (parse/format/evaluate, timing metadata);
 *  - scenario text-format `probe` / `until` / `when` directives and
 *    their rejection cases;
 *  - event-triggered scenarios: triggers fire at probe boundaries,
 *    never-firing triggers change nothing, firings during warmup are
 *    honoured, and every closed-loop stat — counters, firing log,
 *    digest — is bit-identical across --jobs and --shards settings;
 *  - a recorded closed-loop run replays as an ordinary trace with
 *    bit-identical system state (the trace embodies every decision);
 *  - latency triggers without a cost model fail loudly up front;
 *  - FleetWorkload semantics (determinism, churn, storms, the diurnal
 *    wave, the active-tenant pin) and the fleet/slo-ramp spec grammar;
 *  - the SLO-ramp controller: escalation, the knee/back-off decision,
 *    one-decision-per-snapshot, and campaign JSON round-tripping of
 *    the new ExperimentResult fields.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"
#include "workload/feedback.hh"
#include "workload/fleet.hh"
#include "workload/scenario.hh"
#include "workload/trace.hh"

namespace cdir {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Tiny under-provisioned CMP (same shape as scenario_test's). */
CmpConfig
tinyConfig(const std::string &organization)
{
    CmpConfig cfg;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.directory.organization = organization;
    cfg.directory.ways = 4;
    cfg.directory.sets = 8;
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    return cfg;
}

/** Triggered two-phase scenario file: the fill phase ends early when
 *  aggregate occupancy crosses @p threshold (timeout cap included). */
std::string
triggeredScenarioFile(const char *name, double threshold,
                      std::uint64_t probe_every = 500)
{
    const std::string path = tempPath(name);
    std::ofstream out(path);
    out << "scenario triggered\n"
           "cores 4\n"
           "probe " << probe_every << "\n"
           "phase fill 100000\n"
           "  preset DB2\n"
           "  until occupancy>" << threshold << "\n"
           "phase after 100000\n"
           "  preset DB2\n"
           "  set seed=99\n";
    return path;
}

ExperimentOptions
feedbackOptions(unsigned shards = 1)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 2000;
    opts.measureAccesses = 12000;
    opts.occupancySampleEvery = 500;
    opts.shards = shards;
    return opts;
}

void
expectSameCoreStats(const ExperimentResult &a, const ExperimentResult &b,
                    const std::string &label)
{
    EXPECT_EQ(a.system.accesses, b.system.accesses) << label;
    EXPECT_EQ(a.system.cacheMisses, b.system.cacheMisses) << label;
    EXPECT_EQ(a.system.forcedInvalidations, b.system.forcedInvalidations)
        << label;
    EXPECT_EQ(a.directory.insertions, b.directory.insertions) << label;
    EXPECT_EQ(a.avgOccupancy, b.avgOccupancy) << label;
    EXPECT_EQ(a.feedbackEvents, b.feedbackEvents) << label;
    EXPECT_EQ(a.feedbackDigest, b.feedbackDigest) << label;
}

// --- trigger grammar ---------------------------------------------------------

TEST(TriggerGrammar, ParsesEveryMetricAndBothOps)
{
    PhaseTrigger t = parsePhaseTrigger("occupancy>0.8");
    EXPECT_EQ(t.metric, TriggerMetric::Occupancy);
    EXPECT_TRUE(t.greater);
    EXPECT_DOUBLE_EQ(t.threshold, 0.8);

    t = parsePhaseTrigger("p99<120");
    EXPECT_EQ(t.metric, TriggerMetric::P99);
    EXPECT_FALSE(t.greater);
    EXPECT_DOUBLE_EQ(t.threshold, 120.0);

    EXPECT_EQ(parsePhaseTrigger("p50>10").metric, TriggerMetric::P50);
    EXPECT_EQ(parsePhaseTrigger("forced-per-1k>2.5").metric,
              TriggerMetric::ForcedPer1k);
    EXPECT_EQ(parsePhaseTrigger("attempts>1.5").metric,
              TriggerMetric::Attempts);
}

TEST(TriggerGrammar, FormatRoundTrips)
{
    for (const char *text :
         {"occupancy>0.8", "p99<120", "attempts>1.5", "forced-per-1k>2"}) {
        const PhaseTrigger t = parsePhaseTrigger(text);
        const PhaseTrigger back = parsePhaseTrigger(formatPhaseTrigger(t));
        EXPECT_EQ(back.metric, t.metric) << text;
        EXPECT_EQ(back.greater, t.greater) << text;
        EXPECT_DOUBLE_EQ(back.threshold, t.threshold) << text;
    }
}

TEST(TriggerGrammar, RejectsMalformedTriggers)
{
    EXPECT_THROW(parsePhaseTrigger("occupancy"), std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("occupancy=0.5"),
                 std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("bogus>1"), std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("occupancy>"), std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("occupancy>abc"),
                 std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("occupancy>-0.5"),
                 std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("occupancy>1.5"),
                 std::invalid_argument);
    EXPECT_THROW(parsePhaseTrigger("p99>1<2"), std::invalid_argument);
}

TEST(TriggerGrammar, TimingMetadataAndEvaluation)
{
    EXPECT_FALSE(triggerMetricNeedsTiming(TriggerMetric::Occupancy));
    EXPECT_FALSE(triggerMetricNeedsTiming(TriggerMetric::ForcedPer1k));
    EXPECT_FALSE(triggerMetricNeedsTiming(TriggerMetric::Attempts));
    EXPECT_TRUE(triggerMetricNeedsTiming(TriggerMetric::P50));
    EXPECT_TRUE(triggerMetricNeedsTiming(TriggerMetric::P99));

    ProbeSnapshot snap;
    snap.sequence = 1;
    snap.occupancy = 0.7;
    snap.forcedPer1k = 3.0;
    snap.windowP99 = 150;
    EXPECT_TRUE(
        triggerSatisfied(parsePhaseTrigger("occupancy>0.5"), snap));
    EXPECT_FALSE(
        triggerSatisfied(parsePhaseTrigger("occupancy>0.7"), snap));
    EXPECT_TRUE(
        triggerSatisfied(parsePhaseTrigger("occupancy<0.8"), snap));
    EXPECT_TRUE(
        triggerSatisfied(parsePhaseTrigger("forced-per-1k>2"), snap));
    EXPECT_TRUE(triggerSatisfied(parsePhaseTrigger("p99>100"), snap));
    EXPECT_FALSE(triggerSatisfied(parsePhaseTrigger("p99<100"), snap));
}

// --- scenario text format ----------------------------------------------------

TEST(TriggerParser, ParsesProbeUntilAndWhen)
{
    const Scenario sc = parseScenarioText("scenario t\n"
                                          "cores 2\n"
                                          "probe 250\n"
                                          "phase a 1000\n"
                                          "  until occupancy>0.5\n"
                                          "  when attempts>2\n"
                                          "phase b 1000\n",
                                          "inline");
    EXPECT_EQ(sc.probeEvery, 250u);
    ASSERT_EQ(sc.phases.size(), 2u);
    ASSERT_EQ(sc.phases[0].triggers.size(), 2u);
    EXPECT_EQ(sc.phases[0].triggers[0].metric, TriggerMetric::Occupancy);
    EXPECT_EQ(sc.phases[0].triggers[1].metric, TriggerMetric::Attempts);
    EXPECT_TRUE(sc.phases[1].triggers.empty());
}

TEST(TriggerParser, RejectionsCarryLineContext)
{
    const auto expectFails = [](const char *text, const char *needle) {
        try {
            parseScenarioText(text, "bad");
            FAIL() << "expected parse failure for: " << text;
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expectFails("probe 0\n", "probe interval");
    expectFails("until occupancy>0.5\n", "outside a phase");
    expectFails("cores 2\nphase a 10\n  until bogus>1\n", "bogus");
    expectFails("cores 2\nphase a 10\n  until occupancy~0.5\n", "bad:3");
}

TEST(TriggerParser, ConsumerInterfaceReflectsTriggers)
{
    const Scenario plain = parseScenarioText("cores 2\n"
                                             "phase a 100\n"
                                             "  preset DB2\n",
                                             "plain");
    ScenarioWorkload open(plain);
    EXPECT_FALSE(open.wantsFeedback());
    EXPECT_FALSE(open.needsTiming());
    EXPECT_EQ(open.probeInterval(), kDefaultProbeEvery);

    const Scenario timed = parseScenarioText("cores 2\n"
                                             "probe 100\n"
                                             "phase a 100\n"
                                             "  preset DB2\n"
                                             "  when p99>50\n",
                                             "timed");
    ScenarioWorkload closed(timed);
    EXPECT_TRUE(closed.wantsFeedback());
    EXPECT_TRUE(closed.needsTiming());
    EXPECT_EQ(closed.probeInterval(), 100u);
    EXPECT_EQ(closed.feedbackEventCount(), 0u);
    EXPECT_EQ(closed.feedbackDigest(), fnv1aInit());
}

// --- event-triggered scenarios -----------------------------------------------

TEST(TriggeredScenario, TriggerFiresOnAProbeBoundary)
{
    const Scenario sc = parseScenarioFile(
        triggeredScenarioFile("cdir_fb_fires.scn", 0.3, 250));
    const CmpConfig cfg = tinyConfig("Cuckoo");

    CmpSystem system(cfg);
    SystemProbe probe(250);
    system.setProbe(&probe);
    ScenarioWorkload workload(sc);
    ASSERT_TRUE(workload.wantsFeedback());
    workload.attachFeedback(probe.channel());
    system.run(workload, 20000);

    ASSERT_GE(workload.firings().size(), 1u);
    const auto &firing = workload.firings().front();
    EXPECT_EQ(firing.phase, 0u);
    EXPECT_EQ(firing.trigger, 0u);
    // The firing snapshot sits exactly on the probe grid.
    EXPECT_EQ(firing.accessIndex % 250, 0u);
    EXPECT_EQ(workload.feedbackEventCount(), workload.firings().size());
    EXPECT_NE(workload.feedbackDigest(), fnv1aInit());
}

TEST(TriggeredScenario, NeverFiringTriggerChangesNothing)
{
    // Mean insertion attempts can never reach a million (the cuckoo
    // path budget is tiny), so the triggered schedule must behave
    // exactly like the same schedule without the trigger line.
    const std::string triggered = tempPath("cdir_fb_never.scn");
    const std::string plain = tempPath("cdir_fb_plain.scn");
    {
        std::ofstream out(triggered);
        out << "cores 4\nprobe 500\nphase a 100000\n  preset DB2\n"
               "  until attempts>1000000\n";
    }
    {
        std::ofstream out(plain);
        out << "cores 4\nphase a 100000\n  preset DB2\n";
    }
    const ExperimentResult with =
        runExperiment(tinyConfig("Sparse"),
                      scenarioWorkloadParams(triggered),
                      feedbackOptions());
    const ExperimentResult without = runExperiment(
        tinyConfig("Sparse"), scenarioWorkloadParams(plain),
        feedbackOptions());
    EXPECT_EQ(with.feedbackEvents, 0u);
    EXPECT_EQ(with.feedbackDigest, fnv1aInit());
    EXPECT_EQ(with.system.accesses, without.system.accesses);
    EXPECT_EQ(with.system.cacheMisses, without.system.cacheMisses);
    EXPECT_EQ(with.directory.insertions, without.directory.insertions);
    EXPECT_EQ(with.system.forcedInvalidations,
              without.system.forcedInvalidations);
}

TEST(TriggeredScenario, FiringDuringWarmupIsHonoured)
{
    // A low threshold crosses within the 2000-access warmup; the
    // firing must be taken (phase advances) and counted, and the probe
    // grid must span the stats reset without disturbing determinism.
    const WorkloadParams wl = scenarioWorkloadParams(
        triggeredScenarioFile("cdir_fb_warm.scn", 0.02, 250));
    const ExperimentResult one =
        runExperiment(tinyConfig("Cuckoo"), wl, feedbackOptions(1));
    EXPECT_GE(one.feedbackEvents, 1u);
    const ExperimentResult three =
        runExperiment(tinyConfig("Cuckoo"), wl, feedbackOptions(3));
    expectSameCoreStats(one, three, "warmup firing, shards 1 vs 3");
}

TEST(TriggeredScenario, BitIdenticalAcrossJobsAndShards)
{
    const std::string file =
        triggeredScenarioFile("cdir_fb_sweep.scn", 0.25, 500);
    SweepSpec spec;
    spec.options("", feedbackOptions());
    appendScenarioWorkloads(spec, file);
    spec.config("Cuckoo", tinyConfig("Cuckoo"));
    spec.config("Sparse", tinyConfig("Sparse"));

    const std::vector<SweepRecord> serial =
        SweepRunner(SweepOptions{1, ""}).run(spec);
    const std::vector<SweepRecord> parallel =
        SweepRunner(SweepOptions{4, ""}).run(spec);
    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(parallel.size(), serial.size());
    bool anyFired = false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectSameCoreStats(serial[i].result, parallel[i].result,
                            serial[i].configLabel);
        anyFired |= serial[i].result.feedbackEvents != 0;
    }
    EXPECT_TRUE(anyFired) << "test scenario never triggered; the "
                             "determinism pin is vacuous";

    const WorkloadParams wl = scenarioWorkloadParams(file);
    const ExperimentResult one =
        runExperiment(tinyConfig("Skewed"), wl, feedbackOptions(1));
    const ExperimentResult three =
        runExperiment(tinyConfig("Skewed"), wl, feedbackOptions(3));
    expectSameCoreStats(one, three, "shards 1 vs 3");
}

TEST(TriggeredScenario, RecordedClosedLoopRunReplaysAsPlainTrace)
{
    const std::string trace = tempPath("cdir_fb_rec.ctr");
    const Scenario sc = parseScenarioFile(
        triggeredScenarioFile("cdir_fb_rec.scn", 0.25, 250));
    const CmpConfig cfg = tinyConfig("Cuckoo");

    CmpSystem live(cfg);
    std::uint64_t firings = 0;
    {
        SystemProbe probe(250);
        live.setProbe(&probe);
        ScenarioWorkload source(sc);
        source.attachFeedback(probe.channel());
        const auto sink = makeTraceSink(trace, /*binary=*/true);
        TraceRecorder recorder(source, *sink);
        live.run(recorder, 15000);
        sink->close();
        firings = source.firings().size();
        live.setProbe(nullptr);
    }
    ASSERT_GE(firings, 1u) << "closed loop never closed; replay pin "
                              "would be vacuous";

    // Replay WITHOUT any probe: the trace embodies every feedback
    // decision, so the bare replay reproduces the system bit-exactly.
    CmpSystem replayed(cfg);
    {
        const auto reader =
            makeTraceReader(trace, TraceReadOptions{cfg.numCores, true});
        replayed.run(*reader, ~std::uint64_t{0});
    }
    EXPECT_EQ(live.stats().accesses, replayed.stats().accesses);
    EXPECT_EQ(live.stats().cacheMisses, replayed.stats().cacheMisses);
    EXPECT_EQ(live.stats().forcedInvalidations,
              replayed.stats().forcedInvalidations);
    for (std::size_t s = 0; s < live.numSlices(); ++s) {
        EXPECT_EQ(live.slice(s).stats().insertions,
                  replayed.slice(s).stats().insertions)
            << "slice " << s;
        EXPECT_EQ(live.slice(s).validEntries(),
                  replayed.slice(s).validEntries())
            << "slice " << s;
    }
    std::filesystem::remove(trace);
}

TEST(TriggeredScenario, LatencyTriggerWithoutCostModelThrows)
{
    const std::string file = tempPath("cdir_fb_latency.scn");
    {
        std::ofstream out(file);
        out << "cores 4\nprobe 500\nphase a 10000\n  preset DB2\n"
               "  when p99>100\n";
    }
    const WorkloadParams wl = scenarioWorkloadParams(file);
    EXPECT_THROW(
        runExperiment(tinyConfig("Cuckoo"), wl, feedbackOptions()),
        std::runtime_error);

    // With a cost model attached the same schedule runs — and a 1-cycle
    // threshold fires on the first timed window.
    ExperimentOptions timed = feedbackOptions();
    timed.costModel = "fixed";
    std::ofstream(file) << "cores 4\nprobe 500\nphase a 100000\n"
                           "  preset DB2\n  when p99>1\nphase b 100000\n"
                           "  preset DB2\n";
    const ExperimentResult result =
        runExperiment(tinyConfig("Cuckoo"), scenarioWorkloadParams(file),
                      timed);
    EXPECT_GE(result.feedbackEvents, 1u);
}

TEST(TriggeredScenario, ProbeEveryOverrideWins)
{
    // Forcing a different probe interval moves the firing boundary:
    // the override must reach the probe (different grids => different
    // digests for a firing-bearing run).
    const WorkloadParams wl = scenarioWorkloadParams(
        triggeredScenarioFile("cdir_fb_override.scn", 0.1, 500));
    ExperimentOptions coarse = feedbackOptions();
    ExperimentOptions fine = feedbackOptions();
    fine.probeEvery = 125;
    const ExperimentResult a =
        runExperiment(tinyConfig("Cuckoo"), wl, coarse);
    const ExperimentResult b =
        runExperiment(tinyConfig("Cuckoo"), wl, fine);
    ASSERT_GE(a.feedbackEvents, 1u);
    ASSERT_GE(b.feedbackEvents, 1u);
    EXPECT_NE(a.feedbackDigest, b.feedbackDigest);
}

// --- FleetWorkload -----------------------------------------------------------

FleetParams
smallFleet()
{
    FleetParams p;
    p.numCores = 4;
    p.tenants = 4;
    p.blocksPerTenant = 256;
    p.sharedBlocks = 64;
    p.seed = 7;
    return p;
}

TEST(FleetWorkload, TwoInstancesYieldIdenticalStreams)
{
    FleetParams p = smallFleet();
    p.churnEvery = 300;
    p.stormEvery = 700;
    p.stormLength = 50;
    p.diurnalPeriod = 900;
    FleetWorkload a(p), b(p);
    for (std::size_t i = 0; i < 5000; ++i) {
        const MemAccess x = a.next(), y = b.next();
        ASSERT_EQ(x.core, y.core) << i;
        ASSERT_EQ(x.addr, y.addr) << i;
        ASSERT_EQ(x.write, y.write) << i;
        ASSERT_EQ(x.instruction, y.instruction) << i;
    }
    EXPECT_FALSE(a.exhausted());
}

TEST(FleetWorkload, ChurnColdStartsTheFootprint)
{
    FleetParams churned = smallFleet();
    churned.churnEvery = 100;
    churned.sharedFraction = 0.0;
    FleetParams stable = churned;
    stable.churnEvery = 0;

    FleetWorkload a(churned), b(stable);
    std::set<BlockAddr> addrsChurned, addrsStable;
    for (std::size_t i = 0; i < 2000; ++i) {
        addrsChurned.insert(a.next().addr);
        addrsStable.insert(b.next().addr);
    }
    EXPECT_EQ(a.churnEvents(), 19u); // ticks 100..1900
    EXPECT_EQ(b.churnEvents(), 0u);
    // Generation bumps scatter tenants to fresh frames: the churned
    // run touches strictly more distinct blocks.
    EXPECT_GT(addrsChurned.size(), addrsStable.size());
}

TEST(FleetWorkload, StormHammersOneHotKey)
{
    FleetParams p = smallFleet();
    p.stormEvery = 500;
    p.stormLength = 50;
    p.stormFraction = 1.0;
    p.sharedFraction = 0.0;
    FleetWorkload wl(p);
    for (std::size_t i = 0; i <= 500; ++i)
        wl.next(); // through the onset tick
    EXPECT_EQ(wl.stormOnsets(), 1u);
    const BlockAddr hot = wl.next().addr;
    for (std::size_t i = 0; i < 48; ++i)
        EXPECT_EQ(wl.next().addr, hot) << i;
}

TEST(FleetWorkload, DiurnalWaveAndPinControlActiveTenants)
{
    FleetParams p = smallFleet();
    p.tenants = 8;
    p.diurnalPeriod = 1000;
    p.minActiveTenants = 1;
    FleetWorkload wl(p);
    EXPECT_EQ(wl.activeTenants(), 1u); // trough at t=0
    for (std::size_t i = 0; i < 500; ++i)
        wl.next();
    EXPECT_EQ(wl.activeTenants(), 8u); // crest at half period

    wl.setActiveTenants(3);
    EXPECT_EQ(wl.activeTenants(), 3u); // pin overrides the wave
    wl.setActiveTenants(99);
    EXPECT_EQ(wl.activeTenants(), 8u); // clamped to tenants
    wl.setActiveTenants(0);
    EXPECT_EQ(wl.activeTenants(), 1u); // clamped up to 1
}

TEST(FleetWorkload, RejectsBadParams)
{
    FleetParams p = smallFleet();
    p.tenants = 0;
    EXPECT_THROW(FleetWorkload{p}, std::invalid_argument);
    p = smallFleet();
    p.minActiveTenants = 9;
    EXPECT_THROW(FleetWorkload{p}, std::invalid_argument);
    p = smallFleet();
    p.stormFraction = 1.5;
    EXPECT_THROW(FleetWorkload{p}, std::invalid_argument);
    p = smallFleet();
    p.stormEvery = 100;
    p.stormLength = 0;
    EXPECT_THROW(FleetWorkload{p}, std::invalid_argument);
}

TEST(FleetWorkload, RecordThenReplayIsBitIdentical)
{
    // Open-loop fleets record like any other source; the replay is the
    // CI round-trip smoke in miniature.
    const std::string trace = tempPath("cdir_fleet_rec.ctr");
    FleetParams p = smallFleet();
    p.churnEvery = 400;
    p.stormEvery = 900;
    const CmpConfig cfg = tinyConfig("Cuckoo");

    CmpSystem live(cfg);
    {
        FleetWorkload source(p);
        const auto sink = makeTraceSink(trace, /*binary=*/true);
        TraceRecorder recorder(source, *sink);
        live.run(recorder, 8000);
        sink->close();
    }
    CmpSystem replayed(cfg);
    {
        const auto reader =
            makeTraceReader(trace, TraceReadOptions{cfg.numCores, true});
        replayed.run(*reader, ~std::uint64_t{0});
    }
    EXPECT_EQ(live.stats().accesses, replayed.stats().accesses);
    EXPECT_EQ(live.stats().cacheMisses, replayed.stats().cacheMisses);
    for (std::size_t s = 0; s < live.numSlices(); ++s)
        EXPECT_EQ(live.slice(s).validEntries(),
                  replayed.slice(s).validEntries())
            << "slice " << s;
    std::filesystem::remove(trace);
}

// --- spec grammar ------------------------------------------------------------

TEST(FleetSpec, ParsesKnobsAndRejectsUnknowns)
{
    EXPECT_TRUE(isFleetSpec("fleet"));
    EXPECT_TRUE(isFleetSpec("fleet:tenants=4"));
    EXPECT_FALSE(isFleetSpec("fleets"));
    EXPECT_FALSE(isFleetSpec("migration-storm"));

    const FleetParams p = parseFleetSpec(
        "fleet:tenants=4:blocks=512:theta=0.5:write=0.3:churn=1000:"
        "storm=2000:storm-len=100:storm-frac=0.7:diurnal=5000:"
        "min-active=2:shared=128:shared-frac=0.1:seed=9",
        8);
    EXPECT_EQ(p.numCores, 8u);
    EXPECT_EQ(p.tenants, 4u);
    EXPECT_EQ(p.blocksPerTenant, 512u);
    EXPECT_DOUBLE_EQ(p.theta, 0.5);
    EXPECT_DOUBLE_EQ(p.writeFraction, 0.3);
    EXPECT_EQ(p.churnEvery, 1000u);
    EXPECT_EQ(p.stormEvery, 2000u);
    EXPECT_EQ(p.stormLength, 100u);
    EXPECT_DOUBLE_EQ(p.stormFraction, 0.7);
    EXPECT_EQ(p.diurnalPeriod, 5000u);
    EXPECT_EQ(p.minActiveTenants, 2u);
    EXPECT_EQ(p.sharedBlocks, 128u);
    EXPECT_DOUBLE_EQ(p.sharedFraction, 0.1);
    EXPECT_EQ(p.seed, 9u);

    EXPECT_THROW(parseFleetSpec("fleet:bogus=1", 8),
                 std::invalid_argument);
    EXPECT_THROW(parseFleetSpec("fleet:tenants", 8),
                 std::invalid_argument);
    EXPECT_THROW(parseFleetSpec("fleet:tenants=abc", 8),
                 std::invalid_argument);
}

TEST(FleetSpec, SloRampSpecParsesAndForwardsFleetKnobs)
{
    EXPECT_TRUE(isSloRampSpec("slo-ramp"));
    EXPECT_TRUE(isSloRampSpec("slo-ramp:target=100"));
    EXPECT_FALSE(isSloRampSpec("slo-rampage"));

    const SloRampParams p = parseSloRampSpec(
        "slo-ramp:metric=occupancy:target=0.5:step=1000:start=2:max=6:"
        "tenants=6:blocks=512",
        4);
    EXPECT_EQ(p.metric, TriggerMetric::Occupancy);
    EXPECT_DOUBLE_EQ(p.target, 0.5);
    EXPECT_EQ(p.step, 1000u);
    EXPECT_EQ(p.startLevel, 2u);
    EXPECT_EQ(p.maxLevel, 6u);
    EXPECT_EQ(p.fleet.tenants, 6u);
    EXPECT_EQ(p.fleet.blocksPerTenant, 512u);
    EXPECT_EQ(p.fleet.numCores, 4u);

    EXPECT_THROW(parseSloRampSpec("slo-ramp:metric=bogus", 4),
                 std::invalid_argument);
    EXPECT_THROW(parseSloRampSpec("slo-ramp:nonsense=1", 4),
                 std::invalid_argument);
}

TEST(FleetSpec, DynamicDispatchAndNaming)
{
    EXPECT_NE(dynamic_cast<FleetWorkload *>(
                  makeDynamicSource("fleet:tenants=2", 4).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<SloRampWorkload *>(
                  makeDynamicSource("slo-ramp:tenants=2", 4).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<ScenarioWorkload *>(
                  makeDynamicSource("migration-storm", 4).get()),
              nullptr);

    const WorkloadParams p = dynamicWorkloadParams("fleet:tenants=2");
    EXPECT_EQ(p.name, "fleet:tenants=2");
    EXPECT_EQ(p.scenarioSpec, "fleet:tenants=2");
    EXPECT_EQ(dynamicWorkloadParams("migration-storm").name,
              "migration-storm");
}

TEST(FleetSpec, SweepAxisAcceptsFleetSpecsAndValidatesEagerly)
{
    SweepSpec spec;
    appendScenarioWorkloads(spec, "fleet:tenants=2,migration-storm", 4);
    ASSERT_EQ(spec.workloads().size(), 2u);
    EXPECT_EQ(spec.workloads()[0].label, "fleet:tenants=2");
    EXPECT_EQ(spec.workloads()[1].label, "migration-storm");

    SweepSpec bad;
    EXPECT_THROW(appendScenarioWorkloads(bad, "fleet:bogus=1", 4),
                 std::invalid_argument);
}

// --- SLO ramp ----------------------------------------------------------------

TEST(SloRamp, EscalatesAndBacksOffAtTheKnee)
{
    SloRampParams params;
    params.fleet = smallFleet();
    params.fleet.tenants = 8;
    params.metric = TriggerMetric::Occupancy;
    params.target = 0.5;
    params.step = 100;
    SloRampWorkload ramp(params);
    EXPECT_EQ(ramp.currentLevel(), 1u);
    EXPECT_EQ(ramp.probeInterval(), 100u);
    EXPECT_TRUE(ramp.wantsFeedback());
    EXPECT_FALSE(ramp.needsTiming()); // occupancy metric is untimed

    FeedbackChannel channel;
    ramp.attachFeedback(channel);

    const auto publish = [&](std::uint64_t seq, double occupancy) {
        ProbeSnapshot snap;
        snap.sequence = seq;
        snap.accessIndex = seq * 100;
        snap.occupancy = occupancy;
        channel.publish(snap);
        ramp.next(); // decisions happen on the draw after a snapshot
    };

    publish(1, 0.2); // sustained -> escalate
    EXPECT_EQ(ramp.currentLevel(), 2u);
    EXPECT_EQ(ramp.kneeLevel(), 1u);
    publish(2, 0.3); // sustained -> escalate
    EXPECT_EQ(ramp.currentLevel(), 3u);
    EXPECT_EQ(ramp.kneeLevel(), 2u);
    EXPECT_DOUBLE_EQ(ramp.kneeMetric(), 0.3);

    // Same snapshot again: one decision per capture, nothing changes.
    ramp.next();
    EXPECT_EQ(ramp.currentLevel(), 3u);
    EXPECT_EQ(ramp.transitions().size(), 2u);

    publish(3, 0.9); // violation -> back off to the knee and hold
    EXPECT_TRUE(ramp.crossed());
    EXPECT_EQ(ramp.currentLevel(), 2u);
    EXPECT_EQ(ramp.kneeLevel(), 2u);
    EXPECT_DOUBLE_EQ(ramp.crossMetric(), 0.9);

    publish(4, 0.1); // held: no further transitions after the cross
    EXPECT_EQ(ramp.currentLevel(), 2u);
    ASSERT_EQ(ramp.transitions().size(), 3u);
    EXPECT_TRUE(ramp.transitions().back().violation);
    EXPECT_EQ(ramp.feedbackEventCount(), 3u);
    EXPECT_NE(ramp.feedbackDigest(), fnv1aInit());
}

TEST(SloRamp, RejectsBadParams)
{
    SloRampParams p;
    p.fleet = smallFleet();
    p.step = 0;
    EXPECT_THROW(SloRampWorkload{p}, std::invalid_argument);
    p = SloRampParams{};
    p.fleet = smallFleet();
    p.maxLevel = 99;
    EXPECT_THROW(SloRampWorkload{p}, std::invalid_argument);
    p = SloRampParams{};
    p.fleet = smallFleet();
    p.startLevel = 5; // > tenants (= default top)
    EXPECT_THROW(SloRampWorkload{p}, std::invalid_argument);
}

TEST(SloRamp, ExperimentSurfacesKneeDeterministically)
{
    // Occupancy-metric ramp (no cost model needed): the tiny directory
    // saturates fast, so the ramp crosses within the measure run.
    const WorkloadParams wl = dynamicWorkloadParams(
        "slo-ramp:metric=occupancy:target=0.6:step=1000:tenants=8:"
        "blocks=4096");
    ExperimentOptions opts;
    opts.warmupAccesses = 2000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 500;

    const ExperimentResult one =
        runExperiment(tinyConfig("Cuckoo"), wl, opts);
    EXPECT_GE(one.feedbackEvents, 1u);
    EXPECT_GE(one.rampFinalLevel, 1u);

    opts.shards = 3;
    const ExperimentResult three =
        runExperiment(tinyConfig("Cuckoo"), wl, opts);
    expectSameCoreStats(one, three, "slo-ramp shards 1 vs 3");
    EXPECT_EQ(one.rampFinalLevel, three.rampFinalLevel);
    EXPECT_EQ(one.rampKneeLevel, three.rampKneeLevel);
    EXPECT_EQ(one.rampKneeMetric, three.rampKneeMetric);
    EXPECT_EQ(one.rampCrossMetric, three.rampCrossMetric);
}

TEST(SloRamp, ResultFieldsRoundTripThroughCampaignJson)
{
    ExperimentResult result;
    result.workload = "slo-ramp:target=1";
    result.organization = "Cuckoo";
    result.feedbackEvents = 7;
    result.feedbackDigest = 0xdeadbeefcafef00dull;
    result.rampFinalLevel = 5;
    result.rampKneeLevel = 4;
    result.rampKneeMetric = 123.5;
    result.rampCrossMetric = 180.25;

    const ExperimentResult back =
        parseExperimentResult(experimentResultToJson(result));
    EXPECT_EQ(back.feedbackEvents, 7u);
    EXPECT_EQ(back.feedbackDigest, 0xdeadbeefcafef00dull);
    EXPECT_EQ(back.rampFinalLevel, 5u);
    EXPECT_EQ(back.rampKneeLevel, 4u);
    EXPECT_DOUBLE_EQ(back.rampKneeMetric, 123.5);
    EXPECT_DOUBLE_EQ(back.rampCrossMetric, 180.25);
}

} // namespace
} // namespace cdir
