/**
 * @file
 * Shared machinery of the golden-trace regression suite: the fixed
 * replay configurations (Shared-L2 and Private-L2), the pinned-row
 * type, the committed tables (tests/golden_trace_values.inc), and the
 * measurement routine. Used by golden_trace_test.cc (exact pins and
 * table regeneration) and shard_test.cc (the same pins must reproduce
 * under sharded execution).
 */

#ifndef CDIR_TESTS_GOLDEN_TRACE_UTIL_HH
#define CDIR_TESTS_GOLDEN_TRACE_UTIL_HH

#include <cstdint>
#include <string>

#include "sim/cmp_system.hh"
#include "workload/trace.hh"

namespace cdir::test {

/** The organizations pinned, in registry-stable (alphabetical) order. */
inline const char *const kGoldenOrganizations[] = {
    "Cuckoo", "DuplicateTag", "Elbow", "InCache",
    "Skewed", "Sparse",       "Tagless",
};

/** The committed fixture traces (generation: tests/data/README.md). */
inline const char *const kGoldenTraces[] = {
    "oltp_like.trace",
    "ocean_like.ctr",
    "mixed.ctr",
};

/**
 * Fixed replay configurations: a tiny 4-core CMP with deliberately
 * *under*-provisioned directories so the fixtures exercise the conflict
 * paths and the pinned forced-eviction/invalidation counters are
 * non-trivial.
 *
 *  - Shared-L2: 32-set 2-way L1s (batch_access_test's geometry), 8-set
 *    slices (1/4x for the Cuckoo sizing).
 *  - Private-L2: 64-set 4-way unified L2s (1024 aggregate frames — the
 *    committed traces were recorded at Shared-L2 footprints, so the
 *    tracked caches must stay small for the fixtures to stress the
 *    directory), 16-set slices (1/4x again).
 */
inline CmpConfig
goldenReplayConfig(const std::string &organization, CmpConfigKind kind)
{
    CmpConfig cfg;
    cfg.kind = kind;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    if (kind == CmpConfigKind::SharedL2) {
        cfg.privateCache = CacheConfig{32, 2};
        cfg.directory.sets = 8;
    } else {
        cfg.privateCache = CacheConfig{64, 4};
        cfg.directory.sets = 16;
    }
    cfg.directory.organization = organization;
    cfg.directory.ways =
        (organization == "Sparse" || organization == "InCache") ? 8 : 4;
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    cfg.directory.taglessBucketBits = 64;
    return cfg;
}

/** One pinned measurement: trace x organization -> exact counters. */
struct GoldenRow
{
    const char *trace;
    const char *organization;
    std::uint64_t insertions;
    std::uint64_t dirHits;
    std::uint64_t forcedEvictions;
    std::uint64_t sharerRemovals;
    std::uint64_t validEntries;
    std::uint64_t cacheMisses;
    std::uint64_t sharingInvalidations;
    std::uint64_t forcedInvalidations;
};

// Defines kGolden (Shared-L2) and kGoldenPrivateL2.
#include "golden_trace_values.inc"

/**
 * Replay one committed fixture through @p organization on the fixed
 * @p kind CMP with @p shards execution lanes and return the measured
 * counters (trace/organization fields left null).
 */
inline GoldenRow
measureGolden(const std::string &trace, const std::string &organization,
              CmpConfigKind kind = CmpConfigKind::SharedL2,
              unsigned shards = 1)
{
    const std::string path =
        std::string(CDIR_TEST_DATA_DIR) + "/" + trace;
    CmpSystem system(goldenReplayConfig(organization, kind));
    system.setShards(shards);
    const auto reader = makeTraceReader(
        path, TraceReadOptions{system.config().numCores, true});
    system.run(*reader, ~std::uint64_t{0});

    const DirectoryStats dir = system.aggregateDirectoryStats();
    std::uint64_t valid = 0;
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        valid += system.slice(s).validEntries();

    return GoldenRow{nullptr,
                     nullptr,
                     dir.insertions,
                     dir.hits,
                     dir.forcedEvictions,
                     dir.sharerRemovals,
                     valid,
                     system.stats().cacheMisses,
                     system.stats().sharingInvalidations,
                     system.stats().forcedInvalidations};
}

} // namespace cdir::test

#endif // CDIR_TESTS_GOLDEN_TRACE_UTIL_HH
