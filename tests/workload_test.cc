/**
 * @file
 * Tests for the synthetic workload generators: determinism, region
 * structure, parameter effects, and the Table 2 presets' qualitative
 * sharing profiles (§5.2).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.hh"

namespace cdir {
namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 4;
    p.codeBlocks = 64;
    p.sharedBlocks = 256;
    p.privateBlocksPerCore = 128;
    p.seed = 1;
    return p;
}

TEST(Zipf, UniformWhenThetaZero)
{
    ZipfSampler z(100, 0.0);
    Rng rng(1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 1000, 300);
}

TEST(Zipf, SkewFavoursLowRanks)
{
    ZipfSampler z(1000, 0.9);
    Rng rng(2);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    EXPECT_GT(counts[0], counts[100] * 5);
    EXPECT_GT(counts[0], 1000);
}

TEST(Zipf, SamplesInRange)
{
    ZipfSampler z(17, 0.7);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 17u);
}

TEST(Zipf, SingleItemAlwaysZero)
{
    ZipfSampler z(1, 0.9);
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Workload, DeterministicForSeed)
{
    SyntheticWorkload a(tinyParams()), b(tinyParams());
    for (int i = 0; i < 1000; ++i) {
        const MemAccess x = a.next(), y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.core, y.core);
        EXPECT_EQ(x.write, y.write);
        EXPECT_EQ(x.instruction, y.instruction);
    }
}

TEST(Workload, CoresRoundRobin)
{
    SyntheticWorkload w(tinyParams());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(w.next().core, static_cast<CoreId>(i % 4));
}

TEST(Workload, InstructionsAreReadOnly)
{
    SyntheticWorkload w(tinyParams());
    for (int i = 0; i < 20000; ++i) {
        const MemAccess a = w.next();
        if (a.instruction)
            EXPECT_FALSE(a.write);
    }
}

TEST(Workload, InstructionFractionRespected)
{
    auto p = tinyParams();
    p.instructionFraction = 0.3;
    SyntheticWorkload w(p);
    int instr = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (w.next().instruction)
            ++instr;
    EXPECT_NEAR(instr / double(n), 0.3, 0.02);
}

TEST(Workload, WriteFractionRespected)
{
    auto p = tinyParams();
    p.instructionFraction = 0.0;
    p.writeFraction = 0.25;
    SyntheticWorkload w(p);
    int writes = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (w.next().write)
            ++writes;
    EXPECT_NEAR(writes / double(n), 0.25, 0.02);
}

TEST(Workload, PrivateRegionsAreDisjointPerCore)
{
    auto p = tinyParams();
    p.instructionFraction = 0.0;
    p.sharedDataFraction = 0.0;
    SyntheticWorkload w(p);
    std::map<CoreId, std::set<BlockAddr>> touched;
    for (int i = 0; i < 40000; ++i) {
        const MemAccess a = w.next();
        touched[a.core].insert(a.addr);
    }
    for (const auto &[c1, s1] : touched) {
        for (const auto &[c2, s2] : touched) {
            if (c1 == c2)
                continue;
            for (BlockAddr addr : s1) {
                ASSERT_FALSE(s2.count(addr))
                    << "cores " << c1 << "/" << c2 << " share " << addr;
            }
        }
    }
}

TEST(Workload, SharedRegionIsSharedAcrossCores)
{
    auto p = tinyParams();
    p.instructionFraction = 0.0;
    p.sharedDataFraction = 1.0;
    p.sharedBlocks = 32;
    SyntheticWorkload w(p);
    std::map<CoreId, std::set<BlockAddr>> touched;
    for (int i = 0; i < 20000; ++i) {
        const MemAccess a = w.next();
        touched[a.core].insert(a.addr);
    }
    // With a tiny hot shared region every core touches the same blocks.
    const auto &ref = touched.begin()->second;
    for (const auto &[core, s] : touched)
        EXPECT_EQ(s, ref) << "core " << core;
}

TEST(Workload, FootprintBoundHolds)
{
    auto p = tinyParams();
    SyntheticWorkload w(p);
    std::set<BlockAddr> distinct;
    for (int i = 0; i < 200000; ++i)
        distinct.insert(w.next().addr);
    EXPECT_LE(distinct.size(), w.distinctBlocks());
}

// --- presets -----------------------------------------------------------------

class PaperPreset : public testing::TestWithParam<PaperWorkload>
{};

TEST_P(PaperPreset, ValidForBothConfigs)
{
    for (bool private_l2 : {false, true}) {
        const auto p = paperWorkloadParams(GetParam(), private_l2);
        EXPECT_FALSE(p.name.empty());
        EXPECT_EQ(p.numCores, 16u);
        EXPECT_GE(p.codeBlocks, 1u);
        EXPECT_GE(p.sharedBlocks, 1u);
        EXPECT_GE(p.privateBlocksPerCore, 1u);
        EXPECT_GE(p.instructionFraction, 0.0);
        EXPECT_LE(p.instructionFraction, 1.0);
        EXPECT_GE(p.writeFraction, 0.0);
        EXPECT_LE(p.writeFraction, 1.0);
        // Generator must construct and run.
        SyntheticWorkload w(p);
        for (int i = 0; i < 1000; ++i)
            w.next();
    }
}

TEST_P(PaperPreset, PrivateL2FootprintsScaleUp)
{
    const auto shared = paperWorkloadParams(GetParam(), false);
    const auto priv = paperWorkloadParams(GetParam(), true);
    EXPECT_GT(priv.privateBlocksPerCore, shared.privateBlocksPerCore);
    EXPECT_GT(priv.sharedBlocks, shared.sharedBlocks);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PaperPreset, testing::ValuesIn(allPaperWorkloads()),
    [](const auto &info) { return paperWorkloadName(info.param); });

TEST(PaperPresets, NinePresetsWithDistinctNames)
{
    std::set<std::string> names;
    for (PaperWorkload w : allPaperWorkloads())
        names.insert(paperWorkloadName(w));
    EXPECT_EQ(names.size(), 9u);
}

TEST(PaperPresets, OceanIsOverwhelminglyPrivate)
{
    // §5.2: ocean has nearly 100% unique private blocks.
    const auto p = paperWorkloadParams(PaperWorkload::SciOcean, true);
    EXPECT_LT(p.instructionFraction + p.sharedDataFraction, 0.10);
    EXPECT_GT(p.privateBlocksPerCore, 16384u); // exceeds the 1MB L2
}

TEST(PaperPresets, WebIsDominatedBySharing)
{
    const auto p = paperWorkloadParams(PaperWorkload::WebApache, false);
    EXPECT_GT(p.instructionFraction, 0.3);
    EXPECT_GT(p.sharedDataFraction, 0.5);
}

} // namespace
} // namespace cdir
