/**
 * @file
 * Unit and property tests for the sharer-set representations: precise
 * behaviour of the full vector, pointer/coarse transitions, hierarchical
 * allocation, and the universal never-false-negative invariant.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sharers/coarse_vector.hh"
#include "sharers/full_vector.hh"
#include "sharers/hierarchical_vector.hh"
#include "sharers/sharer_rep.hh"

namespace cdir {
namespace {

// --- shared property suite ---------------------------------------------------

struct RepCase
{
    SharerFormat format;
    std::size_t caches;
};

std::string
repName(const testing::TestParamInfo<RepCase> &info)
{
    const char *fmt =
        info.param.format == SharerFormat::FullVector     ? "Full"
        : info.param.format == SharerFormat::CoarseVector ? "Coarse"
                                                          : "Hier";
    return std::string(fmt) + "_" + std::to_string(info.param.caches);
}

class SharerRepProperty : public testing::TestWithParam<RepCase>
{
  protected:
    void SetUp() override
    {
        rep = makeSharerRep(GetParam().format, GetParam().caches);
        ASSERT_NE(rep, nullptr);
    }
    std::unique_ptr<SharerRep> rep;
};

TEST_P(SharerRepProperty, StartsEmpty)
{
    EXPECT_TRUE(rep->empty());
    EXPECT_EQ(rep->count(), 0u);
    DynamicBitset targets;
    rep->invalidationTargets(targets);
    EXPECT_TRUE(targets.none());
}

TEST_P(SharerRepProperty, AddThenContains)
{
    rep->add(0);
    EXPECT_TRUE(rep->mightContain(0));
    EXPECT_EQ(rep->count(), 1u);
    EXPECT_FALSE(rep->empty());
}

TEST_P(SharerRepProperty, RemoveLastSharerEmpties)
{
    rep->add(1);
    EXPECT_TRUE(rep->remove(1));
    EXPECT_TRUE(rep->empty());
}

TEST_P(SharerRepProperty, RemoveReturnsFalseWhileOthersRemain)
{
    rep->add(0);
    rep->add(1);
    EXPECT_FALSE(rep->remove(0));
    EXPECT_TRUE(rep->remove(1));
}

TEST_P(SharerRepProperty, NeverFalseNegative)
{
    // Whatever the representation does internally, a true sharer must
    // always be covered by mightContain and invalidationTargets.
    const std::size_t n = GetParam().caches;
    Rng rng(42);
    std::set<CacheId> truth;
    for (int step = 0; step < 500; ++step) {
        const auto cache = static_cast<CacheId>(rng.below(n));
        if (rng.chance(0.6)) {
            if (!truth.count(cache)) {
                rep->add(cache);
                truth.insert(cache);
            }
        } else if (!truth.empty()) {
            // remove a random true sharer
            auto it = truth.begin();
            std::advance(it, rng.below(truth.size()));
            rep->remove(*it);
            truth.erase(it);
        }
        DynamicBitset targets;
        rep->invalidationTargets(targets);
        for (CacheId c : truth) {
            ASSERT_TRUE(rep->mightContain(c)) << "step " << step;
            ASSERT_TRUE(targets.test(c)) << "step " << step;
        }
        ASSERT_EQ(rep->count(), truth.size());
    }
}

TEST_P(SharerRepProperty, ClearEmpties)
{
    for (CacheId c = 0; c < 4; ++c)
        rep->add(c);
    rep->clear();
    EXPECT_TRUE(rep->empty());
    DynamicBitset targets;
    rep->invalidationTargets(targets);
    EXPECT_TRUE(targets.none());
}

TEST_P(SharerRepProperty, DuplicateAddIsIdempotentWhilePrecise)
{
    if (GetParam().format == SharerFormat::CoarseVector)
        GTEST_SKIP() << "coarse mode tolerates only unique adds";
    rep->add(2);
    rep->add(2);
    EXPECT_EQ(rep->count(), 1u);
}

TEST_P(SharerRepProperty, StorageBitsPositive)
{
    EXPECT_GT(rep->storageBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllReps, SharerRepProperty,
    testing::Values(RepCase{SharerFormat::FullVector, 16},
                    RepCase{SharerFormat::FullVector, 64},
                    RepCase{SharerFormat::FullVector, 1024},
                    RepCase{SharerFormat::CoarseVector, 16},
                    RepCase{SharerFormat::CoarseVector, 64},
                    RepCase{SharerFormat::CoarseVector, 1024},
                    RepCase{SharerFormat::Hierarchical, 16},
                    RepCase{SharerFormat::Hierarchical, 64},
                    RepCase{SharerFormat::Hierarchical, 1024}),
    repName);

// --- FullVector specifics -----------------------------------------------------

TEST(FullVector, PreciseTargets)
{
    FullVectorRep rep(16);
    rep.add(3);
    rep.add(9);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
    EXPECT_TRUE(targets.test(3));
    EXPECT_TRUE(targets.test(9));
    EXPECT_TRUE(rep.precise());
}

TEST(FullVector, StorageIsOneBitPerCache)
{
    EXPECT_EQ(FullVectorRep(16).storageBits(), 16u);
    EXPECT_EQ(FullVectorRep(1024).storageBits(), 1024u);
}

// --- CoarseVector specifics ----------------------------------------------------

TEST(CoarseVector, StaysPreciseWithinPointerBudget)
{
    CoarseVectorRep rep(64); // budget = 2*6 = 12 bits, 2 pointers
    rep.add(10);
    rep.add(50);
    EXPECT_TRUE(rep.precise());
    EXPECT_FALSE(rep.isCoarse());
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
}

TEST(CoarseVector, OverflowSwitchesToCoarse)
{
    CoarseVectorRep rep(64);
    rep.add(1);
    rep.add(2);
    rep.add(3); // third sharer overflows two pointers
    EXPECT_TRUE(rep.isCoarse());
    EXPECT_FALSE(rep.precise());
    EXPECT_EQ(rep.count(), 3u);
}

TEST(CoarseVector, CoarseTargetsAreSuperset)
{
    CoarseVectorRep rep(64);
    rep.add(0);
    rep.add(20);
    rep.add(40);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(20));
    EXPECT_TRUE(targets.test(40));
    // Coarse bits cover whole groups, so the target count is at least
    // the sharer count and bounded by groups * groupSize.
    EXPECT_GE(targets.count(), 3u);
}

TEST(CoarseVector, StorageBitsMatchBudget)
{
    EXPECT_EQ(CoarseVectorRep(16).storageBits(), 8u);   // 2*log2(16)
    EXPECT_EQ(CoarseVectorRep(64).storageBits(), 12u);  // 2*log2(64)
    EXPECT_EQ(CoarseVectorRep(1024).storageBits(), 20u);
    EXPECT_EQ(sharerStorageBits(SharerFormat::CoarseVector, 1024), 20u);
}

TEST(CoarseVector, EmptiesFromCoarseMode)
{
    CoarseVectorRep rep(32);
    rep.add(0);
    rep.add(1);
    rep.add(2);
    ASSERT_TRUE(rep.isCoarse());
    EXPECT_FALSE(rep.remove(0));
    EXPECT_FALSE(rep.remove(1));
    EXPECT_TRUE(rep.remove(2));
    EXPECT_TRUE(rep.empty());
    EXPECT_FALSE(rep.isCoarse()); // reset to precise pointer mode
}

TEST(CoarseVector, CoarseModeRetainsGroupBitsUntilEmpty)
{
    CoarseVectorRep rep(64);
    rep.add(0);
    rep.add(1);
    rep.add(2);
    ASSERT_TRUE(rep.isCoarse());
    rep.remove(2);
    // Group bit for {0,1,...} region must still cover remaining sharers.
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(1));
}

TEST(CoarseVector, SmallSystemsDegenerate)
{
    // 2 caches: budget = 2 bits, groups of 1 — effectively full vector.
    CoarseVectorRep rep(2);
    rep.add(0);
    rep.add(1);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
}

// --- Hierarchical specifics -----------------------------------------------------

TEST(Hierarchical, AllocatesLeavesOnDemand)
{
    HierarchicalVectorRep rep(64); // clusters of 8
    EXPECT_EQ(rep.allocatedLeaves(), 0u);
    rep.add(0);
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.add(7); // same cluster
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.add(8); // next cluster
    EXPECT_EQ(rep.allocatedLeaves(), 2u);
}

TEST(Hierarchical, DeallocatesEmptyLeaves)
{
    HierarchicalVectorRep rep(64);
    rep.add(0);
    rep.add(8);
    rep.remove(0);
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.remove(8);
    EXPECT_EQ(rep.allocatedLeaves(), 0u);
    EXPECT_TRUE(rep.empty());
}

TEST(Hierarchical, PreciseTargets)
{
    HierarchicalVectorRep rep(100);
    rep.add(0);
    rep.add(55);
    rep.add(99);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 3u);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(55));
    EXPECT_TRUE(targets.test(99));
    EXPECT_TRUE(rep.precise());
}

TEST(Hierarchical, ExplicitClusterSize)
{
    HierarchicalVectorRep rep(64, 16);
    EXPECT_EQ(rep.clusterSize(), 16u);
    rep.add(15);
    rep.add(16);
    EXPECT_EQ(rep.allocatedLeaves(), 2u);
}

TEST(Hierarchical, RootStorageBitsFormula)
{
    // sqrt split: 1024 caches -> 32 clusters of 32.
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 1024), 32u);
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 16), 4u);
}

TEST(SharerFactory, BuildsEveryFormat)
{
    for (SharerFormat f :
         {SharerFormat::FullVector, SharerFormat::CoarseVector,
          SharerFormat::Hierarchical}) {
        auto rep = makeSharerRep(f, 32);
        ASSERT_NE(rep, nullptr);
        rep->add(5);
        EXPECT_TRUE(rep->mightContain(5));
    }
}

} // namespace
} // namespace cdir
