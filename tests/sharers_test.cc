/**
 * @file
 * Unit and property tests for the sharer-set representations: precise
 * behaviour of the full vector, pointer/coarse transitions, hierarchical
 * allocation, and the universal never-false-negative invariant.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bit_util.hh"
#include "common/rng.hh"
#include "sharers/coarse_vector.hh"
#include "sharers/compressed_vector.hh"
#include "sharers/full_vector.hh"
#include "sharers/hierarchical_vector.hh"
#include "sharers/sharer_rep.hh"

namespace cdir {
namespace {

// --- shared property suite ---------------------------------------------------

struct RepCase
{
    SharerFormat format;
    std::size_t caches;
};

std::string
repName(const testing::TestParamInfo<RepCase> &info)
{
    const char *fmt =
        info.param.format == SharerFormat::FullVector     ? "Full"
        : info.param.format == SharerFormat::CoarseVector ? "Coarse"
        : info.param.format == SharerFormat::Compressed   ? "Compressed"
                                                          : "Hier";
    return std::string(fmt) + "_" + std::to_string(info.param.caches);
}

class SharerRepProperty : public testing::TestWithParam<RepCase>
{
  protected:
    void SetUp() override
    {
        rep = makeSharerRep(GetParam().format, GetParam().caches);
        ASSERT_NE(rep, nullptr);
    }
    std::unique_ptr<SharerRep> rep;
};

TEST_P(SharerRepProperty, StartsEmpty)
{
    EXPECT_TRUE(rep->empty());
    EXPECT_EQ(rep->count(), 0u);
    DynamicBitset targets;
    rep->invalidationTargets(targets);
    EXPECT_TRUE(targets.none());
}

TEST_P(SharerRepProperty, AddThenContains)
{
    rep->add(0);
    EXPECT_TRUE(rep->mightContain(0));
    EXPECT_EQ(rep->count(), 1u);
    EXPECT_FALSE(rep->empty());
}

TEST_P(SharerRepProperty, RemoveLastSharerEmpties)
{
    rep->add(1);
    EXPECT_TRUE(rep->remove(1));
    EXPECT_TRUE(rep->empty());
}

TEST_P(SharerRepProperty, RemoveReturnsFalseWhileOthersRemain)
{
    rep->add(0);
    rep->add(1);
    EXPECT_FALSE(rep->remove(0));
    EXPECT_TRUE(rep->remove(1));
}

TEST_P(SharerRepProperty, NeverFalseNegative)
{
    // Whatever the representation does internally, a true sharer must
    // always be covered by mightContain and invalidationTargets.
    const std::size_t n = GetParam().caches;
    Rng rng(42);
    std::set<CacheId> truth;
    for (int step = 0; step < 500; ++step) {
        const auto cache = static_cast<CacheId>(rng.below(n));
        if (rng.chance(0.6)) {
            if (!truth.count(cache)) {
                rep->add(cache);
                truth.insert(cache);
            }
        } else if (!truth.empty()) {
            // remove a random true sharer
            auto it = truth.begin();
            std::advance(it, rng.below(truth.size()));
            rep->remove(*it);
            truth.erase(it);
        }
        DynamicBitset targets;
        rep->invalidationTargets(targets);
        for (CacheId c : truth) {
            ASSERT_TRUE(rep->mightContain(c)) << "step " << step;
            ASSERT_TRUE(targets.test(c)) << "step " << step;
        }
        ASSERT_EQ(rep->count(), truth.size());
    }
}

TEST_P(SharerRepProperty, ClearEmpties)
{
    for (CacheId c = 0; c < 4; ++c)
        rep->add(c);
    rep->clear();
    EXPECT_TRUE(rep->empty());
    DynamicBitset targets;
    rep->invalidationTargets(targets);
    EXPECT_TRUE(targets.none());
}

TEST_P(SharerRepProperty, DuplicateAddIsIdempotent)
{
    // Every format, coarse mode included: add() tracks membership, so
    // re-adding an existing sharer must not inflate the count (the
    // directory's read-hit path calls add() for the requester whether
    // or not it is already recorded).
    rep->add(2);
    rep->add(2);
    EXPECT_EQ(rep->count(), 1u);
    EXPECT_TRUE(rep->remove(2));
    EXPECT_TRUE(rep->empty());
}

TEST_P(SharerRepProperty, StorageBitsPositive)
{
    EXPECT_GT(rep->storageBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllReps, SharerRepProperty,
    testing::Values(RepCase{SharerFormat::FullVector, 16},
                    RepCase{SharerFormat::FullVector, 64},
                    RepCase{SharerFormat::FullVector, 1024},
                    RepCase{SharerFormat::CoarseVector, 16},
                    RepCase{SharerFormat::CoarseVector, 64},
                    RepCase{SharerFormat::CoarseVector, 1024},
                    RepCase{SharerFormat::Hierarchical, 16},
                    RepCase{SharerFormat::Hierarchical, 64},
                    RepCase{SharerFormat::Hierarchical, 1024},
                    RepCase{SharerFormat::Compressed, 16},
                    RepCase{SharerFormat::Compressed, 64},
                    RepCase{SharerFormat::Compressed, 1024}),
    repName);

// --- FullVector specifics -----------------------------------------------------

TEST(FullVector, PreciseTargets)
{
    FullVectorRep rep(16);
    rep.add(3);
    rep.add(9);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
    EXPECT_TRUE(targets.test(3));
    EXPECT_TRUE(targets.test(9));
    EXPECT_TRUE(rep.precise());
}

TEST(FullVector, StorageIsOneBitPerCache)
{
    EXPECT_EQ(FullVectorRep(16).storageBits(), 16u);
    EXPECT_EQ(FullVectorRep(1024).storageBits(), 1024u);
}

// --- CoarseVector specifics ----------------------------------------------------

TEST(CoarseVector, StaysPreciseWithinPointerBudget)
{
    CoarseVectorRep rep(64); // budget = 2*6 = 12 bits, 2 pointers
    rep.add(10);
    rep.add(50);
    EXPECT_TRUE(rep.precise());
    EXPECT_FALSE(rep.isCoarse());
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
}

TEST(CoarseVector, OverflowSwitchesToCoarse)
{
    CoarseVectorRep rep(64);
    rep.add(1);
    rep.add(2);
    rep.add(3); // third sharer overflows two pointers
    EXPECT_TRUE(rep.isCoarse());
    EXPECT_FALSE(rep.precise());
    EXPECT_EQ(rep.count(), 3u);
}

TEST(CoarseVector, CoarseTargetsAreSuperset)
{
    CoarseVectorRep rep(64);
    rep.add(0);
    rep.add(20);
    rep.add(40);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(20));
    EXPECT_TRUE(targets.test(40));
    // Coarse bits cover whole groups, so the target count is at least
    // the sharer count and bounded by groups * groupSize.
    EXPECT_GE(targets.count(), 3u);
}

TEST(CoarseVector, StorageBitsMatchBudget)
{
    EXPECT_EQ(CoarseVectorRep(16).storageBits(), 8u);   // 2*log2(16)
    EXPECT_EQ(CoarseVectorRep(64).storageBits(), 12u);  // 2*log2(64)
    EXPECT_EQ(CoarseVectorRep(1024).storageBits(), 20u);
    EXPECT_EQ(sharerStorageBits(SharerFormat::CoarseVector, 1024), 20u);
}

TEST(CoarseVector, EmptiesFromCoarseMode)
{
    CoarseVectorRep rep(32);
    rep.add(0);
    rep.add(1);
    rep.add(2);
    ASSERT_TRUE(rep.isCoarse());
    EXPECT_FALSE(rep.remove(0));
    EXPECT_FALSE(rep.remove(1));
    EXPECT_TRUE(rep.remove(2));
    EXPECT_TRUE(rep.empty());
    EXPECT_FALSE(rep.isCoarse()); // reset to precise pointer mode
}

TEST(CoarseVector, CoarseModeRetainsGroupBitsUntilEmpty)
{
    CoarseVectorRep rep(64);
    rep.add(0);
    rep.add(1);
    rep.add(2);
    ASSERT_TRUE(rep.isCoarse());
    rep.remove(2);
    // Group bit for {0,1,...} region must still cover remaining sharers.
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(1));
}

TEST(CoarseVector, CoarseReAddDoesNotDoubleCount)
{
    // Regression pin: add() used to bump the sharer count
    // unconditionally in coarse mode, so re-adding a tracked sharer
    // inflated count() and the removal sequence could never drain the
    // entry back to empty (leaking the directory entry).
    CoarseVectorRep rep(64);
    rep.add(1);
    rep.add(2);
    rep.add(3);
    ASSERT_TRUE(rep.isCoarse());
    ASSERT_EQ(rep.count(), 3u);
    rep.add(2); // re-add while coarse
    EXPECT_EQ(rep.count(), 3u);
    EXPECT_FALSE(rep.remove(1));
    EXPECT_FALSE(rep.remove(2));
    EXPECT_TRUE(rep.remove(3));
    EXPECT_TRUE(rep.empty());
}

TEST(CoarseVector, CoarseRemoveOfUntrackedCacheIsANoOp)
{
    CoarseVectorRep rep(64);
    rep.add(0);
    rep.add(1);
    rep.add(2);
    ASSERT_TRUE(rep.isCoarse());
    // 3 shares group 0's coarse bit but was never added; removing it
    // must not disturb the count.
    EXPECT_FALSE(rep.remove(3));
    EXPECT_EQ(rep.count(), 3u);
}

TEST(CoarseVector, SmallSystemsDegenerate)
{
    // 2 caches: budget = 2 bits, groups of 1 — effectively full vector.
    CoarseVectorRep rep(2);
    rep.add(0);
    rep.add(1);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 2u);
}

// --- Hierarchical specifics -----------------------------------------------------

TEST(Hierarchical, AllocatesLeavesOnDemand)
{
    HierarchicalVectorRep rep(64); // clusters of 8
    EXPECT_EQ(rep.allocatedLeaves(), 0u);
    rep.add(0);
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.add(7); // same cluster
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.add(8); // next cluster
    EXPECT_EQ(rep.allocatedLeaves(), 2u);
}

TEST(Hierarchical, DeallocatesEmptyLeaves)
{
    HierarchicalVectorRep rep(64);
    rep.add(0);
    rep.add(8);
    rep.remove(0);
    EXPECT_EQ(rep.allocatedLeaves(), 1u);
    rep.remove(8);
    EXPECT_EQ(rep.allocatedLeaves(), 0u);
    EXPECT_TRUE(rep.empty());
}

TEST(Hierarchical, PreciseTargets)
{
    HierarchicalVectorRep rep(100);
    rep.add(0);
    rep.add(55);
    rep.add(99);
    DynamicBitset targets;
    rep.invalidationTargets(targets);
    EXPECT_EQ(targets.count(), 3u);
    EXPECT_TRUE(targets.test(0));
    EXPECT_TRUE(targets.test(55));
    EXPECT_TRUE(targets.test(99));
    EXPECT_TRUE(rep.precise());
}

TEST(Hierarchical, ExplicitClusterSize)
{
    HierarchicalVectorRep rep(64, 16);
    EXPECT_EQ(rep.clusterSize(), 16u);
    rep.add(15);
    rep.add(16);
    EXPECT_EQ(rep.allocatedLeaves(), 2u);
}

TEST(Hierarchical, RootStorageBitsFormula)
{
    // sqrt split: 1024 caches -> 32 clusters of 32.
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 1024), 32u);
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 16), 4u);
}

TEST(Hierarchical, NonSquareClusterGeometryIsExact)
{
    // 128 caches: clusters of isqrtCeil(128) = 12, which pack into 11
    // clusters — one less than ceil(sqrt(128)) = 12. The float-based
    // derivation used to charge the extra cluster.
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 128), 11u);
    HierarchicalVectorRep rep(128);
    EXPECT_EQ(rep.clusterSize(), 12u);
    rep.add(127); // last, partially filled cluster
    EXPECT_TRUE(rep.mightContain(127));
    EXPECT_EQ(rep.allocatedLeaves(), 1u);

    // 8192 caches (the 4096-core Shared-L2 grid point): 91 clusters of
    // 91 exactly covers 8281 >= 8192.
    EXPECT_EQ(sharerStorageBits(SharerFormat::Hierarchical, 8192), 91u);
}

TEST(Hierarchical, IsqrtExactAtLargeNonSquares)
{
    // Around a large perfect square, where a double sqrt can land on
    // the wrong side: 94906265^2 just exceeds 2^53.
    constexpr std::uint64_t r = 94906265;
    static_assert(isqrtFloor(r * r) == r);
    static_assert(isqrtFloor(r * r - 1) == r - 1);
    static_assert(isqrtCeil(r * r) == r);
    static_assert(isqrtCeil(r * r + 1) == r + 1);
    static_assert(isqrtCeil(0) == 0);
    static_assert(isqrtCeil(1) == 1);
    static_assert(isqrtCeil(2) == 2);
    EXPECT_EQ(isqrtFloor(~std::uint64_t{0}), 4294967295u);
}

// --- Compressed specifics ----------------------------------------------------

TEST(Compressed, StorageChargeMatchesFullVector)
{
    // The compressed format is a host-RAM optimization, not a protocol
    // change: the modeled storage bits stay one per cache, so every
    // behavioural statistic is bit-identical to a FullVector run.
    EXPECT_EQ(sharerStorageBits(SharerFormat::Compressed, 1024), 1024u);
    CompressedVectorRep rep(4096);
    EXPECT_EQ(rep.storageBits(), 4096u);
    EXPECT_TRUE(rep.precise());
}

TEST(Compressed, LeanerThanFullVectorWhenSparse)
{
    FullVectorRep full(4096);
    CompressedVectorRep lean(4096);
    full.add(7);
    lean.add(7);
    // One sharer: the full vector holds 4096 bits of backing words,
    // the compressed rep one (index, word) pair.
    EXPECT_LT(lean.memoryBytes(), full.memoryBytes());
}

TEST(Compressed, MatchesFullVectorUnderChurnAt1024Caches)
{
    // Lean-vs-full equivalence at CMP scale: identical add/remove
    // streams must produce identical counts, membership answers, and
    // invalidation target sets at every step.
    constexpr std::size_t kCaches = 1024;
    FullVectorRep full(kCaches);
    CompressedVectorRep lean(kCaches);
    Rng rng(2026);
    std::set<CacheId> truth;
    for (int step = 0; step < 4000; ++step) {
        const auto cache = static_cast<CacheId>(rng.below(kCaches));
        if (rng.chance(0.55)) {
            full.add(cache);
            lean.add(cache);
            truth.insert(cache);
        } else {
            EXPECT_EQ(full.remove(cache), lean.remove(cache))
                << "step " << step;
            truth.erase(cache);
        }
        ASSERT_EQ(lean.count(), full.count()) << "step " << step;
        ASSERT_EQ(lean.mightContain(cache), full.mightContain(cache));
        if (step % 97 == 0) {
            DynamicBitset a, b;
            full.invalidationTargets(a);
            lean.invalidationTargets(b);
            ASSERT_TRUE(a == b) << "step " << step;
            ASSERT_EQ(a.count(), truth.size());
        }
    }
    full.clear();
    lean.clear();
    EXPECT_TRUE(lean.empty());
    EXPECT_EQ(lean.count(), full.count());
}

TEST(SharerFactory, BuildsEveryFormat)
{
    for (SharerFormat f :
         {SharerFormat::FullVector, SharerFormat::CoarseVector,
          SharerFormat::Hierarchical, SharerFormat::Compressed}) {
        auto rep = makeSharerRep(f, 32);
        ASSERT_NE(rep, nullptr);
        rep->add(5);
        EXPECT_TRUE(rep->mightContain(5));
        EXPECT_GT(rep->memoryBytes(), 0u);
    }
}

} // namespace
} // namespace cdir
