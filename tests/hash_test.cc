/**
 * @file
 * Unit and property tests for the hash families: range, determinism,
 * bijectivity of the skewing permutation chunks, inter-way dispersion,
 * and distribution uniformity.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "hash/hash_family.hh"
#include "hash/skewing_hash.hh"
#include "hash/strong_hash.hh"

namespace cdir {
namespace {

struct FamilyCase
{
    HashKind kind;
    unsigned ways;
    std::size_t sets;
};

std::string
caseName(const testing::TestParamInfo<FamilyCase> &info)
{
    const auto &c = info.param;
    std::string kind = c.kind == HashKind::Skewing  ? "Skewing"
                       : c.kind == HashKind::Strong ? "Strong"
                                                    : "Modulo";
    return kind + "_" + std::to_string(c.ways) + "w" +
           std::to_string(c.sets) + "s";
}

class HashFamilyProperty : public testing::TestWithParam<FamilyCase>
{
  protected:
    void SetUp() override
    {
        const auto &c = GetParam();
        family = makeHashFamily(c.kind, c.ways, c.sets, 99);
        ASSERT_NE(family, nullptr);
    }
    std::unique_ptr<HashFamily> family;
};

TEST_P(HashFamilyProperty, ReportsConfiguredShape)
{
    EXPECT_EQ(family->numWays(), GetParam().ways);
    EXPECT_EQ(family->setsPerWay(), GetParam().sets);
}

TEST_P(HashFamilyProperty, IndexInRange)
{
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const Tag tag = rng.next();
        for (unsigned w = 0; w < family->numWays(); ++w)
            ASSERT_LT(family->index(w, tag), family->setsPerWay());
    }
}

TEST_P(HashFamilyProperty, Deterministic)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const Tag tag = rng.next();
        for (unsigned w = 0; w < family->numWays(); ++w)
            ASSERT_EQ(family->index(w, tag), family->index(w, tag));
    }
}

TEST_P(HashFamilyProperty, RoughlyUniformOverSets)
{
    // Chi-squared-style sanity bound: with n >> sets random tags, each
    // bucket should be within 40% of the expected load.
    const std::size_t sets = family->setsPerWay();
    const int n = static_cast<int>(sets) * 200;
    for (unsigned w = 0; w < family->numWays(); ++w) {
        std::vector<int> load(sets, 0);
        Rng rng(3 + w);
        for (int i = 0; i < n; ++i)
            ++load[family->index(w, rng.next())];
        const double expected = double(n) / double(sets);
        for (std::size_t s = 0; s < sets; ++s) {
            EXPECT_GT(load[s], expected * 0.6)
                << "way " << w << " set " << s;
            EXPECT_LT(load[s], expected * 1.4)
                << "way " << w << " set " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, HashFamilyProperty,
    testing::Values(FamilyCase{HashKind::Skewing, 2, 64},
                    FamilyCase{HashKind::Skewing, 3, 256},
                    FamilyCase{HashKind::Skewing, 4, 512},
                    FamilyCase{HashKind::Skewing, 8, 128},
                    FamilyCase{HashKind::Strong, 2, 64},
                    FamilyCase{HashKind::Strong, 3, 256},
                    FamilyCase{HashKind::Strong, 4, 512},
                    FamilyCase{HashKind::Strong, 8, 1024},
                    FamilyCase{HashKind::Modulo, 4, 256}),
    caseName);

// --- Skewing specifics ----------------------------------------------------

TEST(SkewingHash, WaysDisagreeOnConflictingTags)
{
    // Two tags that collide in way 0 should usually not collide in the
    // other ways — the inter-bank dispersion property (§4.1).
    SkewingHashFamily family(4, 256);
    Rng rng(7);
    int conflicts_everywhere = 0;
    int pairs = 0;
    std::map<std::size_t, Tag> first_by_index;
    for (int i = 0; i < 50000 && pairs < 500; ++i) {
        const Tag tag = rng.next();
        const std::size_t idx0 = family.index(0, tag);
        auto it = first_by_index.find(idx0);
        if (it == first_by_index.end()) {
            first_by_index.emplace(idx0, tag);
            continue;
        }
        if (it->second == tag)
            continue;
        ++pairs;
        bool all_same = true;
        for (unsigned w = 1; w < 4; ++w)
            if (family.index(w, tag) != family.index(w, it->second))
                all_same = false;
        if (all_same)
            ++conflicts_everywhere;
    }
    ASSERT_GT(pairs, 100);
    // Transitive full conflicts must be very rare.
    EXPECT_LT(conflicts_everywhere, pairs / 50);
}

TEST(SkewingHash, Way0IsPlainXorFold)
{
    // Way 0 applies no sigma powers: index = a1 ^ a2 ^ a3.
    SkewingHashFamily family(2, 16);
    const Tag tag = 0x3 | (0x5 << 4) | (0x9 << 8);
    EXPECT_EQ(family.index(0, tag),
              static_cast<std::size_t>(0x3 ^ 0x5 ^ 0x9));
}

TEST(SkewingHash, DifferentWaysDifferentFunctions)
{
    SkewingHashFamily family(4, 512);
    Rng rng(11);
    // For random tags, ways must not all compute the same index.
    int identical = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tag tag = rng.next();
        const std::size_t i0 = family.index(0, tag);
        bool all_equal = true;
        for (unsigned w = 1; w < 4; ++w)
            if (family.index(w, tag) != i0)
                all_equal = false;
        if (all_equal)
            ++identical;
    }
    EXPECT_LT(identical, 10);
}

TEST(SkewingHash, ChunkPermutationIsBijective)
{
    // The sigma underlying each way permutes the index-chunk space:
    // restricting tags to a single chunk must enumerate every index.
    for (unsigned way = 0; way < 4; ++way) {
        SkewingHashFamily family(4, 64);
        std::set<std::size_t> images;
        for (Tag a1 = 0; a1 < 64; ++a1)
            images.insert(family.index(way, a1));
        EXPECT_EQ(images.size(), 64u) << "way " << way;
    }
}

// --- Strong hash specifics --------------------------------------------------

TEST(StrongHash, MixAvalanches)
{
    // Flipping one input bit should flip ~half the output bits.
    Rng rng(13);
    double total_flips = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const std::uint64_t x = rng.next();
        const unsigned bit = static_cast<unsigned>(rng.below(64));
        const std::uint64_t d =
            StrongHashFamily::mix(x) ^
            StrongHashFamily::mix(x ^ (1ull << bit));
        total_flips += std::popcount(d);
    }
    EXPECT_NEAR(total_flips / trials, 32.0, 2.0);
}

TEST(StrongHash, SeedsChangeFunctions)
{
    StrongHashFamily a(4, 256, 1), b(4, 256, 2);
    int same = 0;
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const Tag tag = rng.next();
        if (a.index(0, tag) == b.index(0, tag))
            ++same;
    }
    // Two random functions over 256 buckets agree ~1/256 of the time.
    EXPECT_LT(same, 30);
}

TEST(ModuloHash, UsesLowBitsForEveryWay)
{
    ModuloHashFamily family(4, 128);
    for (Tag tag : {Tag{0}, Tag{1}, Tag{127}, Tag{128}, Tag{0xabcdef}}) {
        for (unsigned w = 0; w < 4; ++w)
            EXPECT_EQ(family.index(w, tag),
                      static_cast<std::size_t>(tag & 127));
    }
}

TEST(HashFactory, BuildsEveryKind)
{
    for (HashKind kind :
         {HashKind::Skewing, HashKind::Strong, HashKind::Modulo}) {
        auto family = makeHashFamily(kind, 3, 64, 5);
        ASSERT_NE(family, nullptr);
        EXPECT_EQ(family->numWays(), 3u);
        EXPECT_EQ(family->setsPerWay(), 64u);
    }
}

} // namespace
} // namespace cdir
